"""Serving-layer benchmark: fixed batching vs the SLO-aware controller.

The serving tentpole's acceptance demo, as a gated artifact: drive the
same seeded open-loop Poisson workload at two offered-load points — one
inside capacity, one well past it — under two policies:

- **fixed** — constant batch size, tier-0 quality, bounded-queue shed;
- **adaptive** — SLO-adaptive batch sizing plus the ef degradation
  ladder.

Gates: at the light point both policies must meet the p99 SLO; at the
overload point the fixed policy must *violate* it while the adaptive
policy holds it by degrading (nonzero degraded fraction).  Everything
runs on the virtual clock, so the artifact
(``benchmarks/results/BENCH_serve.json``) is bit-deterministic.

A second sweep gates the multi-stream device model: the fixed policy at
the overload point with 1, 2 and 4 streams per replica must scale
throughput by at least 1.3x (4 vs 1, inside a pinned tolerance band),
meet the SLO at 4 streams where 1 stream misses it, and leave recall
bit-identical — recorded in ``benchmarks/results/BENCH_streams.json``.

Run directly::

    PYTHONPATH=src python -m benchmarks.bench_serving --smoke  # CI gate
    PYTHONPATH=src python -m benchmarks.bench_serving          # full (n=4k)

or via pytest (smoke-sized)::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -x -q
"""

from __future__ import annotations

import argparse
import json
import os

try:
    from _common import RESULTS_DIR, cached_graph, emit_report
except ImportError:  # executed as `python -m benchmarks.bench_serving`
    from benchmarks._common import RESULTS_DIR, cached_graph, emit_report

from repro.core.config import SearchConfig
from repro.data import make_dataset
from repro.eval import sweep_serving
from repro.graphs import build_nsw

#: Smoke gate: small dataset, two load points, <60 s.
SMOKE = dict(
    n=600,
    num_queries=20,
    light_qps=20_000.0,
    overload_qps=200_000.0,
    num_requests=300,
)
#: Full run: paper-scale synthetic dataset, same gate structure.
FULL = dict(
    n=4000,
    num_queries=50,
    light_qps=20_000.0,
    overload_qps=200_000.0,
    num_requests=600,
)

#: Serving parameters shared by both modes.
SLO_P99_S = 0.002
BASE = dict(k=10, queue_size=64)
BATCH = dict(batch_size=8, max_batch=16)
ARRIVAL_SEED = 3

#: Multi-stream sweep: stream counts and the QPS-ratio tolerance band.
STREAMS_SWEEP = (1, 2, 4)
STREAMS_RATIO_BAND = (1.3, 8.0)


def run_serving_bench(
    n: int,
    num_queries: int,
    light_qps: float,
    overload_qps: float,
    num_requests: int,
) -> dict:
    """Sweep both policies over the two offered-load points and gate."""
    dataset = make_dataset("sift", n=n, num_queries=num_queries)
    graph = cached_graph(
        "nsw-serving",
        dataset.data,
        lambda: build_nsw(dataset.data, m=8, ef_construction=48, seed=7),
        graph_type="nsw",
        build_engine="serial",
        m=8,
        ef_construction=48,
        seed=7,
    )
    series = sweep_serving(
        graph,
        dataset.data,
        dataset.queries,
        rates=[light_qps, overload_qps],
        base=SearchConfig(**BASE),
        slo_p99_s=SLO_P99_S,
        num_requests=num_requests,
        seed=ARRIVAL_SEED,
        ground_truth=dataset.ground_truth(BASE["k"]),
        batch_size=BATCH["batch_size"],
        max_batch=BATCH["max_batch"],
    )
    fixed_light, fixed_over = series["fixed"]
    adapt_light, adapt_over = series["adaptive"]

    gates = {
        "light_fixed_meets_slo": fixed_light.slo_met,
        "light_adaptive_meets_slo": adapt_light.slo_met,
        "overload_fixed_violates_slo": not fixed_over.slo_met,
        "overload_adaptive_meets_slo": adapt_over.slo_met,
        "overload_adaptive_degrades": adapt_over.degraded_fraction > 0.0,
        "overload_adaptive_outserves_fixed": (
            adapt_over.achieved_qps > fixed_over.achieved_qps
        ),
    }
    return {
        "config": {
            "n": n,
            "num_queries": num_queries,
            "num_requests": num_requests,
            "slo_p99_ms": 1e3 * SLO_P99_S,
            "arrival_seed": ARRIVAL_SEED,
            **BASE,
            **BATCH,
        },
        "points": {
            policy: [p.to_dict() for p in points]
            for policy, points in series.items()
        },
        "gates": gates,
        "passed": all(gates.values()),
    }


def run_streams_bench(
    n: int,
    num_queries: int,
    light_qps: float,
    overload_qps: float,
    num_requests: int,
) -> dict:
    """Sweep device streams at overload under the fixed policy and gate.

    Same workload, same SLO config, same quality tier — the only knob is
    the number of CUDA-style streams per replica, so any throughput
    difference is the overlapped transfer/compute model.  Gates: QPS
    scales by at least the lower band edge from 1 to 4 streams (and the
    ratio stays inside the band — a runaway ratio would mean the serial
    pin regressed), streams=4 meets the p99 SLO the serial model misses,
    throughput is monotone in streams, and recall per tier is identical
    (streams change scheduling, never results).
    """
    dataset = make_dataset("sift", n=n, num_queries=num_queries)
    graph = cached_graph(
        "nsw-serving",
        dataset.data,
        lambda: build_nsw(dataset.data, m=8, ef_construction=48, seed=7),
        graph_type="nsw",
        build_engine="serial",
        m=8,
        ef_construction=48,
        seed=7,
    )
    points = {}
    for streams in STREAMS_SWEEP:
        series = sweep_serving(
            graph,
            dataset.data,
            dataset.queries,
            rates=[overload_qps],
            base=SearchConfig(**BASE),
            slo_p99_s=SLO_P99_S,
            num_requests=num_requests,
            seed=ARRIVAL_SEED,
            ground_truth=dataset.ground_truth(BASE["k"]),
            policies=("fixed",),
            batch_size=BATCH["batch_size"],
            max_batch=BATCH["max_batch"],
            streams=streams,
        )
        points[streams] = series["fixed"][0]

    lo, hi = STREAMS_RATIO_BAND
    ratio = points[4].achieved_qps / points[1].achieved_qps
    qps = [points[s].achieved_qps for s in STREAMS_SWEEP]
    gates = {
        "qps_ratio_within_band": lo <= ratio <= hi,
        "streams4_meets_slo": points[4].slo_met,
        "streams1_misses_slo": not points[1].slo_met,
        "qps_monotone_in_streams": all(
            b >= a * (1 - 1e-9) for a, b in zip(qps, qps[1:])
        ),
        "recall_identical_across_streams": all(
            points[s].metrics["recall_by_tier"]
            == points[1].metrics["recall_by_tier"]
            for s in STREAMS_SWEEP
        ),
        "streams4_overlaps_engines": (
            points[4].metrics["streams"]["overlap_efficiency"] > 1.0
        ),
    }
    return {
        "config": {
            "n": n,
            "num_queries": num_queries,
            "num_requests": num_requests,
            "overload_qps": overload_qps,
            "slo_p99_ms": 1e3 * SLO_P99_S,
            "arrival_seed": ARRIVAL_SEED,
            "policy": "fixed",
            "streams_sweep": list(STREAMS_SWEEP),
            "ratio_band": list(STREAMS_RATIO_BAND),
            **BASE,
            **BATCH,
        },
        "points": {str(s): points[s].to_dict() for s in STREAMS_SWEEP},
        "overlap": {
            str(s): points[s].metrics["streams"] for s in STREAMS_SWEEP
        },
        "qps_ratio_4v1": round(ratio, 6),
        "gates": gates,
        "passed": all(gates.values()),
    }


def format_streams_result(result: dict, mode: str) -> str:
    cfg = result["config"]
    lines = [
        f"Multi-stream serving scaling, fixed policy at overload ({mode})",
        f"  dataset    : synthetic sift n={cfg['n']} "
        f"(k={cfg['k']}, ef={cfg['queue_size']}, "
        f"SLO p99 <= {cfg['slo_p99_ms']:.1f} ms, "
        f"offered {cfg['overload_qps']:,.0f} QPS)",
        f"  {'streams':>7} {'achieved':>10} {'p99 ms':>8} {'SLO':>5} "
        f"{'overlap':>8} {'xfer hidden':>11} {'recall':>7}",
    ]
    for s in cfg["streams_sweep"]:
        p = result["points"][str(s)]
        ov = result["overlap"][str(s)]
        lines.append(
            f"  {s:>7} {p['achieved_qps']:>10,.0f} "
            f"{p['p99_latency_ms']:>8.3f} "
            f"{'ok' if p['slo_met'] else 'MISS':>5} "
            f"{ov['overlap_efficiency']:>8.3f} "
            f"{ov['transfer_hidden_fraction']:>11.3f} "
            f"{p['recall']:>7.4f}"
        )
    lines.append(
        f"  4v1 ratio  : {result['qps_ratio_4v1']:.3f}x "
        f"(band {cfg['ratio_band'][0]:.1f}-{cfg['ratio_band'][1]:.1f})"
    )
    failed = [g for g, ok in result["gates"].items() if not ok]
    lines.append(
        f"  verdict    : {'PASS' if result['passed'] else 'FAIL ' + str(failed)}"
    )
    return "\n".join(lines)


def format_result(result: dict, mode: str) -> str:
    cfg = result["config"]
    lines = [
        f"Serving under SLO: fixed vs adaptive policy ({mode})",
        f"  dataset    : synthetic sift n={cfg['n']} "
        f"(k={cfg['k']}, ef={cfg['queue_size']}, "
        f"SLO p99 <= {cfg['slo_p99_ms']:.1f} ms)",
        f"  {'policy':<10} {'offered':>10} {'achieved':>10} {'p99 ms':>8} "
        f"{'SLO':>5} {'shed':>6} {'degraded':>9} {'recall':>7}",
    ]
    for policy, points in result["points"].items():
        for p in points:
            lines.append(
                f"  {policy:<10} {p['offered_qps']:>10,.0f} "
                f"{p['achieved_qps']:>10,.0f} {p['p99_latency_ms']:>8.3f} "
                f"{'ok' if p['slo_met'] else 'MISS':>5} "
                f"{p['shed_rate']:>6.1%} {p['degraded_fraction']:>9.1%} "
                f"{p['recall']:>7.4f}"
            )
    failed = [g for g, ok in result["gates"].items() if not ok]
    lines.append(
        f"  verdict    : {'PASS' if result['passed'] else 'FAIL ' + str(failed)}"
    )
    return "\n".join(lines)


def write_artifact(result: dict, mode: str, filename: str = "BENCH_serve.json") -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, filename)
    payload = dict(result)
    payload["mode"] = mode
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


# -- pytest entry point (smoke-sized) ----------------------------------------


def test_serving_slo_gate():
    result = run_serving_bench(**SMOKE)
    emit_report("bench_serving", format_result(result, "smoke"))
    write_artifact(result, "smoke")
    for gate, ok in result["gates"].items():
        assert ok, f"serving gate failed: {gate}"


def test_streams_scaling_gate():
    result = run_streams_bench(**SMOKE)
    emit_report("bench_serving_streams", format_streams_result(result, "smoke"))
    write_artifact(result, "smoke", filename="BENCH_streams.json")
    for gate, ok in result["gates"].items():
        assert ok, f"streams gate failed: {gate}"


# -- CLI entry point ----------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Serving-layer SLO benchmark: fixed vs adaptive policy"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="small fast gate (<60 s)"
    )
    args = parser.parse_args(argv)
    params = dict(SMOKE if args.smoke else FULL)
    mode = "smoke" if args.smoke else "full"
    result = run_serving_bench(**params)
    emit_report("bench_serving", format_result(result, mode))
    path = write_artifact(result, mode)
    print(f"[artifact written to {path}]")
    streams_result = run_streams_bench(**params)
    emit_report(
        "bench_serving_streams", format_streams_result(streams_result, mode)
    )
    streams_path = write_artifact(
        streams_result, mode, filename="BENCH_streams.json"
    )
    print(f"[artifact written to {streams_path}]")
    return 0 if (result["passed"] and streams_result["passed"]) else 1


if __name__ == "__main__":
    raise SystemExit(main())
