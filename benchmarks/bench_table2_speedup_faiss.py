"""Table II — SONG's speedup over Faiss-IVFPQ at fixed recall, top-10.

Paper: 4.8–20.2x from recall 0.5 to 0.95, with N/A where Faiss cannot
reach the recall.  Expected shape: SONG ≥ IVFPQ wherever both reach the
recall level, and IVFPQ's reachable recall ends early on clustered data.
"""

from _common import emit_report
from repro.eval.report import format_speedup_table
from repro.eval.sweep import qps_at_recall

RECALL_LEVELS = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95)
DATASETS = ("sift", "glove200", "nytimes", "gist", "uqv")


def _run(assets):
    table = {}
    raw = {}
    for name in DATASETS:
        song_pts = assets.song_sweep(name, 10)
        ivf_pts = assets.ivfpq_sweep(name, 10)
        row = []
        for r in RECALL_LEVELS:
            s = qps_at_recall(song_pts, r)
            f = qps_at_recall(ivf_pts, r)
            row.append(None if (s is None or f is None) else s / f)
        table[name] = row
        raw[name] = (song_pts, ivf_pts)
    report = format_speedup_table(
        "Table II analogue: SONG speedup over Faiss-IVFPQ (top-10)",
        RECALL_LEVELS,
        table,
    )
    emit_report("table2_speedup_faiss", report)
    return table, raw


def test_table2(benchmark, assets):
    table, raw = benchmark.pedantic(_run, args=(assets,), rounds=1, iterations=1)
    # Every dataset's SONG curve reaches 0.9; IVFPQ should miss high recall
    # on at least the clustered datasets (paper's N/A columns).
    for name in DATASETS:
        song_pts, _ = raw[name]
        assert qps_at_recall(song_pts, 0.9) is not None, f"SONG misses 0.9 on {name}"
    clustered_na = [
        table[name][-1] is None for name in ("nytimes", "glove200")
    ]
    assert any(clustered_na), "IVFPQ should fail to reach 0.95 on clustered data"
    # Where defined, SONG should win at high recall levels (>= 0.8).
    for name in DATASETS:
        for level, value in zip(RECALL_LEVELS, table[name]):
            if level >= 0.8 and value is not None:
                assert value > 1.0, f"{name}@{level}: speedup {value:.2f} <= 1"
