"""Benchmark helpers: sweep grids, report output, and build-artifact cache.

Reports are printed *and* written to ``benchmarks/results/<name>.txt`` so
they survive pytest's output capture.  Graph construction dominates many
benchmark runs, so :func:`cached_graph` persists built indexes under
``benchmarks/.cache/`` keyed by (builder, dataset fingerprint, params);
delete that directory to force rebuilds.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Callable

import numpy as np

from repro.data.datasets import Dataset
from repro.graphs import FixedDegreeGraph, load_graph, save_graph

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
CACHE_DIR = os.path.join(os.path.dirname(__file__), ".cache")

#: Frontier-queue sizes swept for SONG / HNSW.
QUEUE_GRID = (10, 20, 40, 80, 160, 320)
#: nprobe grid swept for IVFPQ.
NPROBE_GRID = (1, 2, 4, 8, 16, 32)


def emit_report(name: str, text: str) -> None:
    """Print a report and persist it under ``benchmarks/results/``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    print(f"\n{text}\n[report written to {path}]")


def dataset_fingerprint(data: np.ndarray) -> str:
    """Short content hash of a dataset array (shape + float32 bytes)."""
    arr = np.ascontiguousarray(data, dtype=np.float32)
    digest = hashlib.sha1()
    digest.update(repr(arr.shape).encode())
    digest.update(arr.tobytes())
    return digest.hexdigest()[:16]


def cached_graph(
    builder: str,
    data: np.ndarray,
    build_fn: Callable[[], FixedDegreeGraph],
    graph_type: str = None,
    build_engine: str = "serial",
    **params,
) -> FixedDegreeGraph:
    """Build-artifact cache: load a graph from disk or build and persist it.

    The cache key is ``(graph type, build engine, dataset fingerprint,
    params)``, so any change to the data, the graph family, the
    construction engine, or the pruning parameters produces a fresh
    artifact while re-runs of the same benchmark skip construction
    entirely.  ``builder`` is the human-readable file-name prefix;
    ``graph_type`` defaults to it but should be the canonical
    :data:`~repro.core.config.GRAPH_TYPES` name when the label differs,
    so a benchmark-specific label never aliases a differently-built
    artifact of the same family.  A corrupt or stale-format file is
    discarded and rebuilt.
    """
    graph_type = graph_type or builder
    spec = json.dumps(params, sort_keys=True, default=str)
    key = hashlib.sha1(
        f"{graph_type}|{build_engine}|{dataset_fingerprint(data)}|{spec}".encode()
    ).hexdigest()[:20]
    path = os.path.join(CACHE_DIR, f"{builder}-{key}.npz")
    if os.path.exists(path):
        try:
            return load_graph(path)
        except (ValueError, OSError, KeyError):
            os.remove(path)
    graph = build_fn()
    os.makedirs(CACHE_DIR, exist_ok=True)
    save_graph(graph, path)
    return graph


def with_saturated_queries(dataset: Dataset, factor: int = 4) -> Dataset:
    """Same base data with the query batch tiled ``factor`` times."""
    sat = Dataset(
        name=dataset.name,
        data=dataset.data,
        queries=np.tile(dataset.queries, (factor, 1)),
        metric=dataset.metric,
    )
    # ground truth tiles the same way; reuse the cached one per k on demand
    return sat


def tile_ground_truth(gt: np.ndarray, factor: int) -> np.ndarray:
    """Ground truth matching a query batch tiled ``factor`` times."""
    return np.tile(gt, (factor, 1))
