"""Benchmark helpers: sweep grids and report output.

Reports are printed *and* written to ``benchmarks/results/<name>.txt`` so
they survive pytest's output capture.
"""

from __future__ import annotations

import os
import numpy as np

from repro.data.datasets import Dataset

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Frontier-queue sizes swept for SONG / HNSW.
QUEUE_GRID = (10, 20, 40, 80, 160, 320)
#: nprobe grid swept for IVFPQ.
NPROBE_GRID = (1, 2, 4, 8, 16, 32)


def emit_report(name: str, text: str) -> None:
    """Print a report and persist it under ``benchmarks/results/``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    print(f"\n{text}\n[report written to {path}]")


def with_saturated_queries(dataset: Dataset, factor: int = 4) -> Dataset:
    """Same base data with the query batch tiled ``factor`` times."""
    sat = Dataset(
        name=dataset.name,
        data=dataset.data,
        queries=np.tile(dataset.queries, (factor, 1)),
        metric=dataset.metric,
    )
    # ground truth tiles the same way; reuse the cached one per k on demand
    return sat


def tile_ground_truth(gt: np.ndarray, factor: int) -> np.ndarray:
    """Ground truth matching a query batch tiled ``factor`` times."""
    return np.tile(gt, (factor, 1))
