"""Fig. 7 — visited-set alternatives at top-100 on SIFT and NYTimes.

Series: plain hash table, +selected insertion, +sel+visited deletion,
Bloom filter, Cuckoo filter.  Expected shape: sel-del is the fastest at
large queue sizes (bounded visited set stays in shared memory → higher
occupancy); the probabilistic filters sit between the baseline and
sel-del.
"""

import pytest

from _common import emit_report, with_saturated_queries
from repro.core.config import OptimizationLevel, SearchConfig
from repro.eval import format_curve, sweep_gpu_song

QUEUES = (100, 200, 400, 800)


def _run(assets, name):
    ds = assets.dataset(name)
    sat = with_saturated_queries(ds)
    gpu = assets.gpu_index(name)
    curves = {}
    sections = [f"== {name}: top-100, visited-set alternatives =="]
    for level in OptimizationLevel:
        cfg = SearchConfig.from_level(level, k=100, queue_size=100)
        pts = sweep_gpu_song(sat, gpu, QUEUES, k=100, config=cfg)
        curves[level.value] = pts
        sections.append(format_curve(f"SONG-{level.value}", pts))
    emit_report(f"fig7_{name}", "\n".join(sections))
    return curves


@pytest.mark.parametrize("name", ["sift", "nytimes"])
def test_fig7(benchmark, assets, name):
    curves = benchmark.pedantic(_run, args=(assets, name), rounds=1, iterations=1)
    base = curves[OptimizationLevel.BASELINE.value]
    seldel = curves[OptimizationLevel.SELECTED_AND_DELETION.value]
    # At the largest queue size sel-del should beat the plain hash table.
    assert seldel[-1].qps > base[-1].qps, (
        f"{name}: sel-del {seldel[-1].qps:.0f} <= baseline {base[-1].qps:.0f}"
    )
    # Recall must stay comparable across all variants (within 5 points).
    recalls = {lvl: pts[-1].recall for lvl, pts in curves.items()}
    assert max(recalls.values()) - min(recalls.values()) < 0.05, recalls
    # Bloom and Cuckoo should not be slower than the plain baseline at the
    # largest queue setting (they keep the visited set tiny).
    for lvl in (OptimizationLevel.BLOOM.value, OptimizationLevel.CUCKOO.value):
        assert curves[lvl][-1].qps > 0.7 * base[-1].qps
