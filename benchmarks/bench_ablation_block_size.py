"""Ablation — threads per block serving one query (extension).

Section VI of the paper says "all threads in the block are involved" in
the bulk distance stage, leaving the block size a free design parameter.
Larger blocks shorten the distance stage's critical path (compute *and*
vector loads split across the block's warps) but consume more
issue/occupancy resources and add a cross-warp reduction.  Expected
shape: a moderate block (64) beats a single warp — consistent with the
paper's choice of block-wide distance computation — returns diminish by
128, and the gain is larger on the higher-dimensional dataset.
"""

import numpy as np

from _common import emit_report
from repro.core.config import SearchConfig
from repro.eval.report import format_table

BLOCKS = (32, 64, 128)


def _run(assets):
    results = {}
    rows = []
    for name in ("sift", "gist"):
        ds = assets.dataset(name)
        gpu = assets.gpu_index(name)
        queries = np.tile(ds.queries, (4, 1))
        qps = {}
        for bs in BLOCKS:
            cfg = SearchConfig(
                k=10,
                queue_size=80,
                block_size=bs,
                selected_insertion=True,
                visited_deletion=True,
            )
            _, timing = gpu.search_batch(queries, cfg)
            qps[bs] = timing.qps(len(queries))
        results[name] = qps
        rows.append([name] + [f"{qps[bs]:,.0f}" for bs in BLOCKS])
    emit_report(
        "ablation_block_size",
        format_table(
            "Block-size ablation (top-10, queue=80)",
            ["dataset"] + [f"{b} thr" for b in BLOCKS],
            rows,
        ),
    )
    return results


def test_ablation_block_size(benchmark, assets):
    results = benchmark.pedantic(_run, args=(assets,), rounds=1, iterations=1)
    for name, qps in results.items():
        # Block-wide distance computation pays off (the paper's design)...
        assert qps[64] >= qps[32], name
        # ...with diminishing returns by 128 threads.
        assert qps[128] <= qps[64] * 1.05, name
    # The gain from blocks is larger on the higher-dimensional dataset.
    sift_gain = results["sift"][64] / results["sift"][32]
    gist_gain = results["gist"][64] / results["gist"][32]
    assert gist_gain >= sift_gain - 0.02
