"""Ablation — multi-GPU sharding (paper Section VII's scalability note).

Shard the dataset over 1/2/4 simulated V100s.  Expected shape: per-query
wall time shrinks with more shards (each searches a smaller graph), while
recall stays high because every shard is searched and results merge.
"""

import numpy as np

from _common import emit_report
from repro.core.config import SearchConfig
from repro.core.sharding import ShardedSongIndex
from repro.eval import batch_recall
from repro.eval.report import format_table


def _run(assets):
    ds = assets.dataset("sift")
    queries = np.tile(ds.queries, (4, 1))
    gt = np.tile(ds.ground_truth(10), (4, 1))
    cfg = SearchConfig(
        k=10, queue_size=80, selected_insertion=True, visited_deletion=True
    )
    rows, out = [], {}
    for shards in (1, 2, 4):
        index = ShardedSongIndex(ds.data, num_shards=shards)
        results, timing = index.search_batch(queries, cfg)
        recall = batch_recall(results, gt)
        out[shards] = (recall, timing["qps"])
        rows.append(
            [shards, f"{recall:.4f}", f"{timing['qps']:,.0f}",
             f"{max(index.per_device_memory_bytes()) / 1024:.0f} KB"]
        )
    emit_report(
        "ablation_sharding",
        format_table(
            "Sharding ablation (SIFT, top-10, queue=80)",
            ["shards", "recall", "QPS", "max bytes/GPU"],
            rows,
        ),
    )
    return out


def test_ablation_sharding(benchmark, assets):
    out = benchmark.pedantic(_run, args=(assets,), rounds=1, iterations=1)
    # Recall holds up: all shards are searched and merged.
    for shards, (recall, _) in out.items():
        assert recall > 0.85, f"{shards} shards: recall {recall}"
    # Sharding must not collapse throughput (it can even help: each warp
    # walks a smaller graph).
    assert out[4][1] > 0.5 * out[1][1]
