"""Ablation — stream pipelining of transfers and kernels (extension).

The paper executes batches synchronously; Fig. 10 shows HtoD costing up
to ~12% at small K and Fig. 11 shows transfer overhead hurting small
batches.  Double-buffered streams overlap copies with compute; this
ablation measures the gain across chunk counts.
"""

import numpy as np

from _common import emit_report
from repro.core.config import SearchConfig
from repro.eval.report import format_table
from repro.simt.pipeline import pipeline_batch


def _run(assets):
    ds = assets.dataset("gist")  # highest-dim: biggest query transfers
    gpu = assets.gpu_index("gist")
    queries = np.tile(ds.queries, (2, 1))
    cfg = SearchConfig(
        k=50, queue_size=50, selected_insertion=True, visited_deletion=True
    )
    rows, gains = [], {}
    for chunks in (1, 2, 4, 8):
        _, timing = pipeline_batch(gpu, queries, cfg, num_chunks=chunks)
        gains[chunks] = timing["overlap_gain"]
        rows.append(
            [
                chunks,
                f"{1e3 * timing['synchronous_seconds']:.3f} ms",
                f"{1e3 * timing['pipelined_seconds']:.3f} ms",
                f"{timing['overlap_gain']:.3f}x",
            ]
        )
    emit_report(
        "ablation_pipeline",
        format_table(
            "Stream pipelining ablation (GIST, top-50)",
            ["chunks", "synchronous", "pipelined", "gain"],
            rows,
        ),
    )
    return gains


def test_ablation_pipeline(benchmark, assets):
    gains = benchmark.pedantic(_run, args=(assets,), rounds=1, iterations=1)
    assert gains[1] == 1.0  # one chunk cannot overlap anything
    assert gains[4] > 1.0  # overlap recovers some of the transfer cost
    assert gains[4] >= gains[2] - 1e-9
