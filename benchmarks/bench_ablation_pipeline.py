"""Ablation — stream pipelining of transfers and kernels (extension).

The paper executes batches synchronously; Fig. 10 shows HtoD costing up
to ~12% at small K and Fig. 11 shows transfer overhead hurting small
batches.  Double-buffered streams overlap copies with compute; this
ablation measures the gain across chunk counts.

Scheduling runs through :class:`repro.simt.streams.StreamScheduler`
(the general N-stream device model); with one stream per chunk it must
reproduce the classic :func:`repro.simt.pipeline.pipelined_time`
recurrence *bit-for-bit*, which the test pins as a regression gate.
"""

import numpy as np

from _common import emit_report
from repro.core.config import SearchConfig
from repro.eval.report import format_table
from repro.simt.pipeline import pipeline_batch, pipelined_time, synchronous_time
from repro.simt.streams import StreamScheduler


def _run(assets):
    ds = assets.dataset("gist")  # highest-dim: biggest query transfers
    gpu = assets.gpu_index("gist")
    queries = np.tile(ds.queries, (2, 1))
    cfg = SearchConfig(
        k=50, queue_size=50, selected_insertion=True, visited_deletion=True
    )
    rows, gains, pins = [], {}, {}
    for chunks in (1, 2, 4, 8):
        _, timing = pipeline_batch(gpu, queries, cfg, num_chunks=chunks)
        gains[chunks] = timing["overlap_gain"]
        # Regression pin inputs: the StreamScheduler schedule vs the
        # legacy recurrence and vs a single serial stream.
        chunk_timings = timing["chunks"]
        pins[chunks] = {
            "scheduled": timing["pipelined_seconds"],
            "recurrence": pipelined_time(chunk_timings),
            "one_stream": StreamScheduler(num_streams=1)
            .schedule_chunks(chunk_timings)
            .makespan,
            "synchronous": synchronous_time(chunk_timings),
        }
        rows.append(
            [
                chunks,
                f"{1e3 * timing['synchronous_seconds']:.3f} ms",
                f"{1e3 * timing['pipelined_seconds']:.3f} ms",
                f"{timing['overlap_gain']:.3f}x",
            ]
        )
    emit_report(
        "ablation_pipeline",
        format_table(
            "Stream pipelining ablation (GIST, top-50)",
            ["chunks", "synchronous", "pipelined", "gain"],
            rows,
        ),
    )
    return gains, pins


def test_ablation_pipeline(benchmark, assets):
    gains, pins = benchmark.pedantic(_run, args=(assets,), rounds=1, iterations=1)
    assert gains[1] == 1.0  # one chunk cannot overlap anything
    assert gains[4] > 1.0  # overlap recovers some of the transfer cost
    assert gains[4] >= gains[2] - 1e-9
    for chunks, pin in pins.items():
        # Exact regression pin: the stream scheduler with one stream per
        # chunk IS the legacy pipelined_time recurrence, bit-for-bit.
        assert pin["scheduled"] == pin["recurrence"], chunks
        # A single stream serializes every op — the synchronous model
        # (equal as a schedule; summation order differs, hence approx).
        assert pin["one_stream"] == pytest_approx(pin["synchronous"])


def pytest_approx(value):
    import pytest

    return pytest.approx(value, rel=1e-12, abs=1e-15)
