"""Fig. 5 — QPS vs recall: SONG / Faiss-IVFPQ / HNSW on five datasets.

The paper plots NYTimes at top-1/10/50/100 and the other datasets at
top-10/100.  Expected shape: SONG's curve sits far above single-thread
HNSW everywhere; IVFPQ is competitive at low recall but cannot reach the
high-recall region, especially on the clustered (NYTimes/GloVe) data.
"""

import pytest

from _common import emit_report
from repro.eval import format_curve


def _run_dataset(assets, name: str, ks):
    sections = []
    curves = {}
    for k in ks:
        song_pts = assets.song_sweep(name, k)
        hnsw_pts = assets.hnsw_sweep(name, k)
        ivf_pts = assets.ivfpq_sweep(name, k)
        curves[k] = (song_pts, hnsw_pts, ivf_pts)
        sections.append(
            "\n".join(
                [
                    f"== {name}: top-{k} ==",
                    format_curve("SONG (simulated V100)", song_pts),
                    format_curve("HNSW (1 CPU thread)", hnsw_pts),
                    format_curve("Faiss-IVFPQ (simulated V100)", ivf_pts),
                ]
            )
        )
    emit_report(f"fig5_{name}", "\n\n".join(sections))
    return curves


@pytest.mark.parametrize(
    "name,ks",
    [
        ("nytimes", (1, 10, 50, 100)),
        ("sift", (10, 100)),
        ("glove200", (10, 100)),
        ("uqv", (10, 100)),
        ("gist", (10, 100)),
    ],
)
def test_fig5(benchmark, assets, name, ks):
    curves = benchmark.pedantic(
        _run_dataset, args=(assets, name, ks), rounds=1, iterations=1
    )
    # Shape assertions at top-10 (every dataset has it except the k grid
    # for nytimes includes it too).
    k = 10
    song_pts, hnsw_pts, ivf_pts = curves[k]
    best_song = max(p.recall for p in song_pts)
    best_hnsw = max(p.recall for p in hnsw_pts)
    assert best_song > 0.8, f"SONG should reach high recall on {name}"
    # SONG dominates HNSW in throughput at every swept setting.
    for sp, hp in zip(song_pts, hnsw_pts):
        assert sp.qps > hp.qps, (
            f"{name}: SONG ({sp.qps:.0f}) should beat HNSW ({hp.qps:.0f})"
        )
    # Graph search reaches recall IVFPQ cannot.
    best_ivf = max(p.recall for p in ivf_pts)
    assert best_song >= best_ivf - 0.02
