"""Fig. 8 — multi-query in a warp (1, 2, 4) at top-100, SIFT and GloVe200.

Paper: more queries per warp *hurts* — the adjacency reads stop
coalescing, the per-warp data structures multiply, and occupancy drops.
Expected shape: QPS(mq=1) >= QPS(mq=2) >= QPS(mq=4) at matched settings.
"""

import pytest

from _common import emit_report, with_saturated_queries
from repro.core.config import SearchConfig
from repro.eval import format_curve, sweep_gpu_song

QUEUES = (100, 200, 400)


def _run(assets, name):
    sat = with_saturated_queries(assets.dataset(name))
    gpu = assets.gpu_index(name)
    curves = {}
    sections = [f"== {name}: top-100, queries per warp =="]
    for mq in (1, 2, 4):
        cfg = SearchConfig(
            k=100,
            queue_size=100,
            multi_query=mq,
            selected_insertion=True,
            visited_deletion=True,
        )
        pts = sweep_gpu_song(sat, gpu, QUEUES, k=100, config=cfg)
        curves[mq] = pts
        sections.append(format_curve(f"SONG-MulQuery={mq}", pts))
    emit_report(f"fig8_{name}", "\n".join(sections))
    return curves


@pytest.mark.parametrize("name", ["sift", "glove200"])
def test_fig8(benchmark, assets, name):
    curves = benchmark.pedantic(_run, args=(assets, name), rounds=1, iterations=1)
    for a, b in ((1, 2), (2, 4)):
        for pa, pb in zip(curves[a], curves[b]):
            assert pb.qps <= pa.qps * 1.05, (
                f"{name} q={pa.param}: mq={b} ({pb.qps:.0f}) should not beat "
                f"mq={a} ({pa.qps:.0f})"
            )
    # Recall is unchanged: multi-query only repartitions work.
    for mq in (2, 4):
        for p1, pm in zip(curves[1], curves[mq]):
            assert abs(p1.recall - pm.recall) < 1e-9
