"""Batched graph construction vs the serial reference builders.

Two races live here:

1. **NN-descent engines** — ``build_engine="serial"`` vs ``"batched"``
   on the same synthetic dataset, gated on speedup and graph-recall gap;
   outcome recorded in ``benchmarks/results/BENCH_build.json``.
2. **Three-way graph race** — serial NSG vs batched NSG vs CAGRA at
   equal max degree.  Each arm reports wall clock; the batched arms also
   report SIMT-modeled device cycles from an attached
   :class:`~repro.simt.build_cost.BuildCostRecorder`.  Search recall
   (lockstep engine, same queue size) closes the quality loop: CAGRA
   must land within ``max_recall_gap`` of serial NSG while building
   ``min_speedup`` times faster.  Outcome recorded in
   ``benchmarks/results/BENCH_cagra.json``.

Run directly::

    PYTHONPATH=src python -m benchmarks.bench_build_speed --smoke  # <60 s gate
    PYTHONPATH=src python -m benchmarks.bench_build_speed          # full (n=20k, d=64)

or via pytest (smoke-sized)::

    PYTHONPATH=src python -m pytest benchmarks/bench_build_speed.py -x -q

The full run takes several minutes: the serial NSG arm alone is ~100x
the CAGRA arm at n=20k.
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

try:
    from _common import RESULTS_DIR, emit_report
except ImportError:  # executed as `python -m benchmarks.bench_build_speed`
    from benchmarks._common import RESULTS_DIR, emit_report

from repro.eval import sweep_build_engines
from repro.graphs.bruteforce_knn import knn_neighbors

#: Smoke gate: batched must clearly beat serial with a near-equal graph.
SMOKE = dict(n=2000, dim=32, k=10, min_speedup=1.5, max_recall_gap=0.05)
#: Full acceptance run: >= 5x at n=20k, d=64, k=10, recall within 0.02.
FULL = dict(n=20_000, dim=64, k=10, min_speedup=5.0, max_recall_gap=0.02)

#: Three-way race smoke gate: CAGRA clearly beats serial NSG, recall close.
CAGRA_SMOKE = dict(n=2000, dim=32, k=10, min_speedup=2.0, max_recall_gap=0.05)
#: Three-way race acceptance: CAGRA >= 5x serial NSG, recall within 0.02.
CAGRA_FULL = dict(n=20_000, dim=64, k=10, min_speedup=5.0, max_recall_gap=0.02)
#: Sanity band for the SIMT-modeled build cycles of the batched arms.
CYCLES_BAND = (1e3, 1e14)


def run_build_race(
    n: int,
    dim: int,
    k: int,
    min_speedup: float,
    max_recall_gap: float,
    data_seed: int = 42,
    build_seed: int = 3,
) -> dict:
    """Build the kNN graph under both engines and compare time + recall."""
    rng = np.random.default_rng(data_seed)
    data = rng.standard_normal((n, dim)).astype(np.float32)
    start = time.perf_counter()
    exact = knn_neighbors(data, k)
    exact_seconds = time.perf_counter() - start

    points = sweep_build_engines(
        data, k=k, engines=("serial", "batched"), seed=build_seed, exact=exact
    )
    serial, batched = points["serial"], points["batched"]
    speedup = (
        serial.extra["build_seconds"] / batched.extra["build_seconds"]
        if batched.extra["build_seconds"] > 0
        else float("inf")
    )
    recall_gap = serial.recall - batched.recall
    return {
        "config": {
            "n": n,
            "dim": dim,
            "k": k,
            "data_seed": data_seed,
            "build_seed": build_seed,
        },
        "exact_knn_seconds": round(exact_seconds, 4),
        "serial_seconds": round(serial.extra["build_seconds"], 4),
        "batched_seconds": round(batched.extra["build_seconds"], 4),
        "serial_recall": round(serial.recall, 6),
        "batched_recall": round(batched.recall, 6),
        "speedup": round(speedup, 2),
        "recall_gap": round(recall_gap, 6),
        "min_speedup": min_speedup,
        "max_recall_gap": max_recall_gap,
        "passed": speedup >= min_speedup and recall_gap <= max_recall_gap,
    }


def run_cagra_race(
    n: int,
    dim: int,
    k: int,
    min_speedup: float,
    max_recall_gap: float,
    data_seed: int = 42,
    build_seed: int = 3,
    degree: int = 16,
    num_queries: int = 200,
    queue: int = 80,
) -> dict:
    """Serial NSG vs batched NSG vs CAGRA at equal max degree."""
    from repro import SearchConfig, SongSearcher
    from repro.data.ground_truth import ground_truth
    from repro.eval import batch_recall
    from repro.graphs import build_cagra, build_nsg
    from repro.simt.build_cost import BuildCostRecorder

    rng = np.random.default_rng(data_seed)
    data = rng.standard_normal((n, dim)).astype(np.float32)
    queries = rng.standard_normal((num_queries, dim)).astype(np.float32)
    gt = ground_truth(data, queries, k)
    config = SearchConfig(k=k, queue_size=queue)

    def arm(build_fn, recorder):
        start = time.perf_counter()
        graph = build_fn()
        seconds = time.perf_counter() - start
        results = SongSearcher(graph, data).search_batch(
            queries, config, engine="batched"
        )
        out = {
            "seconds": round(seconds, 4),
            "recall": round(batch_recall(results, gt), 6),
        }
        if recorder is not None:
            out["modeled_device_cycles"] = float(recorder.device_cycles())
            out["modeled_device_seconds"] = recorder.device_seconds()
            out["modeled_cpu_seconds"] = recorder.cpu_seconds()
        return out

    arms = {}
    arms["serial-nsg"] = arm(
        lambda: build_nsg(
            data, degree=degree, knn=degree, search_len=40,
            build_engine="serial",
        ),
        None,
    )
    rec_nsg = BuildCostRecorder()
    arms["batched-nsg"] = arm(
        lambda: build_nsg(
            data, degree=degree, knn=degree, search_len=40,
            build_engine="batched", cost=rec_nsg,
        ),
        rec_nsg,
    )
    rec_cagra = BuildCostRecorder()
    arms["cagra"] = arm(
        lambda: build_cagra(
            data, degree=degree, seed=build_seed, cost=rec_cagra
        ),
        rec_cagra,
    )

    serial_s = arms["serial-nsg"]["seconds"]
    cagra_s = arms["cagra"]["seconds"]
    speedup = serial_s / cagra_s if cagra_s > 0 else float("inf")
    recall_gap = arms["serial-nsg"]["recall"] - arms["cagra"]["recall"]
    lo, hi = CYCLES_BAND
    cycles_ok = all(
        lo <= arms[a]["modeled_device_cycles"] <= hi
        for a in ("batched-nsg", "cagra")
    )
    return {
        "config": {
            "n": n,
            "dim": dim,
            "k": k,
            "degree": degree,
            "num_queries": num_queries,
            "queue": queue,
            "data_seed": data_seed,
            "build_seed": build_seed,
        },
        "arms": arms,
        "speedup": round(speedup, 2),
        "recall_gap": round(recall_gap, 6),
        "min_speedup": min_speedup,
        "max_recall_gap": max_recall_gap,
        "cycles_band": list(CYCLES_BAND),
        "cycles_band_ok": cycles_ok,
        "passed": (
            speedup >= min_speedup
            and recall_gap <= max_recall_gap
            and cycles_ok
        ),
    }


def format_cagra_result(result: dict, mode: str) -> str:
    cfg = result["config"]
    lines = [
        f"Three-way build race: serial NSG vs batched NSG vs CAGRA ({mode})",
        f"  dataset       : synthetic n={cfg['n']} d={cfg['dim']} "
        f"degree={cfg['degree']}",
    ]
    for name, a in result["arms"].items():
        cyc = a.get("modeled_device_cycles")
        cyc_txt = f", {cyc:.3g} modeled cycles" if cyc is not None else ""
        lines.append(
            f"  {name:<13} : {a['seconds']:.2f}s "
            f"(search recall {a['recall']:.4f}{cyc_txt})"
        )
    lines += [
        f"  cagra speedup : {result['speedup']:.2f}x over serial NSG "
        f"(required >= {result['min_speedup']:.1f}x)",
        f"  recall gap    : {result['recall_gap']:+.4f} "
        f"(allowed <= {result['max_recall_gap']:.2f})",
        f"  cycles band   : {'ok' if result['cycles_band_ok'] else 'VIOLATED'}",
        f"  verdict       : {'PASS' if result['passed'] else 'FAIL'}",
    ]
    return "\n".join(lines)


def format_result(result: dict, mode: str) -> str:
    cfg = result["config"]
    lines = [
        f"Batched NN-descent construction vs serial builder ({mode})",
        f"  dataset       : synthetic n={cfg['n']} d={cfg['dim']} k={cfg['k']}",
        f"  exact kNN     : {result['exact_knn_seconds']:.2f}s (recall reference)",
        f"  serial        : {result['serial_seconds']:.2f}s "
        f"(graph recall {result['serial_recall']:.4f})",
        f"  batched       : {result['batched_seconds']:.2f}s "
        f"(graph recall {result['batched_recall']:.4f})",
        f"  speedup       : {result['speedup']:.2f}x "
        f"(required >= {result['min_speedup']:.1f}x)",
        f"  recall gap    : {result['recall_gap']:+.4f} "
        f"(allowed <= {result['max_recall_gap']:.2f})",
        f"  verdict       : {'PASS' if result['passed'] else 'FAIL'}",
    ]
    return "\n".join(lines)


def write_artifact(result: dict, mode: str, name: str = "BENCH_build.json") -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    payload = dict(result)
    payload["mode"] = mode
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


# -- pytest entry point (smoke-sized) ----------------------------------------


def test_build_speed():
    result = run_build_race(**SMOKE)
    emit_report("bench_build_speed", format_result(result, "smoke"))
    write_artifact(result, "smoke")
    assert result["speedup"] >= result["min_speedup"], (
        f"build speedup {result['speedup']:.2f}x below the "
        f"{result['min_speedup']:.1f}x gate"
    )
    assert result["recall_gap"] <= result["max_recall_gap"], (
        f"batched graph recall trails serial by {result['recall_gap']:.4f} "
        f"(allowed {result['max_recall_gap']:.2f})"
    )


def test_cagra_build_race():
    result = run_cagra_race(**CAGRA_SMOKE)
    emit_report("bench_cagra_race", format_cagra_result(result, "smoke"))
    write_artifact(result, "smoke", name="BENCH_cagra.json")
    assert result["speedup"] >= result["min_speedup"], (
        f"CAGRA speedup {result['speedup']:.2f}x over serial NSG below "
        f"the {result['min_speedup']:.1f}x gate"
    )
    assert result["recall_gap"] <= result["max_recall_gap"], (
        f"CAGRA search recall trails serial NSG by "
        f"{result['recall_gap']:.4f} (allowed {result['max_recall_gap']:.2f})"
    )
    assert result["cycles_band_ok"], (
        "modeled build cycles outside the sanity band "
        f"{result['cycles_band']}"
    )


# -- CLI entry point ----------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Race batched NN-descent construction against the serial builder"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast gate (<60 s): speedup >= 1.5x at n=2000",
    )
    parser.add_argument("--data-seed", type=int, default=42)
    parser.add_argument("--build-seed", type=int, default=3)
    args = parser.parse_args(argv)
    params = dict(SMOKE if args.smoke else FULL)
    mode = "smoke" if args.smoke else "full"
    result = run_build_race(
        data_seed=args.data_seed, build_seed=args.build_seed, **params
    )
    emit_report("bench_build_speed", format_result(result, mode))
    path = write_artifact(result, mode)
    print(f"[artifact written to {path}]")

    cagra_params = dict(CAGRA_SMOKE if args.smoke else CAGRA_FULL)
    cagra = run_cagra_race(
        data_seed=args.data_seed, build_seed=args.build_seed, **cagra_params
    )
    emit_report("bench_cagra_race", format_cagra_result(cagra, mode))
    cagra_path = write_artifact(cagra, mode, name="BENCH_cagra.json")
    print(f"[artifact written to {cagra_path}]")
    return 0 if (result["passed"] and cagra["passed"]) else 1


if __name__ == "__main__":
    raise SystemExit(main())
