"""Vectorized NN-descent construction vs the serial reference builder.

The construction tentpole: rewriting NN-descent's local join as blocked
fused distance calls over candidate-pair tiles should cut build time by
an integer factor while keeping graph recall (fraction of true kNN edges
recovered) within a small tolerance of the serial builder.  This
benchmark races ``build_engine="serial"`` against ``"batched"`` on the
same synthetic dataset, gates on both speedup and recall gap, and
records the outcome in ``benchmarks/results/BENCH_build.json``.

Run directly::

    PYTHONPATH=src python -m benchmarks.bench_build_speed --smoke  # <60 s gate
    PYTHONPATH=src python -m benchmarks.bench_build_speed          # full (n=20k, d=64)

or via pytest (smoke-sized)::

    PYTHONPATH=src python -m pytest benchmarks/bench_build_speed.py -x -q

The full run takes a few minutes: the serial builder alone needs ~90 s
at n=20k on a laptop core.
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

try:
    from _common import RESULTS_DIR, emit_report
except ImportError:  # executed as `python -m benchmarks.bench_build_speed`
    from benchmarks._common import RESULTS_DIR, emit_report

from repro.eval import sweep_build_engines
from repro.graphs.bruteforce_knn import knn_neighbors

#: Smoke gate: batched must clearly beat serial with a near-equal graph.
SMOKE = dict(n=2000, dim=32, k=10, min_speedup=1.5, max_recall_gap=0.05)
#: Full acceptance run: >= 5x at n=20k, d=64, k=10, recall within 0.02.
FULL = dict(n=20_000, dim=64, k=10, min_speedup=5.0, max_recall_gap=0.02)


def run_build_race(
    n: int,
    dim: int,
    k: int,
    min_speedup: float,
    max_recall_gap: float,
    data_seed: int = 42,
    build_seed: int = 3,
) -> dict:
    """Build the kNN graph under both engines and compare time + recall."""
    rng = np.random.default_rng(data_seed)
    data = rng.standard_normal((n, dim)).astype(np.float32)
    start = time.perf_counter()
    exact = knn_neighbors(data, k)
    exact_seconds = time.perf_counter() - start

    points = sweep_build_engines(
        data, k=k, engines=("serial", "batched"), seed=build_seed, exact=exact
    )
    serial, batched = points["serial"], points["batched"]
    speedup = (
        serial.extra["build_seconds"] / batched.extra["build_seconds"]
        if batched.extra["build_seconds"] > 0
        else float("inf")
    )
    recall_gap = serial.recall - batched.recall
    return {
        "config": {
            "n": n,
            "dim": dim,
            "k": k,
            "data_seed": data_seed,
            "build_seed": build_seed,
        },
        "exact_knn_seconds": round(exact_seconds, 4),
        "serial_seconds": round(serial.extra["build_seconds"], 4),
        "batched_seconds": round(batched.extra["build_seconds"], 4),
        "serial_recall": round(serial.recall, 6),
        "batched_recall": round(batched.recall, 6),
        "speedup": round(speedup, 2),
        "recall_gap": round(recall_gap, 6),
        "min_speedup": min_speedup,
        "max_recall_gap": max_recall_gap,
        "passed": speedup >= min_speedup and recall_gap <= max_recall_gap,
    }


def format_result(result: dict, mode: str) -> str:
    cfg = result["config"]
    lines = [
        f"Batched NN-descent construction vs serial builder ({mode})",
        f"  dataset       : synthetic n={cfg['n']} d={cfg['dim']} k={cfg['k']}",
        f"  exact kNN     : {result['exact_knn_seconds']:.2f}s (recall reference)",
        f"  serial        : {result['serial_seconds']:.2f}s "
        f"(graph recall {result['serial_recall']:.4f})",
        f"  batched       : {result['batched_seconds']:.2f}s "
        f"(graph recall {result['batched_recall']:.4f})",
        f"  speedup       : {result['speedup']:.2f}x "
        f"(required >= {result['min_speedup']:.1f}x)",
        f"  recall gap    : {result['recall_gap']:+.4f} "
        f"(allowed <= {result['max_recall_gap']:.2f})",
        f"  verdict       : {'PASS' if result['passed'] else 'FAIL'}",
    ]
    return "\n".join(lines)


def write_artifact(result: dict, mode: str) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_build.json")
    payload = dict(result)
    payload["mode"] = mode
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


# -- pytest entry point (smoke-sized) ----------------------------------------


def test_build_speed():
    result = run_build_race(**SMOKE)
    emit_report("bench_build_speed", format_result(result, "smoke"))
    write_artifact(result, "smoke")
    assert result["speedup"] >= result["min_speedup"], (
        f"build speedup {result['speedup']:.2f}x below the "
        f"{result['min_speedup']:.1f}x gate"
    )
    assert result["recall_gap"] <= result["max_recall_gap"], (
        f"batched graph recall trails serial by {result['recall_gap']:.4f} "
        f"(allowed {result['max_recall_gap']:.2f})"
    )


# -- CLI entry point ----------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Race batched NN-descent construction against the serial builder"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast gate (<60 s): speedup >= 1.5x at n=2000",
    )
    parser.add_argument("--data-seed", type=int, default=42)
    parser.add_argument("--build-seed", type=int, default=3)
    args = parser.parse_args(argv)
    params = dict(SMOKE if args.smoke else FULL)
    mode = "smoke" if args.smoke else "full"
    result = run_build_race(
        data_seed=args.data_seed, build_seed=args.build_seed, **params
    )
    emit_report("bench_build_speed", format_result(result, mode))
    path = write_artifact(result, mode)
    print(f"[artifact written to {path}]")
    return 0 if result["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
