"""Fig. 14 — out-of-GPU-memory datasets via 1-bit random projections.

MNIST analogue searched on a TITAN X (the paper's smallest-memory card).
Per hash width h in {32..512}: compress to h-bit signatures, build the
proximity graph over Hamming space, search with SONG, measure recall
against the *float-space* ground truth.  Expected shape: recall grows
with h; wide codes approach the full-precision run; narrow codes trade
recall for cheaper distances (higher QPS).

Both arms use an exact kNN graph (degree 16) so the only difference is
the representation.
"""

import numpy as np

from _common import cached_graph, emit_report
from repro import GpuSongIndex
from repro.core.config import SearchConfig
from repro.eval import batch_recall
from repro.eval.report import format_table
from repro.graphs.bruteforce_knn import build_knn_graph
from repro.graphs.storage import FixedDegreeGraph
from repro.hashing import HammingSpace, SignRandomProjection

BITS = (32, 64, 128, 256, 512)
K = 10
DEGREE = 16
QUEUE = 150


def _hamming_knn_graph(space: HammingSpace, degree: int) -> FixedDegreeGraph:
    sigs = space.signatures
    n = len(sigs)
    adjacency = []
    for v in range(n):
        d = space.batch_distance(sigs[v], sigs)
        d[v] = np.inf
        adjacency.append(np.argsort(d, kind="stable")[:degree].tolist())
    return FixedDegreeGraph.from_adjacency(adjacency, degree=degree)


def _run(assets):
    ds = assets.dataset("mnist8m")
    gt = ds.ground_truth(K)
    sat_queries = np.tile(ds.queries, (4, 1))
    sat_gt = np.tile(gt, (4, 1))
    cfg = SearchConfig(
        k=K, queue_size=QUEUE, selected_insertion=True, visited_deletion=True
    )

    rows, curves = [], {}
    # Full-precision arm.
    graph = cached_graph(
        "knn", ds.data, lambda: build_knn_graph(ds.data, DEGREE),
        graph_type="knn", build_engine="serial", degree=DEGREE,
    )
    gpu = GpuSongIndex(graph, ds.data, device="titanx")
    results, timing = gpu.search_batch(sat_queries, cfg)
    recall = batch_recall(results, sat_gt)
    qps = timing.qps(len(sat_queries))
    curves["original"] = (recall, qps, ds.size_bytes())
    rows.append(["original", f"{ds.dim}d float", f"{recall:.3f}", f"{qps:,.0f}",
                 f"{ds.size_bytes() / 1024:.0f} KB"])

    for bits in BITS:
        rp = SignRandomProjection(ds.dim, num_bits=bits, seed=0)
        sig_data = rp.transform(ds.data)
        sig_queries = rp.transform(sat_queries)
        space = HammingSpace(sig_data)
        hgraph = _hamming_knn_graph(space, DEGREE)
        hgpu = GpuSongIndex(hgraph, sig_data, device="titanx")
        results, timing = hgpu.search_batch(
            sig_queries, cfg, distance_fn=space.batch_distance
        )
        recall = batch_recall(results, sat_gt)
        qps = timing.qps(len(sig_queries))
        size = space.memory_bytes()
        curves[bits] = (recall, qps, size)
        rows.append(
            [f"Hash-{bits}", f"{bits} bits", f"{recall:.3f}", f"{qps:,.0f}",
             f"{size / 1024:.0f} KB"]
        )

    report = format_table(
        "Fig. 14 analogue: hashed search on the MNIST analogue (TITAN X)",
        ["variant", "repr", f"recall@{K}", "QPS", "dataset size"],
        rows,
    )
    emit_report("fig14_hashing", report)
    return curves


def test_fig14(benchmark, assets):
    curves = benchmark.pedantic(_run, args=(assets,), rounds=1, iterations=1)
    recalls = [curves[b][0] for b in BITS]
    # Recall improves with more bits (allow small non-monotonic jitter).
    assert recalls[-1] > recalls[0] + 0.1
    assert all(b <= a + 0.08 for a, b in zip(recalls[::-1], recalls[::-1][1:]))
    # Wide codes approach full precision.
    assert curves[512][0] > curves["original"][0] - 0.25
    # Hashed distances are cheaper than full-precision ones, so every
    # hashed variant at least matches the original's throughput (the
    # narrow widths differ little from each other: at ≤16 words the
    # kernel is maintenance-bound, not distance-bound).
    for bits in BITS:
        assert curves[bits][1] > curves["original"][1]
    assert curves[32][1] > 0.85 * curves[512][1]
    # Compression: every hashed variant is far smaller than the original.
    for bits in BITS:
        assert curves[bits][2] * 3 < curves["original"][2]
