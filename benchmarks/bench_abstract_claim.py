"""The abstract's headline: "SONG accelerated by 1-GPU can obtain about
3-11x speedup over HNSW on a 16-thread CPU server."

The paper assumes HNSW scales linearly with threads (inter-query
parallelism), so the 16-thread baseline is the single-thread work model
divided by 16.  Expected shape: the 1-GPU vs 16-thread ratio lands in the
low single digits to low tens across datasets.
"""

from _common import emit_report
from repro.eval.report import format_table
from repro.eval.sweep import qps_at_recall

DATASETS = ("sift", "glove200", "nytimes", "gist", "uqv")
THREADS = 16
RECALLS = (0.7, 0.8, 0.9)


def _run(assets):
    rows, ratios = [], []
    for name in DATASETS:
        song = assets.song_sweep(name, 10)
        hnsw = assets.hnsw_sweep(name, 10)
        row = [name]
        for r in RECALLS:
            s, h = qps_at_recall(song, r), qps_at_recall(hnsw, r)
            if s is None or h is None:
                row.append(None)
            else:
                ratio = s / (h * THREADS)
                ratios.append(ratio)
                row.append(f"{ratio:.1f}x")
        rows.append(row)
    report = format_table(
        f"1 simulated V100 vs {THREADS}-thread HNSW server (top-10)",
        ["dataset"] + [f"r={r}" for r in RECALLS],
        rows,
    )
    emit_report("abstract_claim_gpu_vs_server", report)
    return ratios


def test_abstract_claim(benchmark, assets):
    ratios = benchmark.pedantic(_run, args=(assets,), rounds=1, iterations=1)
    assert ratios, "no comparable recall levels"
    # Paper: ~3-11x. Accept the same order of magnitude: every ratio > 1
    # (the GPU beats the whole server) and the median in low single digits.
    assert min(ratios) > 1.0
    ratios.sort()
    median = ratios[len(ratios) // 2]
    assert 1.5 < median < 15.0, f"median ratio {median:.1f} out of band"
