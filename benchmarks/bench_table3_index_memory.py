"""Table III — index memory: SONG's graph vs Faiss's inverted file.

Paper: the graph index is a few times larger than the IVFPQ index
(e.g. SIFT 123 MB vs 32 MB) but still small relative to GPU memory.
At the paper's scale (≥1M points) per-point storage dominates: the graph
costs ``degree × 4`` bytes/point against IVFPQ's ``m + 4`` bytes/point.
At laptop scale IVFPQ's fixed codebooks are visible, so the bench reports
both the raw totals and the per-point marginal costs, and asserts the
paper's ordering on the latter (plus a paper-scale extrapolation).
"""

from _common import emit_report
from repro.eval.report import format_table
from repro.tiered import TieredConfig, TieredIndex

DATASETS = ("sift", "glove200", "nytimes", "gist", "uqv")
PAPER_N = 1_000_000

#: Out-of-core tier sized as in bench_outofcore: 512-bit signatures.
TIER = TieredConfig(codec="bits", num_bits=512, page_rows=16, cache_pages=2)


def _run(assets):
    rows = []
    stats = {}
    for name in DATASETS:
        ds = assets.dataset(name)
        graph = assets.nsw(name)
        ivf = assets.ivfpq(name)
        song_total = assets.gpu_index(name).index_memory_bytes()
        faiss_total = ivf.memory_bytes()
        song_pp = song_total / ds.num_data
        code_bytes = sum(int(c.nbytes) for c in ivf.codes)
        id_bytes = sum(4 * len(ids) for ids in ivf.lists)
        faiss_pp = (code_bytes + id_bytes) / ivf.ntotal
        song_paper = song_pp * PAPER_N
        faiss_paper = faiss_pp * PAPER_N + (faiss_total - code_bytes - id_bytes)
        # Out-of-core tier: what stays device-resident when the
        # full-precision vectors move host-side (codes + graph + page
        # cache; the cache is a fixed cost, so only codes + graph scale).
        tiered = TieredIndex(graph, ds.data, TIER)
        full_resident = song_total + ds.size_bytes()
        tier_cache = tiered.ledger.reservations["page_cache"]
        tier_pp = (tiered.resident_bytes - tier_cache) / ds.num_data
        tier_paper = tier_pp * PAPER_N + tier_cache
        full_pp = full_resident / ds.num_data
        stats[name] = (
            song_pp, faiss_pp, song_paper, faiss_paper, ds.size_bytes(),
            full_resident, tiered.resident_bytes, full_pp, tier_paper,
        )
        rows.append(
            [
                name,
                f"{song_total / 1024:.0f} KB",
                f"{faiss_total / 1024:.0f} KB",
                f"{full_resident / 1024:.0f} KB",
                f"{tiered.resident_bytes / 1024:.0f} KB",
                f"{song_pp:.0f} B",
                f"{faiss_pp:.0f} B",
                f"{tier_pp:.0f} B",
                f"{song_paper / 1024 ** 2:.0f} MB",
                f"{faiss_paper / 1024 ** 2:.0f} MB",
                f"{tier_paper / 1024 ** 2:.0f} MB",
            ]
        )
    report = format_table(
        "Table III analogue: index memory (totals, per-point, 1M-point scale)",
        ["dataset", "SONG", "IVFPQ", "full res", "tier res",
         "SONG B/pt", "IVFPQ B/pt", "tier B/pt",
         "SONG @1M", "IVFPQ @1M", "tier @1M"],
        rows,
    )
    emit_report("table3_index_memory", report)
    return stats


def test_table3(benchmark, assets):
    stats = benchmark.pedantic(_run, args=(assets,), rounds=1, iterations=1)
    for name, (
        song_pp, faiss_pp, song_paper, faiss_paper, data_b,
        full_resident, tier_resident, full_pp, tier_paper,
    ) in stats.items():
        # Per point, the graph outweighs the inverted file — the paper's
        # Table III ordering — but only by a small factor.
        assert song_pp > faiss_pp, f"{name}: graph should cost more per point"
        assert song_pp < 10 * faiss_pp, f"{name}: but only a few times more"
        # At the paper's 1M-point scale the ordering holds for the totals.
        assert song_paper > faiss_paper
        # Graph stays far below GPU memory (paper: hundreds of MB on 32 GB).
        assert song_paper < 1024**3
        # The compressed tier's resident set undercuts keeping the
        # full-precision vectors on device, here and extrapolated to 1M
        # points — the headroom the out-of-core tier spends on datasets
        # larger than the card.
        assert tier_resident < full_resident, f"{name}: tier should shrink"
        assert tier_paper < full_pp * PAPER_N, (
            f"{name}: tier @1M should undercut full precision"
        )
