"""Table III — index memory: SONG's graph vs Faiss's inverted file.

Paper: the graph index is a few times larger than the IVFPQ index
(e.g. SIFT 123 MB vs 32 MB) but still small relative to GPU memory.
At the paper's scale (≥1M points) per-point storage dominates: the graph
costs ``degree × 4`` bytes/point against IVFPQ's ``m + 4`` bytes/point.
At laptop scale IVFPQ's fixed codebooks are visible, so the bench reports
both the raw totals and the per-point marginal costs, and asserts the
paper's ordering on the latter (plus a paper-scale extrapolation).
"""

from _common import emit_report
from repro.eval.report import format_table

DATASETS = ("sift", "glove200", "nytimes", "gist", "uqv")
PAPER_N = 1_000_000


def _run(assets):
    rows = []
    stats = {}
    for name in DATASETS:
        ds = assets.dataset(name)
        graph = assets.nsw(name)
        ivf = assets.ivfpq(name)
        song_total = assets.gpu_index(name).index_memory_bytes()
        faiss_total = ivf.memory_bytes()
        song_pp = song_total / ds.num_data
        code_bytes = sum(int(c.nbytes) for c in ivf.codes)
        id_bytes = sum(4 * len(ids) for ids in ivf.lists)
        faiss_pp = (code_bytes + id_bytes) / ivf.ntotal
        song_paper = song_pp * PAPER_N
        faiss_paper = faiss_pp * PAPER_N + (faiss_total - code_bytes - id_bytes)
        stats[name] = (song_pp, faiss_pp, song_paper, faiss_paper, ds.size_bytes())
        rows.append(
            [
                name,
                f"{song_total / 1024:.0f} KB",
                f"{faiss_total / 1024:.0f} KB",
                f"{song_pp:.0f} B",
                f"{faiss_pp:.0f} B",
                f"{song_paper / 1024 ** 2:.0f} MB",
                f"{faiss_paper / 1024 ** 2:.0f} MB",
            ]
        )
    report = format_table(
        "Table III analogue: index memory (totals, per-point, 1M-point scale)",
        ["dataset", "SONG", "IVFPQ", "SONG B/pt", "IVFPQ B/pt",
         "SONG @1M", "IVFPQ @1M"],
        rows,
    )
    emit_report("table3_index_memory", report)
    return stats


def test_table3(benchmark, assets):
    stats = benchmark.pedantic(_run, args=(assets,), rounds=1, iterations=1)
    for name, (song_pp, faiss_pp, song_paper, faiss_paper, data_b) in stats.items():
        # Per point, the graph outweighs the inverted file — the paper's
        # Table III ordering — but only by a small factor.
        assert song_pp > faiss_pp, f"{name}: graph should cost more per point"
        assert song_pp < 10 * faiss_pp, f"{name}: but only a few times more"
        # At the paper's 1M-point scale the ordering holds for the totals.
        assert song_paper > faiss_paper
        # Graph stays far below GPU memory (paper: hundreds of MB on 32 GB).
        assert song_paper < 1024**3
