"""Generality beyond Fig. 12: SONG over the whole graph family.

The paper argues SONG "can accelerate most of the algorithms in the
graph-based ANN family" and demonstrates NSG; here every implemented
graph type (NSW, HNSW layer-0, NSG, DPG, exact kNN) is searched by the
same GPU kernel.  Expected shape: every index reaches high recall with a
large enough queue, and the GPU speedup over the CPU work model is the
same order of magnitude regardless of which graph is underneath.
"""

from _common import cached_graph, emit_report, with_saturated_queries
from repro import GpuSongIndex, build_nsg
from repro.core.cpu_song import CpuSongIndex
from repro.core.machine import DEFAULT_CPU
from repro.eval import sweep_cpu_song, sweep_gpu_song
from repro.eval.report import format_table
from repro.eval.sweep import qps_at_recall
from repro.graphs import build_knn_graph
from repro.graphs.dpg import build_dpg

QUEUES = (20, 40, 80, 160, 320)


def _run(assets):
    ds = assets.dataset("sift")
    sat = with_saturated_queries(ds)
    graphs = {
        "NSW": assets.nsw("sift"),
        "HNSW-L0": assets.hnsw("sift").base_layer_graph(),
        "NSG": cached_graph(
            "nsg", ds.data,
            lambda: build_nsg(ds.data, degree=16, knn=16, search_len=40),
            graph_type="nsg", build_engine="serial",
            degree=16, knn=16, search_len=40,
        ),
        "DPG": cached_graph(
            "dpg", ds.data, lambda: build_dpg(ds.data, degree=16),
            graph_type="dpg", build_engine="serial", degree=16, knn=32,
        ),
        "kNN": cached_graph(
            "knn", ds.data, lambda: build_knn_graph(ds.data, 16),
            graph_type="knn", build_engine="serial", degree=16,
        ),
    }
    rows, out = [], {}
    for name, graph in graphs.items():
        gpu = GpuSongIndex(graph, ds.data)
        cpu = CpuSongIndex(graph, ds.data, model=DEFAULT_CPU)
        gpu_pts = sweep_gpu_song(sat, gpu, QUEUES, k=10)
        cpu_pts = sweep_cpu_song(ds, cpu, QUEUES, k=10)
        best = max(p.recall for p in gpu_pts)
        g09 = qps_at_recall(gpu_pts, 0.9)
        c09 = qps_at_recall(cpu_pts, 0.9)
        speedup = None if (g09 is None or c09 is None) else g09 / c09
        out[name] = (best, speedup)
        rows.append(
            [name, f"{best:.3f}",
             "N/A" if g09 is None else f"{g09:,.0f}",
             "N/A" if speedup is None else f"{speedup:.0f}x"]
        )
    emit_report(
        "generality_graphs",
        format_table(
            "SONG over the graph family (SIFT, top-10)",
            ["graph", "best recall", "GPU QPS @0.9", "GPU/CPU @0.9"],
            rows,
        ),
    )
    return out


def test_generality(benchmark, assets):
    out = benchmark.pedantic(_run, args=(assets,), rounds=1, iterations=1)
    for name, (best, speedup) in out.items():
        assert best > 0.9, f"{name}: best recall {best}"
        if speedup is not None:
            assert speedup > 10, f"{name}: GPU speedup only {speedup:.1f}x"
