"""Fig. 11 — query batch size impact (SIFT, top-100).

Paper: QPS climbs with batch size (transfer overhead amortizes, the GPU
fills up) and saturates around 100k queries; 1m is no better.  Scaled
here: batches from 25 to 3200 queries, saturation expected once the
batch exceeds the simulated device's resident-warp capacity.
"""

import numpy as np

from _common import emit_report
from repro.core.config import SearchConfig
from repro.eval.report import format_table

BATCHES = (25, 100, 400, 1600, 3200)


def _run(assets):
    ds = assets.dataset("sift")
    gpu = assets.gpu_index("sift")
    cfg = SearchConfig(
        k=100, queue_size=150, selected_insertion=True, visited_deletion=True
    )
    rows, qps = [], {}
    for b in BATCHES:
        reps = -(-b // ds.num_queries)
        queries = np.tile(ds.queries, (reps, 1))[:b]
        _, timing = gpu.search_batch(queries, cfg)
        qps[b] = timing.qps(b)
        rows.append(
            [
                b,
                f"{qps[b]:,.0f}",
                f"{1e3 * timing.htod_seconds:.3f} ms",
                f"{1e3 * timing.kernel_seconds:.3f} ms",
            ]
        )
    report = format_table(
        "Fig. 11 analogue: batch size vs throughput (SIFT, top-100)",
        ["batch", "QPS", "HtoD", "kernel"],
        rows,
    )
    emit_report("fig11_batch_size", report)
    return qps


def test_fig11(benchmark, assets):
    qps = benchmark.pedantic(_run, args=(assets,), rounds=1, iterations=1)
    # Throughput grows with batch size...
    assert qps[100] > qps[25]
    assert qps[1600] > qps[100]
    # ...and saturates: the last doubling buys little.
    assert qps[3200] < qps[1600] * 1.5
    assert qps[3200] >= qps[1600] * 0.75
