"""Shared benchmark assets.

Graph and index construction is expensive relative to the searches, so
everything is built once per session and cached by key.  Benchmarks are
sized laptop-scale; the *shapes* of the resulting curves — not absolute
numbers — are what reproduce the paper (see EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import GpuSongIndex, HNSWIndex, build_nsw
from repro.baselines import IVFPQIndex
from repro.core.cpu_song import CpuSongIndex
from repro.data import Dataset, make_dataset


class BenchAssets:
    """Lazily-built, cached datasets/graphs/indexes for all benchmarks."""

    #: Laptop-scale sizes per dataset analogue.
    SIZES = {
        "nytimes": (2500, 100),
        "sift": (3000, 100),
        "glove200": (3000, 100),
        "uqv": (3000, 100),
        "gist": (2000, 100),
        "mnist8m": (2500, 100),
    }

    def __init__(self) -> None:
        self._cache = {}

    def dataset(self, name: str) -> Dataset:
        key = ("dataset", name)
        if key not in self._cache:
            n, q = self.SIZES[name]
            self._cache[key] = make_dataset(name, n=n, num_queries=q, seed=0)
        return self._cache[key]

    def saturated_queries(self, name: str, factor: int = 4) -> np.ndarray:
        """Query batch tiled to saturate the simulated device (paper: 10k)."""
        ds = self.dataset(name)
        return np.tile(ds.queries, (factor, 1))

    def nsw(self, name: str):
        key = ("nsw", name)
        if key not in self._cache:
            from _common import cached_graph

            ds = self.dataset(name)
            self._cache[key] = cached_graph(
                "nsw",
                ds.data,
                lambda: build_nsw(ds.data, m=8, ef_construction=48, seed=7),
                graph_type="nsw",
                build_engine="serial",
                m=8,
                ef_construction=48,
                seed=7,
            )
        return self._cache[key]

    def gpu_index(self, name: str, device: str = "v100") -> GpuSongIndex:
        key = ("gpu", name, device)
        if key not in self._cache:
            self._cache[key] = GpuSongIndex(
                self.nsw(name), self.dataset(name).data, device=device
            )
        return self._cache[key]

    def cpu_index(self, name: str) -> CpuSongIndex:
        key = ("cpu", name)
        if key not in self._cache:
            self._cache[key] = CpuSongIndex(self.nsw(name), self.dataset(name).data)
        return self._cache[key]

    def hnsw(self, name: str) -> HNSWIndex:
        key = ("hnsw", name)
        if key not in self._cache:
            ds = self.dataset(name)
            self._cache[key] = HNSWIndex(
                ds.data, m=8, ef_construction=48, seed=1
            ).build()
        return self._cache[key]

    @staticmethod
    def _pq_m(dim: int) -> int:
        """Largest sub-quantizer count ≤ 32 that divides the dimension."""
        for m in (32, 28, 25, 24, 20, 16, 14, 10, 8):
            if dim % m == 0:
                return m
        return 4

    def ivfpq(self, name: str) -> IVFPQIndex:
        key = ("ivfpq", name)
        if key not in self._cache:
            ds = self.dataset(name)
            idx = IVFPQIndex(
                ds.dim, nlist=32, m=self._pq_m(ds.dim), ksub=256, seed=0
            ).train(ds.data)
            idx.add(ds.data)
            self._cache[key] = idx
        return self._cache[key]

    # -- cached standard sweeps (shared by Fig. 5 / Table II / Fig. 6) -----

    QUEUE_GRID = (10, 20, 40, 80, 160, 320)
    NPROBE_GRID = (1, 2, 4, 8, 16, 32)

    def song_sweep(self, name: str, k: int):
        """SONG QPS-recall sweep on the saturated batch, standard grid."""
        from repro.data.datasets import Dataset
        from repro.eval import sweep_gpu_song

        key = ("sweep-song", name, k)
        if key not in self._cache:
            ds = self.dataset(name)
            sat = Dataset(
                name=name, data=ds.data, queries=self.saturated_queries(name)
            )
            self._cache[key] = sweep_gpu_song(
                sat, self.gpu_index(name), self.QUEUE_GRID, k=k
            )
        return self._cache[key]

    def hnsw_sweep(self, name: str, k: int):
        from repro.eval import sweep_hnsw

        key = ("sweep-hnsw", name, k)
        if key not in self._cache:
            self._cache[key] = sweep_hnsw(
                self.dataset(name), self.hnsw(name), self.QUEUE_GRID, k=k
            )
        return self._cache[key]

    def ivfpq_sweep(self, name: str, k: int):
        from repro.eval import sweep_ivfpq

        key = ("sweep-ivfpq", name, k)
        if key not in self._cache:
            self._cache[key] = sweep_ivfpq(
                self.dataset(name), self.ivfpq(name), self.NPROBE_GRID, k=k
            )
        return self._cache[key]


@pytest.fixture(scope="session")
def assets() -> BenchAssets:
    return BenchAssets()
