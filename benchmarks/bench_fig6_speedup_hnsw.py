"""Fig. 6 — SONG speedup over single-thread HNSW vs recall (top-10/100).

Paper: 50–180x across datasets, larger on the high-dimensional GIST
(more parallelizable distance work per hop).  Expected shape here:
a large (tens-of-x) ratio across the recall range, with the
highest-dimensional dataset showing the biggest speedup.
"""

import pytest

from _common import emit_report
from repro.eval.report import format_table
from repro.eval.sweep import qps_at_recall

DATASETS = ("sift", "glove200", "nytimes", "gist", "uqv")
RECALLS = (0.6, 0.7, 0.8, 0.9)


def _run(assets, k):
    speedups = {}
    for name in DATASETS:
        song = assets.song_sweep(name, k)
        hnsw = assets.hnsw_sweep(name, k)
        row = []
        for r in RECALLS:
            s, h = qps_at_recall(song, r), qps_at_recall(hnsw, r)
            row.append(None if (s is None or h is None) else s / h)
        speedups[name] = row
    rows = [
        [name] + [None if v is None else f"{v:.0f}x" for v in vals]
        for name, vals in speedups.items()
    ]
    report = format_table(
        f"Fig. 6 analogue: SONG speedup over 1-thread HNSW (top-{k})",
        ["dataset"] + [f"r={r}" for r in RECALLS],
        rows,
    )
    emit_report(f"fig6_speedup_hnsw_top{k}", report)
    return speedups


@pytest.mark.parametrize("k", [10, 100])
def test_fig6(benchmark, assets, k):
    speedups = benchmark.pedantic(_run, args=(assets, k), rounds=1, iterations=1)
    defined = [v for row in speedups.values() for v in row if v is not None]
    assert defined, "no overlapping recall levels"
    assert min(defined) > 5, "SONG should be many times faster than HNSW"
    assert max(defined) > 25, "peak speedup should be tens of x"
    # GIST (highest dim) should show a larger speedup than SIFT (lowest dim)
    gist = [v for v in speedups["gist"] if v is not None]
    sift = [v for v in speedups["sift"] if v is not None]
    if gist and sift:
        assert max(gist) > 0.8 * max(sift)
