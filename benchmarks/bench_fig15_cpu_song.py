"""Fig. 15 — SONG's engineered CPU implementation vs HNSW (top-10).

Paper: on NYTimes and UQ_V, the tuned CPU SONG outperforms HNSW.
Expected shape: CPU-SONG's QPS-recall curve sits above HNSW's at matched
recall (both single-thread, both costed with the same work model; SONG's
advantage comes from batched distance evaluation and bounded
structures).
"""

import pytest

from _common import QUEUE_GRID, emit_report
from repro.eval import format_curve, sweep_cpu_song, sweep_hnsw
from repro.eval.sweep import qps_at_recall


def _run(assets, name):
    ds = assets.dataset(name)
    song_pts = sweep_cpu_song(ds, assets.cpu_index(name), QUEUE_GRID, k=10)
    hnsw_pts = sweep_hnsw(ds, assets.hnsw(name), QUEUE_GRID, k=10)
    report = "\n".join(
        [
            f"== {name}: top-10, single-thread CPU ==",
            format_curve("SONG-cpu", song_pts),
            format_curve("HNSW", hnsw_pts),
        ]
    )
    emit_report(f"fig15_{name}", report)
    return song_pts, hnsw_pts


@pytest.mark.parametrize("name", ["nytimes", "uqv"])
def test_fig15(benchmark, assets, name):
    song_pts, hnsw_pts = benchmark.pedantic(
        _run, args=(assets, name), rounds=1, iterations=1
    )
    wins = checked = 0
    for r in (0.6, 0.7, 0.8, 0.9):
        s, h = qps_at_recall(song_pts, r), qps_at_recall(hnsw_pts, r)
        if s is not None and h is not None:
            checked += 1
            if s > h:
                wins += 1
    assert checked > 0
    assert wins == checked, f"{name}: CPU-SONG should beat HNSW at every level"
