"""Batched lockstep engine vs the serial search loop (wall clock).

The tentpole claim behind :class:`repro.core.batched.BatchedSongSearcher`:
advancing a whole query batch per round through one fused bulk-distance
call should beat the per-query Python loop by a wide margin while
returning bit-identical results.  This benchmark measures both engines on
the same synthetic dataset/graph, asserts parity, and records the speedup
into ``benchmarks/results/BENCH_batched.json``.

Run directly::

    PYTHONPATH=src python -m benchmarks.bench_batched_engine --smoke   # <60 s gate
    PYTHONPATH=src python -m benchmarks.bench_batched_engine           # full (n=20k, B=256)

or via pytest (smoke-sized)::

    PYTHONPATH=src python -m pytest benchmarks/bench_batched_engine.py -x -q
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

try:
    from _common import RESULTS_DIR, emit_report
except ImportError:  # executed as `python -m benchmarks.bench_batched_engine`
    from benchmarks._common import RESULTS_DIR, emit_report

from repro import SearchConfig, SongSearcher, build_knn_graph

#: Smoke gate: parity must hold and batched must not lose to serial.
SMOKE = dict(n=2000, dim=32, num_queries=64, k=10, queue=40, min_speedup=1.0)
#: Full acceptance run: >= 5x at B=256 on n=20k, d=64, k=10.
FULL = dict(n=20_000, dim=64, num_queries=256, k=10, queue=64, min_speedup=5.0)


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - start


def run_comparison(
    n: int,
    dim: int,
    num_queries: int,
    k: int,
    queue: int,
    min_speedup: float,
    seed: int = 0,
    graph_degree: int = 16,
) -> dict:
    """Build a kNN graph over synthetic data and race the two engines."""
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((n, dim)).astype(np.float32)
    queries = rng.standard_normal((num_queries, dim)).astype(np.float32)
    graph, build_seconds = _timed(lambda: build_knn_graph(data, graph_degree))
    searcher = SongSearcher(graph, data)
    config = SearchConfig(k=k, queue_size=max(queue, k))

    serial, serial_seconds = _timed(
        lambda: searcher.search_batch(queries, config, engine="serial")
    )
    batched, batched_seconds = _timed(
        lambda: searcher.search_batch(queries, config, engine="batched")
    )

    parity = serial == batched
    speedup = serial_seconds / batched_seconds if batched_seconds > 0 else float("inf")
    return {
        "config": {
            "n": n,
            "dim": dim,
            "num_queries": num_queries,
            "k": k,
            "queue_size": max(queue, k),
            "graph_degree": graph_degree,
            "seed": seed,
        },
        "graph_build_seconds": round(build_seconds, 4),
        "serial_seconds": round(serial_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "serial_qps": round(num_queries / serial_seconds, 1),
        "batched_qps": round(num_queries / batched_seconds, 1),
        "speedup": round(speedup, 2),
        "min_speedup": min_speedup,
        "parity": parity,
        "passed": parity and speedup >= min_speedup,
    }


def format_result(result: dict, mode: str) -> str:
    cfg = result["config"]
    lines = [
        f"Batched engine vs serial search_batch ({mode})",
        f"  dataset       : synthetic n={cfg['n']} d={cfg['dim']} "
        f"(kNN graph, degree {cfg['graph_degree']})",
        f"  batch         : B={cfg['num_queries']} k={cfg['k']} "
        f"queue={cfg['queue_size']}",
        f"  serial        : {result['serial_seconds']:.3f}s "
        f"({result['serial_qps']:,.0f} QPS)",
        f"  batched       : {result['batched_seconds']:.3f}s "
        f"({result['batched_qps']:,.0f} QPS)",
        f"  speedup       : {result['speedup']:.2f}x "
        f"(required >= {result['min_speedup']:.1f}x)",
        f"  parity        : {'bit-identical' if result['parity'] else 'MISMATCH'}",
        f"  verdict       : {'PASS' if result['passed'] else 'FAIL'}",
    ]
    return "\n".join(lines)


def write_artifact(result: dict, mode: str) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_batched.json")
    payload = dict(result)
    payload["mode"] = mode
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


# -- pytest entry point (smoke-sized) ----------------------------------------


def test_batched_engine_speedup():
    result = run_comparison(**SMOKE)
    emit_report("bench_batched_engine", format_result(result, "smoke"))
    write_artifact(result, "smoke")
    assert result["parity"], "batched results diverged from serial"
    assert result["speedup"] >= result["min_speedup"], (
        f"speedup {result['speedup']:.2f}x below the "
        f"{result['min_speedup']:.1f}x gate"
    )


# -- CLI entry point ----------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Race the batched lockstep engine against the serial loop"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast gate (<60 s): parity + speedup >= 1x at B=64",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    params = dict(SMOKE if args.smoke else FULL)
    mode = "smoke" if args.smoke else "full"
    result = run_comparison(seed=args.seed, **params)
    emit_report("bench_batched_engine", format_result(result, mode))
    path = write_artifact(result, mode)
    print(f"[artifact written to {path}]")
    return 0 if result["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
