"""Fig. 12 — generalization to NSG (SIFT, top-10).

The paper extracts the index built by NSG and runs SONG's GPU search on
it, reporting a 30–37x speedup over CPU NSG at high recall.  Here the CPU
NSG baseline is the same best-first search costed with the single-thread
CPU model, so the ratio isolates the GPU execution benefit.
"""

from _common import QUEUE_GRID, cached_graph, emit_report, with_saturated_queries
from repro import GpuSongIndex, build_nsg
from repro.core.cpu_song import CpuSongIndex
from repro.core.machine import DEFAULT_CPU
from repro.eval import format_curve, sweep_cpu_song, sweep_gpu_song
from repro.eval.sweep import qps_at_recall


def _run(assets):
    ds = assets.dataset("sift")
    nsg = cached_graph(
        "nsg", ds.data,
        lambda: build_nsg(ds.data, degree=16, knn=16, search_len=40),
        graph_type="nsg", build_engine="serial",
        degree=16, knn=16, search_len=40,
    )
    sat = with_saturated_queries(ds)
    gpu = GpuSongIndex(nsg, ds.data)
    cpu = CpuSongIndex(nsg, ds.data, model=DEFAULT_CPU)
    gpu_pts = sweep_gpu_song(sat, gpu, QUEUE_GRID, k=10)
    cpu_pts = sweep_cpu_song(ds, cpu, QUEUE_GRID, k=10)
    report = "\n".join(
        [
            "== SIFT top-10 on an NSG index ==",
            format_curve("SONG-NSG (simulated V100)", gpu_pts),
            format_curve("NSG (1 CPU thread)", cpu_pts),
        ]
    )
    emit_report("fig12_nsg", report)
    return gpu_pts, cpu_pts


def test_fig12(benchmark, assets):
    gpu_pts, cpu_pts = benchmark.pedantic(_run, args=(assets,), rounds=1, iterations=1)
    assert max(p.recall for p in gpu_pts) > 0.85, "SONG-NSG should reach high recall"
    for r in (0.8, 0.9):
        g, c = qps_at_recall(gpu_pts, r), qps_at_recall(cpu_pts, r)
        if g is not None and c is not None:
            assert g / c > 10, f"NSG speedup at r={r} only {g / c:.1f}x"
