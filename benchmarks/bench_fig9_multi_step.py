"""Fig. 9 — multi-step probing (1, 2, 4) at top-100, SIFT and GloVe200.

Paper: probing several frontier vertices per iteration wastes distance
computations on suboptimal candidates; the gap narrows in the high-recall
region where deep exploration is needed anyway.  Expected shape:
QPS(probe=1) >= QPS(probe>1) at matched queue sizes, with recall roughly
preserved (probing more can only explore more).
"""

import pytest

from _common import emit_report, with_saturated_queries
from repro.core.config import SearchConfig
from repro.eval import format_curve, sweep_gpu_song

QUEUES = (100, 200, 400)


def _run(assets, name):
    sat = with_saturated_queries(assets.dataset(name))
    gpu = assets.gpu_index(name)
    curves = {}
    sections = [f"== {name}: top-100, probe steps =="]
    for steps in (1, 2, 4):
        cfg = SearchConfig(
            k=100,
            queue_size=100,
            probe_steps=steps,
            selected_insertion=True,
            visited_deletion=True,
        )
        pts = sweep_gpu_song(sat, gpu, QUEUES, k=100, config=cfg)
        curves[steps] = pts
        sections.append(format_curve(f"SONG-Probe={steps}", pts))
    emit_report(f"fig9_{name}", "\n".join(sections))
    return curves


@pytest.mark.parametrize("name", ["sift", "glove200"])
def test_fig9(benchmark, assets, name):
    curves = benchmark.pedantic(_run, args=(assets, name), rounds=1, iterations=1)
    for steps in (2, 4):
        for p1, pp in zip(curves[1], curves[steps]):
            assert pp.qps <= p1.qps * 1.05, (
                f"{name} q={p1.param}: probe={steps} should not beat probe=1"
            )
            # probing more vertices explores at least as much of the graph
            assert pp.recall >= p1.recall - 0.05
