"""Out-of-core tier benchmark: serve a dataset ~10x device memory.

The tiered tentpole's acceptance demo, as a gated artifact.  The device
budget is shrunk (``DeviceSpec.memory_budget_gb``) until the
full-precision index is >= 10x too large to be resident, then the same
workload is served two ways:

- **full precision** — must *refuse to construct* under the budget
  (:class:`~repro.simt.memory.DeviceMemoryExceeded`), and only run when
  the documented ``allow_oversubscription`` escape hatch is set;
- **tiered** — sign-projection bit codes + packed graph stay resident
  inside the budget, traversal runs over Hamming proxies, and the exact
  re-rank fetches full-precision pages over the PCIe model, filtered
  through the LRU page cache.

Gates: the dataset-to-budget ratio is >= 10x; the tiered server meets
the p99 SLO at a load point where serial demand-fetching misses it;
saturated throughput of prefetch vs serial fetching falls inside a
pinned band; tiered recall lands within a stated floor of the
full-precision searcher on the same graph; and recall is bit-identical
with prefetching on or off (staging changes the clock, never results).
A second sweep records the recall-vs-throughput frontier over the
over-fetch grid plus a PQ-codec point, gating that deeper over-fetch
buys recall and costs throughput.  Everything runs on the virtual
clock, so ``benchmarks/results/BENCH_outofcore.json`` is
bit-deterministic.

Run directly::

    PYTHONPATH=src python -m benchmarks.bench_outofcore --smoke  # CI gate
    PYTHONPATH=src python -m benchmarks.bench_outofcore          # full

or via pytest (smoke-sized)::

    PYTHONPATH=src python -m pytest benchmarks/bench_outofcore.py -x -q
"""

from __future__ import annotations

import argparse
import json
import os
import warnings

import numpy as np

try:
    from _common import RESULTS_DIR, cached_graph, emit_report
except ImportError:  # executed as `python -m benchmarks.bench_outofcore`
    from benchmarks._common import RESULTS_DIR, cached_graph, emit_report

from repro.core.config import SearchConfig
from repro.data import make_dataset
from repro.eval import sweep_serving
from repro.eval.recall import batch_recall
from repro.serve.engine import SimulatedGpuEngine
from repro.simt.device import get_device
from repro.simt.memory import DeviceMemoryExceeded
from repro.tiered import TieredConfig, TieredIndex, TieredServeEngine

#: Smoke gate: small high-dim dataset, two load points, <60 s.
SMOKE = dict(
    n=1200,
    num_queries=24,
    slo_qps=2_000.0,
    overload_qps=20_000.0,
    num_requests=150,
)
#: Full run: larger dataset, same gate structure.
FULL = dict(
    n=4000,
    num_queries=48,
    slo_qps=2_000.0,
    overload_qps=20_000.0,
    num_requests=300,
)

#: The resident tier under test: 512-bit signatures, 16x over-fetch.
TIER = dict(codec="bits", num_bits=512, overfetch=16, page_rows=16, cache_pages=2)
#: Device budget = tiered resident set * this headroom, so the
#: full-precision index (>= 10x larger) can never fit.
BUDGET_HEADROOM = 1.05
#: Gate floor on (full-precision recall - tiered recall).
RECALL_FLOOR = 0.25
#: Pinned band for saturated prefetch/serial achieved-QPS ratio.
PREFETCH_RATIO_BAND = (2.0, 4.5)

#: Serving parameters shared by both modes.  queue_size doubles as the
#: over-fetch panel bound, so the deep frontier also feeds the re-rank.
SLO_P99_S = 0.01
BASE = dict(k=10, queue_size=200)
BATCH = dict(batch_size=8, max_batch=16)
ARRIVAL_SEED = 3

#: Recall-vs-throughput frontier: over-fetch grid + one PQ point.
OVERFETCH_GRID = (4, 8, 16)
PQ_POINT = dict(codec="pq", pq_m=48, pq_ksub=32, overfetch=16, page_rows=16, cache_pages=2)


def _assets(n: int, num_queries: int):
    dataset = make_dataset("gist", n=n, num_queries=num_queries)
    graph = cached_graph(
        "nsw-outofcore",
        dataset.data,
        lambda: build_nsw_cached(dataset.data),
        graph_type="nsw",
        build_engine="serial",
        m=8,
        ef_construction=48,
        seed=7,
    )
    return dataset, graph


def build_nsw_cached(data: np.ndarray):
    from repro.graphs import build_nsw

    return build_nsw(data, m=8, ef_construction=48, seed=7)


def _budget_device(tiered: TieredIndex):
    """The v100 with its memory shrunk to just fit the tiered set."""
    budget_gb = tiered.resident_bytes * BUDGET_HEADROOM / float(1024**3)
    return get_device("v100").with_overrides(memory_budget_gb=budget_gb)


def run_outofcore_bench(
    n: int,
    num_queries: int,
    slo_qps: float,
    overload_qps: float,
    num_requests: int,
) -> dict:
    """Serve a >=10x-over-budget dataset through the tier and gate."""
    dataset, graph = _assets(n, num_queries)
    tier = TieredConfig(**TIER)
    sizing_index = TieredIndex(graph, dataset.data, tier)
    device = _budget_device(sizing_index)
    full_bytes = sizing_index.full_precision_bytes()
    dataset_ratio = full_bytes / device.memory_bytes

    # Capacity ledger: full precision must refuse the budget, and only
    # run via the documented oversubscription escape hatch (one warning).
    fp_raises = False
    try:
        SimulatedGpuEngine(graph, dataset.data, device=device)
    except DeviceMemoryExceeded:
        fp_raises = True
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        fp_engine = SimulatedGpuEngine(
            graph, dataset.data, device=device, allow_oversubscription=True
        )
    oversub_warns = any(
        issubclass(w.category, ResourceWarning) for w in caught
    )

    # Full-precision recall baseline on the same graph and config.
    config = SearchConfig(**BASE)
    gt = dataset.ground_truth(BASE["k"])
    fp_result = fp_engine.run_batch(dataset.queries, config)
    full_recall = batch_recall(fp_result.results, gt)

    points = {}
    for label, prefetch in (("prefetch", True), ("serial", False)):
        series = sweep_serving(
            graph,
            dataset.data,
            dataset.queries,
            rates=[slo_qps, overload_qps],
            base=config,
            slo_p99_s=SLO_P99_S,
            num_requests=num_requests,
            seed=ARRIVAL_SEED,
            ground_truth=gt,
            device=device,
            policies=("fixed",),
            batch_size=BATCH["batch_size"],
            max_batch=BATCH["max_batch"],
            tier=tier,
            prefetch=prefetch,
        )
        points[label] = series["fixed"]
    pre_slo, pre_over = points["prefetch"]
    ser_slo, ser_over = points["serial"]

    lo, hi = PREFETCH_RATIO_BAND
    qps_ratio = pre_over.achieved_qps / ser_over.achieved_qps
    tiered_recall = pre_slo.recall
    gates = {
        "dataset_exceeds_budget_10x": dataset_ratio >= 10.0,
        "full_precision_raises_under_budget": fp_raises,
        "oversubscription_flag_warns": oversub_warns,
        "tiered_fits_budget": (
            sizing_index.resident_bytes <= device.memory_bytes
        ),
        "prefetch_meets_slo": pre_slo.slo_met,
        "serial_misses_slo": not ser_slo.slo_met,
        "prefetch_qps_ratio_within_band": lo <= qps_ratio <= hi,
        "recall_within_floor_of_full_precision": (
            full_recall - tiered_recall <= RECALL_FLOOR
        ),
        # Compared at the shed-free load point: per-request results are
        # bit-identical either way, but overload shedding (bounded queue)
        # can change *which* requests complete, and recall averages only
        # completed ones.
        "recall_identical_prefetch_vs_serial": (
            pre_slo.recall == ser_slo.recall
        ),
    }
    return {
        "config": {
            "n": n,
            "num_queries": num_queries,
            "num_requests": num_requests,
            "slo_qps": slo_qps,
            "overload_qps": overload_qps,
            "slo_p99_ms": 1e3 * SLO_P99_S,
            "arrival_seed": ARRIVAL_SEED,
            "budget_headroom": BUDGET_HEADROOM,
            "recall_floor": RECALL_FLOOR,
            "ratio_band": list(PREFETCH_RATIO_BAND),
            "tier": dict(TIER),
            **BASE,
            **BATCH,
        },
        "sizing": {
            "full_precision_kb": round(full_bytes / 1024.0, 1),
            "resident_kb": round(sizing_index.resident_bytes / 1024.0, 1),
            "budget_kb": round(device.memory_bytes / 1024.0, 1),
            "compression_ratio": round(sizing_index.compression_ratio(), 3),
            "dataset_to_budget_ratio": round(dataset_ratio, 3),
        },
        "recall": {
            "full_precision": round(full_recall, 6),
            "tiered": round(tiered_recall, 6),
        },
        "points": {
            label: [p.to_dict() for p in pts] for label, pts in points.items()
        },
        "qps_ratio_overload": round(qps_ratio, 6),
        "gates": gates,
        "passed": all(gates.values()),
    }


def run_overfetch_sweep(n: int, num_queries: int, **_ignored) -> dict:
    """Recall-vs-throughput frontier over the over-fetch grid and gate.

    Engine-level (``run_batch`` on the virtual clock): each point serves
    the same batch through a fresh tiered engine; deeper over-fetch
    re-ranks more full-precision rows, so recall must rise and QPS must
    fall along the grid.  A PQ-codec point rides along to record the
    other codec's frontier position (reported, not cross-codec gated).
    """
    dataset, graph = _assets(n, num_queries)
    config = SearchConfig(**BASE)
    gt = dataset.ground_truth(BASE["k"])
    curve = []
    tiers = [dict(TIER, overfetch=f) for f in OVERFETCH_GRID]
    tiers.append(dict(PQ_POINT))
    for spec in tiers:
        tier = TieredConfig(**spec)
        engine = TieredServeEngine(graph, dataset.data, tier, device="v100")
        result = engine.run_batch(dataset.queries, config)
        curve.append(
            {
                "codec": tier.codec,
                "overfetch": tier.overfetch,
                "num_bits": tier.num_bits if tier.codec == "bits" else None,
                "pq_m": tier.pq_m if tier.codec == "pq" else None,
                "recall": round(batch_recall(result.results, gt), 6),
                "qps": round(
                    len(dataset.queries) / result.service_seconds, 1
                ),
                "resident_kb": round(
                    engine.tiered.resident_bytes / 1024.0, 1
                ),
                "compression_ratio": round(
                    engine.tiered.compression_ratio(), 3
                ),
                "rerank_rows": result.detail["tier"]["rerank_rows"],
                "page_hits": result.detail["tier"]["page_hits"],
                "page_misses": result.detail["tier"]["page_misses"],
                "fetch_kb": round(
                    result.detail["tier"]["fetch_bytes"] / 1024.0, 1
                ),
            }
        )
    bits = [p for p in curve if p["codec"] == "bits"]
    recalls = [p["recall"] for p in bits]
    qps = [p["qps"] for p in bits]
    gates = {
        "overfetch_buys_recall": recalls[-1] > recalls[0],
        "overfetch_costs_throughput": qps[-1] < qps[0],
    }
    return {
        "config": {"n": n, "num_queries": num_queries, **BASE},
        "curve": curve,
        "gates": gates,
        "passed": all(gates.values()),
    }


def format_result(result: dict, sweep: dict, mode: str) -> str:
    cfg = result["config"]
    sz = result["sizing"]
    lines = [
        f"Out-of-core tier: dataset {sz['dataset_to_budget_ratio']:.1f}x "
        f"device budget ({mode})",
        f"  dataset    : synthetic gist n={cfg['n']} "
        f"(k={cfg['k']}, ef={cfg['queue_size']}, "
        f"SLO p99 <= {cfg['slo_p99_ms']:.1f} ms)",
        f"  sizing     : full {sz['full_precision_kb']:,.0f} KB, "
        f"resident {sz['resident_kb']:,.0f} KB, "
        f"budget {sz['budget_kb']:,.0f} KB "
        f"({sz['compression_ratio']:.1f}x compression)",
        f"  recall     : full-precision "
        f"{result['recall']['full_precision']:.4f}, tiered "
        f"{result['recall']['tiered']:.4f} "
        f"(floor {cfg['recall_floor']:.2f})",
        f"  {'fetching':<10} {'offered':>10} {'achieved':>10} "
        f"{'p99 ms':>8} {'SLO':>5} {'shed':>6} {'recall':>7}",
    ]
    for label, pts in result["points"].items():
        for p in pts:
            lines.append(
                f"  {label:<10} {p['offered_qps']:>10,.0f} "
                f"{p['achieved_qps']:>10,.0f} {p['p99_latency_ms']:>8.3f} "
                f"{'ok' if p['slo_met'] else 'MISS':>5} "
                f"{p['shed_rate']:>6.1%} {p['recall']:>7.4f}"
            )
    lines.append(
        f"  sat. ratio : {result['qps_ratio_overload']:.3f}x "
        f"prefetch vs serial "
        f"(band {cfg['ratio_band'][0]:.1f}-{cfg['ratio_band'][1]:.1f})"
    )
    lines.append("  recall-vs-throughput frontier (engine-level):")
    lines.append(
        f"  {'codec':<6} {'overfetch':>9} {'recall':>7} {'QPS':>10} "
        f"{'resident KB':>11} {'ratio':>6}"
    )
    for p in sweep["curve"]:
        lines.append(
            f"  {p['codec']:<6} {p['overfetch']:>9} {p['recall']:>7.4f} "
            f"{p['qps']:>10,.0f} {p['resident_kb']:>11,.0f} "
            f"{p['compression_ratio']:>6.1f}"
        )
    failed = [
        g
        for part in (result, sweep)
        for g, ok in part["gates"].items()
        if not ok
    ]
    passed = result["passed"] and sweep["passed"]
    lines.append(
        f"  verdict    : {'PASS' if passed else 'FAIL ' + str(failed)}"
    )
    return "\n".join(lines)


def write_artifact(
    result: dict, sweep: dict, mode: str, filename: str = "BENCH_outofcore.json"
) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, filename)
    payload = dict(result)
    payload["sweep"] = sweep
    payload["mode"] = mode
    payload["passed"] = result["passed"] and sweep["passed"]
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


# -- pytest entry point (smoke-sized) ----------------------------------------


def test_outofcore_gate():
    result = run_outofcore_bench(**SMOKE)
    sweep = run_overfetch_sweep(**SMOKE)
    emit_report("bench_outofcore", format_result(result, sweep, "smoke"))
    write_artifact(result, sweep, "smoke")
    for gate, ok in {**result["gates"], **sweep["gates"]}.items():
        assert ok, f"out-of-core gate failed: {gate}"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized run with gates"
    )
    args = parser.parse_args()
    mode = "smoke" if args.smoke else "full"
    params = SMOKE if args.smoke else FULL
    result = run_outofcore_bench(**params)
    sweep = run_overfetch_sweep(**params)
    emit_report("bench_outofcore", format_result(result, sweep, mode))
    path = write_artifact(result, sweep, mode)
    print(f"[artifact written to {path}]")
    return 0 if (result["passed"] and sweep["passed"]) else 1


if __name__ == "__main__":
    raise SystemExit(main())
