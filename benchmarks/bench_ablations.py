"""Ablations for the design choices DESIGN.md calls out.

1. Visited-set backend false-positive sweep (Bloom sizing).
2. Bounded vs unbounded frontier queue.
3. Fixed-degree graph degree.
4. Coalesced vs scattered bulk-distance access in the cost model.
"""

import pytest

from _common import cached_graph, emit_report, with_saturated_queries
from repro import GpuSongIndex, build_nsw
from repro.core.config import SearchConfig
from repro.eval import batch_recall, format_curve, sweep_gpu_song
from repro.eval.report import format_table
from repro.simt.device import get_device
from repro.simt.warp import Warp
from repro.structures.visited import VisitedBackend


def test_ablation_bloom_fp_rate(benchmark, assets):
    """Tighter Bloom false-positive targets cost memory but protect recall."""

    def run():
        ds = assets.dataset("sift")
        gpu = assets.gpu_index("sift")
        rows, out = [], {}
        for fp in (0.3, 0.1, 0.01, 0.001):
            cfg = SearchConfig(
                k=10,
                queue_size=80,
                visited_backend=VisitedBackend.BLOOM,
                bloom_fp_rate=fp,
            )
            results, timing = gpu.search_batch(ds.queries, cfg)
            recall = batch_recall(results, ds.ground_truth(10))
            out[fp] = recall
            rows.append([fp, f"{recall:.4f}", f"{timing.qps(ds.num_queries):,.0f}"])
        emit_report(
            "ablation_bloom_fp",
            format_table("Bloom FP-rate ablation (SIFT)", ["fp target", "recall", "QPS"], rows),
        )
        return out

    recalls = benchmark.pedantic(run, rounds=1, iterations=1)
    # An aggressive 30% FP target must not beat a 0.1% target's recall.
    assert recalls[0.001] >= recalls[0.3] - 1e-9


def test_ablation_bounded_queue(benchmark, assets):
    """Observation 1: bounding q changes nothing functionally, while the
    unbounded queue spills to global memory and runs slower."""

    def run():
        ds = assets.dataset("sift")
        sat = with_saturated_queries(ds)
        gpu = assets.gpu_index("sift")
        bounded_cfg = SearchConfig(k=10, queue_size=80)
        unbounded_cfg = bounded_cfg.with_options(bounded_queue=False)
        b_pts = sweep_gpu_song(sat, gpu, [80], k=10, config=bounded_cfg)
        u_pts = sweep_gpu_song(sat, gpu, [80], k=10, config=unbounded_cfg)
        emit_report(
            "ablation_bounded_queue",
            "\n".join(
                [
                    format_curve("bounded (min-max heap, shared mem)", b_pts),
                    format_curve("unbounded (global mem)", u_pts),
                ]
            ),
        )
        return b_pts[0], u_pts[0]

    bounded, unbounded = benchmark.pedantic(run, rounds=1, iterations=1)
    assert bounded.recall == pytest.approx(unbounded.recall, abs=1e-9)
    assert bounded.qps > unbounded.qps


def test_ablation_graph_degree(benchmark, assets):
    """Degree trades index size and per-hop cost against reachability."""

    def run():
        ds = assets.dataset("sift")
        sat = with_saturated_queries(ds)
        rows, out = [], {}
        for degree in (4, 8, 16, 32):
            m = max(2, degree // 2)
            graph = cached_graph(
                "nsw", ds.data,
                lambda: build_nsw(
                    ds.data, m=m, ef_construction=48,
                    max_degree=degree, seed=7,
                ),
                graph_type="nsw", build_engine="serial",
                m=m, ef_construction=48, max_degree=degree, seed=7,
            )
            gpu = GpuSongIndex(graph, ds.data)
            pts = sweep_gpu_song(sat, gpu, [80], k=10)
            out[degree] = (pts[0].recall, pts[0].qps, graph.memory_bytes())
            rows.append(
                [degree, f"{pts[0].recall:.4f}", f"{pts[0].qps:,.0f}",
                 f"{graph.memory_bytes() / 1024:.0f} KB"]
            )
        emit_report(
            "ablation_degree",
            format_table("Graph degree ablation (SIFT, queue=80)",
                         ["degree", "recall", "QPS", "index size"], rows),
        )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    # Memory is exactly linear in degree.
    assert out[32][2] == 8 * out[4][2]
    # Too-small degree loses recall against a healthy degree.
    assert out[16][0] > out[4][0]


def test_ablation_coalescing(benchmark):
    """The cost model charges scattered reads ~8x the bus traffic of
    coalesced ones — the rule behind the fixed-degree layout."""

    def run():
        dev = get_device("v100")
        rows = []
        for words in (32, 256, 1024):
            wc, ws = Warp(dev), Warp(dev)
            wc.global_read_coalesced(4 * words)
            ws.global_read_scattered(words)
            rows.append(
                [words, wc.memory.total_global_bytes, ws.memory.total_global_bytes,
                 f"{ws.cycles / max(wc.cycles, 1e-9):.1f}x"]
            )
        emit_report(
            "ablation_coalescing",
            format_table("Coalescing ablation (bus bytes per warp read)",
                         ["words", "coalesced bytes", "scattered bytes", "cycle ratio"],
                         rows),
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for words, cb, sb, _ in rows:
        assert sb == 8 * cb, "scattered traffic should be 8x coalesced"
