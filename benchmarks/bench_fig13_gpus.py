"""Fig. 13 — SONG on V100 / P40 / TITAN X (SIFT and GloVe200, top-10).

Paper: the curves share the same trend; the gaps track the cards'
compute power (V100 > P40 ≳ TITAN X).  Expected shape: identical recall
per setting (same algorithm), throughput ordered by device capability.
"""

import pytest

from _common import QUEUE_GRID, emit_report, with_saturated_queries
from repro.eval import format_curve, sweep_gpu_song

DEVICES = ("v100", "p40", "titanx")


def _run(assets, name):
    sat = with_saturated_queries(assets.dataset(name))
    curves = {}
    sections = [f"== {name}: top-10 on different GPUs =="]
    for dev in DEVICES:
        pts = sweep_gpu_song(sat, assets.gpu_index(name, device=dev), QUEUE_GRID, k=10)
        curves[dev] = pts
        sections.append(format_curve(f"SONG-{dev.upper()}", pts))
    emit_report(f"fig13_{name}", "\n".join(sections))
    return curves


@pytest.mark.parametrize("name", ["sift", "glove200"])
def test_fig13(benchmark, assets, name):
    curves = benchmark.pedantic(_run, args=(assets, name), rounds=1, iterations=1)
    for v, p, t in zip(curves["v100"], curves["p40"], curves["titanx"]):
        # identical algorithm -> identical recall on every device
        assert v.recall == p.recall == t.recall
        # V100 is the fastest card
        assert v.qps >= p.qps
        assert v.qps >= t.qps
