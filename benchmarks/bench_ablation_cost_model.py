"""Ablation — analytic cost model vs the cycle-level SIMT simulator.

The figure benches price SONG with the analytic model; this ablation
replays the kernel's primitives on the instruction-level simulator and
checks the constants the analytic model assumes:

- coalesced : scattered transaction ratio (1 : 32 per warp read),
- warp-reduction depth (log2(32) = 5 shuffles),
- latency hiding with resident-warp count,
- relative cost of a Hamming signature distance vs a float distance.
"""

import numpy as np

from _common import emit_report
from repro.eval.report import format_table
from repro.simt.kernels import (
    run_distance_kernel,
    run_hamming_kernel,
    squared_l2_kernel,
    strided_read_kernel,
)
from repro.simt.simulator import SMSimulator, WarpSimulator


def _distance_warp(dim, seed=0):
    rng = np.random.default_rng(seed)
    q, v = rng.normal(size=dim), rng.normal(size=dim)
    shared = np.zeros(max(dim, 32))
    shared[:dim] = q
    g = np.zeros(max(dim, 32))
    g[:dim] = v
    w = WarpSimulator(squared_l2_kernel(dim), global_mem=g, shared_mem=shared)
    w.set_register("query_base", 0.0)
    w.set_register("vec_base", 0.0)
    return w


def _run():
    rows = []
    # 1. coalescing
    txs = {}
    for stride in (1, 2, 4, 32):
        sim = WarpSimulator(strided_read_kernel(stride), global_mem=np.zeros(8192))
        stats = sim.run()
        txs[stride] = stats.global_transactions
        rows.append([f"stride-{stride} read", f"{stats.global_transactions} transactions"])
    # 2. latency hiding
    hiding = {}
    for n in (1, 4, 16, 32):
        res = SMSimulator([_distance_warp(128, seed=i) for i in range(n)]).run()
        hiding[n] = res.total_cycles / n
        rows.append([f"{n} resident warps", f"{res.total_cycles / n:.0f} cycles/warp"])
    # 3. hashing speedup
    rng = np.random.default_rng(2)
    _, hamming = run_hamming_kernel(
        rng.integers(0, 2**32, size=4, dtype=np.uint32),
        rng.integers(0, 2**32, size=4, dtype=np.uint32),
    )
    _, full = run_distance_kernel(rng.normal(size=784), rng.normal(size=784))
    rows.append(["Hamming-128 distance", f"{hamming.cycles} cycles"])
    rows.append(["float-784 distance", f"{full.cycles} cycles"])
    emit_report(
        "ablation_cost_model",
        format_table(
            "Cycle-level validation of the analytic cost model",
            ["experiment", "measured"],
            rows,
        ),
    )
    return txs, hiding, hamming.cycles, full.cycles


def test_ablation_cost_model(benchmark):
    txs, hiding, hamming_cycles, full_cycles = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    # coalescing rule the memory model assumes
    assert txs[1] == 1
    assert txs[32] == 32
    assert txs[2] == 2  # stride-2: half the lanes per line
    # latency hiding grows with residency and saturates near the analytic
    # overlap factor (x16 streaming)
    assert hiding[16] < hiding[1] / 5
    assert hiding[32] <= hiding[16] * 1.1
    # hashed distances are cheap (Fig. 14's throughput side)
    assert hamming_cycles * 3 < full_cycles
