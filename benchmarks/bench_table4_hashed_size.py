"""Table IV — hashed dataset sizes for MNIST8m.

Paper: 32–512-bit signatures shrink the 24 GB dataset to 31–494 MB;
128-bit is >190x smaller than the original.  This bench reproduces the
exact arithmetic at the paper's full scale (pure accounting — no search)
plus the laptop-scale analogue actually used in Fig. 14.
"""

from _common import emit_report
from repro.eval.report import format_table
from repro.hashing import SignRandomProjection

PAPER_N = 8_090_000
PAPER_DIM = 784
BITS = (32, 64, 128, 256, 512)


def _run(assets):
    rows, sizes = [], {}
    original = PAPER_N * PAPER_DIM * 4
    for bits in BITS:
        rp = SignRandomProjection(PAPER_DIM, num_bits=bits)
        b = rp.memory_bytes(PAPER_N)
        sizes[bits] = b
        rows.append([f"{bits}", f"{b / 1024 ** 2:.0f} MB", f"{original / b:.0f}x"])
    rows.append(["original", f"{original / 1024 ** 2:.0f} MB", "1x"])
    report = format_table(
        "Table IV analogue: hashed MNIST8m sizes (paper scale)",
        ["hash bits", "size", "compression"],
        rows,
    )
    emit_report("table4_hashed_size", report)
    return sizes, original


def test_table4(benchmark, assets):
    sizes, original = benchmark.pedantic(_run, args=(assets,), rounds=1, iterations=1)
    # Paper's concrete claims.
    assert round(sizes[32] / 1024**2) == 31
    assert round(sizes[512] / 1024**2) == 494
    assert original / sizes[128] > 190
    # Sizes double with bit width.
    for a, b in zip(BITS, BITS[1:]):
        assert sizes[b] == 2 * sizes[a]
    # 12 GB TITAN X: original does not fit, every hashed variant does.
    titanx = 12 * 1024**3
    assert original * 1.0 > titanx * 0.8  # 24 GB raw (float32 here) ~ close
    assert all(s < titanx for s in sizes.values())
