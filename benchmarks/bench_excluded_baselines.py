"""Reproduction of the paper's baseline exclusion (Sec. VIII, "Compared
algorithms"):

    "Other studies have shown that other types of algorithms such as
     tree-based, hashing-based approaches have inferior performance.
     We do not include them as competitors."

We implement them anyway — KD-tree (FLANN-family), random-projection
forest (Annoy-family) and multi-probe LSH (FALCONN-family) — and verify
the claim: at matched recall on the SIFT analogue, each scans far more of
the dataset per query than the graph search visits, so even a perfectly
parallelized implementation starts from a large work handicap.
"""

import numpy as np

from _common import emit_report
from repro.baselines.kdtree import KDTreeIndex
from repro.baselines.lsh import LSHIndex
from repro.baselines.rp_forest import RPForestIndex
from repro.core.config import SearchConfig
from repro.core.song import SearchStats, SongSearcher
from repro.eval.recall import batch_recall
from repro.eval.report import format_table

TARGET_RECALL = 0.85
K = 10


def _graph_work(assets, name):
    """Graph search work: distance computations per query at ~target recall."""
    ds = assets.dataset(name)
    searcher = SongSearcher(assets.nsw(name), ds.data)
    gt = ds.ground_truth(K)
    for queue in (20, 40, 80, 160, 320, 640):
        cfg = SearchConfig(k=K, queue_size=queue)
        stats = SearchStats()
        results = [
            searcher.search(q, cfg, stats=stats) for q in ds.queries
        ]
        recall = batch_recall(results, gt)
        if recall >= TARGET_RECALL:
            return recall, stats.distance_computations / ds.num_queries
    return recall, stats.distance_computations / ds.num_queries


def _tree_work(index, ds, knob_name, knobs, search):
    gt = ds.ground_truth(K)
    for knob in knobs:
        scanned = 0
        results = []
        for q in ds.queries:
            results.append(search(q, knob))
            scanned += index.last_scanned
        recall = batch_recall(results, gt)
        if recall >= TARGET_RECALL:
            return recall, scanned / ds.num_queries, f"{knob_name}={knob}"
    return recall, scanned / ds.num_queries, f"{knob_name}={knob}"


def _run(assets):
    name = "sift"
    ds = assets.dataset(name)
    rows = []
    graph_recall, graph_scan = _graph_work(assets, name)
    rows.append(["graph (SONG search)", f"{graph_recall:.3f}", f"{graph_scan:.0f}", "-"])

    kdtree = KDTreeIndex(ds.data.astype(np.float64), leaf_size=24)
    r, s, knob = _tree_work(
        kdtree, ds, "max_leaves", (4, 16, 64, 256),
        lambda q, knob: kdtree.search(q, K, max_leaves=knob),
    )
    rows.append(["KD-tree (FLANN-family)", f"{r:.3f}", f"{s:.0f}", knob])

    forest = RPForestIndex(ds.data, num_trees=12, leaf_size=24, seed=0)
    r, s, knob = _tree_work(
        forest, ds, "budget", (100, 400, 1600, 6400),
        lambda q, knob: forest.search(q, K, search_budget=knob),
    )
    rows.append(["RP-forest (Annoy-family)", f"{r:.3f}", f"{s:.0f}", knob])

    lsh = LSHIndex(ds.data, num_tables=10, num_bits=12, seed=0)
    r, s, knob = _tree_work(
        lsh, ds, "max_flips", (0, 1, 2, 3),
        lambda q, knob: lsh.search(q, K, max_flips=knob),
    )
    rows.append(["multi-probe LSH (FALCONN-family)", f"{r:.3f}", f"{s:.0f}", knob])

    report = format_table(
        f"Excluded baselines: points scanned per query at recall ≥ {TARGET_RECALL}",
        ["method", "recall", "scanned/query", "setting"],
        rows,
    )
    emit_report("excluded_baselines", report)
    return rows


def test_excluded_baselines(benchmark, assets):
    rows = benchmark.pedantic(_run, args=(assets,), rounds=1, iterations=1)
    graph_scan = float(rows[0][2].replace(",", ""))
    for method, recall, scanned, _ in rows[1:]:
        recall = float(recall)
        scanned = float(scanned.replace(",", ""))
        # Either the method failed to reach the target recall, or it had
        # to scan several times more points than the graph search did.
        assert recall < TARGET_RECALL or scanned > 2 * graph_scan, (
            f"{method}: recall {recall} with only {scanned} scans "
            f"(graph: {graph_scan})"
        )
