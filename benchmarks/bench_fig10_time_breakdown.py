"""Fig. 10 — where does the time go? (GloVe200 and GIST)

Two breakdowns per top-K in {50, 100, 500, 1000}:
- HtoD / kernel / DtoH: the kernel dominates (>89% in the paper), HtoD's
  share shrinks as K grows (kernel time grows, transfer is constant),
  DtoH's share grows slightly (more results to copy back).
- Inside the kernel: data-structure maintenance takes the largest share,
  and distance computation's share is larger on the higher-dimensional
  dataset (GIST) than on GloVe200.
"""

import pytest

from _common import emit_report
from repro.core.config import SearchConfig
from repro.eval.report import format_table
from repro.simt.profiler import StageProfiler

KS = (50, 100, 500, 1000)


def _run(assets, name):
    ds = assets.dataset(name)
    gpu = assets.gpu_index(name)
    transfer_rows, kernel_rows = [], []
    breakdowns = {}
    for k in KS:
        prof = StageProfiler()
        cfg = SearchConfig(
            k=k, queue_size=k, selected_insertion=True, visited_deletion=True
        )
        gpu.search_batch(ds.queries, cfg, profiler=prof)
        tb = prof.transfer_breakdown()
        kb = prof.kernel_breakdown()
        breakdowns[k] = (tb, kb)
        transfer_rows.append(
            [k] + [f"{100 * tb[s]:.2f}%" for s in ("HtoD", "Kernel", "DtoH")]
        )
        kernel_rows.append(
            [k]
            + [f"{100 * kb[s]:.2f}%" for s in ("locate", "distance", "maintain")]
        )
    report = "\n\n".join(
        [
            format_table(
                f"{name}: transfer vs kernel",
                ["top-K", "HtoD", "Kernel", "DtoH"],
                transfer_rows,
            ),
            format_table(
                f"{name}: inside the kernel",
                ["top-K", "Locating", "Distance", "Maintain"],
                kernel_rows,
            ),
        ]
    )
    emit_report(f"fig10_{name}", report)
    return breakdowns


@pytest.mark.parametrize("name", ["glove200", "gist"])
def test_fig10(benchmark, assets, name):
    breakdowns = benchmark.pedantic(_run, args=(assets, name), rounds=1, iterations=1)
    for k, (tb, kb) in breakdowns.items():
        assert tb["Kernel"] > 0.85, f"kernel should dominate at top-{k}"
        assert kb["maintain"] > kb["locate"], "maintenance outweighs locating"
    # HtoD share shrinks as the kernel grows with K.
    assert breakdowns[1000][0]["HtoD"] < breakdowns[50][0]["HtoD"]


def test_fig10_distance_share_larger_on_high_dim(benchmark, assets):
    glove = _run(assets, "glove200")
    gist = benchmark.pedantic(_run, args=(assets, "gist"), rounds=1, iterations=1)
    # GIST has ~2.4x the dimensionality: its distance-stage share is bigger.
    for k in KS:
        assert gist[k][1]["distance"] > glove[k][1]["distance"]
