"""Semantic search over word-embedding-style vectors.

The paper's motivating regime: GloVe-like embeddings are heavily
clustered, which makes quantization methods (Faiss-IVFPQ) saturate below
high recall while graph search keeps climbing.  This example builds both
indexes over a synthetic embedding cloud and prints the trade-off, then
answers a few "nearest concept" queries with SONG.

Run:  python examples/semantic_search.py
"""

import numpy as np

from repro import GpuSongIndex, SearchConfig, build_nsw
from repro.baselines import IVFPQIndex
from repro.data import make_dataset
from repro.eval import batch_recall, sweep_gpu_song, sweep_ivfpq
from repro.eval.report import format_curve


def main() -> None:
    # A GloVe200-like dataset: 200-d, skewed cluster sizes.
    dataset = make_dataset("glove200", n=4000, num_queries=100, seed=1)
    print(
        f"dataset: {dataset.name}, {dataset.num_data} x {dataset.dim}d, "
        f"{dataset.num_queries} queries"
    )

    print("\nbuilding NSW graph ...")
    graph = build_nsw(dataset.data, m=8, ef_construction=64, seed=0)
    song = GpuSongIndex(graph, dataset.data, device="v100")

    print("training IVFPQ baseline ...")
    ivf = IVFPQIndex(dataset.dim, nlist=32, m=8, ksub=64, seed=0)
    ivf.train(dataset.data)
    ivf.add(dataset.data)

    print("\nsweeping both methods (top-10):\n")
    song_pts = sweep_gpu_song(dataset, song, [10, 40, 160, 640], k=10)
    ivf_pts = sweep_ivfpq(dataset, ivf, [1, 4, 16, 32], k=10)
    print(format_curve("SONG (graph, simulated GPU)", song_pts))
    print(format_curve("IVFPQ (quantization, simulated GPU)", ivf_pts))

    best_song = max(p.recall for p in song_pts)
    best_ivf = max(p.recall for p in ivf_pts)
    print(
        f"\nrecall ceiling: SONG {best_song:.3f} vs IVFPQ {best_ivf:.3f} "
        "(quantization saturates on clustered embeddings)"
    )

    # Answer a few queries at a high-recall operating point.
    config = SearchConfig(
        k=5, queue_size=200, selected_insertion=True, visited_deletion=True
    )
    results, timing = song.search_batch(dataset.queries[:3], config)
    print("\nsample queries at the high-recall setting:")
    for i, res in enumerate(results):
        ids = [v for _, v in res]
        print(f"  query {i}: nearest concepts {ids}")
    print(f"\nrecall of the full batch at this setting:")
    full, _ = song.search_batch(dataset.queries, config)
    print(f"  recall@5 = {batch_recall(full, dataset.ground_truth(5)):.3f}")


if __name__ == "__main__":
    main()
