"""Searching a dataset that does not fit in GPU memory (paper Section VII).

Workflow: compress the float dataset to 1-bit random-projection
signatures, build the proximity graph over Hamming space, and run the
same SONG search on the packed bits.  The example reports the
compression ratio, the recall against float-space ground truth at
several signature widths, and the throughput gain from the cheaper
distance function.

Run:  python examples/out_of_memory_hashing.py
"""

import numpy as np

from repro import GpuSongIndex, SearchConfig
from repro.data import make_dataset
from repro.eval import batch_recall
from repro.graphs.storage import FixedDegreeGraph
from repro.hashing import HammingSpace, SignRandomProjection


def hamming_knn_graph(space: HammingSpace, degree: int) -> FixedDegreeGraph:
    """Exact kNN graph under Hamming distance."""
    sigs = space.signatures
    adjacency = []
    for v in range(len(sigs)):
        d = space.batch_distance(sigs[v], sigs)
        d[v] = np.inf
        adjacency.append(np.argsort(d, kind="stable")[:degree].tolist())
    return FixedDegreeGraph.from_adjacency(adjacency, degree=degree)


def main() -> None:
    dataset = make_dataset("mnist8m", n=2000, num_queries=100, seed=0)
    gt = dataset.ground_truth(10)
    config = SearchConfig(
        k=10, queue_size=150, selected_insertion=True, visited_deletion=True
    )

    print(f"original dataset: {dataset.size_bytes() / 1024:.0f} KB "
          f"({dataset.num_data} x {dataset.dim} float32)")
    print("(at the paper's scale, 8M x 784 = 24 GB, exceeding a 12 GB card)\n")

    print(f"{'bits':>6} {'size':>10} {'compress':>9} {'recall@10':>10} {'QPS':>12}")
    for bits in (64, 128, 256, 512):
        projector = SignRandomProjection(dataset.dim, num_bits=bits, seed=0)
        signatures = projector.transform(dataset.data)
        query_sigs = projector.transform(dataset.queries)
        space = HammingSpace(signatures)

        graph = hamming_knn_graph(space, degree=16)
        index = GpuSongIndex(graph, signatures, device="titanx")
        results, timing = index.search_batch(
            query_sigs, config, distance_fn=space.batch_distance
        )
        recall = batch_recall(results, gt)
        ratio = dataset.size_bytes() / space.memory_bytes()
        print(
            f"{bits:>6} {space.memory_bytes() / 1024:>9.0f}K {ratio:>8.0f}x "
            f"{recall:>10.3f} {timing.qps(dataset.num_queries):>12,.0f}"
        )

    print(
        "\nwider signatures recover more of the float-space neighbors; "
        "narrower ones trade recall for memory and speed."
    )


if __name__ == "__main__":
    main()
