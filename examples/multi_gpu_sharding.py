"""Scaling beyond one GPU: sharding + stream pipelining.

Section VII of the paper sketches the multi-GPU recipe: shard the data,
build a graph per shard, search all shards, merge.  This example runs it
on 1/2/4 simulated V100s and also shows the stream-pipelining extension
that overlaps PCIe transfers with kernels.

Run:  python examples/multi_gpu_sharding.py
"""

import numpy as np

from repro import GpuSongIndex, SearchConfig, build_nsw
from repro.core.sharding import ShardedSongIndex
from repro.data import make_dataset
from repro.eval import batch_recall
from repro.simt.pipeline import pipeline_batch


def main() -> None:
    dataset = make_dataset("uqv", n=4000, num_queries=100, seed=0)
    queries = np.tile(dataset.queries, (4, 1))
    gt = np.tile(dataset.ground_truth(10), (4, 1))
    config = SearchConfig(
        k=10, queue_size=80, selected_insertion=True, visited_deletion=True
    )

    print("== sharding across simulated V100s ==")
    print(f"{'GPUs':>5} {'recall@10':>10} {'QPS':>12} {'max MB/GPU':>11}")
    for shards in (1, 2, 4):
        index = ShardedSongIndex(dataset.data, num_shards=shards)
        results, timing = index.search_batch(queries, config)
        recall = batch_recall(results, gt)
        per_gpu = max(index.per_device_memory_bytes()) / 1024**2
        print(
            f"{shards:>5} {recall:>10.3f} {timing['qps']:>12,.0f} {per_gpu:>11.2f}"
        )

    print("\n== stream pipelining (single GPU) ==")
    graph = build_nsw(dataset.data, m=8, ef_construction=48, seed=7)
    gpu = GpuSongIndex(graph, dataset.data)
    print(f"{'chunks':>7} {'sync ms':>9} {'piped ms':>9} {'gain':>6}")
    for chunks in (1, 2, 4, 8):
        _, timing = pipeline_batch(gpu, queries, config, num_chunks=chunks)
        print(
            f"{chunks:>7} {1e3 * timing['synchronous_seconds']:>9.3f} "
            f"{1e3 * timing['pipelined_seconds']:>9.3f} "
            f"{timing['overlap_gain']:>5.2f}x"
        )

    print(
        "\nsharding divides per-device memory while every shard is searched "
        "(recall holds); pipelining hides the PCIe copies behind kernels."
    )


if __name__ == "__main__":
    main()
