"""Tuning SONG: what each knob does, measured.

Walks through the paper's optimization space on one dataset:
visited-set backends (Fig. 7), multi-query and multi-step probing
(Figs. 8-9), batch size (Fig. 11) and device choice (Fig. 13) — and
prints a one-line takeaway per knob.

Run:  python examples/tuning_guide.py
"""

import numpy as np

from repro import GpuSongIndex, SearchConfig, build_nsw
from repro.core.config import OptimizationLevel
from repro.data import make_dataset
from repro.eval import batch_recall


def measure(index, queries, config, gt):
    results, timing = index.search_batch(queries, config)
    return batch_recall(results, gt), timing.qps(len(queries))


def main() -> None:
    dataset = make_dataset("sift", n=3000, num_queries=100, seed=0)
    queries = np.tile(dataset.queries, (4, 1))  # saturate the device
    gt = np.tile(dataset.ground_truth(10), (4, 1))
    graph = build_nsw(dataset.data, m=8, ef_construction=48, seed=7)
    index = GpuSongIndex(graph, dataset.data, device="v100")

    print("== visited-set backend (queue=400, top-10) ==")
    for level in OptimizationLevel:
        cfg = SearchConfig.from_level(level, k=10, queue_size=400)
        recall, qps = measure(index, queries, cfg, gt)
        print(f"  {level.value:<22} recall={recall:.3f}  QPS={qps:>12,.0f}")

    base = SearchConfig(
        k=10, queue_size=80, selected_insertion=True, visited_deletion=True
    )

    print("\n== queries per warp ==")
    for mq in (1, 2, 4):
        recall, qps = measure(index, queries, base.with_options(multi_query=mq), gt)
        print(f"  multi_query={mq}  recall={recall:.3f}  QPS={qps:>12,.0f}")

    print("\n== probe steps ==")
    for steps in (1, 2, 4):
        recall, qps = measure(index, queries, base.with_options(probe_steps=steps), gt)
        print(f"  probe_steps={steps}  recall={recall:.3f}  QPS={qps:>12,.0f}")

    print("\n== batch size ==")
    for b in (25, 100, 400):
        sub = queries[:b]
        results, timing = index.search_batch(sub, base)
        print(f"  batch={b:<5} QPS={timing.qps(b):>12,.0f}")

    print("\n== device ==")
    for dev in ("v100", "p40", "titanx"):
        idx = GpuSongIndex(graph, dataset.data, device=dev)
        recall, qps = measure(idx, queries, base, gt)
        print(f"  {dev:<8} QPS={qps:>12,.0f}")

    print(
        "\ntakeaways (matching the paper): use the bounded queue with "
        "sel+del, one query per warp, single-step probing, the biggest "
        "batch you can form, and the biggest card you have."
    )


if __name__ == "__main__":
    main()
