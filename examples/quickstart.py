"""Quickstart: index a dataset, run batched ANN queries on the simulated GPU.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import GpuSongIndex, SearchConfig, build_nsw
from repro.baselines import FlatIndex


def main() -> None:
    rng = np.random.default_rng(0)
    data = rng.normal(size=(5000, 64)).astype(np.float32)
    queries = rng.normal(size=(200, 64)).astype(np.float32)

    # 1. Build the proximity graph (NSW, as in the paper's experiments).
    print("building NSW graph over 5000 points ...")
    graph = build_nsw(data, m=8, ef_construction=64, seed=0)
    print(f"  {graph}")

    # 2. Wrap it in a GPU index (simulated V100) and search a batch.
    index = GpuSongIndex(graph, data, device="v100")
    config = SearchConfig(
        k=10,
        queue_size=80,  # the recall/throughput dial
        selected_insertion=True,  # the paper's memory optimizations
        visited_deletion=True,
    )
    results, timing = index.search_batch(queries, config)

    # 3. Inspect results and performance.
    print(f"\nquery 0 -> top-3 neighbors: {results[0][:3]}")
    print(f"estimated kernel time : {1e3 * timing.kernel_seconds:.3f} ms")
    print(f"estimated throughput  : {timing.qps(len(queries)):,.0f} queries/s")
    print(f"occupancy             : {timing.occupancy_warps_per_sm} warps/SM")

    # 4. Check quality against exact brute force.
    flat = FlatIndex(data)
    hits = 0
    for q, res in zip(queries, results):
        truth = {v for _, v in flat.search(q, 10)}
        hits += len(truth & {v for _, v in res})
    print(f"recall@10             : {hits / (10 * len(queries)):.3f}")


if __name__ == "__main__":
    main()
