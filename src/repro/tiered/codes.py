"""Device-resident compressed stores for the out-of-core tier.

Both stores expose the same contract: a packed code matrix whose bytes
are what the capacity ledger charges for, a float32 **proxy** array whose
squared-L2 distances equal the codec's native distance — so the lockstep
:class:`~repro.core.batched.BatchedSongSearcher` traverses codes without
a single change — and a cost profile (flops + words per distance) that
prices traversal at the *compressed* rates on the warp meter.

Proxy equivalences (both exact, not approximations of the codec):

- **bits**: unpacked 0/1 signature bits as float32.  For bit rows
  ``u, v`` the squared L2 distance ``Σ (u_i − v_i)²`` counts exactly the
  differing bits — the Hamming distance of the packed signatures.  The
  counts are integers ≤ ``num_bits`` ≤ 2048, exactly representable in
  float32, so traversal order is bit-identical to integer Hamming.
- **pq**: decoded (reconstructed) vectors.  ADC's distance of query
  ``q`` to code ``c`` is ``Σ_j |q_j − codebook_j[c_j]|²`` which *is* the
  squared L2 from ``q`` to the decoded vector — the classic ADC
  identity — so L2 traversal over decoded rows computes ADC.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.pq import ProductQuantizer
from repro.hashing.random_projection import SignRandomProjection
from repro.tiered.config import TieredConfig

__all__ = ["BitCodeStore", "PQCodeStore", "make_store"]


def _unpack_bits(codes: np.ndarray, num_bits: int) -> np.ndarray:
    """Unpack ``(n, w)`` uint32 signatures to ``(n, num_bits)`` float32.

    Little-endian bit order, inverting
    :func:`~repro.hashing.random_projection.pack_sign_bits`.
    """
    bits = np.unpackbits(
        codes.view(np.uint8), axis=1, bitorder="little", count=num_bits
    )
    return np.ascontiguousarray(bits.astype(np.float32))


class BitCodeStore:
    """Sign-projection signatures resident on device; Hamming traversal."""

    codec = "bits"

    def __init__(self, data: np.ndarray, tier: TieredConfig) -> None:
        data = np.atleast_2d(np.asarray(data, dtype=np.float32))
        self.dim = data.shape[1]
        self.num_bits = tier.num_bits
        self.projector = SignRandomProjection(
            self.dim,
            num_bits=tier.num_bits,
            distribution=tier.distribution,
            seed=tier.seed,
        )
        #: Packed ``(n, w)`` uint32 signatures — the device-resident form.
        self.codes = self.projector.transform(data)
        #: Float proxy whose squared L2 equals Hamming over ``codes``.
        self.traversal_data = _unpack_bits(self.codes, self.num_bits)

    @property
    def num_words(self) -> int:
        return self.projector.num_words

    #: Words of 4 bytes the warp meter charges per point — the packed
    #: signature size, not the proxy's.
    @property
    def cost_dim(self) -> int:
        return self.num_words

    @property
    def query_device_bytes(self) -> int:
        """Bytes uploaded per query: one packed signature."""
        return self.num_words * 4

    def flops_per_distance(self, _dim: int = 0) -> int:
        """XOR + popcount + accumulate per signature word."""
        return 3 * self.num_words

    def encode_queries(self, queries: np.ndarray) -> np.ndarray:
        """Queries into proxy space (unpacked signature bits)."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        return _unpack_bits(self.projector.transform(queries), self.num_bits)

    def device_code_bytes(self) -> int:
        """Resident bytes: the packed signature matrix."""
        return int(self.codes.nbytes)


class PQCodeStore:
    """Product-quantization codes resident on device; ADC traversal."""

    codec = "pq"

    def __init__(self, data: np.ndarray, tier: TieredConfig) -> None:
        data = np.atleast_2d(np.asarray(data, dtype=np.float32))
        self.dim = data.shape[1]
        self.quantizer = ProductQuantizer(
            self.dim, m=tier.pq_m, ksub=tier.pq_ksub, seed=tier.seed
        ).train(data)
        #: Packed ``(n, m)`` uint8 codes — the device-resident form.
        self.codes = self.quantizer.encode(data)
        #: Decoded rows: L2 to them is exactly the ADC distance.
        self.traversal_data = np.ascontiguousarray(
            self.quantizer.decode(self.codes).astype(np.float32)
        )

    @property
    def cost_dim(self) -> int:
        """4-byte words per code (``m`` bytes rounded up)."""
        return max(1, -(-self.quantizer.m // 4))

    @property
    def query_device_bytes(self) -> int:
        """Bytes uploaded per query: the raw vector (table built on device)."""
        return self.dim * 4

    def flops_per_distance(self, _dim: int = 0) -> int:
        """One table lookup + one add per sub-quantizer."""
        return 2 * self.quantizer.m

    def encode_queries(self, queries: np.ndarray) -> np.ndarray:
        """Queries traverse as-is: L2(query, decoded row) == ADC."""
        return np.atleast_2d(np.asarray(queries, dtype=np.float32))

    def device_code_bytes(self) -> int:
        """Resident bytes: code matrix plus the codebooks."""
        return int(self.codes.nbytes) + self.quantizer.memory_bytes()


def make_store(data: np.ndarray, tier: TieredConfig):
    """Build the configured compressed store over ``data``."""
    if tier.codec == "bits":
        return BitCodeStore(data, tier)
    return PQCodeStore(data, tier)
