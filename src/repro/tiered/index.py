"""Two-tier index: compressed traversal + exact over-fetch re-rank.

:class:`TieredIndex` is the algorithmic core of the out-of-core tier.
Stage one runs SONG's graph traversal over the compressed store's proxy
array through the lockstep batched engine, over-fetching
``min(queue_size, overfetch·k)`` candidates per query.  Stage two scores
those candidates against the *full-precision* host array in the true
metric, sorts them with the SoA packed-key trick (deterministic
``(distance, id)`` tie-break, same as the serial heaps), and keeps the
top ``k``.  The class also reports everything pricing needs: per-lane
candidate counts and the ordered page lists re-ranking must fetch.

Device residency is enforced here: graph + codes + hot-page cache are
reserved on a :class:`~repro.simt.memory.CapacityLedger`; the
full-precision array is deliberately *not* reserved — it lives on the
host, which is the point of the tier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.annotations import arr, array_kernel
from repro.core.batched import BatchedSongSearcher
from repro.core.config import SearchConfig
from repro.core.song import SearchStats
from repro.distances import get_metric
from repro.graphs.storage import FixedDegreeGraph
from repro.simt.device import DeviceSpec, get_device
from repro.simt.memory import CapacityLedger
from repro.structures.soa import PAD_KEY, pack_keys, unpack_distances, unpack_ids
from repro.tiered.cache import rowids_to_pages
from repro.tiered.codes import make_store
from repro.tiered.config import TieredConfig

__all__ = ["rerank_sort_keys", "RerankPlan", "TieredIndex"]


@array_kernel(
    params={"B": (1, 2**20), "L": (1, 2**16), "n": (1, 2**31)},
    args={
        "dists": arr("B", "L", dtype="float32"),
        "ids": arr("B", "L", lo=0, hi="n-1"),
        "valid": arr("B", "L", dtype="bool"),
    },
    returns=[arr("B", "L", dtype="uint64")],
)
def rerank_sort_keys(
    dists: np.ndarray, ids: np.ndarray, valid: np.ndarray
) -> np.ndarray:
    """Row-sorted packed ``(distance, id)`` keys for the re-rank stage.

    Invalid slots (lanes that found fewer candidates than the panel
    width) get :data:`~repro.structures.soa.PAD_KEY`, which sorts after
    every real key; valid ids are proven ≤ 2³²−1 so they fit the key's
    low word.
    """
    keys = pack_keys(dists, ids)
    keys = np.where(valid, keys, PAD_KEY)
    return np.sort(keys, axis=1)


@dataclass
class RerankPlan:
    """What the re-rank stage must fetch and compute, per lane.

    ``page_lists[b]`` is the ordered unique page ids lane ``b``'s
    candidates touch (first-occurrence order — the order the staging
    queue requests them); ``candidate_counts[b]`` is how many exact
    distances the lane pays for.
    """

    candidate_counts: np.ndarray
    page_lists: List[np.ndarray]

    @property
    def total_candidates(self) -> int:
        return int(self.candidate_counts.sum())

    @property
    def total_page_touches(self) -> int:
        return sum(len(p) for p in self.page_lists)


class TieredIndex:
    """Compressed-resident traversal with exact host re-ranking.

    Parameters
    ----------
    graph:
        Fixed-degree proximity graph (shared by both tiers).
    data:
        ``(n, d)`` float32 dataset — host-resident full precision.
    tier:
        Codec / over-fetch / paging configuration.
    device:
        Device preset or spec whose ``memory_bytes`` budget the
        resident tier must fit.
    """

    def __init__(
        self,
        graph: FixedDegreeGraph,
        data: np.ndarray,
        tier: TieredConfig,
        device: str = "v100",
    ) -> None:
        self.graph = graph
        self.data = np.ascontiguousarray(
            np.atleast_2d(np.asarray(data, dtype=np.float32))
        )
        self.tier = tier
        self.device: DeviceSpec = get_device(device)
        self.store = make_store(self.data, tier)
        self.searcher = BatchedSongSearcher(graph, self.store.traversal_data)
        n, dim = self.data.shape
        self.page_rows = tier.page_rows
        self.num_pages = -(-n // tier.page_rows)
        #: Bytes one full-precision page moves over PCIe.
        self.page_bytes = tier.page_rows * dim * 4
        self.ledger = CapacityLedger(self.device)
        self.ledger.reserve("graph", graph.memory_bytes())
        self.ledger.reserve("codes", self.store.device_code_bytes())
        cache_pages = min(tier.cache_pages, self.num_pages)
        self.ledger.reserve("page_cache", cache_pages * self.page_bytes)

    # -- footprints ------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        """Device-resident footprint: graph + codes + hot-page cache."""
        return self.ledger.reserved_bytes

    def full_precision_bytes(self) -> int:
        """What tier-free SONG would have to keep resident."""
        return int(self.data.nbytes) + self.graph.memory_bytes()

    def compression_ratio(self) -> float:
        """Full-precision resident bytes over tiered resident bytes."""
        return self.full_precision_bytes() / max(1, self.resident_bytes)

    # -- search ----------------------------------------------------------

    def overfetch_k(self, config: SearchConfig) -> int:
        """Candidates traversal returns for the re-rank stage."""
        return min(config.queue_size, max(config.k, config.k * self.tier.overfetch))

    def encode_queries(self, queries: np.ndarray) -> np.ndarray:
        return self.store.encode_queries(queries)

    def search_batch_with_stats(
        self, queries: np.ndarray, config: SearchConfig
    ) -> Tuple[List[List[Tuple[float, int]]], List[SearchStats], RerankPlan]:
        """Full tier pipeline: ``(results, traversal stats, rerank plan)``.

        ``stats`` are the per-lane counters of the *compressed*
        traversal (what the warp replay prices at compressed rates);
        the plan carries the re-rank stage's fetch/compute demand.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        proxy = self.store.encode_queries(queries)
        kprime = self.overfetch_k(config)
        # The proxy arrays are exact L2 carriers for both codecs, so the
        # traversal metric is always L2 regardless of the re-rank metric.
        tcfg = config.with_options(k=kprime, metric="l2")
        candidates, stats = self.searcher.search_batch_with_stats(proxy, tcfg)
        results, plan = self._rerank(queries, candidates, config, kprime)
        return results, stats, plan

    def search_batch(
        self, queries: np.ndarray, config: SearchConfig
    ) -> List[List[Tuple[float, int]]]:
        return self.search_batch_with_stats(queries, config)[0]

    def _rerank(
        self,
        queries: np.ndarray,
        candidates: List[List[Tuple[float, int]]],
        config: SearchConfig,
        kprime: int,
    ) -> Tuple[List[List[Tuple[float, int]]], RerankPlan]:
        """Exact distances over the over-fetched panel; keep top ``k``."""
        num_lanes = len(candidates)
        ids = np.zeros((num_lanes, kprime), dtype=np.int64)
        valid = np.zeros((num_lanes, kprime), dtype=bool)
        for lane, found in enumerate(candidates):
            count = len(found)
            if count:
                ids[lane, :count] = [vertex for _, vertex in found]
                valid[lane, :count] = True
        metric = get_metric(config.metric)
        panel = self.data[ids]  # (B, k', d) full-precision gather
        dists = metric.batch_many(queries, panel).astype(np.float32)
        keys = rerank_sort_keys(dists, ids, valid)
        top = keys[:, : config.k]
        top_dists = unpack_distances(top)
        top_ids = unpack_ids(top)
        results: List[List[Tuple[float, int]]] = []
        page_lists: List[np.ndarray] = []
        for lane in range(num_lanes):
            real = top[lane] != PAD_KEY
            results.append(
                [
                    (float(d), int(v))
                    for d, v in zip(top_dists[lane][real], top_ids[lane][real])
                ]
            )
            lane_pages = rowids_to_pages(ids[lane][valid[lane]], self.page_rows)
            _, first = np.unique(lane_pages, return_index=True)
            page_lists.append(lane_pages[np.sort(first)])
        plan = RerankPlan(
            candidate_counts=valid.sum(axis=1), page_lists=page_lists
        )
        return results, plan
