"""Out-of-core tier: compressed-resident traversal + exact re-ranking.

Serve datasets 10–100× larger than device memory by keeping only a
compressed store (sign-projection signatures or PQ codes) and the graph
on device, traversing it with the lockstep batched engine, and
re-ranking an over-fetched candidate set against the host-resident
full-precision vectors with PCIe-metered, prefetch-overlapped page
fetches.  See ``DESIGN.md`` Sec. 16.
"""

from repro.tiered.cache import PageCache, rowids_to_pages
from repro.tiered.codes import BitCodeStore, PQCodeStore, make_store
from repro.tiered.config import TIER_CODECS, TieredConfig
from repro.tiered.engine import CompressedTraversalEngine, TieredServeEngine
from repro.tiered.index import RerankPlan, TieredIndex

__all__ = [
    "TIER_CODECS",
    "TieredConfig",
    "BitCodeStore",
    "PQCodeStore",
    "make_store",
    "PageCache",
    "rowids_to_pages",
    "RerankPlan",
    "TieredIndex",
    "CompressedTraversalEngine",
    "TieredServeEngine",
]
