"""Host→device paging for full-precision re-rank fetches.

Full-precision vectors live in host memory, grouped into fixed-size
pages of ``page_rows`` rows.  Re-ranking a candidate set means fetching
the pages its rowids fall in; :class:`PageCache` keeps the hottest pages
device-resident (LRU) so repeated candidates skip the PCIe trip, and the
miss list per chunk becomes one coalesced staged transfer the stream
scheduler overlaps with the previous chunk's kernel.

The cache affects *pricing only*: results are computed from the host
array directly, so any cache capacity (including zero) returns
bit-identical results — the invariant the prefetch-parity test pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.annotations import arr, array_kernel, scalar

__all__ = ["rowids_to_pages", "PageCache"]


@array_kernel(
    params={"n": (1, 2**31), "p": (1, 2**20)},
    args={"rowids": arr(lo=0, hi="n-1"), "page_rows": scalar("p")},
    returns=[arr(dtype="int64", lo=0, hi="n-1")],
)
def rowids_to_pages(rowids: np.ndarray, page_rows: int) -> np.ndarray:
    """Map candidate rowids to their page ids (``rowid // page_rows``).

    Dividing a rowid in ``[0, n)`` by a page size ≥ 1 keeps the result
    in ``[0, n)`` — the bound the verifier proves so downstream page
    bookkeeping can index page tables without re-checking.
    """
    return np.asarray(rowids, dtype=np.int64) // np.int64(page_rows)


@dataclass
class PageCache:
    """Deterministic LRU over device-resident full-precision pages.

    ``capacity_pages = 0`` disables caching (every touch misses).  The
    insertion-ordered dict doubles as the recency list: a hit moves the
    page to the back, an insert evicts from the front.
    """

    capacity_pages: int
    _lru: Dict[int, None] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def touch_run(self, pages: np.ndarray) -> Tuple[int, List[int]]:
        """Touch ``pages`` in order; return ``(hits, missed_pages)``.

        Missed pages are admitted (then possibly evicted) in touch
        order, so the whole trace is a pure function of the request
        stream — no clocks, no randomness.
        """
        run_hits = 0
        missed: List[int] = []
        for page in np.asarray(pages, dtype=np.int64).tolist():
            if self.capacity_pages > 0 and page in self._lru:
                del self._lru[page]
                self._lru[page] = None
                run_hits += 1
                continue
            missed.append(page)
            if self.capacity_pages > 0:
                self._lru[page] = None
                while len(self._lru) > self.capacity_pages:
                    del self._lru[next(iter(self._lru))]
        self.hits += run_hits
        self.misses += len(missed)
        return run_hits, missed

    def reset(self) -> None:
        self._lru.clear()
        self.hits = 0
        self.misses = 0
