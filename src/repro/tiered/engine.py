"""Serving engine for the out-of-core tier.

Two classes split the work the same way
:class:`~repro.serve.engine.SimulatedGpuEngine` does:

- :class:`CompressedTraversalEngine` is a ``SimulatedGpuEngine`` whose
  pricing hooks charge *compressed* rates — the warp meter sees the
  store's flops-per-distance (XOR+popcount for signatures, table
  lookups for PQ) and per-point byte size, and query uploads are billed
  at packed-code width, not the float proxy's.
- :class:`TieredServeEngine` is the replica-facing engine: results come
  from the :class:`~repro.tiered.index.TieredIndex` pipeline, pricing
  composes the compressed traversal chunks with the re-rank stage's
  page fetches (coalesced per chunk into one staged PCIe transfer,
  filtered through the LRU :class:`~repro.tiered.cache.PageCache`) and
  the exact-distance re-rank kernel.  With ``prefetch=True`` a batch is
  split into pipeline chunks scheduled on two streams, so chunk ``i+1``'s
  page fetches overlap chunk ``i``'s traversal+re-rank kernel; with
  ``prefetch=False`` everything is one serial chunk — the baseline the
  overlap benchmark gates against.  Results are identical either way;
  only the clock differs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import SearchConfig
from repro.core.gpu_kernel import WarpMeter
from repro.distances import get_metric
from repro.graphs.storage import FixedDegreeGraph
from repro.serve.engine import BatchServiceResult, SimulatedGpuEngine
from repro.simt.pipeline import split_counts
from repro.simt.streams import ChunkWork, StreamScheduler
from repro.simt.warp import Warp
from repro.tiered.cache import PageCache
from repro.tiered.config import TieredConfig
from repro.tiered.index import TieredIndex

__all__ = ["CompressedTraversalEngine", "TieredServeEngine"]

#: Pipeline chunks a prefetching ``run_batch`` splits a batch into.
PREFETCH_CHUNKS = 4


class CompressedTraversalEngine(SimulatedGpuEngine):
    """Counter-replay pricing at the compressed store's rates."""

    def __init__(self, tiered: TieredIndex, name: str = "tier0") -> None:
        super().__init__(
            tiered.graph,
            tiered.store.traversal_data,
            device=tiered.device,
            name=name,
            resident_bytes=tiered.resident_bytes,
        )
        self.store = tiered.store
        # Share the tiered searcher: one lockstep engine, one proxy array.
        self.batched = tiered.searcher

    def _distance_profile(self, config: SearchConfig, dim: int):
        return self.store.flops_per_distance, self.store.cost_dim

    def _chunk_htod_bytes(self, chunk_queries: np.ndarray) -> int:
        return len(chunk_queries) * self.store.query_device_bytes


class TieredServeEngine:
    """Serve batches through the two-tier pipeline on one device.

    Drop-in for :class:`~repro.serve.engine.SimulatedGpuEngine` behind a
    :class:`~repro.serve.router.Replica` (both ``run_batch`` and the
    multi-stream ``chunked_batch`` protocol), so degraded tiers flow
    through the admission ladder untouched — shrinking ``queue_size``
    under load also shrinks the over-fetch panel, which is exactly the
    graceful-degradation behaviour the ladder expects.
    """

    def __init__(
        self,
        graph: FixedDegreeGraph,
        data: np.ndarray,
        tier: TieredConfig,
        device: str = "v100",
        name: str = "tiered0",
        prefetch: bool = True,
    ) -> None:
        self.tiered = TieredIndex(graph, data, tier, device=device)
        self.traversal = CompressedTraversalEngine(self.tiered, name=name)
        self.cache = PageCache(min(tier.cache_pages, self.tiered.num_pages))
        self.name = name
        self.prefetch = prefetch

    @property
    def device(self):
        return self.traversal.device

    # -- pricing ---------------------------------------------------------

    def _rerank_lane_warp(
        self, config: SearchConfig, placement, cand_count: int, dim: int
    ) -> Warp:
        """Meter one lane's exact re-rank: full-dim distances + top-k."""
        metric = get_metric(config.metric)
        warp = Warp(self.device)
        meter = WarpMeter(warp, config, placement, metric.flops_per_distance)
        meter.stage("rerank")
        meter.bulk_distance(max(1, cand_count), dim)
        meter.topk_update(config.k)
        return warp

    def chunked_batch(
        self,
        queries: np.ndarray,
        config: SearchConfig,
        num_chunks: Optional[int] = None,
        max_chunks: int = 1,
    ) -> Tuple[List[List[Tuple[float, int]]], List[ChunkWork], Dict[str, object]]:
        """Search a batch; price it as fetch-overlapped pipeline chunks.

        Each chunk carries (HtoD) its queries' packed signatures plus
        one coalesced staged transfer of the full-precision pages its
        re-rank misses in the cache, (kernel) compressed traversal plus
        the exact re-rank over fetched rows, and (DtoH) the final
        ``k`` results.  The cache is touched in lane order independent
        of the chunking, so results and hit counts are invariant to the
        split — only overlap changes the clock.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        results, stats, plan = self.tiered.search_batch_with_stats(
            queries, config
        )
        kprime = self.tiered.overfetch_k(config)
        tcfg = config.with_options(k=kprime, metric="l2")
        if not self.prefetch:
            num_chunks = 1
        elif num_chunks is None:
            est_htod = (
                len(queries) * self.traversal.store.query_device_bytes
                + plan.total_page_touches * self.tiered.page_bytes
            )
            num_chunks = self.traversal.auto_num_chunks(est_htod, max_chunks)
        proxy = self.tiered.encode_queries(queries)
        chunks, detail = self.traversal.chunk_work(proxy, tcfg, stats, num_chunks)
        cost = self.traversal.index.launcher.cost_model
        placement = self.traversal.index.placement(tcfg)
        warps_per_group = max(1, config.block_size // self.device.warp_size)
        metric_dim = int(self.tiered.data.shape[1])
        counts = split_counts(len(stats), len(chunks)) if len(stats) else [0]
        out_chunks: List[ChunkWork] = []
        kernel_total = htod_total = dtoh_total = 0.0
        fetch_bytes_total = 0
        hits_total = misses_total = 0
        start = 0
        for chunk, count in zip(chunks, counts):
            lane_plans = plan.page_lists[start : start + count]
            lane_counts = plan.candidate_counts[start : start + count]
            start += count
            chunk_hits = 0
            chunk_missed = 0
            for pages in lane_plans:
                hits, missed = self.cache.touch_run(pages)
                chunk_hits += hits
                chunk_missed += len(missed)
            fetch_bytes = chunk_missed * self.tiered.page_bytes
            # With the staging queue, a chunk's misses coalesce into one
            # upload: a single PCIe launch latency plus the pages'
            # bandwidth cost, overlappable with the previous chunk's
            # kernel.  Without it, every missed page is a synchronous
            # demand fetch paying its own launch latency — the
            # serial-fetch baseline the overlap benchmark gates against.
            htod = chunk.htod
            if fetch_bytes:
                if self.prefetch:
                    htod += cost.transfer_time(fetch_bytes)
                else:
                    htod += chunk_missed * cost.transfer_time(
                        self.tiered.page_bytes
                    )
            rerank_cycles: List[float] = []
            rerank_bytes = 0
            for cand_count in lane_counts:
                warp = self._rerank_lane_warp(
                    config, placement, int(cand_count), metric_dim
                )
                rerank_cycles.append(warp.cycles)
                rerank_bytes += warp.memory.total_global_bytes
            rerank_kernel = 0.0
            if rerank_cycles:
                rerank_kernel = cost.kernel_time(
                    rerank_cycles,
                    rerank_bytes,
                    placement.shared_bytes_per_warp,
                    warps_per_group=warps_per_group,
                )
            dtoh = cost.transfer_time(count * config.k * 8)
            out_chunks.append(
                ChunkWork(
                    htod=htod,
                    kernel=chunk.kernel + rerank_kernel,
                    dtoh=dtoh,
                    warps=chunk.warps,
                    label=chunk.label,
                )
            )
            kernel_total += chunk.kernel + rerank_kernel
            htod_total += htod
            dtoh_total += dtoh
            fetch_bytes_total += fetch_bytes
            hits_total += chunk_hits
            misses_total += chunk_missed
        detail.update(
            kernel_seconds=kernel_total,
            htod_seconds=htod_total,
            dtoh_seconds=dtoh_total,
            num_chunks=len(out_chunks),
            tier={
                "codec": self.tiered.tier.codec,
                "overfetch_k": kprime,
                "rerank_rows": plan.total_candidates,
                "page_hits": hits_total,
                "page_misses": misses_total,
                "fetch_bytes": fetch_bytes_total,
                "resident_bytes": self.tiered.resident_bytes,
                "compression_ratio": self.tiered.compression_ratio(),
                "prefetch": self.prefetch,
            },
        )
        return results, out_chunks, detail

    def run_batch(
        self, queries: np.ndarray, config: SearchConfig
    ) -> BatchServiceResult:
        """Search a batch; overlap fetches with compute when prefetching."""
        max_chunks = PREFETCH_CHUNKS if self.prefetch else 1
        results, chunks, detail = self.chunked_batch(
            queries, config, max_chunks=max_chunks
        )
        if len(chunks) > 1:
            timeline = StreamScheduler(num_streams=2, device=self.device).schedule_chunks(chunks)
            seconds = timeline.makespan
            detail["overlap_gain"] = timeline.overlap_gain()
        else:
            seconds = sum(c.htod + c.kernel + c.dtoh for c in chunks)
        return BatchServiceResult(results, seconds, detail)
