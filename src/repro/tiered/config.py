"""Configuration for the out-of-core two-tier pipeline.

One frozen dataclass describes everything the tier needs: which codec
compresses the device-resident store (sign-projection bit signatures or
product-quantization codes), how aggressively traversal over-fetches
candidates for the exact re-rank, and how host↔device paging is laid out
(page size, hot-page cache capacity, prefetch on/off).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Supported compressed-store codecs.
TIER_CODECS = ("bits", "pq")


@dataclass(frozen=True)
class TieredConfig:
    """Knobs for the compressed-traversal + exact-re-rank tier.

    Attributes
    ----------
    codec:
        ``"bits"`` — 1-bit sign random projections
        (:class:`~repro.hashing.random_projection.SignRandomProjection`,
        the paper's Sec. V hashing, Hamming traversal) or ``"pq"`` —
        product quantization (:class:`~repro.baselines.pq.ProductQuantizer`,
        ADC traversal).
    num_bits:
        Signature length for the ``bits`` codec (multiple of 32).
    distribution:
        Projection distribution for the ``bits`` codec.
    pq_m / pq_ksub:
        Sub-quantizer count and centroids per sub-space for ``pq``.
    overfetch:
        Candidates fetched per requested ``k``: traversal returns
        ``min(queue_size, overfetch * k)`` approximate candidates which
        the re-rank stage scores exactly.  1 disables over-fetching.
    page_rows:
        Full-precision vectors per transfer page.  Re-rank fetches whole
        pages over PCIe, so larger pages amortize transfer latency but
        waste bandwidth on unused rows.
    cache_pages:
        Device-resident hot-page capacity of the LRU cache (0 disables
        caching).  Charged against the capacity ledger.
    seed:
        Codec training / projection seed.
    """

    codec: str = "bits"
    num_bits: int = 128
    distribution: str = "gaussian"
    pq_m: int = 8
    pq_ksub: int = 16
    overfetch: int = 4
    page_rows: int = 64
    cache_pages: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if self.codec not in TIER_CODECS:
            raise ValueError(
                f"codec must be one of {TIER_CODECS}, got {self.codec!r}"
            )
        if self.num_bits <= 0 or self.num_bits % 32 != 0:
            raise ValueError("num_bits must be a positive multiple of 32")
        if self.pq_m <= 0:
            raise ValueError("pq_m must be positive")
        if not 1 <= self.pq_ksub <= 256:
            raise ValueError("pq_ksub must be in [1, 256]")
        if self.overfetch < 1:
            raise ValueError("overfetch must be >= 1")
        if self.page_rows < 1:
            raise ValueError("page_rows must be >= 1")
        if self.cache_pages < 0:
            raise ValueError("cache_pages must be >= 0")

    def with_options(self, **kwargs) -> "TieredConfig":
        """A copy with selected fields replaced."""
        return replace(self, **kwargs)
