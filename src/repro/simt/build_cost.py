"""Construction-side SIMT cost accounting.

Search time already flows through :class:`~repro.simt.cost.CostModel` (the
serving layer replays per-lane counters onto fresh
:class:`~repro.simt.warp.Warp` meters — see
``SimulatedGpuEngine._replay_lane``).  Construction, until now, only
reported wall clock, which measures the Python interpreter rather than the
algorithm.  This module closes that gap: builders record the *bulk
operations* their batched kernels would launch on a GPU — pair-distance
tiles, packed-key row sorts/merges, scattered candidate gathers, adjacency
writes — and a :class:`BuildCostRecorder` prices each as a uniform-warp
kernel launch through the same roofline model searches use, plus a
single-core CPU estimate from the same counted work.  That puts build time
on the paper-shaped GPU/CPU comparison axis next to Figs. 13/15 instead of
leaving it in interpreter-seconds.

Every recorded phase maps one bulk numpy operation in the builder to one
hypothetical kernel: the warp-level cost of a *unit* of work (one pair,
one row) is metered on a representative :class:`Warp`, and
:meth:`CostModel.kernel_time_uniform` scales it to the launch width.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.simt.cost import CostModel
from repro.simt.device import DeviceSpec, get_device
from repro.simt.warp import Warp

__all__ = [
    "BuildCostRecorder",
    "BuildPhaseCost",
    "maybe_recorder",
    "FLOAT_BYTES",
    "KEY_BYTES",
]

#: Bytes per stored float32 component / packed uint64 key.
FLOAT_BYTES = 4
KEY_BYTES = 8


@dataclass
class BuildPhaseCost:
    """One recorded construction kernel launch."""

    name: str
    per_warp_cycles: float
    num_warps: int
    global_bytes: int
    flops: float = 0.0
    seq_ops: float = 0.0

    @property
    def total_cycles(self) -> float:
        return self.per_warp_cycles * self.num_warps


@dataclass
class BuildCostRecorder:
    """Accumulates a build's bulk-kernel work and prices it.

    Builders call the ``record_*`` methods at each vectorized step; the
    recorder meters one warp's share on a fresh :class:`Warp` and stores a
    :class:`BuildPhaseCost` per call.  :meth:`device_seconds` prices every
    phase as its own kernel launch (uniform warps) and sums;
    :meth:`cpu_seconds` prices the same flop/sequential/byte counts on a
    single-core :class:`~repro.core.machine.CpuModel`.
    """

    device: str = "v100"
    #: CPU pricing model; ``None`` resolves to
    #: :data:`repro.core.machine.DEFAULT_CPU` (imported lazily — ``simt``
    #: sits below ``core`` in the package graph).
    cpu: Optional[object] = None
    phases: List[BuildPhaseCost] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.spec: DeviceSpec = get_device(self.device)
        self._cost = CostModel(self.spec)
        if self.cpu is None:
            from repro.core.machine import DEFAULT_CPU

            self.cpu = DEFAULT_CPU

    # -- recording -----------------------------------------------------------

    def record_distances(
        self, count: int, flops_per_distance: int, dim: int, name: str = "distance"
    ) -> None:
        """A pair/panel distance kernel: one warp reduces one distance.

        Charges the warp-parallel inner product (``flops`` spread over 32
        lanes plus a shuffle-tree reduction) and the coalesced read of the
        two operand vectors.
        """
        if count <= 0:
            return
        warp = Warp(self.spec)
        vec_bytes = 2 * dim * FLOAT_BYTES
        warp.global_read_coalesced(vec_bytes)
        warp.simd_compute(flops_per_distance)
        warp.warp_reduce(1)
        self.phases.append(
            BuildPhaseCost(
                name=name,
                per_warp_cycles=warp.cycles,
                num_warps=count,
                global_bytes=count * vec_bytes,
                flops=float(count) * flops_per_distance,
            )
        )

    def record_sort(self, rows: int, width: int, name: str = "sort") -> None:
        """A row-wise packed-key sort/merge: one warp sorts one row.

        Modeled as a shared-memory bitonic sort — ``width·log2²(width)``
        compare-exchanges per row — bracketed by one coalesced read and
        write of the row's keys.
        """
        if rows <= 0 or width <= 1:
            return
        warp = Warp(self.spec)
        row_bytes = width * KEY_BYTES
        warp.global_read_coalesced(row_bytes)
        log_w = max(1, math.ceil(math.log2(width)))
        warp.simd_compute(width * log_w * log_w)
        warp.shared_access(width * log_w)
        self.phases.append(
            BuildPhaseCost(
                name=name,
                per_warp_cycles=warp.cycles,
                num_warps=rows,
                # read + write-back of every key
                global_bytes=rows * 2 * row_bytes,
                # CPU comparison sort: n·log n compares per row
                seq_ops=float(rows) * width * log_w,
            )
        )

    def record_flat_sort(self, count: int, name: str = "radix-sort") -> None:
        """A global radix sort of ``count`` packed 64-bit keys.

        Modeled as a 4-pass LSD radix sort: every pass streams all keys
        through coalesced reads and writes (one warp moves 32 keys per
        pass).  The CPU twin is an ``n·log n`` comparison sort.
        """
        if count <= 1:
            return
        passes = 4
        warp = Warp(self.spec)
        chunk = self.spec.warp_size
        warp.global_read_coalesced(chunk * KEY_BYTES * passes)
        warp.simd_compute(chunk * passes)
        num_warps = (count + chunk - 1) // chunk
        self.phases.append(
            BuildPhaseCost(
                name=name,
                per_warp_cycles=warp.cycles,
                num_warps=num_warps,
                global_bytes=count * KEY_BYTES * 2 * passes,
                seq_ops=float(count) * max(1, math.ceil(math.log2(count))),
            )
        )

    def record_search(
        self,
        iterations: int,
        distances: int,
        degree: int,
        flops_per_distance: int,
        dim: int,
        queue_width: int,
        name: str = "search",
    ) -> None:
        """Aggregate counters of a batched candidate-pool search.

        Composes the primitives the lockstep engine's rounds map to: the
        bulk-distance kernel for every computed distance, a scattered
        adjacency-row gather per popped vertex, and one bounded-queue
        merge (row sort of ``queue_width`` keys) per iteration — the same
        three stages :class:`~repro.core.gpu_kernel.WarpMeter` charges at
        query time.
        """
        if iterations <= 0:
            return
        self.record_distances(distances, flops_per_distance, dim, f"{name}-dist")
        self.record_gather(iterations * degree, FLOAT_BYTES, f"{name}-rows")
        self.record_sort(iterations, max(2, queue_width), f"{name}-queue")

    def record_gather(
        self, count: int, bytes_per_element: int = FLOAT_BYTES, name: str = "gather"
    ) -> None:
        """A scattered gather/scatter of ``count`` elements.

        One warp serves 32 elements with uncoalesced transactions — the
        cost of indexing candidate ids into the dataset or adjacency.
        """
        if count <= 0:
            return
        warp = Warp(self.spec)
        accesses = self.spec.warp_size
        warp.global_read_scattered(accesses)
        num_warps = (count + accesses - 1) // accesses
        self.phases.append(
            BuildPhaseCost(
                name=name,
                per_warp_cycles=warp.cycles,
                num_warps=num_warps,
                global_bytes=count * bytes_per_element,
                seq_ops=float(count),
            )
        )

    def record_graph_write(self, edges: int, name: str = "write-graph") -> None:
        """Coalesced write-back of the packed adjacency rows."""
        if edges <= 0:
            return
        warp = Warp(self.spec)
        row_bytes = self.spec.warp_size * FLOAT_BYTES
        warp.global_read_coalesced(row_bytes)
        num_warps = (edges + self.spec.warp_size - 1) // self.spec.warp_size
        self.phases.append(
            BuildPhaseCost(
                name=name,
                per_warp_cycles=warp.cycles,
                num_warps=num_warps,
                global_bytes=edges * FLOAT_BYTES,
            )
        )

    # -- pricing -------------------------------------------------------------

    def device_seconds(self) -> float:
        """Modeled GPU seconds: each phase priced as one kernel launch."""
        return sum(
            self._cost.kernel_time_uniform(
                p.per_warp_cycles, p.num_warps, p.global_bytes
            )
            for p in self.phases
        )

    def device_cycles(self) -> float:
        """Total warp-cycles across every recorded phase."""
        return sum(p.total_cycles for p in self.phases)

    def cpu_seconds(self) -> float:
        """Single-core seconds for the same counted work.

        Prices flops at the CPU's sustained throughput, per-element
        shuffle/sort work as sequential ops, and the global traffic at
        single-core memory bandwidth — the construction twin of
        :meth:`CpuModel.seconds`.
        """
        flops = sum(p.flops for p in self.phases)
        seq = sum(p.seq_ops for p in self.phases)
        bytes_moved = sum(p.global_bytes for p in self.phases)
        return (
            flops / self.cpu.flops_per_second
            + seq * self.cpu.seq_op_seconds
            + bytes_moved / self.cpu.bytes_per_second
        )

    def phase_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-phase-name totals (cycles, bytes, launches)."""
        out: Dict[str, Dict[str, float]] = {}
        for p in self.phases:
            agg = out.setdefault(
                p.name, {"cycles": 0.0, "bytes": 0.0, "launches": 0.0}
            )
            agg["cycles"] += p.total_cycles
            agg["bytes"] += p.global_bytes
            agg["launches"] += 1.0
        return out

    def summary(self) -> Dict[str, object]:
        """Headline numbers for benchmark artifacts."""
        return {
            "device": self.spec.name,
            "device_seconds": self.device_seconds(),
            "device_cycles": self.device_cycles(),
            "cpu_seconds": self.cpu_seconds(),
            "gpu_speedup_modeled": (
                self.cpu_seconds() / self.device_seconds()
                if self.device_seconds() > 0
                else float("inf")
            ),
            "phases": self.phase_summary(),
        }


def maybe_recorder(cost: Optional[BuildCostRecorder]) -> "_NullRecorder":
    """``cost`` itself, or a no-op stand-in when ``None``.

    Lets builders write unconditional ``cost.record_*`` calls on hot
    paths without per-call ``if`` guards.
    """
    return cost if cost is not None else _NULL


class _NullRecorder:
    """Swallows every ``record_*`` call; used when no recorder is attached."""

    @staticmethod
    def _noop(*args, **kwargs) -> None:
        return None

    def __getattr__(self, name: str):
        if name.startswith("record_"):
            return self._noop
        raise AttributeError(name)


_NULL = _NullRecorder()
