"""GPU hardware parameters.

Presets correspond to the three cards of the paper's Fig. 13.  Numbers are
public datasheet values; the cost model only ever uses them in ratios, so
the reproduction depends on their relative ordering rather than absolute
precision.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a CUDA-style device.

    Attributes
    ----------
    name:
        Marketing name.
    num_sms:
        Streaming multiprocessors.
    cores_per_sm:
        FP32 lanes per SM.
    clock_ghz:
        Sustained SM clock.
    global_bandwidth_gbs:
        Global-memory bandwidth (GB/s).
    global_memory_gb:
        Global-memory capacity.
    shared_mem_per_sm_kb:
        Shared-memory/L1 capacity per SM (the configurable pool).
    max_warps_per_sm:
        Hardware resident-warp ceiling per SM.
    warp_size:
        Threads per warp (32 on every NVIDIA part).
    pcie_bandwidth_gbs:
        Host↔device transfer bandwidth.
    pcie_latency_us:
        Fixed per-transfer launch latency.
    seq_op_cycles:
        Cycles charged per sequential (single-lane) data-structure
        operation — heap sift step, hash probe, etc.
    global_latency_cycles:
        Latency of an uncovered global-memory transaction.
    memory_budget_gb:
        Optional cap on the bytes an index may declare device-resident.
        ``None`` means the full ``global_memory_gb`` is available; the
        out-of-core tier shrinks it to simulate datasets 10–100× larger
        than the card without materialising them.
    """

    name: str
    num_sms: int
    cores_per_sm: int
    clock_ghz: float
    global_bandwidth_gbs: float
    global_memory_gb: float
    shared_mem_per_sm_kb: int = 96
    max_warps_per_sm: int = 64
    warp_size: int = 32
    pcie_bandwidth_gbs: float = 12.0
    pcie_latency_us: float = 10.0
    seq_op_cycles: int = 20
    global_latency_cycles: int = 400
    memory_budget_gb: Optional[float] = None

    @property
    def memory_gb(self) -> float:
        """Effective capacity: the budget override, else the full card."""
        if self.memory_budget_gb is not None:
            return self.memory_budget_gb
        return self.global_memory_gb

    @property
    def memory_bytes(self) -> int:
        return int(self.memory_gb * 1024**3)

    @property
    def total_cores(self) -> int:
        return self.num_sms * self.cores_per_sm

    @property
    def clock_hz(self) -> float:
        return self.clock_ghz * 1e9

    @property
    def warp_slots_per_sm(self) -> int:
        """Warp instructions an SM can issue per cycle."""
        return max(1, self.cores_per_sm // self.warp_size)

    @property
    def peak_warp_throughput(self) -> float:
        """Warp-instructions per second across the whole device."""
        return self.num_sms * self.warp_slots_per_sm * self.clock_hz

    def with_overrides(self, **kwargs) -> "DeviceSpec":
        """A copy with selected fields replaced (for ablations)."""
        return replace(self, **kwargs)


#: The three GPUs of the paper's Fig. 13.
DEVICE_PRESETS: Dict[str, DeviceSpec] = {
    "v100": DeviceSpec(
        name="NVIDIA TESLA V100",
        num_sms=80,
        cores_per_sm=64,
        clock_ghz=1.53,
        global_bandwidth_gbs=900.0,
        global_memory_gb=32.0,
        shared_mem_per_sm_kb=96,
    ),
    "p40": DeviceSpec(
        name="NVIDIA TESLA P40",
        num_sms=30,
        cores_per_sm=128,
        clock_ghz=1.53,
        global_bandwidth_gbs=346.0,
        global_memory_gb=24.0,
        shared_mem_per_sm_kb=64,
    ),
    "titanx": DeviceSpec(
        name="NVIDIA TITAN X (Pascal)",
        num_sms=28,
        cores_per_sm=128,
        clock_ghz=1.42,
        global_bandwidth_gbs=480.0,
        global_memory_gb=12.0,
        shared_mem_per_sm_kb=64,
    ),
}


def get_device(name: str = "v100") -> DeviceSpec:
    """Look up a preset by key (``v100``, ``p40``, ``titanx``)."""
    if isinstance(name, DeviceSpec):
        return name
    key = name.lower().replace(" ", "").replace("_", "")
    if key not in DEVICE_PRESETS:
        raise KeyError(
            f"unknown device {name!r}; presets: {sorted(DEVICE_PRESETS)}"
        )
    return DEVICE_PRESETS[key]
