"""Multi-stream device occupancy: CUDA-stream scheduling of copies and kernels.

:mod:`repro.simt.pipeline` models double buffering analytically with a
closed-form recurrence (one copy engine per direction, one compute
engine, chunks pipelined in order).  That form cannot express what the
serving layer needs: several *batches* in flight on one device at once,
kernels genuinely sharing SM capacity, and snapshot copies contending
with search traffic on the DtoH engine.  This module generalizes it into
an explicit stream model:

- **Streams** are FIFO queues of operations: two ops on the same stream
  never overlap, exactly as on hardware.  Cross-stream ordering exists
  only through explicit event dependencies (``StreamOp.deps``) — a
  kernel consuming a buffer staged by an HtoD on *another* stream must
  name that HtoD as a dependency, or the schedule has a hazard (the
  :mod:`repro.analysis.streams` checker flags exactly this).
- **Engines**: one HtoD copy engine, one DtoH copy engine, and the SM
  array — the resources every discrete NVIDIA part since Fermi exposes.
  Copy engines serve their ops *in submission order*; this keeps the
  schedule free of list-scheduling anomalies, so the makespan is
  provably monotone non-increasing in the stream count (tested as a
  property in ``tests/test_streams.py``).
- **SM-capacity sharing** (:class:`DeviceTimeline` only): concurrent
  kernels slow each other by the resident-warp ratio — while the warps
  demanded by the overlapping kernels exceed the device's resident-warp
  capacity, every active kernel's progress rate drops by
  ``capacity / demand``, per-segment, the same ``max(compute, load)``
  tile accounting style as the systolic-array simulators.  Small-batch
  search kernels demand a few warps of a many-thousand-warp device
  (the paper's Fig. 11 underutilization), so they overlap almost freely;
  saturating kernels serialize.

Two entry points share the op model:

- :class:`StreamScheduler` — *offline*: schedule a fixed op list (e.g. a
  double-buffered chunk split) from ``t = 0`` with an exclusive compute
  engine.  With one chunk per stream it reproduces
  :func:`repro.simt.pipeline.pipelined_time` bit-for-bit — the
  regression pin the ablation benchmark carries.
- :class:`DeviceTimeline` — *online*: a persistent per-replica ledger in
  event-loop time.  Batches are committed as they are dispatched; a
  newly submitted kernel is slowed by the kernels already resident
  (incumbents keep their committed finish times — contention here is
  one-sided, which keeps the model causal and the virtual-clock replay
  bit-identical across runs).

Every schedule is a deterministic function of the submitted ops: no
randomness, no wall clock, stable tie-breaking by submission order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.simt.device import DeviceSpec, get_device

__all__ = [
    "HTOD",
    "KERNEL",
    "DTOH",
    "ENGINE_KINDS",
    "ChunkWork",
    "StreamOp",
    "OpSchedule",
    "StreamTimeline",
    "StreamScheduler",
    "double_buffer_ops",
    "copy_stream_ops",
    "BatchSchedule",
    "DeviceTimeline",
]

#: Operation kinds — one per device engine.
HTOD, KERNEL, DTOH = "htod", "kernel", "dtoh"
ENGINE_KINDS = (HTOD, KERNEL, DTOH)


@dataclass(frozen=True)
class ChunkWork:
    """One chunk's priced work: transfer and kernel seconds plus warp demand.

    Field names match :class:`repro.simt.pipeline.ChunkTiming`, so either
    type schedules interchangeably; ``warps`` is the kernel's resident
    warp demand (the SM-capacity-sharing input, defaulting to one warp).
    """

    htod: float
    kernel: float
    dtoh: float
    warps: int = 1
    label: str = ""


@dataclass(frozen=True)
class StreamOp:
    """One operation on one stream.

    ``deps`` are event dependencies on earlier ops (by ``op_id``) —
    the cross-stream ordering edges.  ``reads``/``writes`` name the
    buffers the op touches; the stream-hazard checker uses them to prove
    every consumer is ordered after its producer.
    """

    op_id: int
    kind: str
    seconds: float
    stream: int
    warps: int = 1
    deps: Tuple[int, ...] = ()
    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()
    label: str = ""


@dataclass(frozen=True)
class OpSchedule:
    """A scheduled op: when it started and finished."""

    op: StreamOp
    start: float
    finish: float


@dataclass
class StreamTimeline:
    """A complete schedule: per-op times plus derived occupancy views."""

    ops: List[OpSchedule]
    makespan: float
    engine_busy: Dict[str, float]
    stream_busy: Dict[int, float]

    @property
    def serial_seconds(self) -> float:
        """What the schedule would cost with zero overlap (sum of busy)."""
        return sum(self.engine_busy.values())

    def overlap_gain(self) -> float:
        """Serial time over makespan — the double-buffering speedup."""
        if self.makespan <= 0.0:
            return 1.0
        return self.serial_seconds / self.makespan

    def overlap_efficiency(self) -> float:
        """Busy engine-seconds per makespan second (1 = no overlap, 3 = all
        three engines saturated)."""
        if self.makespan <= 0.0:
            return 0.0
        return self.serial_seconds / self.makespan

    def transfer_hidden_fraction(self) -> float:
        """Fraction of transfer time hidden behind other engines' work."""
        transfers = self.engine_busy.get(HTOD, 0.0) + self.engine_busy.get(DTOH, 0.0)
        if transfers <= 0.0 or self.makespan <= 0.0:
            return 0.0
        hidden = self.serial_seconds - self.makespan
        return min(1.0, max(0.0, hidden / transfers))

    def stream_occupancy(self) -> Dict[int, float]:
        """Per-stream busy fraction of the makespan."""
        if self.makespan <= 0.0:
            return {s: 0.0 for s in self.stream_busy}
        return {s: b / self.makespan for s, b in sorted(self.stream_busy.items())}


def double_buffer_ops(
    chunks: Sequence, num_streams: int, base_op_id: int = 0
) -> List[StreamOp]:
    """The canonical double-buffer program: chunk ``i`` on stream ``i % S``.

    Each chunk is an HtoD → kernel → DtoH chain on one stream with
    explicit event deps (the chain is hazard-free by construction:
    producers and consumers share a stream *and* carry the event edge).
    ``chunks`` is any sequence with ``htod``/``kernel``/``dtoh`` fields
    (:class:`ChunkWork` or :class:`~repro.simt.pipeline.ChunkTiming`).
    """
    if num_streams <= 0:
        raise ValueError("num_streams must be positive")
    ops: List[StreamOp] = []
    oid = base_op_id
    for i, chunk in enumerate(chunks):
        stream = i % num_streams
        staged, result = f"chunk{i}.queries", f"chunk{i}.topk"
        htod = StreamOp(
            oid, HTOD, chunk.htod, stream, writes=(staged,), label=f"htod[{i}]"
        )
        kernel = StreamOp(
            oid + 1,
            KERNEL,
            chunk.kernel,
            stream,
            warps=getattr(chunk, "warps", 1),
            deps=(htod.op_id,),
            reads=(staged,),
            writes=(result,),
            label=f"kernel[{i}]",
        )
        dtoh = StreamOp(
            oid + 2,
            DTOH,
            chunk.dtoh,
            stream,
            deps=(kernel.op_id,),
            reads=(result,),
            label=f"dtoh[{i}]",
        )
        ops.extend((htod, kernel, dtoh))
        oid += 3
    return ops


def copy_stream_ops(
    chunks: Sequence, num_streams: int, with_events: bool = True
) -> List[StreamOp]:
    """A dedicated-copy-stream program: transfers on stream 0, kernels on 1+.

    The classic CUDA structure where one stream feeds the copy engines
    and compute streams consume via events.  With ``with_events=False``
    the kernels drop their event dependency on the cross-stream HtoD —
    the textbook stream hazard the analysis checker must flag (this is
    the known-bad fixture shape).
    """
    if num_streams < 2:
        raise ValueError("copy-stream layout needs at least two streams")
    ops: List[StreamOp] = []
    oid = 0
    for i, chunk in enumerate(chunks):
        compute_stream = 1 + i % (num_streams - 1)
        staged, result = f"chunk{i}.queries", f"chunk{i}.topk"
        htod = StreamOp(
            oid, HTOD, chunk.htod, 0, writes=(staged,), label=f"htod[{i}]"
        )
        kernel = StreamOp(
            oid + 1,
            KERNEL,
            chunk.kernel,
            compute_stream,
            warps=getattr(chunk, "warps", 1),
            deps=(htod.op_id,) if with_events else (),
            reads=(staged,),
            writes=(result,),
            label=f"kernel[{i}]",
        )
        dtoh = StreamOp(
            oid + 2,
            DTOH,
            chunk.dtoh,
            0,
            deps=(kernel.op_id,),
            reads=(result,),
            label=f"dtoh[{i}]",
        )
        ops.extend((htod, kernel, dtoh))
        oid += 3
    return ops


class StreamScheduler:
    """Offline event-ordered scheduling of a stream program from ``t = 0``.

    Engines are in-order (each serves its ops in submission order) and
    the compute engine is exclusive — one kernel at a time — which is
    the conservative model the double-buffer ablation and its regression
    pins use.  Capacity-shared concurrency lives in
    :class:`DeviceTimeline`.

    Parameters
    ----------
    num_streams:
        Streams available to :meth:`schedule_chunks` (chunk ``i`` goes to
        stream ``i % num_streams``).  :meth:`schedule` takes the stream
        assignment from the ops themselves.
    device:
        Optional :class:`~repro.simt.device.DeviceSpec` or preset name,
        recorded for reports; the offline schedule itself is in seconds
        and needs no hardware parameters.
    """

    def __init__(self, num_streams: int = 1, device=None) -> None:
        if num_streams <= 0:
            raise ValueError("num_streams must be positive")
        self.num_streams = int(num_streams)
        self.device: Optional[DeviceSpec] = (
            get_device(device) if device is not None else None
        )

    def schedule(self, ops: Sequence[StreamOp]) -> StreamTimeline:
        """Schedule ``ops`` (in submission order) onto streams + engines.

        Start rule for op ``o``: after its stream's previous op, after
        every event dependency, and after the previous op on its engine
        (in-order engines).  Deterministic; raises on negative durations,
        unknown kinds, or forward/unknown dependencies.
        """
        engine_free: Dict[str, float] = {kind: 0.0 for kind in ENGINE_KINDS}
        stream_free: Dict[int, float] = {}
        finish_at: Dict[int, float] = {}
        engine_busy: Dict[str, float] = {kind: 0.0 for kind in ENGINE_KINDS}
        stream_busy: Dict[int, float] = {}
        scheduled: List[OpSchedule] = []
        makespan = 0.0
        for op in ops:
            if op.kind not in ENGINE_KINDS:
                raise ValueError(f"unknown op kind {op.kind!r}")
            if op.seconds < 0:
                raise ValueError("op durations must be non-negative")
            if op.op_id in finish_at:
                raise ValueError(f"duplicate op_id {op.op_id}")
            ready = stream_free.get(op.stream, 0.0)
            for dep in op.deps:
                if dep not in finish_at:
                    raise ValueError(
                        f"op {op.op_id} depends on unknown/later op {dep}"
                    )
                ready = max(ready, finish_at[dep])
            start = max(ready, engine_free[op.kind])
            finish = start + op.seconds
            engine_free[op.kind] = finish
            stream_free[op.stream] = finish
            finish_at[op.op_id] = finish
            engine_busy[op.kind] += op.seconds
            stream_busy[op.stream] = stream_busy.get(op.stream, 0.0) + op.seconds
            makespan = max(makespan, finish)
            scheduled.append(OpSchedule(op, start, finish))
        return StreamTimeline(scheduled, makespan, engine_busy, stream_busy)

    def schedule_chunks(self, chunks: Sequence) -> StreamTimeline:
        """Schedule a double-buffered chunk split over ``num_streams``.

        With ``num_streams >= len(chunks)`` this is bit-identical to
        :func:`repro.simt.pipeline.pipelined_time`; with one stream every
        op serializes (the paper's synchronous execution).
        """
        return self.schedule(double_buffer_ops(chunks, self.num_streams))


@dataclass
class BatchSchedule:
    """One batch's committed schedule on a :class:`DeviceTimeline`."""

    submit_s: float
    finish_s: float
    htod_s: float
    kernel_s: float
    dtoh_s: float
    kernel_slowdown: float
    streams: Tuple[int, ...]
    ops: List[OpSchedule] = field(default_factory=list)

    @property
    def makespan_s(self) -> float:
        """Submit-to-finish span on the device."""
        return self.finish_s - self.submit_s

    @property
    def serial_s(self) -> float:
        """What the legacy serial accounting would have charged."""
        return self.htod_s + self.kernel_s + self.dtoh_s

    def to_dict(self) -> Dict[str, object]:
        """Deterministically rounded JSON-able view."""
        return {
            "htod_s": round(self.htod_s, 12),
            "kernel_s": round(self.kernel_s, 12),
            "dtoh_s": round(self.dtoh_s, 12),
            "makespan_s": round(self.makespan_s, 12),
            "serial_s": round(self.serial_s, 12),
            "kernel_slowdown": round(self.kernel_slowdown, 9),
            "streams": list(self.streams),
        }


class DeviceTimeline:
    """Online per-device ledger: streams, copy engines, shared SM capacity.

    The serving layer's replacement for "one lock per replica".  Batches
    are submitted at event-loop timestamps as they are dispatched; each
    submission is scheduled against the committed state (engine free
    times, resident kernels) and immediately committed, so the device's
    history is append-only and replays bit-identically on the virtual
    clock.  Contention is one-sided by design: a new kernel is slowed by
    the resident-warp load of already-committed kernels, but committed
    finish times never move — the causal approximation that keeps
    ``asyncio.sleep`` charges immutable once issued.
    """

    def __init__(self, device, num_streams: int) -> None:
        if num_streams <= 0:
            raise ValueError("num_streams must be positive")
        self.device: DeviceSpec = get_device(device)
        self.num_streams = int(num_streams)
        #: Resident-warp capacity of the whole SM array.
        self.capacity_warps = self.device.num_sms * self.device.max_warps_per_sm
        self._htod_free = 0.0
        self._dtoh_free = 0.0
        self._stream_free = [0.0] * self.num_streams
        self._resident: List[Tuple[float, float, int]] = []
        self._op_id = 0
        # Occupancy accounting.
        self.batches = 0
        self._busy: Dict[str, float] = {kind: 0.0 for kind in ENGINE_KINDS}
        self._stream_busy = [0.0] * self.num_streams
        self._first_submit: Optional[float] = None
        self._last_finish = 0.0
        self._compute_union = 0.0
        self._compute_watermark = 0.0

    # -- scheduling ------------------------------------------------------

    def _pick_stream(self) -> int:
        """Earliest-free stream, ties broken by lowest index."""
        best = 0
        for s in range(1, self.num_streams):
            if self._stream_free[s] < self._stream_free[best]:
                best = s
        return best

    def _kernel_finish(
        self, start: float, work: float, warps: int
    ) -> Tuple[float, float]:
        """Finish time of a kernel starting at ``start`` under sharing.

        Sweeps the committed residency step function: in any segment
        where resident + own demand exceeds capacity, progress slows by
        the demand ratio.  Returns ``(finish, worst_slowdown)``.
        """
        if work <= 0.0:
            return start, 1.0
        boundaries = sorted(
            {t for (s, e, _) in self._resident for t in (s, e) if t > start}
        )
        t = start
        remaining = work
        worst = 1.0
        for edge in boundaries + [None]:
            load = warps + sum(
                w for (s, e, w) in self._resident if s <= t < e
            )
            factor = max(1.0, load / self.capacity_warps)
            if edge is None:
                return t + remaining * factor, max(worst, factor)
            span = edge - t
            progress = span / factor
            if remaining <= progress:
                return t + remaining * factor, max(worst, factor)
            worst = max(worst, factor)
            remaining -= progress
            t = edge
        return t, worst  # pragma: no cover - loop always returns

    def _commit_kernel(self, start: float, finish: float, warps: int) -> None:
        self._resident.append((start, finish, warps))
        # Busy-union watermark: kernel starts are non-decreasing across
        # submissions (each waits on the in-order HtoD engine), so the
        # union of residency intervals accumulates with a single
        # watermark instead of an interval merge.
        lo = max(start, self._compute_watermark)
        if finish > lo:
            self._compute_union += finish - lo
            self._compute_watermark = finish
        else:
            self._compute_watermark = max(self._compute_watermark, finish)

    def submit_batch(
        self,
        chunks: Sequence,
        now: float,
        extra_dtoh_s: float = 0.0,
        label: str = "batch",
    ) -> BatchSchedule:
        """Schedule one batch's chunk chains starting no earlier than ``now``.

        ``chunks`` carry ``htod``/``kernel``/``dtoh`` seconds and
        ``warps`` demand.  ``extra_dtoh_s`` charges a snapshot/state copy
        on the DtoH engine *before* the batch's own transfers — the
        online-index snapshot cost contending with search streams.
        Returns the committed :class:`BatchSchedule`; the caller sleeps
        until ``finish_s``.
        """
        if now < 0.0:
            raise ValueError("now must be non-negative")
        if self._first_submit is None:
            self._first_submit = now
        # Kernels that ended before ``now`` can never overlap new work.
        self._resident = [(s, e, w) for (s, e, w) in self._resident if e > now]
        ops: List[OpSchedule] = []
        streams_used: List[int] = []
        htod_sum = kernel_sum = dtoh_sum = 0.0
        worst_slowdown = 1.0
        finish = now
        if extra_dtoh_s > 0.0:
            start = max(now, self._dtoh_free)
            end = start + extra_dtoh_s
            self._dtoh_free = end
            self._busy[DTOH] += extra_dtoh_s
            op = StreamOp(
                self._op_id,
                DTOH,
                extra_dtoh_s,
                -1,
                reads=("snapshot",),
                label=f"{label}.snapshot-dtoh",
            )
            self._op_id += 1
            ops.append(OpSchedule(op, start, end))
            finish = max(finish, end)
        for i, chunk in enumerate(chunks):
            warps = int(getattr(chunk, "warps", 1))
            stream = self._pick_stream()
            streams_used.append(stream)
            staged = f"{label}.chunk{i}.queries"
            result = f"{label}.chunk{i}.topk"
            stream_ready = max(now, self._stream_free[stream])

            h_start = max(stream_ready, self._htod_free)
            h_end = h_start + chunk.htod
            self._htod_free = h_end
            h_op = StreamOp(
                self._op_id,
                HTOD,
                chunk.htod,
                stream,
                writes=(staged,),
                label=f"{label}.htod[{i}]",
            )
            self._op_id += 1
            ops.append(OpSchedule(h_op, h_start, h_end))

            k_start = h_end
            k_end, slowdown = self._kernel_finish(k_start, chunk.kernel, warps)
            self._commit_kernel(k_start, k_end, warps)
            worst_slowdown = max(worst_slowdown, slowdown)
            k_op = StreamOp(
                self._op_id,
                KERNEL,
                chunk.kernel,
                stream,
                warps=warps,
                deps=(h_op.op_id,),
                reads=(staged,),
                writes=(result,),
                label=f"{label}.kernel[{i}]",
            )
            self._op_id += 1
            ops.append(OpSchedule(k_op, k_start, k_end))

            d_start = max(k_end, self._dtoh_free)
            d_end = d_start + chunk.dtoh
            self._dtoh_free = d_end
            d_op = StreamOp(
                self._op_id,
                DTOH,
                chunk.dtoh,
                stream,
                deps=(k_op.op_id,),
                reads=(result,),
                label=f"{label}.dtoh[{i}]",
            )
            self._op_id += 1
            ops.append(OpSchedule(d_op, d_start, d_end))

            self._stream_free[stream] = d_end
            self._stream_busy[stream] += chunk.htod + (k_end - k_start) + chunk.dtoh
            htod_sum += chunk.htod
            kernel_sum += chunk.kernel
            dtoh_sum += chunk.dtoh
            finish = max(finish, d_end)
        self.batches += 1
        self._busy[HTOD] += htod_sum
        self._busy[KERNEL] += kernel_sum
        self._busy[DTOH] += dtoh_sum
        self._last_finish = max(self._last_finish, finish)
        return BatchSchedule(
            submit_s=now,
            finish_s=finish,
            htod_s=htod_sum,
            kernel_s=kernel_sum,
            dtoh_s=dtoh_sum,
            kernel_slowdown=worst_slowdown,
            streams=tuple(streams_used),
            ops=ops,
        )

    # -- observability ---------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Occupancy summary over everything committed so far."""
        window = (
            self._last_finish - self._first_submit
            if self._first_submit is not None
            else 0.0
        )
        busy_total = sum(self._busy.values())
        occupancy = [
            (b / window if window > 0.0 else 0.0) for b in self._stream_busy
        ]
        transfers = self._busy[HTOD] + self._busy[DTOH]
        hidden = (
            min(1.0, max(0.0, (busy_total - window) / transfers))
            if transfers > 0.0 and window > 0.0
            else 0.0
        )
        return {
            "streams": self.num_streams,
            "batches": self.batches,
            "window_s": round(window, 9),
            "htod_busy_s": round(self._busy[HTOD], 9),
            "kernel_busy_s": round(self._busy[KERNEL], 9),
            "kernel_engine_s": round(self._compute_union, 9),
            "dtoh_busy_s": round(self._busy[DTOH], 9),
            "stream_occupancy": [round(o, 6) for o in occupancy],
            "overlap_efficiency": round(
                busy_total / window if window > 0.0 else 0.0, 6
            ),
            "transfer_hidden_fraction": round(hidden, 6),
        }
