"""Kernel-time estimation from warp meters.

The launcher aggregates per-warp cycle counts and global-memory traffic;
this module turns them into a kernel time using a roofline-style model:

* **issue-bound time** — total warp-cycles divided by the device's warp
  issue throughput, scaled down when too few warps are resident to fill
  the machine (small batches, low occupancy);
* **bandwidth-bound time** — total global bytes divided by bandwidth;
* **critical-path time** — the longest single warp can never be beaten.

Kernel time is the maximum of the three; PCIe transfers are added by the
profiler around the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.simt.device import DeviceSpec


@dataclass
class CostModel:
    """Analytic timing model for one kernel launch on ``device``."""

    device: DeviceSpec

    def occupancy_warps_per_sm(self, shared_bytes_per_warp: int) -> int:
        """Resident warps one SM can hold given each warp's shared usage."""
        limit = self.device.shared_mem_per_sm_kb * 1024
        if shared_bytes_per_warp <= 0:
            return self.device.max_warps_per_sm
        by_shared = limit // shared_bytes_per_warp
        return int(max(1, min(self.device.max_warps_per_sm, by_shared)))

    def kernel_time(
        self,
        warp_cycles: Sequence[float],
        total_global_bytes: int,
        shared_bytes_per_warp: int = 0,
        warps_per_group: int = 1,
    ) -> float:
        """Estimated kernel seconds for a batch of warp groups.

        Parameters
        ----------
        warp_cycles:
            Cycle count of each warp group (one group serves one query —
            a single warp by default, a multi-warp block when the search
            uses ``block_size > 32``).
        total_global_bytes:
            Global-memory traffic summed over all groups.
        shared_bytes_per_warp:
            Shared-memory footprint per group (occupancy input).
        warps_per_group:
            Warps a group occupies; larger groups reduce how many groups
            an SM can host.
        """
        if not len(warp_cycles):
            return 0.0
        return self._kernel_time(
            num_groups=len(warp_cycles),
            total_cycles=float(sum(warp_cycles)),
            longest=float(max(warp_cycles)),
            total_global_bytes=total_global_bytes,
            shared_bytes_per_warp=shared_bytes_per_warp,
            warps_per_group=warps_per_group,
        )

    def kernel_time_uniform(
        self,
        per_warp_cycles: float,
        num_warps: int,
        total_global_bytes: int,
        shared_bytes_per_warp: int = 0,
        warps_per_group: int = 1,
    ) -> float:
        """:meth:`kernel_time` for ``num_warps`` identical warp groups.

        Construction kernels launch one warp per row/pair tile, so the
        per-group cycle counts are uniform by design; this avoids
        materializing a million-entry cycle list just to sum it.
        """
        if num_warps <= 0 or per_warp_cycles <= 0:
            return 0.0
        return self._kernel_time(
            num_groups=num_warps,
            total_cycles=per_warp_cycles * num_warps,
            longest=per_warp_cycles,
            total_global_bytes=total_global_bytes,
            shared_bytes_per_warp=shared_bytes_per_warp,
            warps_per_group=warps_per_group,
        )

    def _kernel_time(
        self,
        num_groups: int,
        total_cycles: float,
        longest: float,
        total_global_bytes: int,
        shared_bytes_per_warp: int,
        warps_per_group: int,
    ) -> float:
        if warps_per_group <= 0:
            raise ValueError("warps_per_group must be positive")
        device = self.device
        by_shared = self.occupancy_warps_per_sm(shared_bytes_per_warp)
        groups_per_sm = max(
            1, min(device.max_warps_per_sm // warps_per_group, by_shared)
        )
        resident = min(num_groups, device.num_sms * groups_per_sm)
        # Issue throughput scales with how much of the machine the resident
        # groups can feed (each SM issues warp_slots_per_sm instructions/cycle).
        issue_slots = min(
            device.num_sms * device.warp_slots_per_sm,
            max(1, resident),
        )
        issue_time = total_cycles / issue_slots / device.clock_hz
        bandwidth_time = total_global_bytes / (device.global_bandwidth_gbs * 1e9)
        critical_path = longest / device.clock_hz
        return max(issue_time, bandwidth_time, critical_path)

    def transfer_time(self, num_bytes: int) -> float:
        """PCIe host↔device transfer seconds (latency + bandwidth)."""
        if num_bytes <= 0:
            return 0.0
        device = self.device
        return device.pcie_latency_us * 1e-6 + num_bytes / (
            device.pcie_bandwidth_gbs * 1e9
        )

    def fits_in_memory(self, num_bytes: int) -> bool:
        """Whether a dataset + index of ``num_bytes`` fits global memory."""
        return num_bytes <= self.device.global_memory_gb * 1024**3
