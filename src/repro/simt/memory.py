"""Memory-hierarchy modelling for the SIMT simulator.

Two concerns live here:

* **Traffic accounting** (:class:`MemorySpace`): how many bytes move
  through global memory, and whether accesses coalesce.  A warp reading 32
  consecutive 4-byte words produces one 128-byte transaction; 32 scattered
  words produce 32 transactions of a 32-byte sector each — an 8× waste that
  the cost model charges for.

* **Shared-memory budgeting** (:class:`SharedMemoryBudget`): SONG keeps the
  query vector, candidate/dist arrays, both priority queues and (with the
  memory optimizations) the visited table in the SM's shared memory.  The
  bytes a query needs determine how many warps fit on an SM — occupancy —
  and overflowing the per-SM capacity forces structures into global memory.

* **Global-memory capacity** (:class:`CapacityLedger`): what is allowed to
  be *resident* on the device at all.  Every index declares its footprint
  through a named reservation; exceeding the device budget raises
  :class:`DeviceMemoryExceeded` unless the caller explicitly opts into
  oversubscription (used by reference runs that pretend the card is
  bigger).  The out-of-core tier leans on this: shrink
  ``DeviceSpec.memory_budget_gb`` and only the compressed store fits.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields
from typing import Dict

from repro.simt.device import DeviceSpec

class DeviceMemoryExceeded(RuntimeError):
    """A resident-memory reservation overflowed the device budget."""


@dataclass
class CapacityLedger:
    """Named reservations against a device's global-memory budget.

    The ledger is bookkeeping, not allocation: indices *declare* what
    they keep resident (graph rows, vectors, compressed codes, cache
    pages) and the ledger enforces the sum against
    :attr:`DeviceSpec.memory_bytes`.  Reservations are keyed so a
    component can re-declare (page cache resizes) or release.
    """

    device: DeviceSpec
    reservations: Dict[str, int] = field(default_factory=dict)

    @property
    def budget_bytes(self) -> int:
        return self.device.memory_bytes

    @property
    def reserved_bytes(self) -> int:
        return sum(self.reservations.values())

    @property
    def headroom_bytes(self) -> int:
        return self.budget_bytes - self.reserved_bytes

    def would_fit(self, num_bytes: int) -> bool:
        return num_bytes <= self.headroom_bytes

    def reserve(
        self, name: str, num_bytes: int, allow_oversubscription: bool = False
    ) -> int:
        """Declare ``num_bytes`` resident under ``name``.

        Re-reserving a name replaces its previous figure.  On overflow
        the reservation is still recorded (so reports show the true
        demand) but :class:`DeviceMemoryExceeded` is raised — or, with
        ``allow_oversubscription=True``, a :class:`ResourceWarning` is
        emitted instead.  Oversubscription exists for *reference* runs
        (e.g. pricing a full-precision baseline the card could not
        actually hold); production paths should never pass it.
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        self.reservations[name] = int(num_bytes)
        overflow = self.reserved_bytes - self.budget_bytes
        if overflow > 0:
            msg = (
                f"device {self.device.name!r} over budget by {overflow} bytes: "
                f"{self.reserved_bytes} reserved vs {self.budget_bytes} "
                f"available ({dict(self.reservations)})"
            )
            if not allow_oversubscription:
                del self.reservations[name]
                raise DeviceMemoryExceeded(msg)
            warnings.warn(msg, ResourceWarning, stacklevel=2)
        return self.headroom_bytes

    def release(self, name: str) -> None:
        self.reservations.pop(name, None)


#: Bytes served per coalesced transaction (cache line).
COALESCED_TRANSACTION_BYTES = 128
#: Bytes wasted per scattered 4-byte access (one 32-byte sector).
SCATTERED_SECTOR_BYTES = 32


@dataclass
class MemorySpace:
    """Byte/transaction tally for one kernel execution."""

    coalesced_bytes: int = 0
    scattered_accesses: int = 0
    shared_accesses: int = 0

    def read_coalesced(self, num_bytes: int) -> int:
        """A warp-wide sequential read; returns transactions generated."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        self.coalesced_bytes += num_bytes
        return -(-num_bytes // COALESCED_TRANSACTION_BYTES)

    def read_scattered(self, num_accesses: int) -> int:
        """Independent 4-byte reads from random addresses."""
        if num_accesses < 0:
            raise ValueError("num_accesses must be non-negative")
        self.scattered_accesses += num_accesses
        return num_accesses

    def access_shared(self, num_accesses: int = 1) -> None:
        """Shared-memory traffic (fast; tracked for completeness)."""
        self.shared_accesses += num_accesses

    @property
    def total_global_bytes(self) -> int:
        """Bus traffic including the waste of scattered sectors."""
        return self.coalesced_bytes + self.scattered_accesses * SCATTERED_SECTOR_BYTES

    def merge(self, other: "MemorySpace") -> None:
        """Fold another meter's counters into this one.

        Generic over ``dataclasses.fields`` so a counter added later is
        conserved automatically instead of silently dropped (the hazard
        ``shared_accesses`` originally hit: it postdates ``merge``).
        """
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def reset(self) -> None:
        """Zero every counter (field-generic, like :meth:`merge`)."""
        for f in fields(self):
            setattr(self, f.name, 0)


@dataclass
class SharedMemoryBudget:
    """Per-query shared-memory plan for the SONG kernel.

    Every size is in bytes.  ``fits(limit)`` says whether the plan fits a
    per-SM allocation; the kernel launcher uses the total to compute
    occupancy, and the searcher marks structures that overflow as living
    in global memory (slower sequential ops).
    """

    query_vector: int = 0
    candidate_buffer: int = 0
    dist_buffer: int = 0
    frontier_queue: int = 0
    topk_queue: int = 0
    visited_table: int = 0

    @property
    def total(self) -> int:
        return (
            self.query_vector
            + self.candidate_buffer
            + self.dist_buffer
            + self.frontier_queue
            + self.topk_queue
            + self.visited_table
        )

    @classmethod
    def for_search(
        cls,
        dim: int,
        degree: int,
        queue_capacity: int,
        topk: int,
        visited_bytes: int,
        multi_query: int = 1,
    ) -> "SharedMemoryBudget":
        """Budget for one warp processing ``multi_query`` queries.

        A queue slot is 8 bytes (float32 distance + int32 id).
        """
        return cls(
            query_vector=4 * dim * multi_query,
            candidate_buffer=4 * degree * multi_query,
            dist_buffer=4 * degree * multi_query,
            frontier_queue=8 * queue_capacity * multi_query,
            topk_queue=8 * topk * multi_query,
            visited_table=visited_bytes * multi_query,
        )

    def fits(self, limit_bytes: int) -> bool:
        return self.total <= limit_bytes
