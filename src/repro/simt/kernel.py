"""Kernel launching: batch scheduling, occupancy and timing.

A "kernel" here is any callable that, given a query index and a fresh
:class:`~repro.simt.warp.Warp`, performs the search functionally and
meters its work on the warp.  The launcher runs it for every query in the
batch, then folds the warp meters through the cost model into kernel time
and a stage profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.simt.cost import CostModel
from repro.simt.device import DeviceSpec
from repro.simt.profiler import StageProfiler
from repro.simt.warp import Warp


@dataclass
class KernelResult:
    """Outcome of one simulated kernel launch.

    Attributes
    ----------
    outputs:
        Per-query return values of the kernel function.
    kernel_seconds:
        Estimated kernel execution time.
    htod_seconds / dtoh_seconds:
        PCIe transfer times around the kernel.
    stage_cycles:
        Cycles per named stage summed over all warps.
    total_global_bytes:
        Global-memory traffic of the whole launch.
    occupancy_warps_per_sm:
        Resident warps per SM the shared-memory budget allowed.
    """

    outputs: List[object]
    kernel_seconds: float
    htod_seconds: float
    dtoh_seconds: float
    stage_cycles: Dict[str, float]
    total_global_bytes: int
    occupancy_warps_per_sm: int
    warp_cycles: List[float] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.htod_seconds + self.kernel_seconds + self.dtoh_seconds

    def qps(self, num_queries: int) -> float:
        """Queries per second implied by the total launch time."""
        if self.total_seconds == 0:
            return float("inf")
        return num_queries / self.total_seconds

    def latency_percentiles(self, device: DeviceSpec, percentiles=(50, 90, 99)):
        """Per-query kernel latency percentiles in seconds.

        Derived from each warp group's cycle count at device clock — the
        time one query spends in its kernel, ignoring queueing.  Tail
        latency is a first-class serving metric the mean QPS hides.
        """
        if not self.warp_cycles:
            return [0.0 for _ in percentiles]
        cycles = sorted(self.warp_cycles)
        out = []
        for p in percentiles:
            idx = min(len(cycles) - 1, int(round(p / 100 * (len(cycles) - 1))))
            out.append(cycles[idx] / device.clock_hz)
        return out


class KernelLauncher:
    """Runs a metered kernel over a query batch on a simulated device."""

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device
        self.cost_model = CostModel(device)

    def launch(
        self,
        kernel: Callable[[int, Warp], object],
        num_queries: int,
        htod_bytes: int = 0,
        dtoh_bytes: int = 0,
        shared_bytes_per_warp: int = 0,
        queries_per_warp: int = 1,
        warps_per_query: int = 1,
        profiler: StageProfiler = None,
    ) -> KernelResult:
        """Execute ``kernel`` for each query and estimate launch timing.

        Parameters
        ----------
        kernel:
            ``kernel(query_index, warp) -> output``.  With multi-query
            (``queries_per_warp > 1``) consecutive queries share a warp,
            and the kernel is still called once per query — the shared
            warp meter serializes their candidate-locating work exactly
            as the paper describes.
        num_queries:
            Batch size.
        htod_bytes / dtoh_bytes:
            Transfer sizes (query upload, result download).
        shared_bytes_per_warp:
            Shared-memory footprint for occupancy.
        """
        if num_queries <= 0:
            raise ValueError("num_queries must be positive")
        if queries_per_warp <= 0:
            raise ValueError("queries_per_warp must be positive")

        outputs: List[object] = []
        warp_cycles: List[float] = []
        stage_cycles: Dict[str, float] = {}
        total_bytes = 0

        warp: Warp = None
        for q in range(num_queries):
            if q % queries_per_warp == 0:
                if warp is not None:
                    warp_cycles.append(warp.cycles)
                    total_bytes += warp.memory.total_global_bytes
                    for s, c in warp.stage_cycles.items():
                        stage_cycles[s] = stage_cycles.get(s, 0.0) + c
                warp = Warp(self.device)
            outputs.append(kernel(q, warp))
        if warp is not None:
            warp_cycles.append(warp.cycles)
            total_bytes += warp.memory.total_global_bytes
            for s, c in warp.stage_cycles.items():
                stage_cycles[s] = stage_cycles.get(s, 0.0) + c

        kernel_seconds = self.cost_model.kernel_time(
            warp_cycles,
            total_bytes,
            shared_bytes_per_warp,
            warps_per_group=warps_per_query,
        )
        htod = self.cost_model.transfer_time(htod_bytes)
        dtoh = self.cost_model.transfer_time(dtoh_bytes)
        occupancy = self.cost_model.occupancy_warps_per_sm(shared_bytes_per_warp)

        if profiler is not None:
            profiler.add_transfer(htod=htod, dtoh=dtoh)
            profiler.add_kernel(kernel_seconds)
            profiler.add_stage_cycles(stage_cycles)

        return KernelResult(
            outputs=outputs,
            kernel_seconds=kernel_seconds,
            htod_seconds=htod,
            dtoh_seconds=dtoh,
            stage_cycles=stage_cycles,
            total_global_bytes=total_bytes,
            occupancy_warps_per_sm=occupancy,
            warp_cycles=warp_cycles,
        )
