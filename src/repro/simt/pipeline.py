"""CUDA-stream-style pipelining of transfers and kernels.

Fig. 10 of the paper shows HtoD taking up to ~12% of small-batch runs and
Fig. 11 shows small batches underusing the device.  The standard CUDA
remedy is double buffering: split the batch into chunks on separate
streams so chunk ``i+1``'s host-to-device copy and chunk ``i-1``'s
device-to-host copy overlap chunk ``i``'s kernel.  This module schedules
that overlap analytically — an extension beyond the paper's synchronous
execution, ablated in ``benchmarks/bench_ablation_pipeline.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class ChunkTiming:
    """Transfer and kernel seconds for one chunk of a batch."""

    htod: float
    kernel: float
    dtoh: float


def pipelined_time(chunks: Sequence[ChunkTiming]) -> float:
    """Makespan of chunks executed on overlapping copy/compute engines.

    Model: one copy engine per direction and one compute engine (as on
    every discrete NVIDIA part since Fermi).  Chunk ``i``'s kernel may
    start once its HtoD finished and the previous kernel finished; its
    DtoH may start once its kernel finished and the previous DtoH
    finished.
    """
    if not chunks:
        return 0.0
    htod_free = 0.0
    kernel_free = 0.0
    dtoh_free = 0.0
    finish = 0.0
    for c in chunks:
        if c.htod < 0 or c.kernel < 0 or c.dtoh < 0:
            raise ValueError("chunk timings must be non-negative")
        htod_done = htod_free + c.htod
        htod_free = htod_done
        kernel_done = max(kernel_free, htod_done) + c.kernel
        kernel_free = kernel_done
        dtoh_done = max(dtoh_free, kernel_done) + c.dtoh
        dtoh_free = dtoh_done
        finish = dtoh_done
    return finish


def synchronous_time(chunks: Sequence[ChunkTiming]) -> float:
    """Makespan without any overlap (the paper's execution model)."""
    return sum(c.htod + c.kernel + c.dtoh for c in chunks)


def split_counts(total: int, num_chunks: int) -> List[int]:
    """Split ``total`` queries into ``num_chunks`` near-equal chunks."""
    if num_chunks <= 0:
        raise ValueError("num_chunks must be positive")
    num_chunks = min(num_chunks, total)
    base = total // num_chunks
    rem = total % num_chunks
    return [base + (1 if i < rem else 0) for i in range(num_chunks)]


def pipeline_batch(
    index,
    queries,
    config,
    num_chunks: int = 4,
    num_streams: int = 0,
) -> Tuple[list, dict]:
    """Run ``index.search_batch`` chunk-wise and schedule the overlap.

    The schedule is produced by
    :class:`repro.simt.streams.StreamScheduler` — the general stream
    model — with one stream per chunk by default, which reproduces the
    classic :func:`pipelined_time` recurrence bit-for-bit (pinned in the
    ablation benchmark's regression test).

    Parameters
    ----------
    index:
        A :class:`~repro.core.gpu_kernel.GpuSongIndex`.
    queries:
        ``(b, d)`` query batch.
    config:
        :class:`~repro.core.config.SearchConfig`.
    num_chunks:
        Chunks to split the batch into.
    num_streams:
        Streams to spread the chunks over; ``0`` (default) means one
        stream per chunk, the full double-buffer schedule.

    Returns
    -------
    ``(results, timing)`` where timing holds pipelined and synchronous
    makespans, the implied QPS, and the scheduled stream timeline.
    """
    import numpy as np

    from repro.simt.streams import StreamScheduler

    queries = np.atleast_2d(np.asarray(queries))
    counts = split_counts(len(queries), num_chunks)
    results: list = []
    chunk_timings: List[ChunkTiming] = []
    start = 0
    for count in counts:
        chunk = queries[start : start + count]
        start += count
        out, kr = index.search_batch(chunk, config)
        results.extend(out)
        chunk_timings.append(
            ChunkTiming(htod=kr.htod_seconds, kernel=kr.kernel_seconds, dtoh=kr.dtoh_seconds)
        )
    streams = num_streams if num_streams > 0 else max(1, len(chunk_timings))
    timeline = StreamScheduler(num_streams=streams).schedule_chunks(chunk_timings)
    piped = timeline.makespan
    sync = synchronous_time(chunk_timings)
    timing = {
        "pipelined_seconds": piped,
        "synchronous_seconds": sync,
        "overlap_gain": sync / piped if piped > 0 else float("inf"),
        "qps": len(queries) / piped if piped > 0 else float("inf"),
        "chunks": chunk_timings,
        "num_streams": streams,
        "timeline": timeline,
    }
    return results, timing
