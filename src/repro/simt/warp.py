"""Warp-level execution accounting.

A :class:`Warp` is the unit the SONG kernel is metered in: one warp (32
lanes) serves one query (or several, with multi-query).  The kernel code
calls the primitives below instead of doing raw arithmetic on counters, so
the mapping from algorithm step to hardware cost is explicit and auditable:

``simd_compute``      lock-step arithmetic across active lanes
``warp_reduce``       ``shfl_down`` tree reduction (log2(32) = 5 steps)
``global_read_*``     global-memory traffic (coalesced or scattered)
``shared_access``     shared-memory traffic
``sequential``        single-lane work — the other 31 lanes idle, which is
                      exactly the warp-divergence cost the paper's
                      maintenance stage pays
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.simt.device import DeviceSpec
from repro.simt.memory import MemorySpace


@dataclass
class Warp:
    """Cycle and traffic meter for one warp's execution."""

    device: DeviceSpec
    cycles: float = 0.0
    memory: MemorySpace = field(default_factory=MemorySpace)
    #: Cycles attributed per named stage (profiling support).
    stage_cycles: dict = field(default_factory=dict)
    _stage: str = "other"

    # -- stage bookkeeping -------------------------------------------------

    def set_stage(self, stage: str) -> None:
        """Attribute subsequent cycles to ``stage``."""
        self._stage = stage

    def _charge(self, cycles: float) -> None:
        self.cycles += cycles
        self.stage_cycles[self._stage] = self.stage_cycles.get(self._stage, 0.0) + cycles

    # -- primitives ----------------------------------------------------------

    def simd_compute(self, total_ops: int, active_lanes: int = None) -> None:
        """Arithmetic spread across ``active_lanes`` lanes in lock-step.

        ``total_ops`` scalar operations complete in
        ``ceil(total_ops / active_lanes)`` cycles; inactive lanes are the
        divergence waste (they still occupy the issue slot).
        """
        if total_ops <= 0:
            return
        lanes = self.device.warp_size if active_lanes is None else active_lanes
        lanes = max(1, min(lanes, self.device.warp_size))
        self._charge(math.ceil(total_ops / lanes))

    def warp_reduce(self, count: int = 1) -> None:
        """``shfl_down`` tree reduction over the warp: log2(32) steps each."""
        if count <= 0:
            return
        steps = int(math.log2(self.device.warp_size))
        self._charge(count * steps)

    def global_read_coalesced(self, num_bytes: int) -> None:
        """Warp-wide read of consecutive addresses.

        Latency per transaction is charged at a small overlapped fraction:
        with enough resident warps the scheduler hides most of it, and the
        bandwidth term of the cost model captures the rest.
        """
        transactions = self.memory.read_coalesced(num_bytes)
        self._charge(transactions * self._overlapped_latency())

    def global_read_scattered(self, num_accesses: int) -> None:
        """Independent 4-byte reads from arbitrary addresses (no coalescing)."""
        transactions = self.memory.read_scattered(num_accesses)
        self._charge(transactions * self._overlapped_latency())

    def shared_access(self, num_accesses: int = 1) -> None:
        """Shared-memory access: ~1 cycle when bank-conflict free."""
        if num_accesses <= 0:
            return
        self.memory.access_shared(num_accesses)
        self._charge(num_accesses)

    def sequential(self, num_ops: int, in_shared: bool = True) -> None:
        """Single-lane data-structure work; 31 lanes idle.

        ``in_shared=False`` marks a structure that spilled to global
        memory: each op then pays an uncovered memory round-trip, which is
        how the simulator reproduces the paper's "hashtable-sel runs out
        of memory and collapses" behaviour.
        """
        if num_ops <= 0:
            return
        per_op = self.device.seq_op_cycles
        if not in_shared:
            per_op += self._overlapped_latency(spilled=True)
            self.memory.read_scattered(num_ops)
        self._charge(num_ops * per_op)

    # -- aggregation ----------------------------------------------------------

    def merge(self, other: "Warp") -> None:
        """Fold another warp's meters into this one.

        Conserves every counter: total cycles, the full memory tally
        (field-generic :meth:`MemorySpace.merge`) and per-stage
        attribution, preserving the invariant that ``cycles`` equals the
        sum of ``stage_cycles`` values when both operands satisfy it.
        """
        self.cycles += other.cycles
        self.memory.merge(other.memory)
        for stage, c in other.stage_cycles.items():
            self.stage_cycles[stage] = self.stage_cycles.get(stage, 0.0) + c

    # -- internals ------------------------------------------------------------

    def _overlapped_latency(self, spilled: bool = False) -> float:
        """Effective cycles per global transaction after latency hiding.

        Streaming (coalesced/candidate) reads overlap deeply across the
        resident warps; a spilled data structure's dependent accesses
        (probe chains, heap sifts) cannot be prefetched and hide far less.
        """
        hide = 16.0 if not spilled else 4.0
        return self.device.global_latency_cycles / hide

    @property
    def seconds(self) -> float:
        """Wall time this warp's work takes at device clock, in isolation."""
        return self.cycles / self.device.clock_hz
