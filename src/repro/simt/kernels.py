"""Microkernels for SONG's primitives, written in the SIMT ISA.

Each builder returns an instruction list for the cycle-level simulator
(:mod:`repro.simt.simulator`).  These are the device-side inner loops the
paper describes:

- :func:`squared_l2_kernel` / :func:`dot_product_kernel` — the bulk
  distance computation: each lane accumulates a strided slice of the
  dimensions, then a ``shfl_down`` tree folds the 32 partials.
- :func:`hamming_kernel` — XOR + popcount over packed signatures (the
  out-of-memory path's distance).
- :func:`warp_reduce_kernel` — the bare 5-step butterfly reduction.
- :func:`single_lane_scan_kernel` — sequential data-structure work on
  lane 0 while 31 lanes idle: the divergence cost of the maintenance
  stage, measurable in cycles.
- :func:`strided_read_kernel` — a configurable-stride global read used
  to measure coalescing (stride 1 → one transaction; stride ≥ 32 → one
  transaction per lane).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.simt import isa
from repro.simt.simulator import WARP_SIZE, WarpSimulator


def warp_reduce_kernel(src: str = "acc") -> List[isa.Instruction]:
    """Fold 32 per-lane partials into lane 0 of ``src`` (sum)."""
    program: List[isa.Instruction] = []
    delta = WARP_SIZE // 2
    while delta >= 1:
        program.append(isa.ShflDown(dst="shfl_tmp", src=src, delta=delta))
        program.append(isa.Binary(op="add", dst=src, a=src, b="shfl_tmp"))
        delta //= 2
    return program


def squared_l2_kernel(dim: int) -> List[isa.Instruction]:
    """Squared L2 distance between a shared-memory query and a global
    candidate vector.

    Inputs: ``query_base`` (shared word offset, same for all lanes) and
    ``vec_base`` (global word offset of the candidate).  Output: lane 0 of
    ``acc``.
    """
    program: List[isa.Instruction] = [
        isa.LaneId(dst="lane"),
        isa.Mov(dst="acc", src=0.0),
        isa.Mov(dst="i", src="lane"),
        isa.Cmp(rel="lt", dst="more", a="i", b=float(dim)),
        isa.While(pred="more"),
        isa.Binary(op="add", dst="q_addr", a="query_base", b="i"),
        isa.Binary(op="add", dst="v_addr", a="vec_base", b="i"),
        isa.Lds(dst="q", addr="q_addr"),
        isa.Ldg(dst="v", addr="v_addr"),
        isa.Binary(op="sub", dst="diff", a="q", b="v"),
        isa.Fma(dst="acc", a="diff", b="diff", c="acc"),
        isa.Binary(op="add", dst="i", a="i", b=float(WARP_SIZE)),
        isa.Cmp(rel="lt", dst="more", a="i", b=float(dim)),
        isa.EndWhile(),
    ]
    program.extend(warp_reduce_kernel("acc"))
    return program


def dot_product_kernel(dim: int) -> List[isa.Instruction]:
    """Inner product between shared query and global candidate."""
    program: List[isa.Instruction] = [
        isa.LaneId(dst="lane"),
        isa.Mov(dst="acc", src=0.0),
        isa.Mov(dst="i", src="lane"),
        isa.Cmp(rel="lt", dst="more", a="i", b=float(dim)),
        isa.While(pred="more"),
        isa.Binary(op="add", dst="q_addr", a="query_base", b="i"),
        isa.Binary(op="add", dst="v_addr", a="vec_base", b="i"),
        isa.Lds(dst="q", addr="q_addr"),
        isa.Ldg(dst="v", addr="v_addr"),
        isa.Fma(dst="acc", a="q", b="v", c="acc"),
        isa.Binary(op="add", dst="i", a="i", b=float(WARP_SIZE)),
        isa.Cmp(rel="lt", dst="more", a="i", b=float(dim)),
        isa.EndWhile(),
    ]
    program.extend(warp_reduce_kernel("acc"))
    return program


def hamming_kernel(num_words: int) -> List[isa.Instruction]:
    """Hamming distance over ``num_words`` packed words (global vs shared)."""
    program: List[isa.Instruction] = [
        isa.LaneId(dst="lane"),
        isa.Mov(dst="acc", src=0.0),
        isa.Mov(dst="i", src="lane"),
        isa.Cmp(rel="lt", dst="more", a="i", b=float(num_words)),
        isa.While(pred="more"),
        isa.Binary(op="add", dst="q_addr", a="query_base", b="i"),
        isa.Binary(op="add", dst="v_addr", a="vec_base", b="i"),
        isa.Lds(dst="q", addr="q_addr"),
        isa.Ldg(dst="v", addr="v_addr"),
        isa.Binary(op="xor", dst="x", a="q", b="v"),
        isa.Popc(dst="bits", a="x"),
        isa.Binary(op="add", dst="acc", a="acc", b="bits"),
        isa.Binary(op="add", dst="i", a="i", b=float(WARP_SIZE)),
        isa.Cmp(rel="lt", dst="more", a="i", b=float(num_words)),
        isa.EndWhile(),
    ]
    program.extend(warp_reduce_kernel("acc"))
    return program


def cosine_kernel(dim: int) -> List[isa.Instruction]:
    """Negative cosine similarity (shared query vs global candidate).

    Accumulates dot, ‖q‖² and ‖v‖² per lane, reduces all three across the
    warp, then lane-0 math finishes ``-dot / sqrt(qq * vv)``.
    """
    program: List[isa.Instruction] = [
        isa.LaneId(dst="lane"),
        isa.Mov(dst="dot", src=0.0),
        isa.Mov(dst="qq", src=0.0),
        isa.Mov(dst="vv", src=0.0),
        isa.Mov(dst="i", src="lane"),
        isa.Cmp(rel="lt", dst="more", a="i", b=float(dim)),
        isa.While(pred="more"),
        isa.Binary(op="add", dst="q_addr", a="query_base", b="i"),
        isa.Binary(op="add", dst="v_addr", a="vec_base", b="i"),
        isa.Lds(dst="q", addr="q_addr"),
        isa.Ldg(dst="v", addr="v_addr"),
        isa.Fma(dst="dot", a="q", b="v", c="dot"),
        isa.Fma(dst="qq", a="q", b="q", c="qq"),
        isa.Fma(dst="vv", a="v", b="v", c="vv"),
        isa.Binary(op="add", dst="i", a="i", b=float(WARP_SIZE)),
        isa.Cmp(rel="lt", dst="more", a="i", b=float(dim)),
        isa.EndWhile(),
    ]
    program.extend(warp_reduce_kernel("dot"))
    program.extend(warp_reduce_kernel("qq"))
    program.extend(warp_reduce_kernel("vv"))
    program.extend(
        [
            isa.Binary(op="mul", dst="norm2", a="qq", b="vv"),
            isa.Unary(op="rsqrt", dst="inv", a="norm2"),
            isa.Binary(op="mul", dst="cos", a="dot", b="inv"),
            isa.Unary(op="neg", dst="acc", a="cos"),
        ]
    )
    return program


def heap_push_kernel() -> List[isa.Instruction]:
    """Binary min-heap push, single-lane (the maintenance stage in IR).

    The heap lives in shared memory as parallel arrays: distances at
    ``heap_base`` and ids at ``heap_base + heap_capacity``.  Inputs:
    ``heap_size`` (current entries), ``new_dist``, ``new_id``.  Lane 0
    appends the entry and sifts it up; all other lanes idle — the warp
    divergence the paper's Fig. 10 charges to maintenance.  Outputs the
    new size in ``heap_size_out``.  A push against a full heap is a
    no-op (the caller pops the root first to replace it); without the
    capacity guard the append would land the id one word past the heap's
    shared allocation and the distance inside the ids segment.
    """
    return [
        isa.LaneId(dst="lane"),
        isa.Cmp(rel="eq", dst="is0", a="lane", b=0.0),
        isa.Mov(dst="heap_size_out", src="heap_size"),
        isa.Cmp(rel="lt", dst="has_room", a="heap_size", b="heap_capacity"),
        isa.Binary(op="and", dst="do_push", a="is0", b="has_room"),
        isa.If(pred="do_push"),
        # append at index i = heap_size
        isa.Mov(dst="i", src="heap_size"),
        isa.Binary(op="add", dst="addr_d", a="heap_base", b="i"),
        isa.Sts(addr="addr_d", src="new_dist"),
        isa.Binary(op="add", dst="addr_i", a="addr_d", b="heap_capacity"),
        isa.Sts(addr="addr_i", src="new_id"),
        isa.Binary(op="add", dst="heap_size_out", a="heap_size", b=1.0),
        # sift up while i > 0 and dist[parent] > dist[i]
        isa.Cmp(rel="gt", dst="loop", a="i", b=0.0),
        isa.While(pred="loop"),
        isa.Binary(op="sub", dst="pm1", a="i", b=1.0),
        isa.Binary(op="mul", dst="parent", a="pm1", b=0.5),
        isa.Unary(op="floor", dst="parent", a="parent"),
        isa.Binary(op="add", dst="p_addr", a="heap_base", b="parent"),
        isa.Binary(op="add", dst="c_addr", a="heap_base", b="i"),
        isa.Lds(dst="p_dist", addr="p_addr"),
        isa.Lds(dst="c_dist", addr="c_addr"),
        isa.Cmp(rel="gt", dst="swap", a="p_dist", b="c_dist"),
        isa.If(pred="swap"),
        # swap distances
        isa.Sts(addr="p_addr", src="c_dist"),
        isa.Sts(addr="c_addr", src="p_dist"),
        # swap ids
        isa.Binary(op="add", dst="p_iaddr", a="p_addr", b="heap_capacity"),
        isa.Binary(op="add", dst="c_iaddr", a="c_addr", b="heap_capacity"),
        isa.Lds(dst="p_id", addr="p_iaddr"),
        isa.Lds(dst="c_id", addr="c_iaddr"),
        isa.Sts(addr="p_iaddr", src="c_id"),
        isa.Sts(addr="c_iaddr", src="p_id"),
        isa.Mov(dst="i", src="parent"),
        isa.Else(),
        isa.Mov(dst="i", src=0.0),  # heap property holds: stop
        isa.EndIf(),
        isa.Cmp(rel="gt", dst="loop", a="i", b=0.0),
        isa.EndWhile(),
        isa.EndIf(),
    ]


def run_heap_push(
    dists: np.ndarray, ids: np.ndarray, size: int, new_dist: float, new_id: int,
    capacity: int,
) -> tuple:
    """Execute one IR heap push; returns ``(dists, ids, new_size, stats)``."""
    shared = np.zeros(2 * capacity + 32)
    shared[:size] = dists[:size]
    shared[capacity : capacity + size] = ids[:size]
    sim = WarpSimulator(heap_push_kernel(), global_mem=np.zeros(8), shared_mem=shared)
    sim.set_register("heap_base", 0.0)
    sim.set_register("heap_capacity", float(capacity))
    sim.set_register("heap_size", float(size))
    sim.set_register("new_dist", float(new_dist))
    sim.set_register("new_id", float(new_id))
    stats = sim.run()
    new_size = int(sim.register("heap_size_out")[0])
    return (
        shared[:new_size].copy(),
        shared[capacity : capacity + new_size].astype(int).copy(),
        new_size,
        stats,
    )


def single_lane_scan_kernel(count: int) -> List[isa.Instruction]:
    """Lane 0 walks ``count`` shared-memory slots; 31 lanes idle.

    The ISA rendition of the maintenance stage's sequential probing —
    useful to measure the divergence cost the paper's Fig. 10 attributes
    to data-structure maintenance.
    """
    return [
        isa.LaneId(dst="lane"),
        isa.Cmp(rel="eq", dst="is0", a="lane", b=0.0),
        isa.Mov(dst="acc", src=0.0),
        isa.If(pred="is0"),
        isa.Mov(dst="i", src=0.0),
        isa.Cmp(rel="lt", dst="more", a="i", b=float(count)),
        isa.While(pred="more"),
        isa.Lds(dst="slot", addr="i"),
        isa.Binary(op="add", dst="acc", a="acc", b="slot"),
        isa.Binary(op="add", dst="i", a="i", b=1.0),
        isa.Cmp(rel="lt", dst="more", a="i", b=float(count)),
        isa.EndWhile(),
        isa.EndIf(),
    ]


def warp_parallel_probe_kernel() -> List[isa.Instruction]:
    """Warp-parallel linear probing (paper Sec. IV-B).

    "The linear probing step can be paralleled in the warp level — all
    threads in a warp probe the memory and locate the insertion/deletion
    location by a warp reduction.  Probing one memory location for each
    thread in a warp is usually sufficient."

    Inputs: ``table_base`` (shared), ``home`` (the key's home slot, all
    lanes), ``key``.  Each lane probes slot ``(home + lane) % table_size``
    (``table_size`` must be a power of two passed as ``table_mask``); a
    ballot finds the first lane holding the key (→ ``found_at``) and the
    first empty slot (→ ``empty_at``), each −1 when absent.  One probe
    round covers a 32-slot window in O(1) warp steps.
    """
    return [
        isa.LaneId(dst="lane"),
        isa.Binary(op="add", dst="slot", a="home", b="lane"),
        isa.Binary(op="and", dst="slot", a="slot", b="table_mask"),
        isa.Binary(op="add", dst="addr", a="table_base", b="slot"),
        isa.Lds(dst="val", addr="addr"),
        isa.Cmp(rel="eq", dst="is_key", a="val", b="key"),
        isa.Cmp(rel="eq", dst="is_empty", a="val", b=-1.0),
        isa.Vote(mode="ballot_ffs", dst="found_at", src="is_key"),
        isa.Vote(mode="ballot_ffs", dst="empty_at", src="is_empty"),
    ]


def run_warp_probe(table: np.ndarray, home: int, key: int) -> tuple:
    """Execute one probe round; returns ``(found_lane, empty_lane, stats)``.

    ``table`` is the shared-memory slot array (−1 = empty); slots are
    probed cyclically starting at ``home``.
    """
    size = len(table)
    if size & (size - 1):
        raise ValueError("table size must be a power of two")
    shared = np.zeros(max(size, 32))
    shared[:size] = table
    sim = WarpSimulator(
        warp_parallel_probe_kernel(), global_mem=np.zeros(8), shared_mem=shared
    )
    sim.set_register("table_base", 0.0)
    sim.set_register("table_mask", float(size - 1))
    sim.set_register("home", float(home))
    sim.set_register("key", float(key))
    stats = sim.run()
    return (
        int(sim.register("found_at")[0]),
        int(sim.register("empty_at")[0]),
        stats,
    )


def strided_read_kernel(stride: int) -> List[isa.Instruction]:
    """One warp-wide global read at lane addresses ``lane * stride``."""
    return [
        isa.LaneId(dst="lane"),
        isa.Binary(op="mul", dst="addr", a="lane", b=float(stride)),
        isa.Ldg(dst="val", addr="addr"),
        # touch the value so the load's latency is observed
        isa.Binary(op="add", dst="sink", a="val", b=0.0),
    ]


# --------------------------------------------------------------------------
# runners
# --------------------------------------------------------------------------


def run_distance_kernel(
    query: np.ndarray, candidate: np.ndarray, metric: str = "l2"
) -> tuple:
    """Execute the distance microkernel; returns ``(value, stats)``."""
    dim = len(query)
    if metric == "l2":
        program = squared_l2_kernel(dim)
    elif metric == "ip":
        program = dot_product_kernel(dim)
    else:
        raise ValueError(f"unsupported metric for the microkernel: {metric}")
    shared = np.zeros(max(dim, 32))
    shared[:dim] = query
    global_mem = np.zeros(max(dim, 32))
    global_mem[:dim] = candidate
    sim = WarpSimulator(program, global_mem=global_mem, shared_mem=shared)
    sim.set_register("query_base", 0.0)
    sim.set_register("vec_base", 0.0)
    stats = sim.run()
    value = float(sim.register("acc")[0])
    if metric == "ip":
        value = -value  # library convention: smaller is better
    return value, stats


def run_hamming_kernel(query_words: np.ndarray, cand_words: np.ndarray) -> tuple:
    """Execute the Hamming microkernel on packed uint32 words."""
    n = len(query_words)
    shared = np.zeros(max(n, 32))
    shared[:n] = query_words.astype(np.float64)
    global_mem = np.zeros(max(n, 32))
    global_mem[:n] = cand_words.astype(np.float64)
    sim = WarpSimulator(hamming_kernel(n), global_mem=global_mem, shared_mem=shared)
    sim.set_register("query_base", 0.0)
    sim.set_register("vec_base", 0.0)
    stats = sim.run()
    return int(sim.register("acc")[0]), stats
