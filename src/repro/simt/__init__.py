"""SIMT execution simulator — the GPU substrate of this reproduction.

The paper runs CUDA kernels on NVIDIA V100/P40/TITAN X hardware.  This
environment has none, so SONG's kernel is executed *functionally* in
Python while a warp-level cost model meters every abstract operation the
paper reasons about: lock-step 32-lane compute, coalesced vs. scattered
global-memory transactions, single-lane sequential data-structure
maintenance, shared-memory occupancy limits, and PCIe transfers.

- :class:`~repro.simt.device.DeviceSpec` — hardware parameters, with
  V100 / P40 / TITAN X presets.
- :class:`~repro.simt.warp.Warp` — per-warp cycle and byte accounting.
- :class:`~repro.simt.kernel.KernelLauncher` — block scheduling, occupancy
  and kernel-time estimation.
- :class:`~repro.simt.profiler.StageProfiler` — HtoD / kernel / DtoH and
  per-stage (locate / distance / maintain) breakdowns.
"""

from repro.simt.device import DEVICE_PRESETS, DeviceSpec, get_device
from repro.simt.memory import MemorySpace, SharedMemoryBudget
from repro.simt.warp import Warp
from repro.simt.kernel import KernelLauncher, KernelResult
from repro.simt.cost import CostModel
from repro.simt.build_cost import BuildCostRecorder, BuildPhaseCost
from repro.simt.profiler import StageProfiler
from repro.simt.simulator import SMSimulator, WarpSimulator
from repro.simt.streams import (
    BatchSchedule,
    ChunkWork,
    DeviceTimeline,
    StreamOp,
    StreamScheduler,
    StreamTimeline,
)

__all__ = [
    "BatchSchedule",
    "ChunkWork",
    "DeviceTimeline",
    "StreamOp",
    "StreamScheduler",
    "StreamTimeline",
    "WarpSimulator",
    "SMSimulator",
    "DeviceSpec",
    "DEVICE_PRESETS",
    "get_device",
    "MemorySpace",
    "SharedMemoryBudget",
    "Warp",
    "KernelLauncher",
    "KernelResult",
    "CostModel",
    "BuildCostRecorder",
    "BuildPhaseCost",
    "StageProfiler",
]
