"""Stage-level profiling (paper Fig. 10).

Two breakdowns are reported:

* transfer vs. kernel: HtoD (queries in), kernel execution, DtoH
  (results out);
* inside the kernel: candidate locating / bulk distance computation /
  data-structure maintenance cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: Canonical stage names used by the kernel.
STAGE_LOCATE = "locate"
STAGE_DISTANCE = "distance"
STAGE_MAINTAIN = "maintain"
KERNEL_STAGES = (STAGE_LOCATE, STAGE_DISTANCE, STAGE_MAINTAIN)


@dataclass
class StageProfiler:
    """Accumulates transfer seconds and per-stage kernel cycles."""

    htod_seconds: float = 0.0
    dtoh_seconds: float = 0.0
    kernel_seconds: float = 0.0
    stage_cycles: Dict[str, float] = field(default_factory=dict)

    def add_transfer(self, htod: float = 0.0, dtoh: float = 0.0) -> None:
        self.htod_seconds += htod
        self.dtoh_seconds += dtoh

    def add_kernel(self, seconds: float) -> None:
        self.kernel_seconds += seconds

    def add_stage_cycles(self, cycles: Dict[str, float]) -> None:
        for stage, c in cycles.items():
            self.stage_cycles[stage] = self.stage_cycles.get(stage, 0.0) + c

    # -- reports ----------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        return self.htod_seconds + self.kernel_seconds + self.dtoh_seconds

    def transfer_breakdown(self) -> Dict[str, float]:
        """Fractions of total time: HtoD / Kernel / DtoH (sums to 1)."""
        total = self.total_seconds
        if total == 0:
            return {"HtoD": 0.0, "Kernel": 0.0, "DtoH": 0.0}
        return {
            "HtoD": self.htod_seconds / total,
            "Kernel": self.kernel_seconds / total,
            "DtoH": self.dtoh_seconds / total,
        }

    def kernel_breakdown(self) -> Dict[str, float]:
        """Fractions of kernel cycles per stage (sums to 1)."""
        known = {s: self.stage_cycles.get(s, 0.0) for s in KERNEL_STAGES}
        total = sum(self.stage_cycles.values())
        if total == 0:
            return {s: 0.0 for s in KERNEL_STAGES}
        return {s: c / total for s, c in known.items()}

    def reset(self) -> None:
        self.htod_seconds = 0.0
        self.dtoh_seconds = 0.0
        self.kernel_seconds = 0.0
        self.stage_cycles.clear()
