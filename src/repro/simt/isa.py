"""A miniature SIMT instruction set.

The analytic cost model (:mod:`repro.simt.cost`) prices SONG's kernel from
aggregate event counts.  This module and :mod:`repro.simt.simulator`
provide the ground truth underneath it: a small register-machine ISA whose
programs execute lane-by-lane on a 32-lane warp interpreter with explicit
divergence masks, a latency/bandwidth memory pipeline and shared-memory
bank conflicts.  Microkernels for SONG's primitives live in
:mod:`repro.simt.kernels`; validation tests cross-check the cycle counts
against the analytic model's assumptions.

Programs are lists of instruction dataclasses.  Registers are named
strings (``"r0"``, ``"acc"``, ...); each register holds one value per
lane.  Control flow is structured (``If``/``Else``/``EndIf``,
``While``/``EndWhile``) and the interpreter maintains an active-mask
stack, exactly the reconvergence discipline real SIMT hardware applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

Operand = Union[str, int, float]  # register name or immediate


# --------------------------------------------------------------------------
# arithmetic / data movement
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Mov:
    """dst ← src (register or immediate)."""

    dst: str
    src: Operand


@dataclass(frozen=True)
class Binary:
    """dst ← src_a (op) src_b, element-wise across active lanes."""

    op: str  # add / sub / mul / div / min / max / and / or / xor / shl / shr
    dst: str
    a: Operand
    b: Operand


@dataclass(frozen=True)
class Fma:
    """dst ← a * b + c — one cycle, the GPU's bread and butter."""

    dst: str
    a: Operand
    b: Operand
    c: Operand


@dataclass(frozen=True)
class Unary:
    """dst ← op(a); op ∈ {sqrt, rsqrt, abs, neg, floor}."""

    op: str
    dst: str
    a: Operand


@dataclass(frozen=True)
class Cmp:
    """dst ← a (rel) b as a boolean predicate per lane."""

    rel: str  # lt / le / gt / ge / eq / ne
    dst: str
    a: Operand
    b: Operand


@dataclass(frozen=True)
class LaneId:
    """dst ← this lane's index (0..31)."""

    dst: str


@dataclass(frozen=True)
class Popc:
    """dst ← popcount(a) — the GPU ``__popc`` used for Hamming distance."""

    dst: str
    a: Operand


# --------------------------------------------------------------------------
# memory
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Ldg:
    """dst ← global[addr] per active lane.

    The interpreter groups the active lanes' addresses into 128-byte
    transactions; perfectly consecutive addresses coalesce into one.
    """

    dst: str
    addr: Operand


@dataclass(frozen=True)
class Stg:
    """global[addr] ← src per active lane."""

    addr: Operand
    src: Operand


@dataclass(frozen=True)
class Lds:
    """dst ← shared[addr]; cost grows with bank conflicts."""

    dst: str
    addr: Operand


@dataclass(frozen=True)
class Sts:
    """shared[addr] ← src."""

    addr: Operand
    src: Operand


# --------------------------------------------------------------------------
# warp intrinsics
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ShflDown:
    """dst ← src taken from lane (lane_id + delta); identity past the edge.

    The primitive behind SONG's bulk-distance warp reduction.
    """

    dst: str
    src: str
    delta: int


@dataclass(frozen=True)
class Vote:
    """Warp vote: ``dst`` gets the same value on every active lane.

    ``mode``:
    - ``"any"`` / ``"all"`` — 1.0 iff any/all active lanes have a nonzero
      ``src``;
    - ``"ballot_ffs"`` — index of the first active lane with nonzero
      ``src``, or −1 (the ``__ballot_sync`` + ``__ffs`` idiom behind
      SONG's warp-parallel hash probing).
    """

    mode: str
    dst: str
    src: str


# --------------------------------------------------------------------------
# structured control flow
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class If:
    """Open a divergence region on predicate register ``pred``."""

    pred: str


@dataclass(frozen=True)
class Else:
    """Flip to the complementary mask of the innermost ``If``."""


@dataclass(frozen=True)
class EndIf:
    """Reconverge the innermost ``If``."""


@dataclass(frozen=True)
class While:
    """Loop while any active lane's ``pred`` is true (re-evaluated at top)."""

    pred: str


@dataclass(frozen=True)
class EndWhile:
    """Close the innermost ``While``."""


Instruction = Union[
    Mov,
    Binary,
    Unary,
    Fma,
    Cmp,
    LaneId,
    Popc,
    Ldg,
    Stg,
    Lds,
    Sts,
    ShflDown,
    Vote,
    If,
    Else,
    EndIf,
    While,
    EndWhile,
]


def validate_program(program) -> None:
    """Check structural well-formedness of control flow.

    Raises ``ValueError`` on unbalanced If/EndIf or While/EndWhile, or an
    ``Else`` outside an ``If`` region.
    """
    stack = []
    for i, ins in enumerate(program):
        if isinstance(ins, If):
            stack.append("if")
        elif isinstance(ins, While):
            stack.append("while")
        elif isinstance(ins, Else):
            if not stack or stack[-1] not in ("if",):
                raise ValueError(f"instruction {i}: Else outside If")
            stack[-1] = "if-else"
        elif isinstance(ins, EndIf):
            if not stack or stack[-1] not in ("if", "if-else"):
                raise ValueError(f"instruction {i}: unmatched EndIf")
            stack.pop()
        elif isinstance(ins, EndWhile):
            if not stack or stack[-1] != "while":
                raise ValueError(f"instruction {i}: unmatched EndWhile")
            stack.pop()
    if stack:
        raise ValueError(f"unterminated control region(s): {stack}")
