"""Command-line interface.

Usage::

    python -m repro datasets
    python -m repro devices
    python -m repro build  --dataset sift --n 3000 --graph nsw --out sift.npz
    python -m repro search --dataset sift --n 3000 --index sift.npz \
            --k 10 --queue 80 --device v100
    python -m repro sweep  --dataset sift --n 2000 --methods song hnsw ivfpq \
            --plot
    python -m repro serve    --dataset sift --n 2000 --rate 2000 --requests 500
    python -m repro loadtest --dataset sift --n 2000 \
            --rates 20000 60000 150000 --policy both --slo-ms 2

Everything runs on the synthetic dataset analogues (see
``repro.data.DATASET_SPECS``); ``build`` persists the proximity graph so
``search``/``sweep`` can reuse it, mirroring how the paper's system loads
pre-built NSW indexes.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List


from repro import __version__


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", required=True, help="dataset analogue name")
    parser.add_argument("--n", type=int, default=None, help="number of base points")
    parser.add_argument("--queries", type=int, default=None, help="number of queries")
    parser.add_argument("--seed", type=int, default=0, help="generator seed")


def _load_dataset(args):
    from repro.data import make_dataset

    return make_dataset(args.dataset, n=args.n, num_queries=args.queries, seed=args.seed)


def cmd_datasets(_args) -> int:
    from repro.data import DATASET_SPECS

    print(f"{'name':<10} {'dim':>5} {'default n':>10} {'regime'}")
    for name, spec in DATASET_SPECS.items():
        regime = spec.generator.__name__.replace("_dataset", "")
        print(f"{name:<10} {spec.dim:>5} {spec.default_n:>10} {regime}")
    return 0


def cmd_devices(_args) -> int:
    from repro.simt.device import DEVICE_PRESETS

    print(f"{'key':<8} {'name':<26} {'cores':>6} {'mem':>6} {'BW GB/s':>8}")
    for key, dev in DEVICE_PRESETS.items():
        print(
            f"{key:<8} {dev.name:<26} {dev.total_cores:>6} "
            f"{dev.global_memory_gb:>5.0f}G {dev.global_bandwidth_gbs:>8.0f}"
        )
    return 0


def cmd_build(args) -> int:
    from repro.graphs import build_graph, save_graph

    dataset = _load_dataset(args)
    degree = args.degree or 2 * args.m
    kwargs = {}
    if args.graph in ("nsw", "hnsw"):
        kwargs["ef_construction"] = args.ef_construction
    start = time.time()
    graph = build_graph(
        dataset.data,
        args.graph,
        degree=degree,
        build_engine=args.build_engine,
        seed=7,
        **kwargs,
    )
    elapsed = time.time() - start
    save_graph(graph, args.out)
    print(
        f"built {args.graph} ({args.build_engine}) over "
        f"{dataset.num_data} points in {elapsed:.1f}s"
    )
    print(f"  {graph}")
    print(f"  index size: {graph.memory_bytes() / 1024:.0f} KB -> {args.out}")
    return 0


def cmd_search(args) -> int:
    from repro import GpuSongIndex, SearchConfig, SongSearcher
    from repro.eval import batch_recall
    from repro.graphs import build_nsw, load_graph

    dataset = _load_dataset(args)
    if args.index:
        graph = load_graph(args.index)
        if graph.num_vertices != dataset.num_data:
            print(
                f"error: index has {graph.num_vertices} vertices but the dataset "
                f"has {dataset.num_data} points (match --n/--seed with build)",
                file=sys.stderr,
            )
            return 2
    else:
        graph = build_nsw(dataset.data, m=8, ef_construction=48, seed=7)
    config = SearchConfig(
        k=args.k,
        queue_size=max(args.queue, args.k),
        selected_insertion=True,
        visited_deletion=True,
    )
    tier = _tier_from_args(args)
    if tier is not None:
        from repro.eval import batch_recall as _recall
        from repro.tiered import TieredServeEngine

        engine = TieredServeEngine(
            graph,
            dataset.data,
            tier,
            device=_device_from_args(args),
            prefetch=not args.no_prefetch,
        )
        outcome = engine.run_batch(dataset.queries, config)
        recall = _recall(outcome.results, dataset.ground_truth(args.k))
        detail = outcome.detail["tier"]
        print(f"device   : {engine.device.name}")
        print(f"tier     : {detail['codec']} (overfetch k'={detail['overfetch_k']})")
        print(f"resident : {detail['resident_bytes'] / 1024:.0f} KB "
              f"({detail['compression_ratio']:.1f}x compression)")
        print(f"queries  : {dataset.num_queries}")
        print(f"recall@{args.k:<3}: {recall:.4f}")
        qps = dataset.num_queries / outcome.service_seconds
        print(f"QPS      : {qps:,.0f} (modelled)")
        print(f"fetched  : {detail['fetch_bytes'] / 1024:.0f} KB over PCIe "
              f"({detail['page_hits']} page hits, {detail['page_misses']} misses)")
        return 0
    if args.engine == "sim":
        index = GpuSongIndex(graph, dataset.data, device=args.device)
        results, timing = index.search_batch(dataset.queries, config)
        recall = batch_recall(results, dataset.ground_truth(args.k))
        print(f"device   : {index.device.name}")
        print(f"queries  : {dataset.num_queries}")
        print(f"recall@{args.k:<3}: {recall:.4f}")
        print(f"QPS      : {timing.qps(dataset.num_queries):,.0f} (modelled)")
        print(f"kernel   : {1e3 * timing.kernel_seconds:.3f} ms")
        return 0
    # Host execution: serial reference loop or the vectorized lockstep
    # engine, timed on the wall clock.
    searcher = SongSearcher(graph, dataset.data)
    start = time.time()
    results = searcher.search_batch(dataset.queries, config, engine=args.engine)
    elapsed = time.time() - start
    recall = batch_recall(results, dataset.ground_truth(args.k))
    qps = dataset.num_queries / elapsed if elapsed > 0 else float("inf")
    print(f"engine   : {args.engine}")
    print(f"queries  : {dataset.num_queries}")
    print(f"recall@{args.k:<3}: {recall:.4f}")
    print(f"QPS      : {qps:,.0f} (wall clock)")
    print(f"elapsed  : {1e3 * elapsed:.1f} ms")
    return 0


def cmd_sweep(args) -> int:
    from repro import GpuSongIndex, HNSWIndex, SongSearcher
    from repro.baselines import IVFPQIndex
    from repro.eval import (
        format_curve,
        sweep_batched_song,
        sweep_gpu_song,
        sweep_hnsw,
        sweep_ivfpq,
    )
    from repro.graphs import build_graph

    dataset = _load_dataset(args)
    queues = [int(q) for q in args.grid]
    series = {}
    graph = None
    if "song" in args.methods or "batched" in args.methods:
        kwargs = {"ef_construction": 48} if args.graph in ("nsw", "hnsw") else {}
        graph = build_graph(
            dataset.data,
            args.graph,
            degree=16,
            build_engine=args.build_engine,
            seed=7,
            **kwargs,
        )
    if "song" in args.methods:
        gpu = GpuSongIndex(graph, dataset.data, device=args.device)
        series["SONG"] = sweep_gpu_song(dataset, gpu, queues, k=args.k)
    if "batched" in args.methods:
        searcher = SongSearcher(graph, dataset.data)
        series["SONG-batched"] = sweep_batched_song(
            dataset, searcher, queues, k=args.k, engine="batched"
        )
    if "hnsw" in args.methods:
        hnsw = HNSWIndex(
            dataset.data,
            m=8,
            ef_construction=48,
            seed=1,
            build_engine=args.build_engine,
        ).build()
        series["HNSW"] = sweep_hnsw(dataset, hnsw, queues, k=args.k)
    if "ivfpq" in args.methods:
        ivf = IVFPQIndex(dataset.dim, nlist=32, m=8, ksub=64, seed=0)
        ivf.train(dataset.data)
        ivf.add(dataset.data)
        series["IVFPQ"] = sweep_ivfpq(
            dataset, ivf, [1, 2, 4, 8, 16, 32], k=args.k, device=args.device
        )
    for name, pts in series.items():
        print(format_curve(name, pts))
    if args.plot and series:
        from repro.eval.plot import ascii_qps_recall

        print()
        print(ascii_qps_recall(series, title=f"{args.dataset}: top-{args.k}"))
    return 0


def _build_serving_graph(args, data):
    """The graph a serving command searches, honoring ``--graph``."""
    from repro.graphs import build_graph

    kwargs = {"ef_construction": 48} if args.graph in ("nsw", "hnsw") else {}
    return build_graph(
        data,
        args.graph,
        degree=16,
        build_engine=args.build_engine,
        seed=7,
        **kwargs,
    )


def _serving_config(args):
    from repro import SearchConfig
    from repro.eval import serving_policy_config

    base = SearchConfig(k=args.k, queue_size=max(args.queue, args.k))
    return serving_policy_config(
        args.policy,
        base,
        slo_p99_s=args.slo_ms / 1e3,
        max_queue=args.max_queue,
        batch_size=args.batch_size,
        max_batch=args.max_batch,
    )


def cmd_serve(args) -> int:
    """Serve a synthetic Poisson stream in real time; print metrics JSON."""
    import asyncio
    import json

    from repro.serve import build_server, drive_poisson, summarize

    dataset = _load_dataset(args)
    graph = _build_serving_graph(args, dataset.data)
    config = _serving_config(args)
    server = build_server(
        graph,
        dataset.data,
        config,
        num_replicas=args.replicas,
        device=_device_from_args(args),
        streams=args.streams,
        tier=_tier_from_args(args),
        prefetch=not args.no_prefetch,
    )
    gt = dataset.ground_truth(args.k)

    async def main():
        loop = asyncio.get_running_loop()
        start = loop.time()
        await server.start()
        responses = await drive_poisson(
            server,
            dataset.queries,
            args.rate,
            args.requests,
            seed=args.seed,
            ground_truth=gt,
        )
        await server.stop()
        return responses, loop.time() - start

    responses, duration = asyncio.run(main())
    report = summarize(server, responses, args.rate, duration)
    print(
        f"served {report.completed}/{report.num_requests} requests "
        f"at {report.achieved_qps:,.0f} QPS "
        f"(p99 {1e3 * report.p99_latency_s:.3f} ms, "
        f"SLO {'met' if report.slo_met else 'MISSED'})"
    )
    print(json.dumps(server.metrics_dict(), indent=2, default=str))
    return 0


def cmd_loadtest(args) -> int:
    """Deterministic virtual-time loadtest sweep over offered rates."""
    import json

    from repro.eval import SERVING_POLICIES, format_serving_table, sweep_serving

    dataset = _load_dataset(args)
    graph = _build_serving_graph(args, dataset.data)
    policies = SERVING_POLICIES if args.policy == "both" else (args.policy,)
    from repro import SearchConfig

    series = sweep_serving(
        graph,
        dataset.data,
        dataset.queries,
        rates=list(args.rates),
        base=SearchConfig(k=args.k, queue_size=max(args.queue, args.k)),
        slo_p99_s=args.slo_ms / 1e3,
        num_requests=args.requests,
        seed=args.seed,
        ground_truth=dataset.ground_truth(args.k),
        num_replicas=args.replicas,
        device=_device_from_args(args),
        policies=policies,
        max_queue=args.max_queue,
        batch_size=args.batch_size,
        max_batch=args.max_batch,
        streams=args.streams,
        tier=_tier_from_args(args),
        prefetch=not args.no_prefetch,
    )
    print(format_serving_table(series))
    if args.out:
        payload = {
            policy: [p.to_dict() for p in points]
            for policy, points in series.items()
        }
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"\nwrote {args.out}")
    return 0


def _add_tier_args(parser: argparse.ArgumentParser) -> None:
    """Out-of-core tier flags shared by search/serve/loadtest."""
    parser.add_argument(
        "--tier", choices=["off", "bits", "pq"], default="off",
        help="serve through the out-of-core compressed tier",
    )
    parser.add_argument(
        "--tier-bits", type=int, default=128,
        help="signature bits for --tier bits (multiple of 32)",
    )
    parser.add_argument("--tier-pq-m", type=int, default=8)
    parser.add_argument("--tier-pq-ksub", type=int, default=16)
    parser.add_argument(
        "--tier-overfetch", type=int, default=4,
        help="candidates re-ranked per requested k",
    )
    parser.add_argument(
        "--tier-page-rows", type=int, default=64,
        help="full-precision rows per PCIe page",
    )
    parser.add_argument(
        "--tier-cache-pages", type=int, default=32,
        help="device-resident hot pages (0 disables the cache)",
    )
    parser.add_argument(
        "--no-prefetch", action="store_true",
        help="serial demand fetches instead of staged/overlapped pages",
    )
    parser.add_argument(
        "--memory-budget-mb", type=float, default=None,
        help="override the device's resident-memory budget (MB)",
    )


def _tier_from_args(args):
    """``TieredConfig`` from CLI flags, or ``None`` when --tier off."""
    if getattr(args, "tier", "off") == "off":
        return None
    from repro.tiered import TieredConfig

    return TieredConfig(
        codec=args.tier,
        num_bits=args.tier_bits,
        pq_m=args.tier_pq_m,
        pq_ksub=args.tier_pq_ksub,
        overfetch=args.tier_overfetch,
        page_rows=args.tier_page_rows,
        cache_pages=args.tier_cache_pages,
    )


def _device_from_args(args):
    """Device preset, with the budget override applied when given."""
    from repro.simt.device import get_device

    device = get_device(args.device)
    budget = getattr(args, "memory_budget_mb", None)
    if budget is not None:
        device = device.with_overrides(memory_budget_gb=budget / 1024.0)
    return device


def _add_serving_args(parser: argparse.ArgumentParser) -> None:
    from repro.core.config import GRAPH_TYPES

    parser.add_argument(
        "--graph", choices=list(GRAPH_TYPES), default="nsw",
        help="graph family the replicas search",
    )
    parser.add_argument(
        "--build-engine", choices=["serial", "batched"], default="serial",
        help="construction engine for the served graph",
    )
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--queue", type=int, default=64, help="tier-0 ef")
    parser.add_argument("--slo-ms", type=float, default=2.0, help="p99 SLO")
    parser.add_argument("--replicas", type=int, default=1)
    parser.add_argument(
        "--streams",
        type=int,
        default=1,
        help="device streams per replica (1 = serial device model)",
    )
    parser.add_argument("--device", default="v100")
    parser.add_argument("--requests", type=int, default=400)
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--max-queue", type=int, default=256)
    _add_tier_args(parser)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SONG reproduction: graph ANN search on a simulated GPU",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list dataset analogues").set_defaults(
        func=cmd_datasets
    )
    sub.add_parser("devices", help="list simulated GPU presets").set_defaults(
        func=cmd_devices
    )

    from repro.core.config import GRAPH_TYPES

    p_build = sub.add_parser("build", help="build and save a proximity graph")
    _add_dataset_args(p_build)
    p_build.add_argument("--graph", choices=list(GRAPH_TYPES), default="nsw")
    p_build.add_argument("--m", type=int, default=8, help="NSW connections per point")
    p_build.add_argument(
        "--degree", type=int, default=None,
        help="out-degree bound of the built graph (default 2*m)",
    )
    p_build.add_argument("--ef-construction", type=int, default=48)
    p_build.add_argument(
        "--build-engine", choices=["serial", "batched"], default="serial",
        help="construction engine (batched = vectorized generation inserts)",
    )
    p_build.add_argument("--out", required=True, help="output .npz path")
    p_build.set_defaults(func=cmd_build)

    p_search = sub.add_parser("search", help="batch-search a dataset")
    _add_dataset_args(p_search)
    p_search.add_argument("--index", help="graph .npz from `build` (else build NSW)")
    p_search.add_argument("--k", type=int, default=10)
    p_search.add_argument("--queue", type=int, default=80)
    p_search.add_argument("--device", default="v100")
    p_search.add_argument(
        "--engine", choices=["sim", "serial", "batched"], default="sim",
        help="sim = modelled GPU kernel; serial/batched = host wall clock",
    )
    _add_tier_args(p_search)
    p_search.set_defaults(func=cmd_search)

    p_sweep = sub.add_parser("sweep", help="QPS-recall sweep of one or more methods")
    _add_dataset_args(p_sweep)
    p_sweep.add_argument(
        "--methods",
        nargs="+",
        choices=["song", "batched", "hnsw", "ivfpq"],
        default=["song"],
    )
    p_sweep.add_argument("--k", type=int, default=10)
    p_sweep.add_argument(
        "--grid", nargs="+", default=["10", "20", "40", "80", "160"],
        help="queue sizes to sweep",
    )
    p_sweep.add_argument("--device", default="v100")
    p_sweep.add_argument(
        "--graph", choices=list(GRAPH_TYPES), default="nsw",
        help="graph family searched by the song/batched methods",
    )
    p_sweep.add_argument(
        "--build-engine", choices=["serial", "batched"], default="serial",
        help="construction engine for the swept indexes",
    )
    p_sweep.add_argument("--plot", action="store_true", help="render an ASCII plot")
    p_sweep.set_defaults(func=cmd_sweep)

    p_serve = sub.add_parser(
        "serve", help="serve a synthetic Poisson stream in real time"
    )
    _add_dataset_args(p_serve)
    _add_serving_args(p_serve)
    p_serve.add_argument("--rate", type=float, default=2000.0, help="offered QPS")
    p_serve.add_argument(
        "--policy", choices=["fixed", "adaptive"], default="adaptive"
    )
    p_serve.set_defaults(func=cmd_serve)

    p_load = sub.add_parser(
        "loadtest", help="deterministic virtual-time loadtest sweep"
    )
    _add_dataset_args(p_load)
    _add_serving_args(p_load)
    p_load.add_argument(
        "--rates", nargs="+", type=float,
        default=[20_000.0, 60_000.0, 150_000.0], help="offered QPS points",
    )
    p_load.add_argument(
        "--policy", choices=["fixed", "adaptive", "both"], default="both"
    )
    p_load.add_argument("--out", help="write per-policy reports to a JSON file")
    p_load.set_defaults(func=cmd_loadtest)
    return parser


def main(argv: List[str] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
