"""SONG reproduction: graph-based ANN search on a simulated GPU.

Reproduces *SONG: Approximate Nearest Neighbor Search on GPU*
(Zhao, Tan, Li — ICDE 2020): the 3-stage decoupled graph search, the
GPU-friendly data structures and memory optimizations, the out-of-memory
hashing path, and the full HNSW / Faiss-IVFPQ comparison harness — with
the CUDA hardware replaced by a warp-level SIMT cost-model simulator.

Quickstart::

    import numpy as np
    from repro import build_nsw, GpuSongIndex, SearchConfig

    data = np.random.default_rng(0).normal(size=(2000, 32)).astype(np.float32)
    graph = build_nsw(data, m=8)
    index = GpuSongIndex(graph, data, device="v100")
    results, timing = index.search_batch(data[:10], SearchConfig(k=10))
    print(results[0], timing.qps(10))
"""

from repro.core import (
    GRAPH_TYPES,
    BatchedSongSearcher,
    BuildConfig,
    CpuSongIndex,
    GpuSongIndex,
    OnlineSongIndex,
    OptimizationLevel,
    SearchConfig,
    SearchStats,
    ShardedSongIndex,
    SongSearcher,
    algorithm1_search,
)
from repro.graphs import (
    FixedDegreeGraph,
    HNSWIndex,
    build_cagra,
    build_dpg,
    build_graph,
    build_knn_graph,
    build_nsg,
    build_nsw,
)
from repro.simt import DeviceSpec, get_device

__version__ = "1.0.0"

__all__ = [
    "SearchConfig",
    "BuildConfig",
    "SearchStats",
    "OptimizationLevel",
    "SongSearcher",
    "BatchedSongSearcher",
    "GpuSongIndex",
    "CpuSongIndex",
    "ShardedSongIndex",
    "OnlineSongIndex",
    "algorithm1_search",
    "FixedDegreeGraph",
    "HNSWIndex",
    "GRAPH_TYPES",
    "build_cagra",
    "build_dpg",
    "build_graph",
    "build_knn_graph",
    "build_nsg",
    "build_nsw",
    "DeviceSpec",
    "get_device",
    "__version__",
]
