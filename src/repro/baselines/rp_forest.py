"""Random-projection forest (Annoy-family) ANN baseline.

Annoy builds a forest of trees whose internal nodes split on random
hyperplanes through two sampled points; search descends every tree,
collecting leaf candidates, and ranks the union exactly.  Included, like
the KD-tree, to reproduce the paper's exclusion of tree methods.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


@dataclass
class _RPNode:
    indices: np.ndarray
    normal: Optional[np.ndarray] = None
    offset: float = 0.0
    left: Optional["_RPNode"] = None
    right: Optional["_RPNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RPForestIndex:
    """Forest of random-hyperplane trees.

    Parameters
    ----------
    data:
        ``(n, d)`` dataset.
    num_trees:
        More trees → better recall, more memory and search work.
    leaf_size:
        Bucket size.
    seed:
        Forest RNG seed.
    """

    def __init__(
        self,
        data: np.ndarray,
        num_trees: int = 8,
        leaf_size: int = 16,
        seed: int = 0,
    ) -> None:
        if num_trees <= 0:
            raise ValueError("num_trees must be positive")
        if leaf_size <= 0:
            raise ValueError("leaf_size must be positive")
        self.data = np.asarray(data, dtype=np.float64)
        self.leaf_size = leaf_size
        self._rng = np.random.default_rng(seed)
        self.trees = [
            self._build(np.arange(len(self.data))) for _ in range(num_trees)
        ]

    def _build(self, indices: np.ndarray, depth: int = 0) -> _RPNode:
        if len(indices) <= self.leaf_size or depth > 48:
            return _RPNode(indices=indices)
        picks = self._rng.choice(indices, size=2, replace=False)
        a, b = self.data[picks[0]], self.data[picks[1]]
        normal = a - b
        norm = np.linalg.norm(normal)
        if norm == 0:
            return _RPNode(indices=indices)
        normal = normal / norm
        offset = float(normal @ (a + b) / 2.0)
        side = self.data[indices] @ normal < offset
        if not side.any() or side.all():
            # degenerate split: shuffle into halves
            shuffled = self._rng.permutation(indices)
            half = len(indices) // 2
            left_ids, right_ids = shuffled[:half], shuffled[half:]
        else:
            left_ids, right_ids = indices[side], indices[~side]
        return _RPNode(
            indices=indices,
            normal=normal,
            offset=offset,
            left=self._build(left_ids, depth + 1),
            right=self._build(right_ids, depth + 1),
        )

    def search(
        self, query: np.ndarray, k: int, search_budget: int = 256
    ) -> List[Tuple[float, int]]:
        """Top-``k`` over the union of tree leaves within a budget.

        ``search_budget`` is the total number of candidate points to
        gather across all trees (Annoy's ``search_k``).
        """
        if k <= 0:
            raise ValueError("k must be positive")
        query = np.asarray(query, dtype=np.float64)
        # best-first across all trees by margin to the splitting plane
        frontier: List[Tuple[float, int, _RPNode]] = []
        counter = 0
        for tree in self.trees:
            heapq.heappush(frontier, (0.0, counter, tree))
            counter += 1
        candidates: List[int] = []
        seen = set()
        while frontier and len(candidates) < search_budget:
            margin, _, node = heapq.heappop(frontier)
            while not node.is_leaf:
                proj = float(node.normal @ query) - node.offset
                near, far = (
                    (node.left, node.right) if proj < 0 else (node.right, node.left)
                )
                heapq.heappush(
                    frontier, (max(margin, abs(proj)), counter, far)
                )
                counter += 1
                node = near
            for idx in node.indices:
                idx = int(idx)
                if idx not in seen:
                    seen.add(idx)
                    candidates.append(idx)
        self.last_scanned = len(candidates)
        if not candidates:
            return []
        pts = self.data[candidates]
        dists = ((pts - query) ** 2).sum(axis=1)
        take = min(k, len(candidates))
        top = np.argpartition(dists, take - 1)[:take]
        order = np.argsort(dists[top], kind="stable")
        return [(float(dists[top[i]]), candidates[top[i]]) for i in order]

    def memory_bytes(self) -> int:
        """Split vectors dominate: d floats per internal node."""
        def count_internal(node):
            if node.is_leaf:
                return 0
            return 1 + count_internal(node.left) + count_internal(node.right)

        internal = sum(count_internal(t) for t in self.trees)
        return internal * (self.data.shape[1] * 4 + 8)
