"""Product quantization codec (Jégou et al., 2011).

The vector space is split into ``m`` contiguous sub-spaces; each sub-space
gets its own ``ksub``-centroid codebook, so a ``d``-dimensional float
vector compresses to ``m`` bytes (with ``ksub ≤ 256``).  Search uses
asymmetric distance computation (ADC): per query, a ``(m, ksub)`` table of
sub-distances is built once, after which each code's distance is ``m``
table lookups and adds.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.kmeans import kmeans


class ProductQuantizer:
    """PQ codec with ADC support.

    Parameters
    ----------
    dim:
        Vector dimensionality (must divide evenly by ``m``).
    m:
        Number of sub-quantizers (bytes per code).
    ksub:
        Centroids per sub-space (≤ 256 keeps one byte per sub-code).
    seed:
        Codebook-training RNG seed.
    """

    def __init__(self, dim: int, m: int = 8, ksub: int = 256, seed: int = 0) -> None:
        if dim % m != 0:
            raise ValueError(f"dim={dim} must be divisible by m={m}")
        if not 1 <= ksub <= 256:
            raise ValueError("ksub must be in [1, 256]")
        self.dim = dim
        self.m = m
        self.ksub = ksub
        self.dsub = dim // m
        self.seed = seed
        self.codebooks: np.ndarray = None  # (m, ksub, dsub)
        self.trained = False

    def train(self, data: np.ndarray) -> "ProductQuantizer":
        """Fit one codebook per sub-space with k-means."""
        data = np.asarray(data, dtype=np.float64)
        if data.shape[1] != self.dim:
            raise ValueError("training data dimensionality mismatch")
        ksub = min(self.ksub, len(data))
        books = np.zeros((self.m, self.ksub, self.dsub))
        for j in range(self.m):
            sub = data[:, j * self.dsub : (j + 1) * self.dsub]
            centroids, _ = kmeans(sub, ksub, seed=self.seed + j)
            books[j, :ksub] = centroids
            if ksub < self.ksub:
                books[j, ksub:] = centroids[0]
        self.codebooks = books
        self.trained = True
        return self

    def _require_trained(self) -> None:
        if not self.trained:
            raise RuntimeError("quantizer not trained; call train() first")

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Compress ``(n, dim)`` vectors to ``(n, m)`` uint8 codes."""
        self._require_trained()
        data = np.asarray(data, dtype=np.float64)
        n = len(data)
        codes = np.empty((n, self.m), dtype=np.uint8)
        for j in range(self.m):
            sub = data[:, j * self.dsub : (j + 1) * self.dsub]
            book = self.codebooks[j]
            d = (
                np.einsum("ij,ij->i", sub, sub)[:, None]
                - 2.0 * sub @ book.T
                + np.einsum("ij,ij->i", book, book)[None, :]
            )
            codes[:, j] = np.argmin(d, axis=1).astype(np.uint8)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate vectors from codes."""
        self._require_trained()
        n = len(codes)
        out = np.empty((n, self.dim))
        for j in range(self.m):
            out[:, j * self.dsub : (j + 1) * self.dsub] = self.codebooks[j][
                codes[:, j]
            ]
        return out

    def adc_table(self, query: np.ndarray) -> np.ndarray:
        """Per-query ``(m, ksub)`` table of squared sub-distances."""
        self._require_trained()
        query = np.asarray(query, dtype=np.float64)
        table = np.empty((self.m, self.ksub))
        for j in range(self.m):
            sub = query[j * self.dsub : (j + 1) * self.dsub]
            diff = self.codebooks[j] - sub
            table[j] = np.einsum("ij,ij->i", diff, diff)
        return table

    def adc_distances(self, table: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Approximate squared distances of codes given an ADC table."""
        n = len(codes)
        out = np.zeros(n)
        for j in range(self.m):
            out += table[j, codes[:, j]]
        return out

    def quantization_error(self, data: np.ndarray) -> float:
        """Mean squared reconstruction error over ``data``."""
        recon = self.decode(self.encode(data))
        return float(((np.asarray(data, dtype=np.float64) - recon) ** 2).sum(axis=1).mean())

    def code_bytes(self, n: int) -> int:
        """Storage for ``n`` encoded vectors."""
        return n * self.m

    def memory_bytes(self) -> int:
        """Codebook storage (float32 on device)."""
        return int(self.m * self.ksub * self.dsub * 4)
