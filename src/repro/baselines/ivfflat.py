"""IVF-Flat: inverted file over exact vectors (Faiss's other workhorse).

Same coarse quantizer as IVFPQ but lists store raw vectors, so list scans
compute exact distances — no quantization ceiling, more memory and more
distance work per candidate.  Useful as a quantization-free contrast to
IVFPQ in the comparison harness.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.baselines.kmeans import kmeans
from repro.simt.device import get_device
from repro.simt.kernel import KernelLauncher, KernelResult
from repro.simt.warp import Warp


class IVFFlatIndex:
    """Inverted file with exact residual-free storage."""

    def __init__(self, dim: int, nlist: int = 64, seed: int = 0) -> None:
        if nlist <= 0:
            raise ValueError("nlist must be positive")
        self.dim = dim
        self.nlist = nlist
        self.seed = seed
        self.centroids: np.ndarray = None
        self.lists: List[np.ndarray] = []
        self.vectors: List[np.ndarray] = []
        self.ntotal = 0
        self.trained = False

    def train(self, data: np.ndarray) -> "IVFFlatIndex":
        data = np.asarray(data, dtype=np.float64)
        nlist = min(self.nlist, len(data))
        self.centroids, _ = kmeans(data, nlist, seed=self.seed)
        self.nlist = nlist
        self.trained = True
        return self

    def add(self, data: np.ndarray) -> None:
        if not self.trained:
            raise RuntimeError("index not trained; call train() first")
        data = np.asarray(data, dtype=np.float64)
        d = (
            np.einsum("ij,ij->i", data, data)[:, None]
            - 2.0 * data @ self.centroids.T
            + np.einsum("ij,ij->i", self.centroids, self.centroids)[None, :]
        )
        labels = np.argmin(d, axis=1)
        base = self.ntotal
        if not self.lists:
            self.lists = [np.empty(0, dtype=np.int64) for _ in range(self.nlist)]
            self.vectors = [
                np.empty((0, self.dim)) for _ in range(self.nlist)
            ]
        for c in range(self.nlist):
            members = np.flatnonzero(labels == c)
            if not len(members):
                continue
            self.lists[c] = np.concatenate([self.lists[c], members + base])
            self.vectors[c] = np.vstack([self.vectors[c], data[members]])
        self.ntotal += len(data)

    def search(
        self, query: np.ndarray, k: int, nprobe: int = 1
    ) -> List[Tuple[float, int]]:
        """Exact top-``k`` over the ``nprobe`` nearest lists."""
        if not self.trained or self.ntotal == 0:
            raise RuntimeError("index empty; train() and add() first")
        if k <= 0:
            raise ValueError("k must be positive")
        nprobe = min(max(1, nprobe), self.nlist)
        query = np.asarray(query, dtype=np.float64)
        coarse = ((self.centroids - query) ** 2).sum(axis=1)
        order = np.argsort(coarse, kind="stable")[:nprobe]
        ids, dists = [], []
        for c in order:
            vecs = self.vectors[int(c)]
            if not len(vecs):
                continue
            ids.append(self.lists[int(c)])
            dists.append(((vecs - query) ** 2).sum(axis=1))
        if not ids:
            return []
        ids = np.concatenate(ids)
        dists = np.concatenate(dists)
        take = min(k, len(ids))
        top = np.argpartition(dists, take - 1)[:take]
        o = np.argsort(dists[top], kind="stable")
        return [(float(dists[top[i]]), int(ids[top[i]])) for i in o]

    def gpu_search_batch(
        self, queries: np.ndarray, k: int, nprobe: int = 1, device: str = "v100"
    ) -> Tuple[list, KernelResult]:
        """Metered batch search on the SIMT simulator."""
        dev = get_device(device)
        launcher = KernelLauncher(dev)
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))

        def kernel(qi: int, warp: Warp):
            query = queries[qi]
            warp.set_stage("distance")
            warp.global_read_coalesced(self.nlist * self.dim * 4)
            warp.simd_compute(self.nlist * 3 * self.dim)
            coarse = ((self.centroids - query) ** 2).sum(axis=1)
            order = np.argsort(coarse, kind="stable")[: min(nprobe, self.nlist)]
            scanned = sum(len(self.lists[int(c)]) for c in order)
            warp.global_read_coalesced(scanned * self.dim * 4)
            warp.simd_compute(scanned * 3 * self.dim)
            warp.warp_reduce(scanned)
            warp.set_stage("maintain")
            warp.sequential(max(1, scanned.bit_length()) * k)
            return self.search(query, k, nprobe)

        result = launcher.launch(
            kernel,
            num_queries=len(queries),
            htod_bytes=int(queries.nbytes),
            dtoh_bytes=len(queries) * k * 8,
            shared_bytes_per_warp=self.dim * 4,
        )
        return result.outputs, result

    def memory_bytes(self) -> int:
        """Centroids + full float32 vectors + ids."""
        if not self.trained:
            return 0
        vec_bytes = sum(v.shape[0] * self.dim * 4 for v in self.vectors)
        id_bytes = sum(4 * len(ids) for ids in self.lists)
        return int(self.nlist * self.dim * 4) + vec_bytes + id_bytes
