"""Multi-probe LSH ANN baseline (FALCONN-family).

Hash tables over random-hyperplane sign bits; a query probes its own
bucket plus the buckets at small Hamming perturbations of its code
(multi-probe), ranks the union exactly.  Included to reproduce the
paper's exclusion of hashing-based competitors.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Tuple

import numpy as np


class LSHIndex:
    """Sign-random-projection multi-probe LSH.

    Parameters
    ----------
    data:
        ``(n, d)`` dataset.
    num_tables:
        Independent hash tables.
    num_bits:
        Hyperplanes (code bits) per table; buckets = 2^num_bits.
    seed:
        RNG seed for the hyperplanes.
    """

    def __init__(
        self,
        data: np.ndarray,
        num_tables: int = 8,
        num_bits: int = 12,
        seed: int = 0,
    ) -> None:
        if num_tables <= 0:
            raise ValueError("num_tables must be positive")
        if not 1 <= num_bits <= 24:
            raise ValueError("num_bits must be in [1, 24]")
        self.data = np.asarray(data, dtype=np.float64)
        self.num_tables = num_tables
        self.num_bits = num_bits
        rng = np.random.default_rng(seed)
        d = self.data.shape[1]
        self._planes = rng.standard_normal((num_tables, d, num_bits))
        self.tables: List[Dict[int, List[int]]] = []
        for t in range(num_tables):
            codes = self._codes(self.data, t)
            table: Dict[int, List[int]] = {}
            for idx, code in enumerate(codes):
                table.setdefault(int(code), []).append(idx)
            self.tables.append(table)

    def _codes(self, points: np.ndarray, table: int) -> np.ndarray:
        signs = points @ self._planes[table] >= 0  # (n, bits)
        weights = 1 << np.arange(self.num_bits)
        return signs @ weights

    @staticmethod
    def _perturbations(code: int, num_bits: int, max_flips: int):
        yield code
        for flips in range(1, max_flips + 1):
            for bits in combinations(range(num_bits), flips):
                mask = 0
                for b in bits:
                    mask |= 1 << b
                yield code ^ mask

    def search(
        self, query: np.ndarray, k: int, max_flips: int = 1
    ) -> List[Tuple[float, int]]:
        """Top-``k`` over the union of probed buckets.

        ``max_flips`` is the multi-probe radius (0 = exact bucket only);
        it is the recall/throughput dial.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        if max_flips < 0:
            raise ValueError("max_flips must be non-negative")
        query = np.asarray(query, dtype=np.float64)
        candidates: List[int] = []
        seen = set()
        for t in range(self.num_tables):
            code = int(self._codes(query[None, :], t)[0])
            for probe in self._perturbations(code, self.num_bits, max_flips):
                for idx in self.tables[t].get(probe, ()):
                    if idx not in seen:
                        seen.add(idx)
                        candidates.append(idx)
        self.last_scanned = len(candidates)
        if not candidates:
            return []
        pts = self.data[candidates]
        dists = ((pts - query) ** 2).sum(axis=1)
        take = min(k, len(candidates))
        top = np.argpartition(dists, take - 1)[:take]
        order = np.argsort(dists[top], kind="stable")
        return [(float(dists[top[i]]), candidates[top[i]]) for i in order]

    def memory_bytes(self) -> int:
        """Hyperplanes + one id slot per point per table."""
        plane_bytes = int(self._planes.size * 4)
        id_bytes = self.num_tables * len(self.data) * 4
        return plane_bytes + id_bytes
