"""IVF+PQ index — the Faiss-GPU stand-in of the paper's comparison.

An inverted file over a k-means coarse quantizer; each list stores PQ
codes of the *residuals* (vector minus its centroid), exactly the Faiss
``IVFPQ`` layout.  Search visits the ``nprobe`` nearest lists and ranks
their codes with ADC tables.

``gpu_search_batch`` runs the same search while metering warp costs, so
QPS-vs-recall curves come from the same simulated device as SONG's.  The
quantization structure is what produces the paper's characteristic Faiss
behaviour: very fast per-candidate work, but a recall ceiling set by code
quality — visible on clustered datasets (NYTimes/GloVe analogues).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.baselines.kmeans import kmeans
from repro.baselines.pq import ProductQuantizer
from repro.simt.device import DeviceSpec, get_device
from repro.simt.kernel import KernelLauncher, KernelResult
from repro.simt.warp import Warp


class IVFPQIndex:
    """Inverted-file product-quantization ANN index.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    nlist:
        Coarse-quantizer centroids (inverted lists).
    m:
        PQ sub-quantizers (bytes per code).
    ksub:
        Centroids per PQ sub-space.
    seed:
        Training RNG seed.
    """

    def __init__(
        self, dim: int, nlist: int = 64, m: int = 8, ksub: int = 256, seed: int = 0
    ) -> None:
        if nlist <= 0:
            raise ValueError("nlist must be positive")
        self.dim = dim
        self.nlist = nlist
        self.seed = seed
        self.pq = ProductQuantizer(dim, m=m, ksub=ksub, seed=seed)
        self.centroids: np.ndarray = None  # (nlist, dim)
        self.lists: List[np.ndarray] = []  # per-list vector ids
        self.codes: List[np.ndarray] = []  # per-list (len, m) uint8
        self.ntotal = 0
        self.trained = False

    # -- construction -----------------------------------------------------

    def train(self, data: np.ndarray) -> "IVFPQIndex":
        """Fit the coarse quantizer and the PQ codebooks (on residuals)."""
        data = np.asarray(data, dtype=np.float64)
        if data.shape[1] != self.dim:
            raise ValueError("training data dimensionality mismatch")
        nlist = min(self.nlist, len(data))
        self.centroids, labels = kmeans(data, nlist, seed=self.seed)
        if nlist < self.nlist:
            self.nlist = nlist
        residuals = data - self.centroids[labels]
        self.pq.train(residuals)
        self.trained = True
        return self

    def add(self, data: np.ndarray) -> None:
        """Encode and store vectors in their inverted lists."""
        if not self.trained:
            raise RuntimeError("index not trained; call train() first")
        data = np.asarray(data, dtype=np.float64)
        base = self.ntotal
        labels = self._coarse_assign(data)
        residuals = data - self.centroids[labels]
        codes = self.pq.encode(residuals)
        new_lists: List[List[int]] = [[] for _ in range(self.nlist)]
        for i, c in enumerate(labels):
            new_lists[int(c)].append(i)
        if not self.lists:
            self.lists = [np.empty(0, dtype=np.int64) for _ in range(self.nlist)]
            self.codes = [
                np.empty((0, self.pq.m), dtype=np.uint8) for _ in range(self.nlist)
            ]
        for c in range(self.nlist):
            members = new_lists[c]
            if not members:
                continue
            ids = np.asarray(members, dtype=np.int64) + base
            self.lists[c] = np.concatenate([self.lists[c], ids])
            self.codes[c] = np.vstack([self.codes[c], codes[members]])
        self.ntotal += len(data)

    def _coarse_assign(self, data: np.ndarray) -> np.ndarray:
        d = (
            np.einsum("ij,ij->i", data, data)[:, None]
            - 2.0 * data @ self.centroids.T
            + np.einsum("ij,ij->i", self.centroids, self.centroids)[None, :]
        )
        return np.argmin(d, axis=1)

    # -- search ------------------------------------------------------------

    def search(
        self, query: np.ndarray, k: int, nprobe: int = 1
    ) -> List[Tuple[float, int]]:
        """Top-``k`` by ADC over the ``nprobe`` nearest lists."""
        if not self.trained or self.ntotal == 0:
            raise RuntimeError("index empty; train() and add() first")
        if k <= 0:
            raise ValueError("k must be positive")
        nprobe = min(max(1, nprobe), self.nlist)
        query = np.asarray(query, dtype=np.float64)
        coarse = ((self.centroids - query) ** 2).sum(axis=1)
        probe_order = np.argsort(coarse, kind="stable")[:nprobe]

        all_ids: List[np.ndarray] = []
        all_d: List[np.ndarray] = []
        for c in probe_order:
            ids = self.lists[int(c)]
            if not len(ids):
                continue
            # ADC on the residual: table built against (query - centroid).
            table = self.pq.adc_table(query - self.centroids[int(c)])
            d = self.pq.adc_distances(table, self.codes[int(c)])
            all_ids.append(ids)
            all_d.append(d)
        if not all_ids:
            return []
        ids = np.concatenate(all_ids)
        dists = np.concatenate(all_d)
        take = min(k, len(ids))
        top = np.argpartition(dists, take - 1)[:take]
        order = np.argsort(dists[top], kind="stable")
        return [(float(dists[top[i]]), int(ids[top[i]])) for i in order]

    def search_batch(
        self, queries: np.ndarray, k: int, nprobe: int = 1
    ) -> List[List[Tuple[float, int]]]:
        return [self.search(q, k, nprobe) for q in np.atleast_2d(queries)]

    # -- simulated-GPU search ------------------------------------------------

    def gpu_search_batch(
        self,
        queries: np.ndarray,
        k: int,
        nprobe: int = 1,
        device: str = "v100",
    ) -> Tuple[List[List[Tuple[float, int]]], KernelResult]:
        """Metered batch search on the SIMT simulator.

        Charges per query: coarse distances (``nlist × dim`` flops,
        coalesced centroid reads), ``nprobe`` ADC tables (``ksub × dim``
        flops each) and the list scans (``m`` lookups/adds per code,
        coalesced code reads) plus a k-selection pass.
        """
        dev: DeviceSpec = get_device(device)
        launcher = KernelLauncher(dev)
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        pq = self.pq

        def kernel(q_index: int, warp: Warp):
            query = queries[q_index]
            warp.set_stage("distance")
            # Coarse quantizer scan.
            warp.global_read_coalesced(self.nlist * self.dim * 4)
            warp.simd_compute(self.nlist * 3 * self.dim)
            warp.warp_reduce(self.nlist)
            coarse = ((self.centroids - query) ** 2).sum(axis=1)
            order = np.argsort(coarse, kind="stable")[: min(nprobe, self.nlist)]
            scanned = 0
            for c in order:
                # ADC table build: ksub × dsub per sub-space.
                warp.simd_compute(pq.m * pq.ksub * 3 * pq.dsub)
                warp.shared_access(pq.m * pq.ksub)
                scanned += len(self.lists[int(c)])
            # List scan: m lookups + adds per stored code.
            warp.global_read_coalesced(scanned * pq.m)
            warp.simd_compute(scanned * 2 * pq.m)
            warp.set_stage("maintain")
            # k-selection over scanned candidates (warp bitonic-ish pass).
            warp.sequential(max(1, scanned.bit_length()) * k)
            return self.search(query, k, nprobe)

        shared = pq.m * pq.ksub * 4 + self.dim * 4  # ADC table + query vector
        result = launcher.launch(
            kernel,
            num_queries=len(queries),
            htod_bytes=int(queries.nbytes),
            dtoh_bytes=len(queries) * k * 8,
            shared_bytes_per_warp=shared,
        )
        return result.outputs, result

    # -- accounting -------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Device footprint: centroids + codebooks + codes + id lists."""
        if not self.trained:
            return 0
        centroid_bytes = int(self.nlist * self.dim * 4)
        code_bytes = sum(int(c.nbytes) for c in self.codes)
        id_bytes = sum(4 * len(ids) for ids in self.lists)
        return centroid_bytes + self.pq.memory_bytes() + code_bytes + id_bytes
