"""Exact brute-force search: ground truth and sanity baseline."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.distances import get_metric


class FlatIndex:
    """Scan-everything exact index."""

    def __init__(self, data: np.ndarray, metric: str = "l2") -> None:
        self.data = np.asarray(data)
        self.metric = get_metric(metric)

    def search(self, query: np.ndarray, k: int) -> List[Tuple[float, int]]:
        """Exact top-``k`` (ascending distance, ties broken by id)."""
        if k <= 0:
            raise ValueError("k must be positive")
        k = min(k, len(self.data))
        d = self.metric.batch(np.asarray(query), self.data)
        idx = np.argpartition(d, k - 1)[:k]
        order = np.lexsort((idx, d[idx]))
        return [(float(d[idx[i]]), int(idx[i])) for i in order]

    def search_batch(
        self, queries: np.ndarray, k: int
    ) -> List[List[Tuple[float, int]]]:
        return [self.search(q, k) for q in np.atleast_2d(queries)]

    def memory_bytes(self) -> int:
        return int(self.data.nbytes)
