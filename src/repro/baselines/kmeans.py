"""Lloyd's k-means with k-means++ seeding.

The substrate under both the IVF coarse quantizer and each PQ sub-space
codebook.  Deterministic given the seed; empty clusters are re-seeded
from the points farthest from their assigned centroid.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def kmeans_pp_init(data: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D² sampling."""
    n = len(data)
    centroids = np.empty((k, data.shape[1]), dtype=data.dtype)
    first = int(rng.integers(n))
    centroids[0] = data[first]
    d2 = ((data - centroids[0]) ** 2).sum(axis=1)
    for i in range(1, k):
        total = float(d2.sum())
        if total <= 0:
            centroids[i:] = data[rng.integers(n, size=k - i)]
            break
        probs = d2 / total
        choice = int(rng.choice(n, p=probs))
        centroids[i] = data[choice]
        d2 = np.minimum(d2, ((data - centroids[i]) ** 2).sum(axis=1))
    return centroids


def assign(data: np.ndarray, centroids: np.ndarray, block: int = 4096) -> np.ndarray:
    """Nearest-centroid assignment for each row of ``data``."""
    n = len(data)
    out = np.empty(n, dtype=np.int32)
    c_sq = np.einsum("ij,ij->i", centroids, centroids)
    for start in range(0, n, block):
        stop = min(start + block, n)
        cross = data[start:stop] @ centroids.T
        d = c_sq[None, :] - 2.0 * cross  # ||x||² constant per row, omit
        out[start:stop] = np.argmin(d, axis=1)
    return out


def kmeans(
    data: np.ndarray,
    k: int,
    max_iters: int = 25,
    tol: float = 1e-4,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Cluster ``data`` into ``k`` groups.

    Returns
    -------
    ``(centroids, assignments)`` — ``(k, d)`` float array and ``(n,)``
    int32 labels.
    """
    data = np.asarray(data, dtype=np.float64)
    n = len(data)
    if k <= 0:
        raise ValueError("k must be positive")
    if k > n:
        raise ValueError(f"k={k} exceeds the number of points {n}")
    rng = np.random.default_rng(seed)
    centroids = kmeans_pp_init(data, k, rng)
    labels = assign(data, centroids)
    for _ in range(max_iters):
        new_centroids = centroids.copy()
        for c in range(k):
            members = data[labels == c]
            if len(members):
                new_centroids[c] = members.mean(axis=0)
            else:
                # Re-seed an empty cluster at the worst-served point.
                d2 = ((data - centroids[labels]) ** 2).sum(axis=1)
                new_centroids[c] = data[int(np.argmax(d2))]
        shift = float(np.abs(new_centroids - centroids).max())
        centroids = new_centroids
        labels = assign(data, centroids)
        if shift < tol:
            break
    return centroids, labels
