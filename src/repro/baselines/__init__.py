"""Comparator methods.

- :class:`~repro.baselines.ivfpq.IVFPQIndex` — inverted-file product
  quantization, the stand-in for GPU Faiss in the paper's comparison.
- :class:`~repro.baselines.flat.FlatIndex` — exact brute-force search
  (ground truth and sanity baseline).
- :func:`~repro.baselines.kmeans.kmeans` — Lloyd's algorithm with
  k-means++ seeding (coarse quantizer substrate).
- :class:`~repro.baselines.pq.ProductQuantizer` — PQ codec with ADC
  tables.
"""

from repro.baselines.kmeans import kmeans
from repro.baselines.pq import ProductQuantizer
from repro.baselines.ivfpq import IVFPQIndex
from repro.baselines.ivfflat import IVFFlatIndex
from repro.baselines.flat import FlatIndex
from repro.baselines.kdtree import KDTreeIndex
from repro.baselines.rp_forest import RPForestIndex
from repro.baselines.lsh import LSHIndex

__all__ = [
    "kmeans",
    "ProductQuantizer",
    "IVFPQIndex",
    "IVFFlatIndex",
    "FlatIndex",
    "KDTreeIndex",
    "RPForestIndex",
    "LSHIndex",
]
