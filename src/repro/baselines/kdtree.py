"""KD-tree ANN baseline (FLANN-family).

The paper excludes tree-based methods citing prior studies that show
them inferior to graph methods on high-dimensional data; this
implementation exists to *reproduce that exclusion* (see
``benchmarks/bench_excluded_baselines.py``).  It is a classic KD-tree
with median splits on the highest-variance dimension and best-first
(priority) backtracking search with a node budget.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


@dataclass
class _Node:
    """One KD-tree node: a splitting hyperplane or a leaf bucket."""

    indices: np.ndarray
    split_dim: int = -1
    split_value: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class KDTreeIndex:
    """KD-tree with best-first backtracking search.

    Parameters
    ----------
    data:
        ``(n, d)`` dataset.
    leaf_size:
        Bucket size at which splitting stops.
    """

    def __init__(self, data: np.ndarray, leaf_size: int = 16) -> None:
        if leaf_size <= 0:
            raise ValueError("leaf_size must be positive")
        self.data = np.asarray(data, dtype=np.float64)
        self.leaf_size = leaf_size
        self.root = self._build(np.arange(len(self.data)))
        self._num_nodes = self._count(self.root)

    def _build(self, indices: np.ndarray) -> _Node:
        if len(indices) <= self.leaf_size:
            return _Node(indices=indices)
        subset = self.data[indices]
        split_dim = int(np.argmax(subset.var(axis=0)))
        values = subset[:, split_dim]
        split_value = float(np.median(values))
        left_mask = values < split_value
        # median may collapse one side on duplicated values; fall back to
        # an even split by rank.
        if not left_mask.any() or left_mask.all():
            order = np.argsort(values, kind="stable")
            half = len(indices) // 2
            left_ids = indices[order[:half]]
            right_ids = indices[order[half:]]
            split_value = float(values[order[half]])
        else:
            left_ids = indices[left_mask]
            right_ids = indices[~left_mask]
        return _Node(
            indices=indices,
            split_dim=split_dim,
            split_value=split_value,
            left=self._build(left_ids),
            right=self._build(right_ids),
        )

    def _count(self, node: Optional[_Node]) -> int:
        if node is None:
            return 0
        return 1 + self._count(node.left) + self._count(node.right)

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    def search(
        self, query: np.ndarray, k: int, max_leaves: int = 32
    ) -> List[Tuple[float, int]]:
        """Top-``k`` by best-first leaf visits (``max_leaves`` budget).

        ``max_leaves`` is the recall/throughput dial: with enough budget
        the search is exact; small budgets approximate.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        query = np.asarray(query, dtype=np.float64)
        frontier: List[Tuple[float, int, _Node]] = [(0.0, 0, self.root)]
        best: List[Tuple[float, int]] = []  # max-heap via negation
        counter = 1
        leaves = 0
        self.last_scanned = 0
        while frontier and leaves < max_leaves:
            bound, _, node = heapq.heappop(frontier)
            if len(best) == k and bound > -best[0][0]:
                break
            while not node.is_leaf:
                diff = query[node.split_dim] - node.split_value
                near, far = (
                    (node.left, node.right) if diff < 0 else (node.right, node.left)
                )
                far_bound = max(bound, diff * diff)
                heapq.heappush(frontier, (far_bound, counter, far))
                counter += 1
                node = near
            leaves += 1
            pts = self.data[node.indices]
            dists = ((pts - query) ** 2).sum(axis=1)
            self.last_scanned += len(node.indices)
            for d, idx in zip(dists, node.indices):
                if len(best) < k:
                    heapq.heappush(best, (-d, int(idx)))
                elif d < -best[0][0]:
                    heapq.heapreplace(best, (-d, int(idx)))
        return sorted((-nd, v) for nd, v in best)

    def memory_bytes(self) -> int:
        """Index structure: ~2 pointers + split data per node."""
        return self._num_nodes * 24
