"""Diagnostics for proximity graphs.

Index quality drives search quality; these helpers quantify the
properties the paper's graph choices aim at: bounded degree, strong
connectivity from the entry point, and short hop distances.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.annotations import arr, array_kernel, scalar
from repro.graphs.storage import FixedDegreeGraph
from repro.structures.soa import pack_rowid


@array_kernel(
    params={"n": (1, 2**31), "E": (1, 2**40)},
    args={
        "src": arr("E", lo=0, hi="n-1"),
        "dst": arr("E", lo=0, hi="n-1"),
        "n": scalar("n"),
    },
    returns=[arr("E", dtype="bool")],
)
def _reverse_hit_mask(src: np.ndarray, dst: np.ndarray, n: int) -> np.ndarray:
    """Per-edge flag: does the reversed edge ``(dst, src)`` exist too?"""
    fwd = np.sort(pack_rowid(src, dst, n))
    rev = pack_rowid(dst, src, n)
    pos = np.searchsorted(fwd, rev)
    np.minimum(pos, len(fwd) - 1, out=pos)
    return fwd[pos] == rev


@dataclass
class GraphStats:
    """Summary statistics of a fixed-degree proximity graph."""

    num_vertices: int
    num_edges: int
    degree_limit: int
    mean_out_degree: float
    min_out_degree: int
    max_out_degree: int
    reachable_from_entry: int
    mean_hops_from_entry: float
    max_hops_from_entry: int

    @property
    def fully_reachable(self) -> bool:
        return self.reachable_from_entry == self.num_vertices


def bfs_hops(graph: FixedDegreeGraph, start: int) -> Dict[int, int]:
    """Hop distance from ``start`` to every reachable vertex."""
    hops = {start: 0}
    queue = deque([start])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            u = int(u)
            if u not in hops:
                hops[u] = hops[v] + 1
                queue.append(u)
    return hops


def compute_stats(graph: FixedDegreeGraph) -> GraphStats:
    """Degree and reachability statistics (one BFS from the entry point)."""
    degrees = [graph.out_degree(v) for v in range(graph.num_vertices)]
    hops = bfs_hops(graph, graph.entry_point)
    hop_values = list(hops.values())
    return GraphStats(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges(),
        degree_limit=graph.degree,
        mean_out_degree=float(np.mean(degrees)),
        min_out_degree=int(min(degrees)),
        max_out_degree=int(max(degrees)),
        reachable_from_entry=len(hops),
        mean_hops_from_entry=float(np.mean(hop_values)),
        max_hops_from_entry=int(max(hop_values)),
    )


def degree_distribution(
    graph: FixedDegreeGraph, percentiles=(10, 50, 90, 100)
) -> Dict[str, float]:
    """Out-degree distribution summary of the adjacency rows.

    Returns the mean out-degree, the requested percentiles (``p10`` /
    ``p50`` / ... keys), and ``saturated`` — the fraction of rows filled
    to the degree limit.  A pruning builder that saturates every row
    wastes no slots; a bootstrap-only graph shows a narrow spike.
    """
    from repro.graphs.storage import PAD

    adjacency = graph.adjacency_array
    degrees = (adjacency != PAD).sum(axis=1)
    out: Dict[str, float] = {"mean": float(degrees.mean())}
    for p in percentiles:
        out[f"p{p}"] = float(np.percentile(degrees, p))
    out["saturated"] = float((degrees == graph.degree).mean())
    return out


def reverse_edge_coverage(graph: FixedDegreeGraph) -> float:
    """Fraction of directed edges whose reverse edge is also present.

    Computed over the flat edge list with one sorted membership test:
    edge ``(v, u)`` is covered when ``(u, v)`` exists.  Symmetric graphs
    (DPG after undirection, CAGRA after the reverse merge) score near
    1.0; a raw kNN table typically sits far below — the asymmetry those
    builders' reverse passes exist to fix.
    """
    from repro.graphs.storage import PAD

    adjacency = graph.adjacency_array
    n = graph.num_vertices
    src = np.repeat(np.arange(n, dtype=np.int64), adjacency.shape[1])
    dst = adjacency.ravel().astype(np.int64)
    valid = dst != PAD
    src, dst = src[valid], dst[valid]
    if not len(src):
        return 0.0
    return float(_reverse_hit_mask(src, dst, n).mean())


def edge_length_percentiles(
    graph: FixedDegreeGraph,
    data: np.ndarray,
    percentiles=(50, 90, 99),
    sample: int = 2000,
    seed: int = 0,
) -> List[float]:
    """Percentiles of edge lengths (L2), sampled for large graphs.

    Navigable small-world graphs keep a mix of short and long edges; a
    long tail here is the signature of the 'highway' links that make
    greedy routing work.
    """
    rng = np.random.default_rng(seed)
    edges = []
    for v in range(graph.num_vertices):
        for u in graph.neighbors(v):
            edges.append((v, int(u)))
    if len(edges) > sample:
        picks = rng.choice(len(edges), size=sample, replace=False)
        edges = [edges[i] for i in picks]
    lengths = [
        float(np.sqrt(((data[v] - data[u]) ** 2).sum())) for v, u in edges
    ]
    return [float(np.percentile(lengths, p)) for p in percentiles]
