"""Exact kNN-graph construction by blocked brute force.

Used as the ground-truth graph for small datasets and as the base graph
NSG refines.  Distances are computed in row blocks so memory stays
bounded for larger datasets.
"""

from __future__ import annotations

import numpy as np

from repro.distances import get_metric
from repro.graphs.storage import FixedDegreeGraph


def knn_neighbors(
    data: np.ndarray, k: int, metric: str = "l2", block: int = 1024
) -> np.ndarray:
    """Return an ``(n, k)`` array of each point's k nearest other points."""
    n = len(data)
    if k <= 0:
        raise ValueError("k must be positive")
    if k >= n:
        raise ValueError(f"k={k} must be smaller than the dataset size {n}")
    m = get_metric(metric)
    out = np.empty((n, k), dtype=np.int32)
    for start in range(0, n, block):
        stop = min(start + block, n)
        dists = m.pairwise(data[start:stop], data)
        rows = np.arange(start, stop)
        dists[np.arange(stop - start), rows] = np.inf  # exclude self
        idx = np.argpartition(dists, k, axis=1)[:, :k]
        # order the k winners by distance for determinism
        part = np.take_along_axis(dists, idx, axis=1)
        order = np.argsort(part, axis=1, kind="stable")
        out[start:stop] = np.take_along_axis(idx, order, axis=1)
    return out


def build_knn_graph(
    data: np.ndarray, k: int, metric: str = "l2", entry_point: int = None
) -> FixedDegreeGraph:
    """Exact kNN graph as a :class:`FixedDegreeGraph`.

    The entry point defaults to the medoid (point closest to the mean),
    which is also how NSG picks its navigating node.
    """
    nbrs = knn_neighbors(data, k, metric)
    if entry_point is None:
        entry_point = medoid(data, metric)
    graph = FixedDegreeGraph(len(data), k, entry_point)
    for v in range(len(data)):
        graph.set_neighbors(v, nbrs[v])
    return graph


def medoid(data: np.ndarray, metric: str = "l2") -> int:
    """Index of the point nearest the dataset centroid."""
    center = data.mean(axis=0)
    dists = get_metric(metric).batch(center, data)
    return int(np.argmin(dists))
