"""Fixed-degree graph storage (Section IV-A of the paper).

SONG stores the proximity graph as a flat array with exactly ``degree``
slots per vertex, padded with ``-1``.  Locating a vertex's adjacency list
is a single multiply — no offset index lookup — and every row occupies the
same amount of memory, which is what makes coalesced GPU reads possible.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.annotations import arr, array_kernel, scalar
from repro.structures.soa import pack_rowid

PAD = -1


@array_kernel(
    params={"n": (1, 2**31), "E": (0, 2**40)},
    args={
        "owners": arr("E", lo=0, hi="n-1"),
        "ids": arr("E", lo=0, hi="n-1"),
        "n": scalar("n"),
    },
)
def _has_duplicate_edges(owners: np.ndarray, ids: np.ndarray, n: int) -> bool:
    """True when any ``(owner, id)`` edge appears twice in the flat lists."""
    comp = pack_rowid(owners, ids, n)
    comp.sort()
    return bool(np.any(comp[1:] == comp[:-1]))


class FixedDegreeGraph:
    """Adjacency structure with a hard per-vertex degree bound.

    Parameters
    ----------
    num_vertices:
        Number of vertices (dataset points).
    degree:
        Fixed number of neighbor slots per vertex.
    entry_point:
        Default starting vertex for searches.
    """

    def __init__(self, num_vertices: int, degree: int, entry_point: int = 0) -> None:
        if num_vertices <= 0:
            raise ValueError("num_vertices must be positive")
        if degree <= 0:
            raise ValueError("degree must be positive")
        if not 0 <= entry_point < num_vertices:
            raise ValueError("entry_point out of range")
        self.num_vertices = num_vertices
        self.degree = degree
        self.entry_point = entry_point
        self._adj = np.full((num_vertices, degree), PAD, dtype=np.int32)
        self._counts = np.zeros(num_vertices, dtype=np.int32)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_adjacency(
        cls,
        adjacency: Sequence[Sequence[int]],
        degree: int = None,
        entry_point: int = 0,
        validate: bool = True,
    ) -> "FixedDegreeGraph":
        """Build from per-vertex neighbor lists, truncating to ``degree``.

        When ``degree`` is omitted it is the maximum list length.  With
        ``validate=False`` the per-neighbor range/self-loop checks are
        skipped and rows are written directly — the fast path for batched
        construction, which snapshots a large in-progress adjacency every
        insertion generation and already guarantees well-formed lists.
        """
        n = len(adjacency)
        if n == 0:
            raise ValueError("adjacency must be non-empty")
        if degree is None:
            degree = max(1, max(len(a) for a in adjacency))
        graph = cls(n, degree, entry_point)
        if not validate:
            adj = graph._adj
            counts = graph._counts
            for v, neighbors in enumerate(adjacency):
                c = min(len(neighbors), degree)
                if c:
                    adj[v, :c] = neighbors[:c] if c < len(neighbors) else neighbors
                    counts[v] = c
            return graph
        for v, neighbors in enumerate(adjacency):
            graph.set_neighbors(v, list(neighbors)[:degree])
        return graph

    @classmethod
    def from_neighbor_array(
        cls,
        neighbors: np.ndarray,
        entry_point: int = 0,
        validate: bool = True,
    ) -> "FixedDegreeGraph":
        """Build from a padded ``(n, degree)`` neighbor-id array.

        The fully vectorized constructor used by the batched builders:
        ``neighbors`` holds ids with ``PAD`` (-1) in the unused tail of
        each row (real entries must precede the padding).  ``validate``
        runs the same range/self-loop/duplicate checks as
        :meth:`set_neighbors`, in one vectorized pass.
        """
        neighbors = np.asarray(neighbors)
        if neighbors.ndim != 2:
            raise ValueError("neighbors must be a 2-d (n, degree) array")
        n, degree = neighbors.shape
        graph = cls(n, max(1, degree), entry_point)
        adj = neighbors.astype(np.int32, copy=True)
        valid = adj != PAD
        counts = valid.sum(axis=1).astype(np.int32)
        if validate:
            cols = np.arange(degree, dtype=np.int32)[None, :]
            if not np.array_equal(valid, cols < counts[:, None]):
                raise ValueError("real entries must precede the PAD tail")
            ids = adj[valid]
            if len(ids) and (ids.min() < 0 or ids.max() >= n):
                raise ValueError("neighbor id out of range")
            owners = np.repeat(np.arange(n, dtype=np.int32), counts)
            if np.any(ids == owners):
                raise ValueError("self-loops are not allowed")
            if _has_duplicate_edges(owners, ids, n):
                raise ValueError("duplicate neighbors within a row")
        adj[~valid] = PAD
        graph._adj = np.ascontiguousarray(adj)
        graph._counts = counts
        return graph

    def set_neighbors(self, vertex: int, neighbors: Iterable[int]) -> None:
        """Replace the adjacency row of ``vertex``."""
        row = list(neighbors)
        if len(row) > self.degree:
            raise ValueError(
                f"vertex {vertex}: {len(row)} neighbors exceed degree {self.degree}"
            )
        for u in row:
            if not 0 <= u < self.num_vertices:
                raise ValueError(f"neighbor {u} out of range")
            if u == vertex:
                raise ValueError(f"vertex {vertex} cannot be its own neighbor")
        self._adj[vertex, :] = PAD
        if row:
            self._adj[vertex, : len(row)] = row
        self._counts[vertex] = len(row)

    def add_edge(self, u: int, v: int) -> bool:
        """Append ``v`` to u's row if there is a free slot and no duplicate.

        Returns True if the edge was added.
        """
        if u == v:
            raise ValueError("self-loops are not allowed")
        c = int(self._counts[u])
        if c >= self.degree:
            return False
        if v in self._adj[u, :c]:
            return False
        self._adj[u, c] = v
        self._counts[u] = c + 1
        return True

    # -- queries --------------------------------------------------------------

    def neighbors(self, vertex: int) -> np.ndarray:
        """Valid neighbor ids of ``vertex`` (a view, do not mutate)."""
        return self._adj[vertex, : self._counts[vertex]]

    def out_degree(self, vertex: int) -> int:
        return int(self._counts[vertex])

    def row(self, vertex: int) -> np.ndarray:
        """The full padded row, as the GPU kernel would read it."""
        return self._adj[vertex]

    @property
    def adjacency_array(self) -> np.ndarray:
        """The underlying ``(num_vertices, degree)`` int32 array."""
        return self._adj

    def num_edges(self) -> int:
        """Total directed edges stored."""
        return int(self._counts.sum())

    def memory_bytes(self) -> int:
        """Index size: the flat adjacency array (int32 per slot)."""
        return int(self._adj.nbytes)

    def reverse_adjacency(self) -> List[List[int]]:
        """In-neighbors of each vertex (used by NSG's tree-fixing step)."""
        rev: List[List[int]] = [[] for _ in range(self.num_vertices)]
        for v in range(self.num_vertices):
            for u in self.neighbors(v):
                rev[int(u)].append(v)
        return rev

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation."""
        for v in range(self.num_vertices):
            row = self.neighbors(v)
            if len(set(int(u) for u in row)) != len(row):
                raise ValueError(f"vertex {v} has duplicate neighbors")
            if any(u == v for u in row):
                raise ValueError(f"vertex {v} has a self-loop")
            if any(not 0 <= u < self.num_vertices for u in row):
                raise ValueError(f"vertex {v} has out-of-range neighbor")
            pad_zone = self._adj[v, self._counts[v] :]
            if not np.all(pad_zone == PAD):
                raise ValueError(f"vertex {v} has non-PAD values past its count")

    def __repr__(self) -> str:
        return (
            f"FixedDegreeGraph(num_vertices={self.num_vertices}, "
            f"degree={self.degree}, edges={self.num_edges()})"
        )
