"""Proximity-graph construction and storage.

SONG searches a pre-built proximity graph.  The paper loads an NSW index
and also demonstrates generalization to NSG; HNSW is the CPU baseline.
This package implements all of them from scratch:

- :class:`~repro.graphs.storage.FixedDegreeGraph` — the flat fixed-degree
  adjacency array SONG keeps in GPU global memory.
- :func:`~repro.graphs.bruteforce_knn.build_knn_graph` — exact kNN graph.
- :func:`~repro.graphs.nn_descent.nn_descent` — approximate kNN graph.
- :class:`~repro.graphs.nsw.NSWBuilder` — navigable small-world graph.
- :class:`~repro.graphs.hnsw.HNSWIndex` — hierarchical NSW with heuristic
  neighbor selection (the CPU comparator).
- :class:`~repro.graphs.nsg.NSGBuilder` — navigating spreading-out graph.
- :func:`~repro.graphs.dpg.build_dpg` — diversified proximity graph.
- :class:`~repro.graphs.cagra.CagraBuilder` — fully-batched CAGRA-style
  construction (detour-count reordering + reverse-edge merge).
- :func:`build_graph` — one dispatcher over every family above, keyed by
  :data:`~repro.core.config.GRAPH_TYPES` names.
"""

import numpy as np

from repro.graphs.storage import FixedDegreeGraph
from repro.graphs.bruteforce_knn import build_knn_graph
from repro.graphs.nn_descent import BUILD_ENGINES, graph_recall, nn_descent
from repro.graphs.nsw import NSWBuilder, build_nsw
from repro.graphs.hnsw import HNSWIndex
from repro.graphs.nsg import NSGBuilder, build_nsg
from repro.graphs.io import load_graph, save_graph
from repro.graphs.dpg import build_dpg
from repro.graphs.cagra import CagraBuilder, build_cagra

__all__ = [
    "load_graph",
    "save_graph",
    "build_dpg",
    "build_cagra",
    "build_graph",
    "CagraBuilder",
    "FixedDegreeGraph",
    "build_knn_graph",
    "nn_descent",
    "graph_recall",
    "BUILD_ENGINES",
    "NSWBuilder",
    "build_nsw",
    "HNSWIndex",
    "NSGBuilder",
    "build_nsg",
]


def build_graph(
    data: np.ndarray,
    graph_type: str = "nsw",
    degree: int = 16,
    metric: str = "l2",
    build_engine: str = "batched",
    seed: int = 0,
    insert_batch: int = 512,
    cost=None,
    **kwargs,
) -> FixedDegreeGraph:
    """Build any supported graph family behind one uniform signature.

    ``graph_type`` selects the builder (one of
    :data:`~repro.core.config.GRAPH_TYPES`); ``degree`` is the out-degree
    bound of the resulting base-layer graph.  Layered builders (NSW/HNSW)
    derive ``m = degree // 2`` so their layer-0 degree (``2m``) matches.
    ``cost`` is forwarded to the builders that meter construction through
    the SIMT cost model (NSG, DPG, CAGRA).  Extra ``kwargs`` pass through
    to the underlying builder unchanged.
    """
    from repro.core.config import GRAPH_TYPES

    if graph_type not in GRAPH_TYPES:
        raise ValueError(
            f"unknown graph type {graph_type!r}; expected one of {GRAPH_TYPES}"
        )
    m = max(2, degree // 2)
    if graph_type == "nsw":
        return build_nsw(
            data,
            m=m,
            ef_construction=kwargs.pop("ef_construction", 4 * degree),
            max_degree=degree,
            metric=metric,
            seed=seed,
            build_engine=build_engine,
            insert_batch=insert_batch,
            **kwargs,
        )
    if graph_type == "hnsw":
        index = HNSWIndex(
            data,
            m=m,
            ef_construction=kwargs.pop("ef_construction", 4 * degree),
            metric=metric,
            seed=seed,
            build_engine=build_engine,
            insert_batch=insert_batch,
            **kwargs,
        ).build()
        return index.base_layer_graph()
    if graph_type == "nsg":
        return build_nsg(
            data,
            degree=degree,
            knn=kwargs.pop("knn", 2 * degree),
            search_len=kwargs.pop("search_len", 3 * degree),
            metric=metric,
            build_engine=build_engine,
            cost=cost,
            **kwargs,
        )
    if graph_type == "dpg":
        return build_dpg(
            data,
            degree=degree,
            metric=metric,
            build_engine=build_engine,
            cost=cost,
            **kwargs,
        )
    if graph_type == "cagra":
        return build_cagra(
            data,
            degree=degree,
            metric=metric,
            build_engine=build_engine,
            seed=seed,
            cost=cost,
            **kwargs,
        )
    return build_knn_graph(data, degree, metric=metric)
