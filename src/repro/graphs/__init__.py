"""Proximity-graph construction and storage.

SONG searches a pre-built proximity graph.  The paper loads an NSW index
and also demonstrates generalization to NSG; HNSW is the CPU baseline.
This package implements all of them from scratch:

- :class:`~repro.graphs.storage.FixedDegreeGraph` — the flat fixed-degree
  adjacency array SONG keeps in GPU global memory.
- :func:`~repro.graphs.bruteforce_knn.build_knn_graph` — exact kNN graph.
- :func:`~repro.graphs.nn_descent.nn_descent` — approximate kNN graph.
- :class:`~repro.graphs.nsw.NSWBuilder` — navigable small-world graph.
- :class:`~repro.graphs.hnsw.HNSWIndex` — hierarchical NSW with heuristic
  neighbor selection (the CPU comparator).
- :class:`~repro.graphs.nsg.NSGBuilder` — navigating spreading-out graph.
"""

from repro.graphs.storage import FixedDegreeGraph
from repro.graphs.bruteforce_knn import build_knn_graph
from repro.graphs.nn_descent import BUILD_ENGINES, graph_recall, nn_descent
from repro.graphs.nsw import NSWBuilder, build_nsw
from repro.graphs.hnsw import HNSWIndex
from repro.graphs.nsg import NSGBuilder, build_nsg
from repro.graphs.io import load_graph, save_graph
from repro.graphs.dpg import build_dpg

__all__ = [
    "load_graph",
    "save_graph",
    "build_dpg",
    "FixedDegreeGraph",
    "build_knn_graph",
    "nn_descent",
    "graph_recall",
    "BUILD_ENGINES",
    "NSWBuilder",
    "build_nsw",
    "HNSWIndex",
    "NSGBuilder",
    "build_nsg",
]
