"""Diversified proximity graph (DPG — Li et al., referenced by the paper).

DPG diversifies a kNN graph by angular coverage — among a vertex's kNN
candidates it keeps the subset that maximizes pairwise angles (greedy
max-min-angle selection) — then makes the graph undirected.  The paper
lists DPG among the graph family SONG accelerates; building it here lets
the generality experiment (Fig. 12) extend beyond NSG.

Two engines produce the same graph shape:

``serial``
    The readable reference: a per-vertex greedy angular selection
    followed by per-edge reverse insertion and kNN backfill.
``batched``
    The vectorized path.  Angular diversification runs the same greedy
    rounds across a whole block of vertices at once — one
    ``einsum('bkd,bd->bk')`` per round updates every row's running
    max-cosine against its newest pick — and undirection/backfill is a
    flat priority-stream merge (forward band, reverse band in arrival
    order, kNN backfill band) resolved by two lexsorts, the same pattern
    as the CAGRA reverse merge.  No per-vertex Python loop anywhere.

The engines agree up to floating-point reduction order in the cosine
updates (``matmul`` vs incremental ``einsum`` maxima) and up to the
serial path's order-dependent reverse-edge cascade (a reverse edge
appended early can itself spawn reverse edges later); equivalence is
validated at recall level, not bit level.
"""

from __future__ import annotations

# lint: hot-path

from typing import List, Optional

import numpy as np

from repro.annotations import arr, array_kernel, opaque, scalar
from repro.graphs.bruteforce_knn import knn_neighbors, medoid
from repro.graphs.storage import PAD, FixedDegreeGraph
from repro.structures.soa import pack_rowid, unpack_rowid

__all__ = ["build_dpg"]

#: Vertices per angular-diversification block (bounds the ``(B, K, d)``
#: direction panel: 1024 rows of 32 candidates at d=128 is ~16 MB).
_DIVERSIFY_BLOCK = 1024


def _angular_diversify(
    data: np.ndarray, v: int, candidates: np.ndarray, keep: int
) -> List[int]:
    """Greedy max-min-angle subset of ``candidates`` around vertex ``v``."""
    directions = data[candidates] - data[v]
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    directions = directions / norms
    chosen: List[int] = [0]  # nearest neighbor always kept
    while len(chosen) < min(keep, len(candidates)):
        chosen_dirs = directions[chosen]
        # cosine of the closest chosen direction, per remaining candidate
        cos = directions @ chosen_dirs.T
        worst = cos.max(axis=1)
        worst[chosen] = np.inf  # never re-pick
        pick = int(np.argmin(worst))
        if not np.isfinite(worst[pick]):
            break
        chosen.append(pick)
    return [int(candidates[i]) for i in chosen]


def _diversify_batched(
    data: np.ndarray, table: np.ndarray, keep: int, rec
) -> np.ndarray:
    """Greedy max-min-angle selection for every vertex at once.

    Runs the serial greedy's rounds in lockstep over vertex blocks: the
    running "worst" (max cosine against any chosen direction) updates
    incrementally with one fused ``einsum`` per round instead of
    rebuilding the chosen-matrix product.  Returns ``(n, keep)`` selected
    ids in pick order (slot 0 is always the nearest neighbor).
    """
    n, cap = table.shape
    dim = data.shape[1]
    keep = min(keep, cap)
    out = np.empty((n, keep), dtype=np.int64)
    a = 0
    while a < n:
        b = min(n, a + _DIVERSIFY_BLOCK)
        block = b - a
        tbl = table[a:b]
        dirs = data[tbl] - data[a:b, None, :]
        norms = np.linalg.norm(dirs, axis=2, keepdims=True)
        norms[norms == 0] = 1.0
        dirs = dirs / norms
        rows = np.arange(block)
        sel = np.zeros((block, keep), dtype=np.int64)  # col 0: nearest kept
        chosen = np.zeros((block, cap), dtype=bool)
        chosen[:, 0] = True
        worst = np.einsum("bkd,bd->bk", dirs, dirs[:, 0, :])
        r = 1
        while r < keep:
            pick = np.argmin(np.where(chosen, np.inf, worst), axis=1)
            sel[:, r] = pick
            chosen[rows, pick] = True
            np.maximum(
                worst, np.einsum("bkd,bd->bk", dirs, dirs[rows, pick]), out=worst
            )
            r += 1
        out[a:b] = np.take_along_axis(tbl, sel, axis=1)
        a = b
    # one normalized direction (≈3·dim flops) + keep cosine rounds
    # (2·dim flops each) per candidate
    rec.record_distances(n * cap * max(1, keep), 2 * dim, dim, "diversify")
    return out


@array_kernel(
    params={"n": (2, 2**28), "keep": (1, 64), "cap": (1, 512), "degree": (2, 64)},
    args={
        "fwd": arr("n", "keep", lo=0, hi="n-1"),
        "table": arr("n", "cap", lo=0, hi="n-1"),
        "degree": scalar("degree"),
        "rec": opaque(),
    },
    returns=[arr("n", "degree", dtype="int64", lo=-1, hi="n-1")],
)
def _undirect_batched(
    fwd: np.ndarray, table: np.ndarray, degree: int, rec
) -> np.ndarray:
    """Forward + reverse + backfill bands merged into ``(n, degree)`` rows.

    Every stream entry carries a priority: diversified forward edges
    first (their pick order), then reverse edges in the serial path's
    arrival order (source vertex, then source slot), then each vertex's
    remaining kNN candidates in rank order.  One lexsort dedups each
    ``(vertex, candidate)`` to its strongest band, a second ranks each
    vertex's survivors, and a scatter writes the rows.
    """
    from repro.graphs.nn_descent import _rank_within_groups

    n, keep = fwd.shape
    cap = table.shape[1]

    # forward band: priority = pick order
    w_f = np.repeat(np.arange(n, dtype=np.int64), keep)
    c_f = fwd.ravel()
    p_f = np.tile(np.arange(keep, dtype=np.int64), n)

    # reverse band: forward edges enumerated row-major *are* the serial
    # arrival order, so ranking each target's in-edges by that flat index
    # reproduces it
    comp = pack_rowid(c_f, np.arange(n * keep, dtype=np.int64), n * keep)
    order = np.argsort(comp)  # comp is unique: flat index breaks every tie
    w_r = c_f[order]
    c_r = w_f[order]
    p_r = keep + _rank_within_groups(w_r)

    # backfill band: kNN candidates in rank order, after every reverse edge
    w_b = np.repeat(np.arange(n, dtype=np.int64), cap)
    c_b = table.ravel().astype(np.int64)
    p_b = keep + np.int64(n * keep) + np.tile(np.arange(cap, dtype=np.int64), n)
    no_self = c_b != w_b
    w_b, c_b, p_b = w_b[no_self], c_b[no_self], p_b[no_self]

    w_all = np.concatenate([w_f, w_r, w_b])
    c_all = np.concatenate([c_f, c_r, c_b])
    p_all = np.concatenate([p_f, p_r, p_b])
    rec.record_flat_sort(len(w_all), "undirect")

    # dedup each (vertex, candidate) to its strongest band
    vc = pack_rowid(w_all, c_all, n)
    order = np.lexsort((p_all, vc))
    vc_s, p_s = vc[order], p_all[order]
    first = np.ones(len(vc_s), dtype=bool)
    first[1:] = vc_s[1:] != vc_s[:-1]
    vc_s, p_s = vc_s[first], p_s[first]
    w_k, c_k = unpack_rowid(vc_s, n)
    order = np.lexsort((p_s, w_k))
    w_k, c_k = w_k[order], c_k[order]
    rank = _rank_within_groups(w_k)
    sel = rank < degree
    out = np.full((n, degree), PAD, dtype=np.int64)
    out[w_k[sel], rank[sel]] = c_k[sel]
    return out


def build_dpg(
    data: np.ndarray,
    degree: int = 16,
    knn: int = None,
    metric: str = "l2",
    knn_table: np.ndarray = None,
    build_engine: str = "serial",
    cost: Optional[object] = None,
) -> FixedDegreeGraph:
    """Build a DPG: angular diversification of a kNN graph + undirection.

    Parameters
    ----------
    data:
        ``(n, d)`` dataset.
    degree:
        Out-degree bound of the final graph.  Half the slots are filled
        by diversified out-edges, the rest by reverse edges.
    knn:
        Candidate-pool size (default ``2 * degree``).
    knn_table:
        Optional precomputed neighbor table.
    build_engine:
        ``"serial"`` (default) runs the reference per-vertex loops over
        an exact brute-force table; ``"batched"`` bootstraps with
        vectorized NN-descent and runs diversification and undirection
        as batch kernels.
    cost:
        Optional :class:`~repro.simt.build_cost.BuildCostRecorder`; the
        batched engine records every bulk kernel on it.
    """
    from repro.graphs.nn_descent import BUILD_ENGINES

    data = np.asarray(data)
    if degree < 2:
        raise ValueError("degree must be at least 2")
    if build_engine not in BUILD_ENGINES:
        raise ValueError(
            f"unknown build_engine {build_engine!r}; "
            f"expected one of {BUILD_ENGINES}"
        )
    knn = knn or 2 * degree
    if knn_table is not None:
        table = np.asarray(knn_table)
    elif build_engine == "batched":
        from repro.graphs.nn_descent import nn_descent

        table = nn_descent(data, knn, metric=metric, seed=0, cost=cost)
    else:
        table = knn_neighbors(data, knn, metric)
    n = len(data)
    half = max(1, degree // 2)

    if build_engine == "batched":
        from repro.simt.build_cost import maybe_recorder

        rec = maybe_recorder(cost)
        fwd = _diversify_batched(
            np.ascontiguousarray(data, dtype=np.float32), table, half, rec
        )
        adjacency = _undirect_batched(fwd, table, degree, rec)
        rec.record_graph_write(adjacency.size)
        return FixedDegreeGraph.from_neighbor_array(
            adjacency, entry_point=medoid(data, metric), validate=False
        )

    return _build_serial(data, table, degree, half, metric)


def _build_serial(
    data: np.ndarray,
    table: np.ndarray,
    degree: int,
    half: int,
    metric: str,
) -> FixedDegreeGraph:
    """The reference per-vertex DPG pipeline."""
    n = len(data)
    adjacency: List[List[int]] = []
    for v in range(n):  # lint: allow(hot-loop) — serial reference engine
        adjacency.append(_angular_diversify(data, v, table[v], half))

    # Undirect: add reverse edges while slots remain.
    for v in range(n):  # lint: allow(hot-loop) — serial reference engine
        for u in adjacency[v]:
            row = adjacency[u]
            if v in row or len(row) >= degree:
                continue
            row.append(v)
    # Fill any remaining slack with the next-nearest unused kNN candidates.
    for v in range(n):  # lint: allow(hot-loop) — serial reference engine
        row = adjacency[v]
        if len(row) >= degree:
            continue
        for u in table[v]:
            u = int(u)
            if u != v and u not in row:
                row.append(u)
                if len(row) >= degree:
                    break

    graph = FixedDegreeGraph(n, degree, entry_point=medoid(data, metric))
    for v in range(n):  # lint: allow(hot-loop) — serial reference engine
        graph.set_neighbors(v, adjacency[v][:degree])
    return graph
