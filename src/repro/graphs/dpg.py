"""Diversified proximity graph (DPG — Li et al., referenced by the paper).

DPG diversifies a kNN graph by angular coverage — among a vertex's kNN
candidates it keeps the subset that maximizes pairwise angles (greedy
max-min-angle selection) — then makes the graph undirected.  The paper
lists DPG among the graph family SONG accelerates; building it here lets
the generality experiment (Fig. 12) extend beyond NSG.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.distances import get_metric
from repro.graphs.bruteforce_knn import knn_neighbors, medoid
from repro.graphs.storage import FixedDegreeGraph


def _angular_diversify(
    data: np.ndarray, v: int, candidates: np.ndarray, keep: int
) -> List[int]:
    """Greedy max-min-angle subset of ``candidates`` around vertex ``v``."""
    directions = data[candidates] - data[v]
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    directions = directions / norms
    chosen: List[int] = [0]  # nearest neighbor always kept
    while len(chosen) < min(keep, len(candidates)):
        chosen_dirs = directions[chosen]
        # cosine of the closest chosen direction, per remaining candidate
        cos = directions @ chosen_dirs.T
        worst = cos.max(axis=1)
        worst[chosen] = np.inf  # never re-pick
        pick = int(np.argmin(worst))
        if not np.isfinite(worst[pick]):
            break
        chosen.append(pick)
    return [int(candidates[i]) for i in chosen]


def build_dpg(
    data: np.ndarray,
    degree: int = 16,
    knn: int = None,
    metric: str = "l2",
    knn_table: np.ndarray = None,
) -> FixedDegreeGraph:
    """Build a DPG: angular diversification of a kNN graph + undirection.

    Parameters
    ----------
    data:
        ``(n, d)`` dataset.
    degree:
        Out-degree bound of the final graph.  Half the slots are filled
        by diversified out-edges, the rest by reverse edges.
    knn:
        Candidate-pool size (default ``2 * degree``).
    knn_table:
        Optional precomputed neighbor table.
    """
    data = np.asarray(data)
    if degree < 2:
        raise ValueError("degree must be at least 2")
    knn = knn or 2 * degree
    table = (
        knn_table if knn_table is not None else knn_neighbors(data, knn, metric)
    )
    n = len(data)
    half = max(1, degree // 2)
    adjacency: List[List[int]] = []
    for v in range(n):
        adjacency.append(_angular_diversify(data, v, table[v], half))

    # Undirect: add reverse edges while slots remain.
    m = get_metric(metric)
    for v in range(n):
        for u in adjacency[v]:
            row = adjacency[u]
            if v in row or len(row) >= degree:
                continue
            row.append(v)
    # Fill any remaining slack with the next-nearest unused kNN candidates.
    for v in range(n):
        row = adjacency[v]
        if len(row) >= degree:
            continue
        for u in table[v]:
            u = int(u)
            if u != v and u not in row:
                row.append(u)
                if len(row) >= degree:
                    break

    graph = FixedDegreeGraph(n, degree, entry_point=medoid(data, metric))
    for v in range(n):
        graph.set_neighbors(v, adjacency[v][:degree])
    return graph
