"""NN-descent: approximate kNN-graph construction (Dong et al., WWW 2011).

EFANNA and NSG bootstrap from an approximate kNN graph; building it exactly
is quadratic, so this module provides the standard local-join refinement:
start from random neighbor lists and repeatedly try "my neighbor's neighbor
is probably my neighbor".
"""

from __future__ import annotations

from typing import List, Set, Tuple

import numpy as np

from repro.distances import get_metric


def nn_descent(
    data: np.ndarray,
    k: int,
    metric: str = "l2",
    max_iters: int = 12,
    sample_rate: float = 0.6,
    delta: float = 0.001,
    seed: int = 0,
) -> np.ndarray:
    """Return an ``(n, k)`` approximate kNN table.

    Parameters
    ----------
    data:
        ``(n, d)`` dataset.
    k:
        Neighbors per point.
    max_iters:
        Refinement round bound.
    sample_rate:
        Fraction of new neighbors joined per round.
    delta:
        Early-exit threshold: stop when fewer than ``delta * n * k``
        updates happened in a round.
    """
    n = len(data)
    if k >= n:
        raise ValueError(f"k={k} must be smaller than the dataset size {n}")
    rng = np.random.default_rng(seed)
    m = get_metric(metric)

    # neighbor lists: per vertex a list of (dist, id, is_new) kept sorted
    heaps: List[List[Tuple[float, int, bool]]] = []
    for v in range(n):
        cand = rng.choice(n - 1, size=k, replace=False)
        cand[cand >= v] += 1  # skip self
        dists = m.batch(data[v], data[cand])
        entries = sorted(zip(dists.tolist(), cand.tolist(), [True] * k))
        heaps.append(entries)

    def try_insert(v: int, u: int, dist: float) -> int:
        """Insert u into v's list if it improves it; returns 1 on change."""
        heap = heaps[v]
        if dist >= heap[-1][0]:
            return 0
        if any(e[1] == u for e in heap):
            return 0
        heap.pop()
        lo, hi = 0, len(heap)
        key = (dist, u, True)
        while lo < hi:
            mid = (lo + hi) // 2
            if heap[mid][0] < dist:
                lo = mid + 1
            else:
                hi = mid
        heap.insert(lo, key)
        return 1

    for _ in range(max_iters):
        new_lists: List[List[int]] = [[] for _ in range(n)]
        old_lists: List[List[int]] = [[] for _ in range(n)]
        for v in range(n):
            for i, (d, u, is_new) in enumerate(heaps[v]):
                if is_new and rng.random() < sample_rate:
                    new_lists[v].append(u)
                    heaps[v][i] = (d, u, False)
                else:
                    old_lists[v].append(u)
        # reverse lists
        rev_new: List[Set[int]] = [set() for _ in range(n)]
        rev_old: List[Set[int]] = [set() for _ in range(n)]
        for v in range(n):
            for u in new_lists[v]:
                rev_new[u].add(v)
            for u in old_lists[v]:
                rev_old[u].add(v)

        updates = 0
        for v in range(n):
            new_set = list(set(new_lists[v]) | rev_new[v])
            old_set = list(set(old_lists[v]) | rev_old[v])
            # local join: new x new, and new x old
            for i, u1 in enumerate(new_set):
                for u2 in new_set[i + 1 :]:
                    d = m.single(data[u1], data[u2])
                    updates += try_insert(u1, u2, d)
                    updates += try_insert(u2, u1, d)
                for u2 in old_set:
                    if u1 == u2:
                        continue
                    d = m.single(data[u1], data[u2])
                    updates += try_insert(u1, u2, d)
                    updates += try_insert(u2, u1, d)
        if updates <= delta * n * k:
            break

    return np.array([[u for (_, u, _) in heap] for heap in heaps], dtype=np.int32)


def graph_recall(approx: np.ndarray, exact: np.ndarray) -> float:
    """Fraction of exact kNN edges recovered by the approximate table."""
    if approx.shape != exact.shape:
        raise ValueError("shape mismatch between approximate and exact tables")
    hits = 0
    for a_row, e_row in zip(approx, exact):
        hits += len(set(a_row.tolist()) & set(e_row.tolist()))
    return hits / exact.size
