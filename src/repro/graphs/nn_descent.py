"""NN-descent: approximate kNN-graph construction (Dong et al., WWW 2011).

EFANNA and NSG bootstrap from an approximate kNN graph; building it exactly
is quadratic, so this module provides the standard local-join refinement:
start from random neighbor lists and repeatedly try "my neighbor's neighbor
is probably my neighbor".

Two engines implement the same sampled local join:

- ``build_engine="batched"`` (default) — the vectorized construction
  layer.  Neighbor pools are structure-of-arrays matrices of packed
  ``(dist, id)`` keys (:mod:`repro.structures.soa`), each round's local
  join is flattened into one candidate-pair list evaluated through blocked
  :meth:`~repro.distances.metrics.Metric.batch_many` tiles, and pool
  updates happen as sorted row merges — the construction analogue of the
  lockstep search engine in :mod:`repro.core.batched`.
- ``build_engine="serial"`` — the original per-pair Python loop, kept as
  the semantic reference for parity testing.

Both keep the sampled-join semantics (per-entry ``sample_rate`` coin flip,
new/old split, new×new and new×old joins) and the early-exit rule
(stop when a round changes at most ``delta * n * k`` pool entries).  The
engines consume randomness differently, so they produce different — but
recall-equivalent — graphs for the same seed.
"""

from __future__ import annotations

# lint: hot-path

from typing import List, Optional, Set, Tuple

import numpy as np

from repro.annotations import arr, array_kernel, opaque, scalar
from repro.distances import get_metric
from repro.distances.metrics import Metric
from repro.structures.soa import (
    PAD_KEY,
    pack_keys,
    pack_rowid,
    unpack_distances,
    unpack_ids,
    unpack_rowid,
)

__all__ = ["BUILD_ENGINES", "nn_descent", "graph_recall"]

#: Valid construction engines, shared by every graph builder.
BUILD_ENGINES = ("serial", "batched")

#: Candidate-pair tile fed to one ``pair_many`` call in the local join.
#: Sized so the two gathered ``(tile, d)`` float32 panels stay cache
#: resident at typical dimensions — 2^16 and up fall off a cliff (4-5x
#: slower per pair at d=64 on a laptop-class L3).
_PAIR_TILE = 1 << 15

#: Element budget for one vertex-block of join-pair index generation.
_PAIR_BLOCK_BUDGET = 1 << 23

#: Adaptive join-list cap (used when ``max_candidates`` is ``None``):
#: per round the cap is ``max(floor, mult * p{pct}(per-vertex list
#: lengths))``.  Tying the cap to the observed tail percentile keeps it
#: slack for typical degree distributions (it binds on ~nothing, so
#: results match an uncapped run) while genuine hubs — vertices whose
#: reverse lists dwarf the population tail — get truncated relative to
#: the dataset's own statistics instead of a hard-coded 512.
_ADAPTIVE_CAP_FLOOR = 32
_ADAPTIVE_CAP_MULT = 4.0
_ADAPTIVE_CAP_PCT = 99.0


def _adaptive_cap(vertices: np.ndarray, n: int) -> int:
    """Join-list cap derived from this round's per-vertex edge counts."""
    if not len(vertices):
        return _ADAPTIVE_CAP_FLOOR
    counts = np.bincount(vertices, minlength=n)
    tail = float(np.percentile(counts, _ADAPTIVE_CAP_PCT))
    return max(_ADAPTIVE_CAP_FLOOR, int(np.ceil(_ADAPTIVE_CAP_MULT * tail)))


def nn_descent(
    data: np.ndarray,
    k: int,
    metric: str = "l2",
    max_iters: int = 12,
    sample_rate: float = 0.6,
    delta: float = 0.001,
    seed: int = 0,
    build_engine: str = "batched",
    max_candidates: Optional[int] = None,
    stats: Optional[dict] = None,
    cost=None,
) -> np.ndarray:
    """Return an ``(n, k)`` approximate kNN table.

    Parameters
    ----------
    data:
        ``(n, d)`` dataset.
    k:
        Neighbors per point.
    max_iters:
        Refinement round bound.
    sample_rate:
        Fraction of new neighbors joined per round.
    delta:
        Early-exit threshold: stop when fewer than ``delta * n * k``
        updates happened in a round.
    build_engine:
        ``"batched"`` (default) runs the vectorized local join;
        ``"serial"`` runs the reference per-pair loop.
    max_candidates:
        Batched engine only: cap on the per-vertex new/old join lists.
        Over-long lists keep a uniform random sample, so this only guards
        against pathological hubs blowing up the pair count.  ``None``
        (default) adapts the cap per round to the observed list-length
        tail — ``max(32, 4 * p99)`` — so it stays slack on typical
        degree distributions and only binds on genuine hubs; pass an int
        for a fixed cap.  The serial engine is uncapped.
    stats:
        Batched engine only: pass a dict to receive per-round
        diagnostics (``caps``, ``max_list_len``, ``capped_vertices``).
    cost:
        Batched engine only: optional
        :class:`~repro.simt.build_cost.BuildCostRecorder` capturing the
        construction kernels for the SIMT cost model.
    """
    n = len(data)
    if k >= n:
        raise ValueError(f"k={k} must be smaller than the dataset size {n}")
    if build_engine not in BUILD_ENGINES:
        raise ValueError(
            f"unknown build_engine {build_engine!r}; expected one of {BUILD_ENGINES}"
        )
    if build_engine == "serial":
        return _nn_descent_serial(data, k, metric, max_iters, sample_rate, delta, seed)
    return _nn_descent_batched(
        data,
        k,
        metric,
        max_iters,
        sample_rate,
        delta,
        seed,
        max_candidates,
        stats,
        cost,
    )


# -- batched engine -----------------------------------------------------------


def _nn_descent_batched(
    data: np.ndarray,
    k: int,
    metric: str,
    max_iters: int,
    sample_rate: float,
    delta: float,
    seed: int,
    max_candidates: Optional[int],
    stats: Optional[dict],
    cost=None,
) -> np.ndarray:
    from repro.simt.build_cost import maybe_recorder

    rec = maybe_recorder(cost)
    n = len(data)
    data = np.ascontiguousarray(np.asarray(data), dtype=np.float32)
    rng = np.random.default_rng(seed)
    m = get_metric(metric)
    norms = m.point_norms(data) if m.name == "cosine" else None
    if m.name == "l2":
        pair_cache: Optional[np.ndarray] = m.point_sq_norms(data)
    else:
        pair_cache = norms  # cosine norms; None for ip
    if max_candidates is not None and max_candidates <= 0:
        raise ValueError("max_candidates must be positive")
    if stats is not None:
        stats.setdefault("caps", [])
        stats.setdefault("max_list_len", [])
        stats.setdefault("capped_vertices", [])

    keys, flags = _init_pools(data, k, m, rng, norms)
    dim = data.shape[1]
    rec.record_distances(n * k, m.flops_per_distance(dim), dim, "init-pools")

    for _ in range(max_iters):  # lint: allow(hot-loop) — bounded round loop
        ids = unpack_ids(keys)
        # Per-entry sample_rate coin flip: sampled new entries join this
        # round and turn old, exactly like the serial loop.
        sampled = flags & (rng.random((n, k)) < sample_rate)
        flags &= ~sampled

        # Forward and reverse new/old lists as flat (vertex, candidate)
        # edge arrays; reverse edges are the forward edges transposed.
        v_new, j_new = np.nonzero(sampled)
        u_new = ids[v_new, j_new]
        v_old, j_old = np.nonzero(~sampled)
        u_old = ids[v_old, j_old]
        new_owners = np.concatenate([v_new, u_new])
        old_owners = np.concatenate([v_old, u_old])
        if max_candidates is not None:
            cap = max_candidates
        else:
            cap = _adaptive_cap(np.concatenate([new_owners, old_owners]), n)
        if stats is not None:
            lens = np.bincount(np.concatenate([new_owners, old_owners]), minlength=n)
            stats["caps"].append(cap)
            stats["max_list_len"].append(int(lens.max()) if len(lens) else 0)
            stats["capped_vertices"].append(int((lens > cap).sum()))
        new_lists = _pack_lists(
            new_owners, np.concatenate([u_new, v_new]), n, cap, rng
        )
        old_lists = _pack_lists(
            old_owners, np.concatenate([u_old, v_old]), n, cap, rng
        )

        p1, p2 = _join_pairs(new_lists, old_lists)
        if len(p1) == 0:
            break
        # The same pair can be generated by several vertices whose
        # candidate sets share both endpoints (like the serial loop, which
        # re-evaluates it per vertex).  Duplicates are a small fraction of
        # the stream and carry identical keys, so `_best_candidates`'
        # dedup absorbs them — cheaper than a global sort-unique here.
        dists = _pair_distances(data, p1, p2, m, pair_cache)
        rec.record_distances(len(p1), m.flops_per_distance(dim), dim, "join-dist")

        # Every pair tries to enter both endpoints' pools.  Apply the
        # serial reject rule (``dist >= heap[-1][0]``) against the
        # round-start pool tails up front: the merge re-checks against the
        # (only tighter) final tails, so this drops no real insert.
        worst = unpack_distances(keys[:, -1])
        tgt = np.concatenate([p1, p2])
        cand = np.concatenate([p2, p1])
        both = np.concatenate([dists, dists])
        sel = both < worst[tgt]
        tgt, cand, both = tgt[sel], cand[sel], both[sel]
        if not len(tgt):
            break
        cand_mat = _best_candidates(tgt, pack_keys(both, cand), n, k)
        rec.record_flat_sort(len(tgt), "join-rank")
        keys, flags, inserted = _merge_rows(keys, flags, cand_mat)
        rec.record_sort(n, 2 * k, "pool-merge")
        if int(inserted.sum()) <= delta * n * k:
            break

    return unpack_ids(keys).astype(np.int32)


def _init_pools(
    data: np.ndarray,
    k: int,
    m: Metric,
    rng: np.random.Generator,
    norms: Optional[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    """Random initial pools: ``k`` distinct non-self neighbors per vertex.

    Rows are filled by repeated vectorized sampling rounds (duplicates are
    merged away), with an exact per-row fallback for the rare rows — e.g.
    when ``k`` approaches ``n`` — that stay short.
    """
    n = len(data)
    keys = np.full((n, k), PAD_KEY, dtype=np.uint64)
    flags = np.zeros((n, k), dtype=bool)
    deficient = np.arange(n)
    for _ in range(8):
        cand = rng.integers(0, n - 1, size=(len(deficient), k), dtype=np.int64)
        cand[cand >= deficient[:, None]] += 1  # skip self
        d = m.batch_many(
            data[deficient],
            data[cand],
            None if norms is None else norms[cand],
        )
        merged, merged_flags, _ = _merge_rows(
            keys[deficient], flags[deficient], pack_keys(d, cand)
        )
        keys[deficient] = merged
        flags[deficient] = merged_flags
        deficient = deficient[(merged == PAD_KEY).any(axis=1)]
        if not len(deficient):
            return keys, flags
    # Exact fallback: fill remaining short rows one by one.
    for v in deficient.tolist():  # lint: allow(hot-loop) — rare residue, O(|deficient|)
        have = set(unpack_ids(keys[v][keys[v] != PAD_KEY]).tolist())
        pool = np.array([u for u in range(n) if u != v and u not in have])
        extra = pool[rng.choice(len(pool), size=k - len(have), replace=False)]
        d = m.batch(data[v], data[extra], None if norms is None else norms[extra])
        merged, merged_flags, _ = _merge_rows(
            keys[v][None, :], flags[v][None, :], pack_keys(d, extra)[None, :]
        )
        keys[v] = merged[0]
        flags[v] = merged_flags[0]
    return keys, flags


def _merge_rows(
    keys: np.ndarray, flags: np.ndarray, new_keys: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge candidate keys into per-row pools, deduplicating by vertex id.

    ``keys`` is the ``(n, k)`` sorted pool, ``flags`` its parallel "new"
    markers, ``new_keys`` a ``(n, c)`` candidate matrix (``PAD_KEY`` where
    empty; candidates enter with the new flag set).  Returns the updated
    ``(pool, flags, inserted)`` triple where ``inserted`` marks pool slots
    now holding a candidate that displaced or extended the old content —
    the batch analogue of counting successful ``try_insert`` calls.

    Duplicate ids keep their best copy; on exact key ties the pool copy
    wins (matching the serial rule that re-offering a present neighbor is
    a no-op).
    """
    pool = keys.shape[1]
    combined = np.concatenate([keys, new_keys], axis=1)
    comb_flags = np.concatenate(
        [flags, np.ones(new_keys.shape, dtype=bool)], axis=1
    )
    from_cand = np.concatenate(
        [np.zeros(keys.shape, dtype=bool), np.ones(new_keys.shape, dtype=bool)],
        axis=1,
    )
    # Sort rows by key; stable, so on ties the pool copy precedes the
    # candidate copy and survives the dedup below.
    order = np.argsort(combined, axis=1, kind="stable")
    combined = np.take_along_axis(combined, order, axis=1)
    comb_flags = np.take_along_axis(comb_flags, order, axis=1)
    from_cand = np.take_along_axis(from_cand, order, axis=1)
    # Dedup by id: group equal ids (stable sort keeps best-key first per
    # group), kill every copy after the first, scatter back.
    ids = unpack_ids(combined)
    id_order = np.argsort(ids, axis=1, kind="stable")
    ids_sorted = np.take_along_axis(ids, id_order, axis=1)
    dup = np.zeros_like(ids_sorted, dtype=bool)
    dup[:, 1:] = ids_sorted[:, 1:] == ids_sorted[:, :-1]
    kill = np.zeros_like(dup)
    np.put_along_axis(kill, id_order, dup, axis=1)
    combined = np.where(kill, PAD_KEY, combined)
    comb_flags &= ~kill
    from_cand &= ~kill
    # Push killed slots to the end and keep the best `pool` entries.
    order = np.argsort(combined, axis=1, kind="stable")
    combined = np.take_along_axis(combined, order, axis=1)
    comb_flags = np.take_along_axis(comb_flags, order, axis=1)
    from_cand = np.take_along_axis(from_cand, order, axis=1)
    kept = np.ascontiguousarray(combined[:, :pool])
    real = kept != PAD_KEY
    return kept, comb_flags[:, :pool] & real, from_cand[:, :pool] & real


@array_kernel(
    params={"n": (2, 2**31), "E": (1, 2**40), "cap": (1, 2**31)},
    args={
        "vertices": arr("E", lo=0, hi="n-1"),
        "candidates": arr("E", lo=0, hi="n-1"),
        "n": scalar("n"),
        "cap": scalar("cap"),
        "rng": opaque(),
    },
    returns=[
        arr(lo=0, hi="n-1"),
        arr(lo=0, hi="n-1"),
        arr("n", lo=0, hi="E"),
    ],
)
def _pack_lists(
    vertices: np.ndarray,
    candidates: np.ndarray,
    n: int,
    cap: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group flat (vertex, candidate) edges into ragged per-vertex lists.

    Returns ``(vertices, candidates, counts)`` where the edge arrays are
    sorted by vertex with duplicates removed and ``counts`` is the
    ``(n,)`` per-vertex list length.  Lists longer than ``cap`` keep a
    uniform random sample of ``cap`` entries (hub vertices collect many
    reverse edges — a deterministic truncation would systematically bias
    the join toward low-id candidates and hurt convergence).
    """
    counts = np.zeros(n, dtype=np.int64)
    if not len(vertices):
        return vertices, candidates, counts
    # single-key sort of the composite (vertex, candidate) id — cheaper
    # than a two-key lexsort, and dedup is one equality scan
    composite = pack_rowid(vertices, candidates, n)
    composite.sort(kind="stable")
    keep = np.ones(len(composite), dtype=bool)
    keep[1:] = composite[1:] != composite[:-1]
    composite = composite[keep]
    v_s, u_s = unpack_rowid(composite, n)
    rank = _rank_within_groups(v_s)
    if int(rank.max()) >= cap:
        # re-rank by random priority so truncation samples uniformly
        order = np.lexsort((rng.random(len(v_s)), v_s))
        v_s = v_s[order]
        u_s = u_s[order]
        rank = _rank_within_groups(v_s)
        sel = rank < cap
        v_s = v_s[sel]
        u_s = u_s[sel]
    counts = np.bincount(v_s, minlength=n).astype(np.int64)
    return v_s, u_s, counts


@array_kernel(
    params={"m": (1, 2**40)},
    args={"sorted_groups": arr("m", sorted_=True)},
    returns=[arr("m", lo=0, hi="m-1")],
)
def _rank_within_groups(sorted_groups: np.ndarray) -> np.ndarray:
    """0-based position of each element inside its run of equal values."""
    idx = np.arange(len(sorted_groups), dtype=np.int64)
    is_start = np.ones(len(sorted_groups), dtype=bool)
    is_start[1:] = sorted_groups[1:] != sorted_groups[:-1]
    return idx - np.maximum.accumulate(np.where(is_start, idx, 0))


@array_kernel(
    params={"k": (1, 2**20)},
    args={"reps": arr("k", lo=0)},
    returns=[arr(lo=0)],
)
def _ragged_arange(reps: np.ndarray) -> np.ndarray:
    """``concatenate([arange(r) for r in reps])`` without the Python loop."""
    total = int(reps.sum())
    idx = np.arange(total, dtype=np.int64)
    starts = np.repeat(np.cumsum(reps) - reps, reps)
    return idx - starts


def _join_pairs(
    new_lists: Tuple[np.ndarray, np.ndarray, np.ndarray],
    old_lists: Tuple[np.ndarray, np.ndarray, np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten the local join into candidate-pair arrays.

    For each vertex with new list ``N`` and old list ``O`` (ragged, from
    :func:`_pack_lists`), emits every pair of ``N × N`` (unordered,
    ``i < j``) and ``N × O``.  The ragged cartesian products are built
    with ``repeat``/cumsum index arithmetic, so the cost is proportional
    to the number of actual pairs — hub vertices with long lists don't
    force a padded-width blow-up on everyone else.  Vertex blocks bound
    peak memory.
    """
    new_v, new_u, new_cnt = new_lists
    old_v, old_u, old_cnt = old_lists
    n = len(new_cnt)
    if not len(new_v):
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    new_off = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(new_cnt, out=new_off[1:])
    old_off = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(old_cnt, out=old_off[1:])
    new_rank = _rank_within_groups(new_v)

    per_vertex = new_cnt * (new_cnt + old_cnt)  # pairs generated pre-filter
    cum = np.cumsum(per_vertex)
    parts1: List[np.ndarray] = []
    parts2: List[np.ndarray] = []
    a = 0
    done = 0
    while a < n:
        b = int(np.searchsorted(cum, done + _PAIR_BLOCK_BUDGET, side="right")) + 1
        b = min(max(b, a + 1), n)
        done = int(cum[b - 1])
        s, e = int(new_off[a]), int(new_off[b])
        a = b
        if s == e:
            continue
        vn = new_u[s:e]
        owner = new_v[s:e]
        # new × new, unordered: each entry against the later entries of
        # its own list
        reps = new_cnt[owner]
        pos = _ragged_arange(reps)
        keep = pos > np.repeat(new_rank[s:e], reps)
        left = np.repeat(vn, reps)[keep]
        right = new_u[(np.repeat(new_off[owner], reps) + pos)[keep]]
        parts1.append(left)
        parts2.append(right)
        # new × old
        reps = old_cnt[owner]
        if reps.any():
            pos = _ragged_arange(reps)
            left = np.repeat(vn, reps)
            right = old_u[np.repeat(old_off[owner], reps) + pos]
            keep = left != right
            parts1.append(left[keep])
            parts2.append(right[keep])
    if not parts1:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    return np.concatenate(parts1), np.concatenate(parts2)


def _pair_distances(
    data: np.ndarray,
    p1: np.ndarray,
    p2: np.ndarray,
    m: Metric,
    norm_cache: Optional[np.ndarray],
) -> np.ndarray:
    """Distances of a flat pair list, evaluated in fused ``pair_many`` tiles.

    ``norm_cache`` holds the dataset's per-row cache for the metric
    (squared norms for L2, norms for cosine, ``None`` for ip).
    """
    out = np.empty(len(p1), dtype=np.float32)
    for start in range(0, len(p1), _PAIR_TILE):  # lint: allow(hot-loop) — tile loop
        stop = min(start + _PAIR_TILE, len(p1))
        i1 = p1[start:stop]
        i2 = p2[start:stop]
        n1 = None if norm_cache is None else norm_cache[i1]
        n2 = None if norm_cache is None else norm_cache[i2]
        out[start:stop] = m.pair_many(data[i1], data[i2], n1, n2)
    return out


@array_kernel(
    params={"n": (1, 2**31), "k": (1, 512), "E": (1, 2**40)},
    args={
        "tgt": arr("E", lo=0, hi="n-1"),
        "cand_keys": arr("E", dtype="uint64"),
        "n": scalar("n"),
        "k": scalar("k"),
    },
    returns=[arr("n", "k", dtype="uint64")],
)
def _best_candidates(
    tgt: np.ndarray, cand_keys: np.ndarray, n: int, k: int
) -> np.ndarray:
    """Best ``k`` distinct candidate keys per target vertex, as ``(n, k)``.

    A pool merge can absorb at most ``k`` new entries, so ranking the
    deduplicated candidates per target and keeping the ``k`` smallest keys
    is exact — everything beyond rank ``k`` would lose to a kept entry.
    """
    # Single-key sort of (target, distance-bits): the packed key's high
    # half is the order-preserving distance image, so this ranks each
    # target's candidates by distance.  Exact-tie duplicates that escape
    # the adjacency dedup are absorbed by `_merge_rows`' id dedup.
    comp = (tgt.astype(np.uint64) << np.uint64(32)) | (cand_keys >> np.uint64(32))
    order = np.argsort(comp, kind="stable")
    c_s = comp[order]
    k_s = cand_keys[order]
    keep = np.ones(len(c_s), dtype=bool)
    keep[1:] = (c_s[1:] != c_s[:-1]) | (k_s[1:] != k_s[:-1])
    c_s = c_s[keep]
    k_s = k_s[keep]
    t_s = (c_s >> np.uint64(32)).astype(np.int64)
    rank = _rank_within_groups(t_s)
    sel = rank < k
    out = np.full((n, k), PAD_KEY, dtype=np.uint64)
    out[t_s[sel], rank[sel]] = k_s[sel]
    return out


# -- serial engine (semantic reference) ---------------------------------------


def _nn_descent_serial(  # lint: allow(hot-loop) — per-pair semantic reference
    data: np.ndarray,
    k: int,
    metric: str,
    max_iters: int,
    sample_rate: float,
    delta: float,
    seed: int,
) -> np.ndarray:
    n = len(data)
    rng = np.random.default_rng(seed)
    m = get_metric(metric)

    # neighbor lists: per vertex a list of (dist, id, is_new) kept sorted
    heaps: List[List[Tuple[float, int, bool]]] = []
    for v in range(n):
        cand = rng.choice(n - 1, size=k, replace=False)
        cand[cand >= v] += 1  # skip self
        dists = m.batch(data[v], data[cand])
        entries = sorted(zip(dists.tolist(), cand.tolist(), [True] * k))
        heaps.append(entries)

    def try_insert(v: int, u: int, dist: float) -> int:
        """Insert u into v's list if it improves it; returns 1 on change."""
        heap = heaps[v]
        if dist >= heap[-1][0]:
            return 0
        if any(e[1] == u for e in heap):
            return 0
        heap.pop()
        lo, hi = 0, len(heap)
        key = (dist, u, True)
        while lo < hi:
            mid = (lo + hi) // 2
            if heap[mid][0] < dist:
                lo = mid + 1
            else:
                hi = mid
        heap.insert(lo, key)
        return 1

    for _ in range(max_iters):
        new_lists: List[List[int]] = [[] for _ in range(n)]
        old_lists: List[List[int]] = [[] for _ in range(n)]
        for v in range(n):
            for i, (d, u, is_new) in enumerate(heaps[v]):
                if is_new and rng.random() < sample_rate:
                    new_lists[v].append(u)
                    heaps[v][i] = (d, u, False)
                else:
                    old_lists[v].append(u)
        # reverse lists
        rev_new: List[Set[int]] = [set() for _ in range(n)]
        rev_old: List[Set[int]] = [set() for _ in range(n)]
        for v in range(n):
            for u in new_lists[v]:
                rev_new[u].add(v)
            for u in old_lists[v]:
                rev_old[u].add(v)

        updates = 0
        for v in range(n):
            new_set = list(set(new_lists[v]) | rev_new[v])
            old_set = list(set(old_lists[v]) | rev_old[v])
            # local join: new x new, and new x old
            for i, u1 in enumerate(new_set):
                for u2 in new_set[i + 1 :]:
                    d = m.single(data[u1], data[u2])
                    updates += try_insert(u1, u2, d)
                    updates += try_insert(u2, u1, d)
                for u2 in old_set:
                    if u1 == u2:
                        continue
                    d = m.single(data[u1], data[u2])
                    updates += try_insert(u1, u2, d)
                    updates += try_insert(u2, u1, d)
        if updates <= delta * n * k:
            break

    return np.array([[u for (_, u, _) in heap] for heap in heaps], dtype=np.int32)


def graph_recall(approx: np.ndarray, exact: np.ndarray) -> float:
    """Fraction of exact kNN edges recovered by the approximate table.

    Fully vectorized: each row's ids are offset into a disjoint integer
    range so one global :func:`np.isin` performs row-wise membership.
    Rows are assumed to hold distinct ids (every builder here guarantees
    that), matching the previous set-intersection semantics.
    """
    if approx.shape != exact.shape:
        raise ValueError("shape mismatch between approximate and exact tables")
    approx = np.asarray(approx, dtype=np.int64)
    exact = np.asarray(exact, dtype=np.int64)
    span = int(max(approx.max(), exact.max())) + 1
    offsets = np.arange(len(exact), dtype=np.int64)[:, None] * span
    hits = int(np.isin(approx + offsets, (exact + offsets).ravel()).sum())
    return hits / exact.size
