"""Internal best-first search over in-construction adjacency lists.

Graph builders (NSW, HNSW, NSG) all need Algorithm-1-style searches over a
*mutable* adjacency structure while the index is being built.  This module
provides that shared primitive; the public, optimized searchers live in
:mod:`repro.core`.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.distances.metrics import Metric


def greedy_search(
    data: np.ndarray,
    neighbors_of: Callable[[int], Sequence[int]],
    query: np.ndarray,
    ef: int,
    entry_points: Sequence[int],
    metric: Metric,
) -> List[Tuple[float, int]]:
    """Best-first search (Algorithm 1) returning up to ``ef`` candidates.

    Parameters
    ----------
    data:
        ``(n, d)`` dataset the graph is built over.
    neighbors_of:
        Callable returning the adjacency list of a vertex.
    query:
        Query vector.
    ef:
        Size of the dynamic candidate list (and of the result).
    entry_points:
        Starting vertices.
    metric:
        Distance measure.

    Returns
    -------
    list of ``(distance, vertex)`` sorted ascending by distance.
    """
    if ef <= 0:
        raise ValueError("ef must be positive")
    visited = set()
    frontier: List[Tuple[float, int]] = []  # min-heap
    results: List[Tuple[float, int]] = []  # max-heap via negated distance
    for ep in entry_points:
        if ep in visited:
            continue
        visited.add(ep)
        d = metric.single(query, data[ep])
        heapq.heappush(frontier, (d, ep))
        heapq.heappush(results, (-d, ep))
        if len(results) > ef:
            heapq.heappop(results)

    while frontier:
        dist, v = heapq.heappop(frontier)
        if results and dist > -results[0][0] and len(results) >= ef:
            break
        neigh = [u for u in neighbors_of(v) if u not in visited]
        if not neigh:
            continue
        visited.update(neigh)
        dists = metric.batch(query, data[neigh])
        for u, d in zip(neigh, dists.tolist()):
            if len(results) < ef or d < -results[0][0]:
                heapq.heappush(frontier, (d, u))
                heapq.heappush(results, (-d, u))
                if len(results) > ef:
                    heapq.heappop(results)

    out = sorted((-nd, v) for nd, v in results)
    return out
