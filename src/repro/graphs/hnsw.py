"""Hierarchical navigable small world graphs (Malkov & Yashunin, 2018).

The paper's CPU comparator.  Full implementation: exponential layer
assignment, greedy descent through upper layers, ef-bounded best-first
search at layer 0, and the heuristic neighbor-selection rule (keep a
candidate only if it is closer to the inserted point than to every
already-kept neighbor) that gives HNSW its pruned, diverse edges.

``build_engine="batched"`` inserts points in generation batches, batched
per (layer, generation): levels are pre-drawn (same RNG draw order as
the serial build), every lane descends the upper hierarchy in a
vectorized lockstep hill-climb, and each layer's insertions — upper
layers now included, not just layer 0 — run as one lockstep
:class:`~repro.core.batched.BatchedSongSearcher` sweep seeded per-lane
from the descent.  Neighbor selection and back-link pruning use a
precomputed pairwise-distance matrix instead of per-pair
``metric.single`` calls.  Points within a generation search
pre-generation snapshots and do not see each other, so the batched graph
is recall-equivalent, not identical, to the serial one (tested in
``tests/test_graph_quality.py``); level assignment is bit-identical.
"""

from __future__ import annotations

# lint: hot-path

import heapq
import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.distances import OpCounter, get_metric
from repro.graphs.nn_descent import BUILD_ENGINES
from repro.graphs.storage import FixedDegreeGraph

__all__ = ["HNSWIndex"]

#: Smallest generation the batched scheduler will emit.
_MIN_GENERATION = 8


class HNSWIndex:
    """In-memory HNSW index.

    Parameters
    ----------
    data:
        ``(n, d)`` dataset (kept by reference).
    m:
        Out-degree target for layers above 0; layer 0 allows ``2 * m``.
    ef_construction:
        Candidate-list width used while inserting.
    metric:
        Distance measure name.
    seed:
        RNG seed for level assignment.
    build_engine:
        ``"serial"`` (default) inserts one point at a time;
        ``"batched"`` runs layer-0 insertions in lockstep generation
        batches (see module docstring).
    insert_batch:
        Batched engine only: hard cap on one generation's size.
    """

    def __init__(
        self,
        data: np.ndarray,
        m: int = 8,
        ef_construction: int = 64,
        metric: str = "l2",
        seed: int = 0,
        build_engine: str = "serial",
        insert_batch: int = 512,
    ) -> None:
        if m <= 1:
            raise ValueError("m must be at least 2")
        if build_engine not in BUILD_ENGINES:
            raise ValueError(
                f"unknown build_engine {build_engine!r}; "
                f"expected one of {BUILD_ENGINES}"
            )
        if insert_batch <= 0:
            raise ValueError("insert_batch must be positive")
        self.build_engine = build_engine
        self.insert_batch = insert_batch
        self.data = np.asarray(data)
        self.m = m
        self.m0 = 2 * m
        self.ef_construction = max(ef_construction, m)
        self.metric = get_metric(metric)
        self._mult = 1.0 / math.log(m)
        self._rng = np.random.default_rng(seed)
        # layers[l][v] -> neighbor list; vertex present iff v in layers[l]
        self._layers: List[dict] = []
        self.entry_point: Optional[int] = None
        self._levels: List[int] = []
        self.built = False

    # -- construction ----------------------------------------------------

    def build(self) -> "HNSWIndex":
        """Insert every data point."""
        n = len(self.data)
        # one draw per point, in insertion order — identical level
        # assignment for both engines given the same seed
        levels = [self._random_level() for _ in range(n)]
        self._levels = levels
        if self.build_engine == "batched":
            self._build_batched(levels)
        else:
            # serial reference engine: one insert per point by design
            for v in range(n):  # lint: allow(hot-loop)
                self._insert(v, levels[v])
        self.built = True
        return self

    def _random_level(self) -> int:
        return int(-math.log(max(self._rng.random(), 1e-12)) * self._mult)

    def _insert(self, v: int, level: int) -> None:
        while len(self._layers) <= level:
            self._layers.append({})
        # layer-count loops are O(log n), not dataset-sized
        for l in range(level + 1):  # lint: allow(hot-loop)
            self._layers[l][v] = []

        if self.entry_point is None:
            self.entry_point = v
            return

        ep = self.entry_point
        top = self._levels[self.entry_point]  # highest layer ep exists on
        query = self.data[v]
        # descend greedily through layers above the insertion level
        for l in range(top, level, -1):  # lint: allow(hot-loop)
            ep = self._greedy_closest(query, ep, l)
        # insert with ef search on each layer from min(level, old top) down
        for l in range(min(level, top), -1, -1):  # lint: allow(hot-loop)
            cands = self._search_layer(query, [ep], self.ef_construction, l)
            max_deg = self.m0 if l == 0 else self.m
            chosen = self._select_heuristic(query, cands, self.m)
            self._layers[l][v] = [u for _, u in chosen]
            for du, u in chosen:
                row = self._layers[l][u]
                row.append(v)
                if len(row) > max_deg:
                    # re-select u's neighbors with the same heuristic
                    pairs = [
                        (self.metric.single(self.data[u], self.data[w]), w)
                        for w in row
                    ]
                    pairs.sort()
                    kept = self._select_heuristic(self.data[u], pairs, max_deg)
                    self._layers[l][u] = [w for _, w in kept]
            ep = cands[0][1]
        if level > self._levels[self.entry_point]:
            self.entry_point = v

    # -- batched construction ---------------------------------------------

    def _build_batched(self, levels: List[int]) -> None:
        """Generation-batch insertion (see module docstring)."""
        n = len(self.data)
        if n == 0:
            return
        data32 = np.ascontiguousarray(self.data, dtype=np.float32)
        lvl_arr = np.asarray(levels, dtype=np.int64)
        self._insert(0, levels[0])
        pos = 1
        while pos < n:
            size = min(n - pos, max(_MIN_GENERATION, pos), self.insert_batch)
            batch = np.arange(pos, pos + size, dtype=np.int64)
            self._insert_generation(batch, lvl_arr[batch], data32)
            pos += size

    def _insert_generation(
        self, batch: np.ndarray, lvls: np.ndarray, data32: np.ndarray
    ) -> None:
        """Insert one generation, batched per layer.

        Every lane descends the upper hierarchy in a lockstep vectorized
        hill-climb (:meth:`_greedy_batch`), then — per layer, from its
        insertion level down — joins that layer's lockstep
        :class:`~repro.core.batched.BatchedSongSearcher` sweep and links
        from its results.  Lanes within a generation search pre-generation
        snapshots, so they do not see each other; the entry point updates
        after the generation with the serial running-max rule.
        """
        from repro.core.batched import BatchedSongSearcher
        from repro.core.config import SearchConfig

        n = len(data32)
        old_top = self._levels[self.entry_point]
        top_new = int(max(lvls.max(), old_top))
        while len(self._layers) <= top_new:
            self._layers.append({})
        # register membership for every (vertex, layer) pair up front;
        # layers above the current top stay empty rows, like the serial
        # path, because no search runs there yet
        l = top_new
        while l >= 0:
            self._layers[l].update({int(v): [] for v in batch[lvls >= l]})
            l -= 1

        eps = np.full(len(batch), self.entry_point, dtype=np.int64)
        queries = data32[batch]
        config = SearchConfig(
            k=self.ef_construction,
            queue_size=self.ef_construction,
            metric=self.metric.name,
        )
        l = old_top
        while l >= 0:
            inserting = lvls >= l
            snapshot = FixedDegreeGraph.from_adjacency(
                [self._layers[l].get(v, ()) for v in range(n)],
                entry_point=self.entry_point,
                validate=False,
            )
            if l > 0 and not inserting.all():
                idx = np.nonzero(~inserting)[0]
                eps[idx] = self._greedy_batch(
                    snapshot.adjacency_array, queries[idx], eps[idx], data32
                )
            if inserting.any():
                idx = np.nonzero(inserting)[0]
                searcher = BatchedSongSearcher(snapshot, data32)
                results = searcher.search_batch(
                    queries[idx], config, entry_points=eps[idx]
                )
                max_deg = self.m0 if l == 0 else self.m
                for lane, v, cands in zip(idx, batch[inserting], results):
                    self._link(int(v), cands, l, max_deg)
                    if cands:
                        eps[lane] = cands[0][1]
            l -= 1
        # serial running-max entry update: the last point whose level
        # strictly beats every earlier level (and the old top) wins
        prefix = np.maximum.accumulate(np.concatenate(([old_top], lvls)))[:-1]
        winners = np.nonzero(lvls > prefix)[0]
        if len(winners):
            self.entry_point = int(batch[winners[-1]])

    def _greedy_batch(
        self,
        adj: np.ndarray,
        queries: np.ndarray,
        eps: np.ndarray,
        data32: np.ndarray,
    ) -> np.ndarray:
        """Vectorized greedy hill-climb for many lanes on one layer.

        Each round gathers every active lane's current adjacency row,
        evaluates the whole panel with one fused
        :meth:`~repro.distances.metrics.Metric.batch_many`, and moves
        lanes to their best neighbor while it improves — the lockstep
        twin of :meth:`_greedy_closest` (same local-minimum guarantee,
        possibly a different climb path).
        """
        cur = eps.astype(np.int64, copy=True)
        if not len(cur):
            return cur
        cur_d = self.metric.batch_many(queries, data32[cur][:, None, :])[:, 0]
        active = np.ones(len(cur), dtype=bool)
        while active.any():
            act_idx = np.nonzero(active)[0]
            rows = adj[cur[act_idx]]
            panel = data32[np.maximum(rows, 0)]
            d = self.metric.batch_many(queries[act_idx], panel)
            d = np.where(rows < 0, np.inf, d)
            j = np.argmin(d, axis=1)
            best = d[np.arange(len(j)), j]
            improved = best < cur_d[act_idx]
            upd = act_idx[improved]
            cur[upd] = rows[np.arange(len(j)), j][improved]
            cur_d[upd] = best[improved]
            active[act_idx[~improved]] = False
        return cur

    def _link(
        self, v: int, cands: List[Tuple[float, int]], layer: int, max_deg: int
    ) -> None:
        """Connect an inserted point on one layer from its batch results."""
        if not cands:
            self._layers[layer][v] = []
            return
        ids = [u for _, u in cands]
        dists = np.array([d for d, _ in cands])
        keep = self._select_indices(dists, self._pairwise(ids), self.m)
        self._layers[layer][v] = [ids[i] for i in keep]
        for i in keep:
            row = self._layers[layer][ids[i]]
            row.append(v)
            if len(row) > max_deg:
                self._reselect_row(ids[i], layer, max_deg)

    def _reselect_row(self, u: int, layer: int, max_deg: int) -> None:
        """Trim an overfull row with the heuristic, vectorized."""
        row = self._layers[layer][u]
        d = self.metric.batch(self.data[u], self.data[row])
        order = np.lexsort((row, d))  # by distance, ties by id
        ids = [row[int(i)] for i in order]
        dists = d[order]
        keep = self._select_indices(dists, self._pairwise(ids), max_deg)
        self._layers[layer][u] = [ids[i] for i in keep]

    def _pairwise(self, ids: List[int]) -> np.ndarray:
        """All-pairs distance matrix over the given vertex ids."""
        vecs = np.ascontiguousarray(self.data[ids])
        c, dim = vecs.shape
        return self.metric.batch_many(
            vecs, np.broadcast_to(vecs[None, :, :], (c, c, dim))
        )

    @staticmethod
    def _select_indices(dists, pair, m) -> List[int]:  # lint: allow(hot-loop)
        """Index-space twin of :meth:`_select_heuristic` over a
        precomputed pairwise matrix (``dists`` must be ascending).

        The chosen set grows one candidate at a time and every test
        depends on what was already kept, so the ef-bounded loop stays
        sequential (function-level lint waiver).
        """
        chosen: List[int] = []
        for i in range(len(dists)):
            if len(chosen) >= m:
                break
            d = dists[i]
            if all(pair[i, j] >= d for j in chosen):
                chosen.append(i)
        if len(chosen) < m:  # backfill with nearest rejected candidates
            picked = set(chosen)
            for i in range(len(dists)):
                if len(chosen) >= m:
                    break
                if i not in picked:
                    chosen.append(i)
        return chosen

    def _greedy_closest(self, query: np.ndarray, ep: int, layer: int) -> int:
        """Hill-climb to the local minimum on one layer."""
        cur = ep
        cur_d = self.metric.single(query, self.data[cur])
        improved = True
        while improved:
            improved = False
            for u in self._layers[layer].get(cur, []):
                d = self.metric.single(query, self.data[u])
                if d < cur_d:
                    cur, cur_d = u, d
                    improved = True
        return cur

    def _search_layer(
        self,
        query: np.ndarray,
        entry_points: Sequence[int],
        ef: int,
        layer: int,
        counter: Optional[OpCounter] = None,
    ) -> List[Tuple[float, int]]:
        """ef-bounded best-first search on one layer; ascending result."""
        visited = set()
        frontier: List[Tuple[float, int]] = []
        results: List[Tuple[float, int]] = []
        dim = self.data.shape[1]
        for ep in entry_points:
            if ep in visited:
                continue
            visited.add(ep)
            d = self.metric.single(query, self.data[ep])
            if counter is not None:
                counter.distance_calls += 1
                counter.distance_flops += self.metric.flops_per_distance(dim)
                counter.vector_reads += 1
            heapq.heappush(frontier, (d, ep))
            heapq.heappush(results, (-d, ep))
        while frontier:
            dist, v = heapq.heappop(frontier)
            if counter is not None:
                counter.hops += 1
                counter.queue_ops += 1
            if len(results) >= ef and dist > -results[0][0]:
                break
            for u in self._layers[layer].get(v, []):
                if counter is not None:
                    counter.graph_reads += 1
                    counter.hash_ops += 1
                if u in visited:
                    continue
                visited.add(u)
                d = self.metric.single(query, self.data[u])
                if counter is not None:
                    counter.distance_calls += 1
                    counter.distance_flops += self.metric.flops_per_distance(dim)
                    counter.vector_reads += 1
                if len(results) < ef or d < -results[0][0]:
                    heapq.heappush(frontier, (d, u))
                    heapq.heappush(results, (-d, u))
                    if counter is not None:
                        counter.queue_ops += 2
                    if len(results) > ef:
                        heapq.heappop(results)
        return sorted((-nd, v) for nd, v in results)

    def _select_heuristic(
        self, point: np.ndarray, candidates: List[Tuple[float, int]], m: int
    ) -> List[Tuple[float, int]]:
        """HNSW's diverse-neighbor selection (Algorithm 4 of the paper)."""
        chosen: List[Tuple[float, int]] = []
        for d, u in candidates:
            if len(chosen) >= m:
                break
            ok = True
            for _, w in chosen:
                if self.metric.single(self.data[u], self.data[w]) < d:
                    ok = False
                    break
            if ok:
                chosen.append((d, u))
        if len(chosen) < m:  # backfill with nearest rejected candidates
            picked = {u for _, u in chosen}
            for d, u in candidates:
                if len(chosen) >= m:
                    break
                if u not in picked:
                    chosen.append((d, u))
        return chosen

    # -- queries -----------------------------------------------------------

    def search(
        self, query: np.ndarray, k: int, ef: int = None, counter: OpCounter = None
    ) -> List[Tuple[float, int]]:
        """Top-``k`` nearest neighbors of ``query`` (ascending distance).

        ``counter``, when given, accumulates the work performed — this is
        what the evaluation harness converts into single-thread CPU time.
        """
        if not self.built:
            raise RuntimeError("index not built; call build() first")
        if k <= 0:
            raise ValueError("k must be positive")
        ef = max(ef or k, k)
        ep = self.entry_point
        q = np.asarray(query)
        for l in range(len(self._layers) - 1, 0, -1):  # lint: allow(hot-loop)
            ep = self._greedy_closest_counted(q, ep, l, counter)
        cands = self._search_layer(q, [ep], ef, 0, counter)
        return cands[:k]

    def _greedy_closest_counted(
        self, query: np.ndarray, ep: int, layer: int, counter: Optional[OpCounter]
    ) -> int:
        cur = ep
        dim = self.data.shape[1]
        cur_d = self.metric.single(query, self.data[cur])
        if counter is not None:
            counter.distance_calls += 1
            counter.distance_flops += self.metric.flops_per_distance(dim)
            counter.vector_reads += 1
        improved = True
        while improved:
            improved = False
            for u in self._layers[layer].get(cur, []):
                d = self.metric.single(query, self.data[u])
                if counter is not None:
                    counter.distance_calls += 1
                    counter.distance_flops += self.metric.flops_per_distance(dim)
                    counter.vector_reads += 1
                    counter.graph_reads += 1
                if d < cur_d:
                    cur, cur_d = u, d
                    improved = True
        return cur

    # -- export ---------------------------------------------------------------

    def base_layer_graph(self) -> FixedDegreeGraph:
        """Layer-0 adjacency as a fixed-degree graph (what SONG searches)."""
        if not self.built:
            raise RuntimeError("index not built; call build() first")
        layer0 = self._layers[0]
        return FixedDegreeGraph.from_adjacency(
            [layer0[v] for v in range(len(self.data))],
            degree=self.m0,
            entry_point=self.entry_point,
            validate=False,
        )

    def num_layers(self) -> int:
        return len(self._layers)

    def memory_bytes(self) -> int:
        """Index size: 4 bytes per stored edge across all layers."""
        edges = sum(len(row) for layer in self._layers for row in layer.values())
        return 4 * edges
