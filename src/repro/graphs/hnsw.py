"""Hierarchical navigable small world graphs (Malkov & Yashunin, 2018).

The paper's CPU comparator.  Full implementation: exponential layer
assignment, greedy descent through upper layers, ef-bounded best-first
search at layer 0, and the heuristic neighbor-selection rule (keep a
candidate only if it is closer to the inserted point than to every
already-kept neighbor) that gives HNSW its pruned, diverse edges.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.distances import OpCounter, get_metric
from repro.graphs.storage import FixedDegreeGraph


class HNSWIndex:
    """In-memory HNSW index.

    Parameters
    ----------
    data:
        ``(n, d)`` dataset (kept by reference).
    m:
        Out-degree target for layers above 0; layer 0 allows ``2 * m``.
    ef_construction:
        Candidate-list width used while inserting.
    metric:
        Distance measure name.
    seed:
        RNG seed for level assignment.
    """

    def __init__(
        self,
        data: np.ndarray,
        m: int = 8,
        ef_construction: int = 64,
        metric: str = "l2",
        seed: int = 0,
    ) -> None:
        if m <= 1:
            raise ValueError("m must be at least 2")
        self.data = np.asarray(data)
        self.m = m
        self.m0 = 2 * m
        self.ef_construction = max(ef_construction, m)
        self.metric = get_metric(metric)
        self._mult = 1.0 / math.log(m)
        self._rng = np.random.default_rng(seed)
        # layers[l][v] -> neighbor list; vertex present iff v in layers[l]
        self._layers: List[dict] = []
        self.entry_point: Optional[int] = None
        self._levels: List[int] = []
        self.built = False

    # -- construction ----------------------------------------------------

    def build(self) -> "HNSWIndex":
        """Insert every data point."""
        for v in range(len(self.data)):
            self._insert(v)
        self.built = True
        return self

    def _random_level(self) -> int:
        return int(-math.log(max(self._rng.random(), 1e-12)) * self._mult)

    def _insert(self, v: int) -> None:
        level = self._random_level()
        self._levels.append(level)
        while len(self._layers) <= level:
            self._layers.append({})
        for l in range(level + 1):
            self._layers[l][v] = []

        if self.entry_point is None:
            self.entry_point = v
            return

        ep = self.entry_point
        top = self._levels[self.entry_point]  # highest layer ep exists on
        query = self.data[v]
        # descend greedily through layers above the insertion level
        for l in range(top, level, -1):
            ep = self._greedy_closest(query, ep, l)
        # insert with ef search on each layer from min(level, old top) down
        for l in range(min(level, top), -1, -1):
            cands = self._search_layer(query, [ep], self.ef_construction, l)
            max_deg = self.m0 if l == 0 else self.m
            chosen = self._select_heuristic(query, cands, self.m)
            self._layers[l][v] = [u for _, u in chosen]
            for du, u in chosen:
                row = self._layers[l][u]
                row.append(v)
                if len(row) > max_deg:
                    # re-select u's neighbors with the same heuristic
                    pairs = [
                        (self.metric.single(self.data[u], self.data[w]), w)
                        for w in row
                    ]
                    pairs.sort()
                    kept = self._select_heuristic(self.data[u], pairs, max_deg)
                    self._layers[l][u] = [w for _, w in kept]
            ep = cands[0][1]
        if level > self._levels[self.entry_point]:
            self.entry_point = v

    def _greedy_closest(self, query: np.ndarray, ep: int, layer: int) -> int:
        """Hill-climb to the local minimum on one layer."""
        cur = ep
        cur_d = self.metric.single(query, self.data[cur])
        improved = True
        while improved:
            improved = False
            for u in self._layers[layer].get(cur, []):
                d = self.metric.single(query, self.data[u])
                if d < cur_d:
                    cur, cur_d = u, d
                    improved = True
        return cur

    def _search_layer(
        self,
        query: np.ndarray,
        entry_points: Sequence[int],
        ef: int,
        layer: int,
        counter: Optional[OpCounter] = None,
    ) -> List[Tuple[float, int]]:
        """ef-bounded best-first search on one layer; ascending result."""
        visited = set()
        frontier: List[Tuple[float, int]] = []
        results: List[Tuple[float, int]] = []
        dim = self.data.shape[1]
        for ep in entry_points:
            if ep in visited:
                continue
            visited.add(ep)
            d = self.metric.single(query, self.data[ep])
            if counter is not None:
                counter.distance_calls += 1
                counter.distance_flops += self.metric.flops_per_distance(dim)
                counter.vector_reads += 1
            heapq.heappush(frontier, (d, ep))
            heapq.heappush(results, (-d, ep))
        while frontier:
            dist, v = heapq.heappop(frontier)
            if counter is not None:
                counter.hops += 1
                counter.queue_ops += 1
            if len(results) >= ef and dist > -results[0][0]:
                break
            for u in self._layers[layer].get(v, []):
                if counter is not None:
                    counter.graph_reads += 1
                    counter.hash_ops += 1
                if u in visited:
                    continue
                visited.add(u)
                d = self.metric.single(query, self.data[u])
                if counter is not None:
                    counter.distance_calls += 1
                    counter.distance_flops += self.metric.flops_per_distance(dim)
                    counter.vector_reads += 1
                if len(results) < ef or d < -results[0][0]:
                    heapq.heappush(frontier, (d, u))
                    heapq.heappush(results, (-d, u))
                    if counter is not None:
                        counter.queue_ops += 2
                    if len(results) > ef:
                        heapq.heappop(results)
        return sorted((-nd, v) for nd, v in results)

    def _select_heuristic(
        self, point: np.ndarray, candidates: List[Tuple[float, int]], m: int
    ) -> List[Tuple[float, int]]:
        """HNSW's diverse-neighbor selection (Algorithm 4 of the paper)."""
        chosen: List[Tuple[float, int]] = []
        for d, u in candidates:
            if len(chosen) >= m:
                break
            ok = True
            for _, w in chosen:
                if self.metric.single(self.data[u], self.data[w]) < d:
                    ok = False
                    break
            if ok:
                chosen.append((d, u))
        if len(chosen) < m:  # backfill with nearest rejected candidates
            picked = {u for _, u in chosen}
            for d, u in candidates:
                if len(chosen) >= m:
                    break
                if u not in picked:
                    chosen.append((d, u))
        return chosen

    # -- queries -----------------------------------------------------------

    def search(
        self, query: np.ndarray, k: int, ef: int = None, counter: OpCounter = None
    ) -> List[Tuple[float, int]]:
        """Top-``k`` nearest neighbors of ``query`` (ascending distance).

        ``counter``, when given, accumulates the work performed — this is
        what the evaluation harness converts into single-thread CPU time.
        """
        if not self.built:
            raise RuntimeError("index not built; call build() first")
        if k <= 0:
            raise ValueError("k must be positive")
        ef = max(ef or k, k)
        ep = self.entry_point
        q = np.asarray(query)
        for l in range(len(self._layers) - 1, 0, -1):
            ep = self._greedy_closest_counted(q, ep, l, counter)
        cands = self._search_layer(q, [ep], ef, 0, counter)
        return cands[:k]

    def _greedy_closest_counted(
        self, query: np.ndarray, ep: int, layer: int, counter: Optional[OpCounter]
    ) -> int:
        cur = ep
        dim = self.data.shape[1]
        cur_d = self.metric.single(query, self.data[cur])
        if counter is not None:
            counter.distance_calls += 1
            counter.distance_flops += self.metric.flops_per_distance(dim)
            counter.vector_reads += 1
        improved = True
        while improved:
            improved = False
            for u in self._layers[layer].get(cur, []):
                d = self.metric.single(query, self.data[u])
                if counter is not None:
                    counter.distance_calls += 1
                    counter.distance_flops += self.metric.flops_per_distance(dim)
                    counter.vector_reads += 1
                    counter.graph_reads += 1
                if d < cur_d:
                    cur, cur_d = u, d
                    improved = True
        return cur

    # -- export ---------------------------------------------------------------

    def base_layer_graph(self) -> FixedDegreeGraph:
        """Layer-0 adjacency as a fixed-degree graph (what SONG searches)."""
        if not self.built:
            raise RuntimeError("index not built; call build() first")
        n = len(self.data)
        graph = FixedDegreeGraph(n, self.m0, entry_point=self.entry_point)
        for v in range(n):
            graph.set_neighbors(v, self._layers[0][v][: self.m0])
        return graph

    def num_layers(self) -> int:
        return len(self._layers)

    def memory_bytes(self) -> int:
        """Index size: 4 bytes per stored edge across all layers."""
        edges = sum(len(row) for layer in self._layers for row in layer.values())
        return 4 * edges
