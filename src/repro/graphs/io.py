"""Graph index persistence.

The paper's SONG loads pre-built NSW indexes from disk; this module
provides the equivalent: a fixed-degree graph serializes to a single
``.npz`` with its adjacency array, per-vertex counts, and entry point.
"""

from __future__ import annotations

import os

import numpy as np

from repro.graphs.storage import FixedDegreeGraph

_FORMAT_VERSION = 1


def save_graph(graph: FixedDegreeGraph, path: str) -> None:
    """Serialize ``graph`` to ``path`` (``.npz`` appended if missing)."""
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        adjacency=graph.adjacency_array,
        counts=graph._counts,
        entry_point=np.int64(graph.entry_point),
    )


def load_graph(path: str) -> FixedDegreeGraph:
    """Load a graph previously written by :func:`save_graph`.

    Raises
    ------
    FileNotFoundError
        If the file does not exist (``.npz`` suffix is tried too).
    ValueError
        On version mismatch or structural corruption.
    """
    if not os.path.exists(path):
        alt = path + ".npz"
        if os.path.exists(alt):
            path = alt
        else:
            raise FileNotFoundError(path)
    with np.load(path) as payload:
        version = int(payload["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported graph format version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        adjacency = payload["adjacency"]
        counts = payload["counts"]
        entry_point = int(payload["entry_point"])
    n, degree = adjacency.shape
    graph = FixedDegreeGraph(n, degree, entry_point=entry_point)
    for v in range(n):
        graph.set_neighbors(v, adjacency[v, : counts[v]].tolist())
    graph.validate()
    return graph
