"""Navigable small-world graph construction (Malkov et al., 2014).

This is the index SONG loads in the paper's experiments.  Points are
inserted one at a time: each new point searches the graph built so far for
its ``m`` nearest neighbors and connects to them bidirectionally.  Early
insertions create the long-range "highway" links that make the graph
navigable.  The final graph is exported as a fixed-degree adjacency array.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.distances import get_metric
from repro.graphs._search import greedy_search
from repro.graphs.storage import FixedDegreeGraph


class NSWBuilder:
    """Incremental NSW construction.

    Parameters
    ----------
    data:
        ``(n, d)`` dataset.
    m:
        Connections created per inserted point.
    ef_construction:
        Candidate-list size during insertion searches.
    max_degree:
        Per-vertex degree cap in the exported graph (default ``2 * m``);
        overfull lists are pruned to the closest neighbors.
    metric:
        Distance measure name.
    seed:
        Insertion order shuffle seed (``None`` keeps dataset order).
    """

    def __init__(
        self,
        data: np.ndarray,
        m: int = 8,
        ef_construction: int = 64,
        max_degree: int = None,
        metric: str = "l2",
        seed: int = None,
    ) -> None:
        if m <= 0:
            raise ValueError("m must be positive")
        if ef_construction < m:
            raise ValueError("ef_construction must be at least m")
        self.data = np.asarray(data)
        self.m = m
        self.ef_construction = ef_construction
        self.max_degree = max_degree if max_degree is not None else 2 * m
        self.metric = get_metric(metric)
        self.seed = seed
        self._adj: List[List[int]] = []
        self._order: List[int] = []

    def build(self) -> FixedDegreeGraph:
        """Insert every point and export the fixed-degree graph."""
        n = len(self.data)
        if n == 0:
            raise ValueError("cannot build a graph over an empty dataset")
        order = list(range(n))
        if self.seed is not None:
            rng = np.random.default_rng(self.seed)
            rng.shuffle(order)
        self._adj = [[] for _ in range(n)]
        self._order = order
        for rank, v in enumerate(order):
            self._insert(v, order[0], inserted=rank)
        self._prune()
        entry = order[0]
        self._repair_connectivity(entry)
        graph = FixedDegreeGraph(n, self.max_degree, entry_point=entry)
        for v in range(n):
            graph.set_neighbors(v, self._adj[v])
        return graph

    # -- internals -----------------------------------------------------------

    def _insert(self, v: int, entry: int, inserted: int) -> None:
        if inserted == 0:
            return  # first point has nothing to connect to
        found = greedy_search(
            self.data,
            lambda u: self._adj[u],
            self.data[v],
            ef=self.ef_construction,
            entry_points=[entry],
            metric=self.metric,
        )
        for _, u in found[: self.m]:
            self._adj[v].append(u)
            self._adj[u].append(v)

    def _prune(self) -> None:
        """Cut overfull adjacency lists down to the closest neighbors."""
        for v in range(len(self.data)):
            row = list(dict.fromkeys(self._adj[v]))  # dedupe, keep order
            if len(row) > self.max_degree:
                dists = self.metric.batch(self.data[v], self.data[row])
                keep = np.argsort(dists, kind="stable")[: self.max_degree]
                row = [row[i] for i in sorted(keep.tolist())]
            self._adj[v] = row

    def _repair_connectivity(self, entry: int) -> None:
        """Re-attach vertices the pruning orphaned (directed reachability).

        Pruning keeps only each vertex's closest out-edges, which can
        leave a vertex with no *in*-path from the entry point.  Link each
        orphan from its nearest reachable vertex, replacing that vertex's
        farthest edge when its row is full.
        """
        from collections import deque

        n = len(self.data)
        while True:
            seen = {entry}
            queue = deque([entry])
            while queue:
                v = queue.popleft()
                for u in self._adj[v]:
                    if u not in seen:
                        seen.add(u)
                        queue.append(u)
            missing = [v for v in range(n) if v not in seen]
            if not missing:
                return
            v = missing[0]
            reachable = sorted(seen)
            dists = self.metric.batch(self.data[v], self.data[reachable])
            order = np.argsort(dists, kind="stable")
            attached = False
            for idx in order:
                u = reachable[int(idx)]
                if len(self._adj[u]) < self.max_degree:
                    self._adj[u].append(v)
                    attached = True
                    break
            if not attached:
                u = reachable[int(order[0])]
                row = self._adj[u]
                row_d = self.metric.batch(self.data[u], self.data[row])
                row[int(np.argmax(row_d))] = v


def build_nsw(
    data: np.ndarray,
    m: int = 8,
    ef_construction: int = 64,
    max_degree: int = None,
    metric: str = "l2",
    seed: int = None,
) -> FixedDegreeGraph:
    """One-call NSW construction (see :class:`NSWBuilder`)."""
    return NSWBuilder(
        data,
        m=m,
        ef_construction=ef_construction,
        max_degree=max_degree,
        metric=metric,
        seed=seed,
    ).build()
