"""Navigable small-world graph construction (Malkov et al., 2014).

This is the index SONG loads in the paper's experiments.  Points are
inserted one at a time: each new point searches the graph built so far for
its ``m`` nearest neighbors and connects to them bidirectionally.  Early
insertions create the long-range "highway" links that make the graph
navigable.  The final graph is exported as a fixed-degree adjacency array.

Two insertion engines are available.  ``build_engine="serial"`` (default)
is the reference one-point-at-a-time loop.  ``build_engine="batched"``
inserts points in *generation batches*: each generation snapshots the
graph built so far, runs every pending point's entry search through the
lockstep :class:`~repro.core.batched.BatchedSongSearcher` in one shot, and
then applies the bidirectional links.  Points inside one generation do not
see each other — with the generation size capped at the inserted prefix
(doubling schedule) and by ``insert_batch``, the resulting graph is not
identical to the serial one but is recall-equivalent (tested; see
``tests/test_graph_quality.py``).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.distances import get_metric
from repro.graphs._search import greedy_search
from repro.graphs.storage import FixedDegreeGraph

#: Smallest generation the batched scheduler will emit.
_MIN_GENERATION = 8


class NSWBuilder:
    """Incremental NSW construction.

    Parameters
    ----------
    data:
        ``(n, d)`` dataset.
    m:
        Connections created per inserted point.
    ef_construction:
        Candidate-list size during insertion searches.
    max_degree:
        Per-vertex degree cap in the exported graph (default ``2 * m``);
        overfull lists are pruned to the closest neighbors.
    metric:
        Distance measure name.
    seed:
        Insertion order shuffle seed (``None`` keeps dataset order).
    build_engine:
        ``"serial"`` (default) inserts one point at a time;
        ``"batched"`` inserts generation batches through the lockstep
        search engine.
    insert_batch:
        Batched engine only: hard cap on one generation's size.
    """

    def __init__(
        self,
        data: np.ndarray,
        m: int = 8,
        ef_construction: int = 64,
        max_degree: int = None,
        metric: str = "l2",
        seed: int = None,
        build_engine: str = "serial",
        insert_batch: int = 512,
    ) -> None:
        from repro.graphs.nn_descent import BUILD_ENGINES

        if m <= 0:
            raise ValueError("m must be positive")
        if ef_construction < m:
            raise ValueError("ef_construction must be at least m")
        if build_engine not in BUILD_ENGINES:
            raise ValueError(
                f"unknown build_engine {build_engine!r}; "
                f"expected one of {BUILD_ENGINES}"
            )
        if insert_batch <= 0:
            raise ValueError("insert_batch must be positive")
        self.data = np.asarray(data)
        self.m = m
        self.ef_construction = ef_construction
        self.max_degree = max_degree if max_degree is not None else 2 * m
        self.metric = get_metric(metric)
        self.seed = seed
        self.build_engine = build_engine
        self.insert_batch = insert_batch
        self._adj: List[List[int]] = []
        self._order: List[int] = []

    def build(self) -> FixedDegreeGraph:
        """Insert every point and export the fixed-degree graph."""
        n = len(self.data)
        if n == 0:
            raise ValueError("cannot build a graph over an empty dataset")
        order = list(range(n))
        if self.seed is not None:
            rng = np.random.default_rng(self.seed)
            rng.shuffle(order)
        self._adj = [[] for _ in range(n)]
        self._order = order
        if self.build_engine == "batched":
            self._insert_batched(order)
        else:
            for rank, v in enumerate(order):
                self._insert(v, order[0], inserted=rank)
        self._prune()
        entry = order[0]
        self._repair_connectivity(entry)
        graph = FixedDegreeGraph(n, self.max_degree, entry_point=entry)
        for v in range(n):
            graph.set_neighbors(v, self._adj[v])
        return graph

    # -- internals -----------------------------------------------------------

    def _insert(self, v: int, entry: int, inserted: int) -> None:
        if inserted == 0:
            return  # first point has nothing to connect to
        found = greedy_search(
            self.data,
            lambda u: self._adj[u],
            self.data[v],
            ef=self.ef_construction,
            entry_points=[entry],
            metric=self.metric,
        )
        for _, u in found[: self.m]:
            self._adj[v].append(u)
            self._adj[u].append(v)

    def _insert_batched(self, order: List[int]) -> None:
        """Generation-batch insertion through the lockstep search engine."""
        from repro.core.batched import BatchedSongSearcher
        from repro.core.config import SearchConfig

        n = len(order)
        data32 = np.ascontiguousarray(np.asarray(self.data), dtype=np.float32)
        entry = order[0]
        pos = 1  # order[0] is in the graph with no edges yet
        while pos < n:
            inserted = pos
            size = min(n - pos, max(_MIN_GENERATION, inserted), self.insert_batch)
            batch = order[pos : pos + size]
            ef = self.ef_construction
            snapshot = FixedDegreeGraph.from_adjacency(
                self._adj, entry_point=entry, validate=False
            )
            searcher = BatchedSongSearcher(snapshot, data32)
            config = SearchConfig(k=ef, queue_size=ef, metric=self.metric.name)
            results = searcher.search_batch(data32[batch], config)
            for v, found in zip(batch, results):
                for _, u in found[: self.m]:
                    self._adj[v].append(u)
                    self._adj[u].append(v)
            pos += size

    def _prune(self) -> None:
        """Cut overfull adjacency lists down to the closest neighbors."""
        for v in range(len(self.data)):
            row = list(dict.fromkeys(self._adj[v]))  # dedupe, keep order
            if len(row) > self.max_degree:
                dists = self.metric.batch(self.data[v], self.data[row])
                keep = np.argsort(dists, kind="stable")[: self.max_degree]
                row = [row[i] for i in sorted(keep.tolist())]
            self._adj[v] = row

    def _repair_connectivity(self, entry: int) -> None:
        """Re-attach vertices the pruning orphaned (directed reachability).

        Pruning keeps only each vertex's closest out-edges, which can
        leave a vertex with no *in*-path from the entry point.  Link each
        orphan from its nearest reachable vertex, replacing that vertex's
        farthest edge when its row is full.
        """
        from collections import deque

        n = len(self.data)
        while True:
            seen = {entry}
            queue = deque([entry])
            while queue:
                v = queue.popleft()
                for u in self._adj[v]:
                    if u not in seen:
                        seen.add(u)
                        queue.append(u)
            missing = [v for v in range(n) if v not in seen]
            if not missing:
                return
            v = missing[0]
            reachable = sorted(seen)
            dists = self.metric.batch(self.data[v], self.data[reachable])
            order = np.argsort(dists, kind="stable")
            attached = False
            for idx in order:
                u = reachable[int(idx)]
                if len(self._adj[u]) < self.max_degree:
                    self._adj[u].append(v)
                    attached = True
                    break
            if not attached:
                u = reachable[int(order[0])]
                row = self._adj[u]
                row_d = self.metric.batch(self.data[u], self.data[row])
                row[int(np.argmax(row_d))] = v


def build_nsw(
    data: np.ndarray,
    m: int = 8,
    ef_construction: int = 64,
    max_degree: int = None,
    metric: str = "l2",
    seed: int = None,
    build_engine: str = "serial",
    insert_batch: int = 512,
) -> FixedDegreeGraph:
    """One-call NSW construction (see :class:`NSWBuilder`)."""
    return NSWBuilder(
        data,
        m=m,
        ef_construction=ef_construction,
        max_degree=max_degree,
        metric=metric,
        seed=seed,
        build_engine=build_engine,
        insert_batch=insert_batch,
    ).build()
