"""Navigating spreading-out graph construction (Fu et al., VLDB 2019).

Fig. 12 of the SONG paper shows SONG accelerating a pre-built NSG index.
NSG refines an (approximate) kNN graph: a single navigating node (the
medoid) is the fixed search entry, each vertex's candidate pool is pruned
by the monotonic-RNG rule ("keep an edge unless a kept neighbor is closer
to the candidate than the vertex is"), and a spanning tree from the
navigating node is patched in so every vertex stays reachable.

Two engines build the same graph shape:

``serial``
    The readable reference — a per-vertex greedy search feeds a
    per-candidate occlusion loop, exactly Algorithm 2 of the NSG paper.
``batched``
    The vectorized path.  Candidate pools for *every* vertex come from
    lockstep :class:`~repro.core.batched.BatchedSongSearcher` sweeps over
    the bootstrap kNN table-as-graph; pools are merged, deduplicated and
    distance-sorted with flat lexsorts; and the monotonic-RNG prune runs
    as a generation-batched occlusion fixpoint — each round every
    still-active vertex accepts its first unresolved candidate, then one
    fused :meth:`~repro.distances.metrics.Metric.pair_many` tile occludes
    the dominated remainder.  No per-vertex Python loop anywhere.

The engines make identical accept/occlude decisions up to floating-point
noise: the batched path evaluates L2 via the norm identity
(``pair_many``) while the serial path subtracts coordinates
(``Metric.single``), so candidates at near-exact occlusion ties can
resolve differently.  Equivalence is therefore validated at recall level
(see ``tests/test_graph_quality.py``), not bit level.
"""

from __future__ import annotations

# lint: hot-path

from collections import deque
from typing import List, Optional, Tuple

import numpy as np

from repro.annotations import arr, array_kernel, scalar
from repro.distances import get_metric
from repro.graphs._repair import attach_orphans
from repro.graphs._search import greedy_search
from repro.graphs.bruteforce_knn import knn_neighbors, medoid
from repro.graphs.storage import PAD, FixedDegreeGraph
from repro.structures.soa import pack_rowid, unpack_rowid

__all__ = ["NSGBuilder", "build_nsg"]

#: Queries per lockstep candidate-pool sweep (bounds the searcher's
#: per-batch frontier/visited state).
_POOL_CHUNK = 1024


@array_kernel(
    params={"n": (2, 2**31), "E": (1, 2**40)},
    args={
        "owner": arr("E", lo=0, hi="n-1"),
        "cand": arr("E", lo=0, hi="n-1"),
        "dist": arr("E", dtype="float64"),
        "n": scalar("n"),
    },
    returns=[
        arr(lo=0, hi="n-1"),
        arr(lo=0, hi="n-1"),
        arr(dtype="float64"),
        arr(lo=0),
    ],
)
def _dedup_pool_edges(
    owner: np.ndarray, cand: np.ndarray, dist: np.ndarray, n: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Dedup flat pool edges and rank them per owner by distance.

    Each ``(owner, cand)`` pair keeps its smallest distance, survivors
    are sorted per owner by ``(distance, cand)``, and ``rank`` is each
    edge's 0-based position within its owner's run — ready for a
    ``pool[owner, rank]`` scatter.
    """
    from repro.graphs.nn_descent import _rank_within_groups

    vc = pack_rowid(owner, cand, n)
    order = np.lexsort((dist, vc))
    vc_s, dist_s = vc[order], dist[order]
    keep = np.ones(len(vc_s), dtype=bool)
    keep[1:] = vc_s[1:] != vc_s[:-1]
    vc_s, dist_s = vc_s[keep], dist_s[keep]
    owner_k, cand_k = unpack_rowid(vc_s, n)
    order = np.lexsort((cand_k, dist_s, owner_k))
    owner_k, cand_k, dist_s = owner_k[order], cand_k[order], dist_s[order]
    rank = _rank_within_groups(owner_k)
    return owner_k, cand_k, dist_s, rank


class NSGBuilder:
    """NSG construction over a base kNN graph.

    Parameters
    ----------
    data:
        ``(n, d)`` dataset.
    degree:
        Out-degree bound ``R`` of the final graph.
    knn:
        Neighbors in the bootstrap kNN graph.
    search_len:
        Candidate-pool size ``L`` gathered per vertex before pruning.
    metric:
        Distance measure name.
    knn_table:
        Optional precomputed ``(n, knn)`` neighbor table (e.g. from
        NN-descent); overrides the bootstrap stage when given.
    build_engine:
        ``"serial"`` (default) runs the reference per-vertex
        search-and-prune loops over an exact brute-force table;
        ``"batched"`` bootstraps with vectorized NN-descent and runs
        pool gathering and occlusion pruning as batch kernels.
    cost:
        Optional :class:`~repro.simt.build_cost.BuildCostRecorder`; the
        batched engine records every bulk kernel of the build on it.
    """

    def __init__(
        self,
        data: np.ndarray,
        degree: int = 16,
        knn: int = 16,
        search_len: int = 48,
        metric: str = "l2",
        knn_table: np.ndarray = None,
        build_engine: str = "serial",
        cost: Optional[object] = None,
    ) -> None:
        from repro.graphs.nn_descent import BUILD_ENGINES

        if degree <= 0:
            raise ValueError("degree must be positive")
        if build_engine not in BUILD_ENGINES:
            raise ValueError(
                f"unknown build_engine {build_engine!r}; "
                f"expected one of {BUILD_ENGINES}"
            )
        self.data = np.asarray(data)
        self.degree = degree
        self.knn = knn
        self.search_len = max(search_len, degree)
        self.metric = get_metric(metric)
        self._knn_table = knn_table
        self.build_engine = build_engine
        self.cost = cost

    def build(self) -> FixedDegreeGraph:
        """Run the full NSG pipeline and return the fixed-degree graph."""
        n = len(self.data)
        if n <= self.knn:
            raise ValueError("dataset too small for the requested knn")
        if self._knn_table is not None:
            table = np.asarray(self._knn_table)
        elif self.build_engine == "batched":
            from repro.graphs.nn_descent import nn_descent

            table = nn_descent(
                self.data, self.knn, metric=self.metric.name, seed=0,
                cost=self.cost,
            )
        else:
            table = knn_neighbors(self.data, self.knn, self.metric.name)
        nav = medoid(self.data, self.metric.name)
        if self.build_engine == "batched":
            return self._build_batched(table, nav)
        return self._build_serial(table, nav)

    # -- batched engine --------------------------------------------------------

    def _build_batched(self, table: np.ndarray, nav: int) -> FixedDegreeGraph:
        """Pool sweep → flat dedup/sort → occlusion fixpoint → repair."""
        ci, cd = self._batched_pools(table, nav)
        adjacency = self._batched_prune(ci, cd)
        attach_orphans(adjacency, table.astype(np.int64), nav, self.data, self.metric)
        from repro.simt.build_cost import maybe_recorder

        maybe_recorder(self.cost).record_graph_write(adjacency.size)
        return FixedDegreeGraph.from_neighbor_array(
            adjacency, entry_point=nav, validate=False
        )

    def _batched_pools(
        self, table: np.ndarray, nav: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Distance-sorted candidate pools for every vertex at once.

        Lockstep searches over the kNN table-as-graph (every lane starts
        at the navigating node, like the serial path) produce up to
        ``search_len`` candidates per vertex; each vertex's own kNN row
        joins the pool, and one flat lexsort dedups and orders the union
        by ``(distance, id)``.  Returns ``(ids, dists)`` as ``(n, P)``
        matrices padded with ``PAD`` / ``inf``.
        """
        from repro.core.batched import BatchedSongSearcher
        from repro.core.config import SearchConfig
        from repro.graphs.nn_descent import _pair_distances, _ragged_arange
        from repro.simt.build_cost import maybe_recorder

        rec = maybe_recorder(self.cost)
        n, knn = table.shape
        dim = self.data.shape[1]
        data32 = np.ascontiguousarray(self.data, dtype=np.float32)
        knn_graph = FixedDegreeGraph.from_neighbor_array(
            table, entry_point=nav, validate=False
        )
        searcher = BatchedSongSearcher(knn_graph, data32)
        config = SearchConfig(
            k=self.search_len,
            queue_size=self.search_len,
            metric=self.metric.name,
        )
        width = self.search_len + knn
        pool_ids = np.full((n, width), PAD, dtype=np.int64)
        pool_d = np.full((n, width), np.inf, dtype=np.float64)
        flops = self.metric.flops_per_distance(dim)
        a = 0
        while a < n:
            b = min(n, a + _POOL_CHUNK)
            results, stats = searcher.search_batch_with_stats(data32[a:b], config)
            lens = np.fromiter((len(r) for r in results), np.int64, count=b - a)
            flat = np.asarray(
                [p for r in results for p in r], dtype=np.float64
            ).reshape(-1, 2)
            if len(flat):
                owners = np.repeat(np.arange(a, b, dtype=np.int64), lens)
                slots = _ragged_arange(lens)
                pool_d[owners, slots] = flat[:, 0]
                pool_ids[owners, slots] = flat[:, 1].astype(np.int64)
            rec.record_search(
                iterations=sum(s.iterations for s in stats),
                distances=sum(s.distance_computations for s in stats),
                degree=knn,
                flops_per_distance=flops,
                dim=dim,
                queue_width=self.search_len,
                name="pool",
            )
            a = b

        # merge each vertex's own kNN row into its pool
        if self.metric.name == "l2":
            pair_cache = self.metric.point_sq_norms(data32)
        elif self.metric.name == "cosine":
            pair_cache = self.metric.point_norms(data32)
        else:
            pair_cache = None
        knn_owner = np.repeat(np.arange(n, dtype=np.int64), knn)
        knn_flat = table.ravel().astype(np.int64)
        knn_d = _pair_distances(data32, knn_owner, knn_flat, self.metric, pair_cache)
        rec.record_distances(len(knn_flat), flops, dim, "pool-knn")
        pool_ids[:, self.search_len :] = table
        pool_d[:, self.search_len :] = knn_d.reshape(n, knn)

        # drop self-references, then dedup + sort the flat pool
        owner = np.repeat(np.arange(n, dtype=np.int64), width)
        cand = pool_ids.ravel()
        dist = pool_d.ravel()
        valid = (cand >= 0) & (cand != owner)
        owner, cand, dist = owner[valid], cand[valid], dist[valid]
        owner_k, cand_k, dist_s, rank = _dedup_pool_edges(owner, cand, dist, n)
        rec.record_flat_sort(len(owner), "pool-dedup")

        ci = np.full((n, width), PAD, dtype=np.int64)
        cd = np.full((n, width), np.inf, dtype=np.float64)
        ci[owner_k, rank] = cand_k
        cd[owner_k, rank] = dist_s
        return ci, cd

    def _batched_prune(self, ci: np.ndarray, cd: np.ndarray) -> np.ndarray:
        """Monotonic-RNG selection as a generation-batched fixpoint.

        Invariant per round: in every active row all undecided
        candidates sit *after* the first one (pools are distance-sorted
        and earlier slots are already chosen or occluded), so accepting
        the first undecided candidate is exactly the serial scan's next
        accept.  The new pick then occludes every remaining undecided
        candidate it dominates — one fused ``pair_many`` tile for the
        whole generation, the batched twin of NSG Algorithm 2's inner
        loop.
        """
        from repro.graphs.nn_descent import _pair_distances
        from repro.simt.build_cost import maybe_recorder

        rec = maybe_recorder(self.cost)
        n, width = ci.shape
        dim = self.data.shape[1]
        data32 = np.ascontiguousarray(self.data, dtype=np.float32)
        if self.metric.name == "l2":
            pair_cache = self.metric.point_sq_norms(data32)
        elif self.metric.name == "cosine":
            pair_cache = self.metric.point_norms(data32)
        else:
            pair_cache = None
        flops = self.metric.flops_per_distance(dim)

        # 0 = undecided, 1 = chosen, 2 = occluded (PAD slots start occluded)
        state = np.zeros((n, width), dtype=np.int8)
        state[ci == PAD] = 2
        chosen_cnt = np.zeros(n, dtype=np.int64)
        out = np.full((n, self.degree), PAD, dtype=np.int64)
        while True:
            undecided = state == 0
            active = np.nonzero(undecided.any(axis=1) & (chosen_cnt < self.degree))[0]
            if not len(active):
                break
            first = np.argmax(undecided[active], axis=1)
            picked = ci[active, first]
            out[active, chosen_cnt[active]] = picked
            state[active, first] = 1
            chosen_cnt[active] += 1
            rows_u, cols_u = np.nonzero(state[active] == 0)
            if not len(rows_u):
                continue
            owner_rows = active[rows_u]
            d_cu = _pair_distances(
                data32, picked[rows_u], ci[owner_rows, cols_u],
                self.metric, pair_cache,
            )
            occluded = d_cu < cd[owner_rows, cols_u]
            state[owner_rows[occluded], cols_u[occluded]] = 2
            rec.record_distances(len(rows_u), flops, dim, "occlude")
        rec.record_sort(n, width, "prune-rank")
        return out

    # -- serial engine ---------------------------------------------------------

    def _build_serial(self, table: np.ndarray, nav: int) -> FixedDegreeGraph:
        """The reference per-vertex pipeline (NSG Algorithm 2)."""
        n = len(self.data)
        adj: List[List[int]] = [[] for _ in range(n)]
        for v in range(n):  # lint: allow(hot-loop) — serial reference engine
            pool = self._candidate_pool(v, nav, table)
            adj[v] = self._prune(v, pool)

        self._fix_connectivity(adj, nav)
        graph = FixedDegreeGraph(n, self.degree, entry_point=nav)
        for v in range(n):  # lint: allow(hot-loop) — serial reference engine
            graph.set_neighbors(v, adj[v][: self.degree])
        return graph

    def _candidate_pool(
        self, v: int, nav: int, table: np.ndarray
    ) -> List[Tuple[float, int]]:
        """Candidates for v: search path from the navigating node + kNN row."""
        found = greedy_search(
            self.data,
            lambda u: table[u],
            self.data[v],
            ef=self.search_len,
            entry_points=[nav],
            metric=self.metric,
        )
        pool = {u: d for d, u in found if u != v}
        for u in table[v]:
            u = int(u)
            if u != v and u not in pool:
                pool[u] = self.metric.single(self.data[v], self.data[u])
        return sorted((d, u) for u, d in pool.items())

    def _prune(self, v: int, pool: List[Tuple[float, int]]) -> List[int]:
        """Monotonic-RNG edge selection (NSG Algorithm 2)."""
        chosen: List[Tuple[float, int]] = []
        for d, u in pool:
            if len(chosen) >= self.degree:
                break
            ok = True
            for _, w in chosen:
                if self.metric.single(self.data[u], self.data[w]) < d:
                    ok = False
                    break
            if ok:
                chosen.append((d, u))
        return [u for _, u in chosen]

    def _fix_connectivity(self, adj: List[List[int]], nav: int) -> None:
        """Attach unreachable vertices so a DFS tree from ``nav`` spans all."""
        n = len(adj)
        while True:
            seen = self._reachable(adj, nav)
            missing = [v for v in range(n) if v not in seen]
            if not missing:
                return
            v = missing[0]
            # link v from its nearest reachable vertex with slack; if none has
            # slack, replace the farthest edge of the nearest reachable vertex.
            reachable = sorted(seen)
            dists = self.metric.batch(self.data[v], self.data[reachable])
            order = np.argsort(dists, kind="stable")
            attached = False
            for idx in order:  # lint: allow(hot-loop) — serial reference engine
                u = reachable[int(idx)]
                if len(adj[u]) < self.degree:
                    adj[u].append(v)
                    attached = True
                    break
            if not attached:
                u = reachable[int(order[0])]
                drop = max(
                    range(len(adj[u])),
                    key=lambda i: self.metric.single(
                        self.data[u], self.data[adj[u][i]]
                    ),
                )
                adj[u][drop] = v

    @staticmethod
    def _reachable(adj: List[List[int]], start: int) -> set:
        seen = {start}
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for u in adj[v]:
                if u not in seen:
                    seen.add(u)
                    queue.append(u)
        return seen


def build_nsg(
    data: np.ndarray,
    degree: int = 16,
    knn: int = 16,
    search_len: int = 48,
    metric: str = "l2",
    knn_table: np.ndarray = None,
    build_engine: str = "serial",
    cost: Optional[object] = None,
) -> FixedDegreeGraph:
    """One-call NSG construction (see :class:`NSGBuilder`)."""
    return NSGBuilder(
        data,
        degree=degree,
        knn=knn,
        search_len=search_len,
        metric=metric,
        knn_table=knn_table,
        build_engine=build_engine,
        cost=cost,
    ).build()
