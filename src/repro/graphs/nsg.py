"""Navigating spreading-out graph construction (Fu et al., VLDB 2019).

Fig. 12 of the SONG paper shows SONG accelerating a pre-built NSG index.
NSG refines an (approximate) kNN graph: a single navigating node (the
medoid) is the fixed search entry, each vertex's candidate pool is pruned
by the monotonic-RNG rule ("keep an edge unless a kept neighbor is closer
to the candidate than the vertex is"), and a spanning tree from the
navigating node is patched in so every vertex stays reachable.
"""

from __future__ import annotations

from collections import deque
from typing import List, Tuple

import numpy as np

from repro.distances import get_metric
from repro.graphs._search import greedy_search
from repro.graphs.bruteforce_knn import knn_neighbors, medoid
from repro.graphs.storage import FixedDegreeGraph


class NSGBuilder:
    """NSG construction over a base kNN graph.

    Parameters
    ----------
    data:
        ``(n, d)`` dataset.
    degree:
        Out-degree bound ``R`` of the final graph.
    knn:
        Neighbors in the bootstrap kNN graph.
    search_len:
        Candidate-pool size ``L`` gathered per vertex before pruning.
    metric:
        Distance measure name.
    knn_table:
        Optional precomputed ``(n, knn)`` neighbor table (e.g. from
        NN-descent); overrides ``build_engine`` when given.
    build_engine:
        How to obtain the bootstrap kNN table when ``knn_table`` is
        omitted: ``"serial"`` (default) computes it exactly by brute
        force, ``"batched"`` runs vectorized NN-descent — much faster at
        scale, approximate.  (The pruning passes themselves are serial in
        both modes; batching them is an open item on the roadmap.)
    """

    def __init__(
        self,
        data: np.ndarray,
        degree: int = 16,
        knn: int = 16,
        search_len: int = 48,
        metric: str = "l2",
        knn_table: np.ndarray = None,
        build_engine: str = "serial",
    ) -> None:
        from repro.graphs.nn_descent import BUILD_ENGINES

        if degree <= 0:
            raise ValueError("degree must be positive")
        if build_engine not in BUILD_ENGINES:
            raise ValueError(
                f"unknown build_engine {build_engine!r}; "
                f"expected one of {BUILD_ENGINES}"
            )
        self.data = np.asarray(data)
        self.degree = degree
        self.knn = knn
        self.search_len = max(search_len, degree)
        self.metric = get_metric(metric)
        self._knn_table = knn_table
        self.build_engine = build_engine

    def build(self) -> FixedDegreeGraph:
        """Run the full NSG pipeline and return the fixed-degree graph."""
        n = len(self.data)
        if n <= self.knn:
            raise ValueError("dataset too small for the requested knn")
        if self._knn_table is not None:
            table = self._knn_table
        elif self.build_engine == "batched":
            from repro.graphs.nn_descent import nn_descent

            table = nn_descent(
                self.data, self.knn, metric=self.metric.name, seed=0
            )
        else:
            table = knn_neighbors(self.data, self.knn, self.metric.name)
        nav = medoid(self.data, self.metric.name)
        adj: List[List[int]] = [[] for _ in range(n)]

        for v in range(n):
            pool = self._candidate_pool(v, nav, table)
            adj[v] = self._prune(v, pool)

        self._fix_connectivity(adj, nav)
        graph = FixedDegreeGraph(n, self.degree, entry_point=nav)
        for v in range(n):
            graph.set_neighbors(v, adj[v][: self.degree])
        return graph

    # -- internals ------------------------------------------------------------

    def _candidate_pool(
        self, v: int, nav: int, table: np.ndarray
    ) -> List[Tuple[float, int]]:
        """Candidates for v: search path from the navigating node + kNN row."""
        found = greedy_search(
            self.data,
            lambda u: table[u],
            self.data[v],
            ef=self.search_len,
            entry_points=[nav],
            metric=self.metric,
        )
        pool = {u: d for d, u in found if u != v}
        for u in table[v]:
            u = int(u)
            if u != v and u not in pool:
                pool[u] = self.metric.single(self.data[v], self.data[u])
        return sorted((d, u) for u, d in pool.items())

    def _prune(self, v: int, pool: List[Tuple[float, int]]) -> List[int]:
        """Monotonic-RNG edge selection (NSG Algorithm 2)."""
        chosen: List[Tuple[float, int]] = []
        for d, u in pool:
            if len(chosen) >= self.degree:
                break
            ok = True
            for _, w in chosen:
                if self.metric.single(self.data[u], self.data[w]) < d:
                    ok = False
                    break
            if ok:
                chosen.append((d, u))
        return [u for _, u in chosen]

    def _fix_connectivity(self, adj: List[List[int]], nav: int) -> None:
        """Attach unreachable vertices so a DFS tree from ``nav`` spans all."""
        n = len(adj)
        while True:
            seen = self._reachable(adj, nav)
            missing = [v for v in range(n) if v not in seen]
            if not missing:
                return
            v = missing[0]
            # link v from its nearest reachable vertex with slack; if none has
            # slack, replace the farthest edge of the nearest reachable vertex.
            reachable = sorted(seen)
            dists = self.metric.batch(self.data[v], self.data[reachable])
            order = np.argsort(dists, kind="stable")
            attached = False
            for idx in order:
                u = reachable[int(idx)]
                if len(adj[u]) < self.degree:
                    adj[u].append(v)
                    attached = True
                    break
            if not attached:
                u = reachable[int(order[0])]
                drop = max(
                    range(len(adj[u])),
                    key=lambda i: self.metric.single(
                        self.data[u], self.data[adj[u][i]]
                    ),
                )
                adj[u][drop] = v

    @staticmethod
    def _reachable(adj: List[List[int]], start: int) -> set:
        seen = {start}
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for u in adj[v]:
                if u not in seen:
                    seen.add(u)
                    queue.append(u)
        return seen


def build_nsg(
    data: np.ndarray,
    degree: int = 16,
    knn: int = 16,
    search_len: int = 48,
    metric: str = "l2",
    knn_table: np.ndarray = None,
    build_engine: str = "serial",
) -> FixedDegreeGraph:
    """One-call NSG construction (see :class:`NSGBuilder`)."""
    return NSGBuilder(
        data,
        degree=degree,
        knn=knn,
        search_len=search_len,
        metric=metric,
        knn_table=knn_table,
        build_engine=build_engine,
    ).build()
