"""Vectorized connectivity repair shared by the batched builders.

Array-native graph construction (CAGRA reordering, batched NSG pruning)
produces an ``(n, degree)`` adjacency without ever materializing a
spanning tree, so a final pass must guarantee every vertex is reachable
from the entry point.  Both builders share this fixpoint: BFS-mark the
reachable set with a frontier-batched sweep, adopt unreachable vertices
through their nearest *reachable* bootstrap neighbor, and bridge whole
disconnected components (clustered data) through a true-distance link.
Repair-added edges are slot-protected so later rounds never undo an
earlier adoption.
"""

from __future__ import annotations

# lint: hot-path

import numpy as np

from repro.annotations import arr, array_kernel, scalar
from repro.graphs.storage import PAD

__all__ = ["attach_orphans", "reachable_mask"]


@array_kernel(
    params={"n": (1, 2**31), "degree": (1, 512)},
    args={
        "adjacency": arr("n", "degree", lo=-1, hi="n-1"),
        "entry": scalar(lo=0, hi="n-1"),
    },
    returns=[arr("n", dtype="bool")],
)
def reachable_mask(adjacency: np.ndarray, entry: int) -> np.ndarray:
    """Boolean reachability from ``entry`` by frontier-batched BFS."""
    n = len(adjacency)
    reach = np.zeros(n, dtype=bool)
    reach[entry] = True
    frontier = np.array([entry], dtype=np.int64)
    while len(frontier):
        nbrs = adjacency[frontier].ravel()
        nbrs = nbrs[nbrs != PAD]
        new = np.unique(nbrs[~reach[nbrs]])
        reach[new] = True
        frontier = new
    return reach


def attach_orphans(
    adjacency: np.ndarray,
    table: np.ndarray,
    entry: int,
    data: np.ndarray,
    metric,
) -> None:
    """Patch ``adjacency`` rows until every vertex is reachable.

    Each round BFS-marks the reachable set, then adopts unreachable
    vertices through their nearest *reachable* bootstrap neighbor (one
    adoption per parent per round; the parent's last unprotected slot is
    replaced when it has no slack).  Components with no reachable
    bootstrap neighbor at all are bridged one representative per round
    from the nearest reachable vertex by true distance.  The residue is
    empty on typical builds — reverse edges / pool searches already
    connect the graph — so this is a rare-case fixpoint, not a hot path.
    """
    n, degree = adjacency.shape
    # repair-added edges are protected: later rounds never overwrite
    # them, so attached components stay attached
    protected = np.zeros((n, degree), dtype=bool)
    rounds = 0
    while rounds <= n:
        rounds += 1
        reach = reachable_mask(adjacency, entry)
        missing = np.nonzero(~reach)[0]
        if not len(missing):
            return
        rows = table[missing]
        ok = reach[rows]
        has = ok.any(axis=1)
        first = np.argmax(ok, axis=1)
        parents = rows[np.arange(len(missing)), first]
        if not has.all():
            # a whole component with no reachable bootstrap neighbor
            # (clustered data): bridge one representative per round
            # from its nearest reachable vertex by true distance
            child = int(missing[np.argmax(~has)])
            reached = np.nonzero(reach)[0]
            d = metric.batch(data[child], data[reached])
            bridge = int(reached[int(np.argmin(d))])
            keep_mask = has.copy()
            keep_mask[np.argmax(~has)] = True
            parents[np.argmax(~has)] = bridge
            parents = parents[keep_mask]
            missing = missing[keep_mask]
        order = np.argsort(parents, kind="stable")
        p_s = parents[order]
        m_s = missing[order]
        keep = np.ones(len(p_s), dtype=bool)
        keep[1:] = p_s[1:] != p_s[:-1]
        p_s = p_s[keep]
        m_s = m_s[keep]
        if not len(p_s):
            break
        filled = (adjacency[p_s] != PAD).sum(axis=1)
        # append into slack, else replace the rightmost unprotected
        # slot; rows whose every slot is protected skip this round
        rightmost = degree - 1 - np.argmax(protected[p_s][:, ::-1] == 0, axis=1)
        writable = ~protected[p_s].all(axis=1)
        slot = np.where(filled < degree, np.minimum(filled, degree - 1), rightmost)
        p_s, m_s, slot = p_s[writable], m_s[writable], slot[writable]
        adjacency[p_s, slot] = m_s
        protected[p_s, slot] = True
    raise RuntimeError("connectivity repair did not converge")
