"""CAGRA-style fully-batched graph construction (Ootomo et al., 2023).

CAGRA (PAPERS.md) showed that a high-recall search graph can be built
entirely from batch operations — no per-vertex search-and-prune loop:

1. **Bootstrap** an intermediate kNN table (here: the vectorized
   NN-descent engine, or exact brute force under the serial engine).
2. **Rank-based reordering**: for every directed edge ``(u, t)`` at rank
   ``j`` of u's list, count its *detours* — vertices ``m`` earlier in the
   list (rank ``i < j``) whose own list reaches ``t`` at a rank below
   ``j``.  Edges with many detours are redundant for routing; each row is
   reordered by ``(detour_count, rank)`` ascending and truncated to the
   target degree.
3. **Reverse-edge merge**: the final row interleaves the strongest
   forward edges with reverse edges (vertices that selected ``u``),
   backfilled from the forward ordering — giving the bidirectional
   connectivity a plain kNN graph lacks.

Every step here is expressed over ``(n, k)`` id matrices and flat edge
arrays — sorts, ``searchsorted`` rank lookups, segmented cumulative sums —
so there is no per-vertex Python loop anywhere in the build.  The key
trick: with each row of the bootstrap table sorted by neighbor id, the
composite array ``row * n + id`` is *globally* sorted, so a single
``np.searchsorted`` resolves "what rank does ``t`` hold in ``m``'s list"
for millions of ``(m, t)`` pairs at once.

A :class:`~repro.simt.build_cost.BuildCostRecorder` can be attached to
meter the construction kernels through the SIMT cost model.
"""

from __future__ import annotations

# lint: hot-path

from typing import Optional

import numpy as np

from repro.annotations import arr, array_kernel, scalar
from repro.distances import get_metric
from repro.graphs._repair import attach_orphans
from repro.graphs.bruteforce_knn import knn_neighbors, medoid
from repro.graphs.nn_descent import (
    BUILD_ENGINES,
    _ragged_arange,
    _rank_within_groups,
)
from repro.graphs.storage import PAD, FixedDegreeGraph
from repro.simt.build_cost import KEY_BYTES, BuildCostRecorder, maybe_recorder
from repro.structures.soa import pack_rowid, unpack_rowid

__all__ = ["CagraBuilder", "build_cagra"]

#: Detour-count pair budget per vertex block (bounds peak memory of the
#: rank-lookup panels: a block holds ~6 int64 arrays of this many pairs).
_DETOUR_PAIR_BUDGET = 1 << 21

#: NN-descent join sample rate for the wide bootstrap table.  Join cost
#: grows with the square of the list length, so at ``2 * degree`` the
#: default 0.6 wastes most of its pairs: 0.3 converges to the same
#: recall (within 1e-4 on uniform data) in a third of the time.
_BOOTSTRAP_SAMPLE_RATE = 0.3

#: Below this many points the batched engine bootstraps by blocked
#: exact kNN instead of NN-descent: the O(n^2 d) GEMM tiles beat the
#: round-structured descent until the quadratic term dominates (well
#: above every bench size here), and they are just as batch-shaped.
_EXACT_BOOTSTRAP_MAX = 1 << 15


@array_kernel(
    params={"n": (2, 2**28), "k0": (2, 512)},
    args={"table": arr("n", "k0", lo=0, hi="n-1")},
    returns=[
        arr(dtype="int64", lo=0, hi="n*n-1", sorted_=True),
        arr(dtype="int64", lo=0, hi="k0-1"),
    ],
)
def _global_rank_index(table: np.ndarray):
    """Globally-sorted ``row * n + id`` keys plus the matching ranks.

    With each row re-sorted by neighbor id, the composite keys are
    sorted across the whole flat array, so one ``np.searchsorted``
    resolves millions of "what rank does ``t`` hold in ``m``'s list"
    queries at once (the trick the module docstring describes).
    """
    n, k0 = table.shape
    id_order = np.argsort(table, axis=1, kind="stable")
    ids_by_id = np.take_along_axis(table, id_order, axis=1)
    rows = np.arange(n, dtype=np.int64)[:, None]
    flat_sorted = pack_rowid(rows, ids_by_id, n).ravel()
    return flat_sorted, id_order.ravel()


@array_kernel(
    params={"n": (2, 2**28), "k0": (2, 512), "B": (1, 2**28), "P": (1, 2**18)},
    args={
        "rows": arr("B", "k0", lo=0, hi="n-1"),
        "flat_sorted": arr("n*k0", lo=0, hi="n*n-1", sorted_=True),
        "flat_rank": arr("n*k0", lo=0, hi="k0-1"),
        "tri_i": arr("P", lo=0, hi="k0-1"),
        "tri_j": arr("P", lo=0, hi="k0-1"),
        "ends": arr("k0", lo=0, hi="P"),
        "starts": arr("k0", lo=0, hi="P"),
        "n": scalar("n"),
    },
    returns=[arr("B", "k0", dtype="int64", lo=0, hi="P")],
)
def _detour_block_counts(
    rows: np.ndarray,
    flat_sorted: np.ndarray,
    flat_rank: np.ndarray,
    tri_i: np.ndarray,
    tri_j: np.ndarray,
    ends: np.ndarray,
    starts: np.ndarray,
    n: int,
) -> np.ndarray:
    """Detour counts for one vertex block (see ``_detour_counts``)."""
    mid = rows[:, tri_i]
    tgt = rows[:, tri_j]
    query = pack_rowid(mid, tgt, n)
    pos = np.searchsorted(flat_sorted, query)
    np.minimum(pos, flat_sorted.size - 1, out=pos)
    found = flat_sorted[pos] == query
    cond = found & (flat_rank[pos] < tri_j[None, :])
    padded = np.zeros((len(rows), len(tri_j) + 1), dtype=np.int64)
    np.cumsum(cond, axis=1, dtype=np.int64, out=padded[:, 1:])
    return padded[:, ends] - padded[:, starts]


@array_kernel(
    params={"n": (3, 2**28), "k0": (2, 512), "degree": (2, 64)},
    args={
        "fwd_full": arr("n", "k0", lo=0, hi="n-1"),
        "degree": scalar("degree"),
    },
    returns=[arr("n", "degree", dtype="int64", lo=-1, hi="n-1")],
)
def _merge_reverse_rows(fwd_full: np.ndarray, degree: int) -> np.ndarray:
    """Interleave forward and reverse edges into ``(n, degree)`` rows.

    The candidate stream carries a per-``(vertex, candidate)``
    priority: the strongest ``ceil(degree/2)`` forward edges first,
    then up to ``floor(degree/2)`` reverse edges in source-rank
    order, then forward and reverse backfill bands.  One lexsort
    dedups, a second ranks each vertex's survivors, and a scatter
    writes the rows — the whole merge is three sorts.

    The nested reverse-stream key ``(tgt * degree + s_rank) * n + src``
    bounds the builder's capacity: it must fit ``int64``, which holds
    for every ``n <= 2**28`` at ``degree <= 64`` (the declared ranges
    the verifier proves this under).
    """
    n, k0 = fwd_full.shape
    d_fwd = degree - degree // 2
    d_rev = degree // 2
    fwd = fwd_full[:, :degree]

    # forward stream: candidate at reordered position s
    pos = np.arange(k0, dtype=np.int64)
    prio_f = np.where(pos < d_fwd, pos, degree + pos)
    w_f = np.repeat(np.arange(n, dtype=np.int64), k0)
    c_f = fwd_full.ravel()
    p_f = np.tile(prio_f, n)

    # reverse stream: every kept forward edge, transposed; per-target
    # order follows (source rank, source id)
    src = np.repeat(np.arange(n, dtype=np.int64), degree)
    s_rank = np.tile(np.arange(degree, dtype=np.int64), n)
    tgt = fwd.ravel()
    comp = pack_rowid(tgt * degree + s_rank, src, n)
    comp.sort()
    outer, c_r = unpack_rowid(comp, n)
    w_r = outer // degree
    r_rank = _rank_within_groups(w_r)
    p_r = np.where(r_rank < d_rev, d_fwd + r_rank, degree + k0 + r_rank)

    w_all = np.concatenate([w_f, w_r])
    c_all = np.concatenate([c_f, c_r])
    p_all = np.concatenate([p_f, p_r])

    # dedup by (vertex, candidate), keeping the strongest priority
    vc = pack_rowid(w_all, c_all, n)
    order = np.lexsort((p_all, vc))
    vc_s = vc[order]
    p_s = p_all[order]
    keep = np.ones(len(vc_s), dtype=bool)
    keep[1:] = vc_s[1:] != vc_s[:-1]
    vc_s = vc_s[keep]
    p_s = p_s[keep]
    w_k, c_k = unpack_rowid(vc_s, n)
    # rank each vertex's survivors by priority and keep the best
    order = np.lexsort((p_s, w_k))
    w_k = w_k[order]
    c_k = c_k[order]
    rank = _rank_within_groups(w_k)
    sel = rank < degree
    out = np.full((n, degree), PAD, dtype=np.int64)
    out[w_k[sel], rank[sel]] = c_k[sel]
    return out


class CagraBuilder:
    """Batched CAGRA-shaped graph construction.

    Parameters
    ----------
    data:
        ``(n, d)`` dataset.
    degree:
        Out-degree of the final graph.
    intermediate_degree:
        Width of the bootstrap kNN table (default ``2 * degree``); must
        be at least ``degree``.
    metric:
        Distance measure name.
    knn_table:
        Optional precomputed ``(n, k0)`` bootstrap table whose rows are
        sorted ascending by distance (position = rank); overrides
        ``build_engine``.
    build_engine:
        Bootstrap source when ``knn_table`` is omitted: ``"batched"``
        (default) picks blocked exact kNN below ``_EXACT_BOOTSTRAP_MAX``
        points (GEMM tiles win at that scale) and vectorized NN-descent
        above it; ``"serial"`` always computes the exact table by brute
        force.  The optimization passes are batched either way — that is
        the point of this builder.
    seed:
        Seed forwarded to NN-descent.
    cost:
        Optional :class:`~repro.simt.build_cost.BuildCostRecorder`; every
        bulk kernel of the build is recorded on it.
    """

    def __init__(
        self,
        data: np.ndarray,
        degree: int = 16,
        intermediate_degree: Optional[int] = None,
        metric: str = "l2",
        knn_table: Optional[np.ndarray] = None,
        build_engine: str = "batched",
        seed: int = 0,
        cost: Optional[BuildCostRecorder] = None,
    ) -> None:
        if degree <= 1:
            raise ValueError("degree must be at least 2")
        if build_engine not in BUILD_ENGINES:
            raise ValueError(
                f"unknown build_engine {build_engine!r}; "
                f"expected one of {BUILD_ENGINES}"
            )
        self.data = np.asarray(data)
        self.degree = degree
        self.intermediate_degree = intermediate_degree or 2 * degree
        if self.intermediate_degree < degree:
            raise ValueError("intermediate_degree must be at least degree")
        self.metric = get_metric(metric)
        self._knn_table = knn_table
        self.build_engine = build_engine
        self.seed = seed
        self.cost = cost

    def build(self) -> FixedDegreeGraph:
        """Run bootstrap → reorder → reverse merge; returns the graph."""
        n = len(self.data)
        k0 = self.intermediate_degree
        if n <= k0:
            raise ValueError("dataset too small for the intermediate degree")
        table = self._bootstrap(n, k0)
        counts = self._detour_counts(table)
        fwd_full = self._reorder(table, counts)
        adjacency = self._merge_reverse(fwd_full)
        entry = medoid(self.data, self.metric.name)
        attach_orphans(adjacency, table, entry, self.data, self.metric)
        rec = maybe_recorder(self.cost)
        rec.record_graph_write(adjacency.size)
        return FixedDegreeGraph.from_neighbor_array(
            adjacency, entry_point=entry, validate=False
        )

    # -- stages ----------------------------------------------------------------

    def _bootstrap(self, n: int, k0: int) -> np.ndarray:
        """The ``(n, k0)`` rank table: rows sorted ascending by distance."""
        rec = maybe_recorder(self.cost)
        if self._knn_table is not None:
            table = np.asarray(self._knn_table)
            if table.shape != (n, k0):
                raise ValueError(
                    f"knn_table must have shape ({n}, {k0}), got {table.shape}"
                )
            return table.astype(np.int64)
        if self.build_engine == "batched" and n > _EXACT_BOOTSTRAP_MAX:
            from repro.graphs.nn_descent import nn_descent

            table = nn_descent(
                self.data,
                k0,
                metric=self.metric.name,
                seed=self.seed,
                sample_rate=_BOOTSTRAP_SAMPLE_RATE,
                cost=self.cost,
            )
            return table.astype(np.int64)
        table = knn_neighbors(self.data, k0, self.metric.name)
        rec.record_distances(
            n * n,
            self.metric.flops_per_distance(self.data.shape[1]),
            self.data.shape[1],
            "bootstrap-exact",
        )
        rec.record_sort(n, min(n, 4 * k0), "bootstrap-topk")
        return table.astype(np.int64)

    def _detour_counts(self, table: np.ndarray) -> np.ndarray:
        """Detours per edge: ``counts[u, j]`` over mids at rank ``i < j``.

        Pairs are laid out ``j``-major (for each rank ``j``, all mids
        ``i < j``), so per-edge totals fall out of one segmented
        cumulative sum over the pair axis.
        """
        n, k0 = table.shape
        rec = maybe_recorder(self.cost)
        # rank lookup: rows re-sorted by id make row*n + id globally sorted
        flat_sorted, flat_rank = _global_rank_index(table)
        rec.record_sort(n, k0, "rank-index")

        tri_j = np.repeat(np.arange(k0), np.arange(k0))
        tri_i = _ragged_arange(np.arange(k0, dtype=np.int64))
        num_pairs = len(tri_j)
        ends = np.cumsum(np.arange(k0))
        starts = ends - np.arange(k0)

        counts = np.zeros((n, k0), dtype=np.int64)
        block = max(1, _DETOUR_PAIR_BUDGET // max(1, num_pairs))
        a = 0
        while a < n:
            b = min(n, a + block)
            counts[a:b] = _detour_block_counts(
                table[a:b], flat_sorted, flat_rank, tri_i, tri_j, ends, starts, n
            )
            a = b
        rec.record_gather(n * num_pairs, KEY_BYTES, "detour-rank")
        return counts

    def _reorder(self, table: np.ndarray, counts: np.ndarray) -> np.ndarray:
        """Rows reordered by ``(detour_count, rank)`` ascending."""
        n, k0 = table.shape
        priority = counts * np.int64(k0) + np.arange(k0, dtype=np.int64)
        order = np.argsort(priority, axis=1, kind="stable")
        maybe_recorder(self.cost).record_sort(n, k0, "reorder")
        return np.take_along_axis(table, order, axis=1)

    def _merge_reverse(self, fwd_full: np.ndarray) -> np.ndarray:
        """Reverse-edge merge (see :func:`_merge_reverse_rows`)."""
        n, k0 = fwd_full.shape
        rec = maybe_recorder(self.cost)
        rec.record_flat_sort(n * k0 + n * self.degree, "reverse-merge")
        return _merge_reverse_rows(fwd_full, self.degree)

def build_cagra(
    data: np.ndarray,
    degree: int = 16,
    intermediate_degree: Optional[int] = None,
    metric: str = "l2",
    knn_table: Optional[np.ndarray] = None,
    build_engine: str = "batched",
    seed: int = 0,
    cost: Optional[BuildCostRecorder] = None,
) -> FixedDegreeGraph:
    """One-call CAGRA construction (see :class:`CagraBuilder`)."""
    return CagraBuilder(
        data,
        degree=degree,
        intermediate_degree=intermediate_degree,
        metric=metric,
        knn_table=knn_table,
        build_engine=build_engine,
        seed=seed,
        cost=cost,
    ).build()
