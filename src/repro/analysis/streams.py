"""Stream-hazard analysis: event ordering across CUDA-style streams.

The multi-stream device model (:mod:`repro.simt.streams`) only
guarantees ordering *within* a stream; cross-stream ordering exists only
through explicit event dependencies (``StreamOp.deps``).  The classic
bug this invites — on real CUDA exactly as in the model — is a kernel
consuming a buffer whose HtoD copy ran on a *different* stream with no
event recorded between them: the schedule may still come out right by
luck (engine serialization often hides it), which is precisely why it
needs a static check rather than a runtime one.

:func:`check_stream_ops` verifies a stream program by computing the
happens-before relation (program order within each stream, plus the
transitive closure of event deps) and flagging:

* ``stream-hazard`` (**error**) — an op reads a buffer whose most recent
  writer is not in the reader's happens-before set;
* ``dangling-dep`` (**error**) — a dependency on an unknown or
  not-yet-submitted op (events must be recorded before they are waited
  on);
* ``unordered-write`` (**warning**) — two writes to the same buffer with
  no ordering between them (last-writer-wins races).

Reads of buffers no op writes are treated as host/device-resident
inputs (e.g. a snapshot already on the device) and are not flagged.

:func:`check_stream_programs` runs the check over a registry of
representative programs from the serving stack — including, under
``include_known_bad=True``, a deliberately broken copy-stream program
that must fail (the CI negative control, matching the sanitizer and
verifier fixtures).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.analysis.findings import Finding, Severity
from repro.simt.streams import (
    ChunkWork,
    DeviceTimeline,
    StreamOp,
    copy_stream_ops,
    double_buffer_ops,
)

__all__ = [
    "STREAM_RULES",
    "check_stream_ops",
    "check_stream_programs",
    "iter_stream_programs",
]

#: Rules this pass can fire.
STREAM_RULES = ("stream-hazard", "dangling-dep", "unordered-write")


def check_stream_ops(
    ops: Sequence[StreamOp], location: str = "stream-program"
) -> List[Finding]:
    """Check one stream program for cross-stream ordering hazards."""
    findings: List[Finding] = []
    happens_before: Dict[int, Set[int]] = {}
    last_on_stream: Dict[int, int] = {}
    writers: Dict[str, List[int]] = {}
    submitted: Set[int] = set()
    for op in ops:
        preds: Set[int] = set()
        prev = last_on_stream.get(op.stream)
        if prev is not None:
            preds.add(prev)
        for dep in op.deps:
            if dep not in submitted:
                findings.append(
                    Finding(
                        rule="dangling-dep",
                        severity=Severity.ERROR,
                        location=f"{location} op={op.op_id} {op.label or op.kind}",
                        message=(
                            f"dependency on op {dep} which is not submitted "
                            "yet — events must be recorded before they are "
                            "waited on"
                        ),
                    )
                )
                continue
            preds.add(dep)
        hb: Set[int] = set()
        for p in preds:
            hb.add(p)
            hb.update(happens_before[p])
        for buf in op.reads:
            history = writers.get(buf)
            if not history:
                continue  # host/device-resident input, not produced here
            latest = history[-1]
            if latest not in hb:
                writer_op = next(o for o in ops if o.op_id == latest)
                findings.append(
                    Finding(
                        rule="stream-hazard",
                        severity=Severity.ERROR,
                        location=f"{location} op={op.op_id} {op.label or op.kind}",
                        message=(
                            f"reads {buf!r} written by op {latest} "
                            f"({writer_op.label or writer_op.kind}) on stream "
                            f"{writer_op.stream} with no event dependency — "
                            f"consumer on stream {op.stream} may run before "
                            "the copy completes"
                        ),
                    )
                )
        for buf in op.writes:
            history = writers.setdefault(buf, [])
            if history and history[-1] not in hb:
                findings.append(
                    Finding(
                        rule="unordered-write",
                        severity=Severity.WARNING,
                        location=f"{location} op={op.op_id} {op.label or op.kind}",
                        message=(
                            f"writes {buf!r} concurrently with op "
                            f"{history[-1]} (no ordering between the writers)"
                        ),
                    )
                )
            history.append(op.op_id)
        happens_before[op.op_id] = hb
        last_on_stream[op.stream] = op.op_id
        submitted.add(op.op_id)
    return findings


def _serve_timeline_ops() -> List[StreamOp]:
    """Ops the serving replica actually emits: a short deterministic
    DeviceTimeline history including a snapshot DtoH."""
    timeline = DeviceTimeline("v100", num_streams=4)
    chunks = [ChunkWork(htod=1e-5, kernel=2e-4, dtoh=1e-5, warps=8)]
    ops: List[StreamOp] = []
    for i in range(3):
        sched = timeline.submit_batch(
            chunks,
            now=i * 5e-5,
            extra_dtoh_s=1e-4 if i == 1 else 0.0,
            label=f"b{i}",
        )
        ops.extend(s.op for s in sched.ops)
    return ops


_GOOD_CHUNKS = [
    ChunkWork(htod=0.1, kernel=0.5, dtoh=0.05, warps=4),
    ChunkWork(htod=0.1, kernel=0.4, dtoh=0.05, warps=4),
    ChunkWork(htod=0.2, kernel=0.6, dtoh=0.05, warps=8),
    ChunkWork(htod=0.1, kernel=0.3, dtoh=0.05, warps=2),
]


def iter_stream_programs(
    include_known_bad: bool = False,
) -> Iterator[Tuple[str, List[StreamOp]]]:
    """Representative stream programs the serving stack schedules.

    The known-bad entry is the copy-stream layout with its event
    dependencies dropped — every kernel consumes an HtoD from another
    stream unordered, the textbook hazard.
    """
    yield "double-buffer-4x2", double_buffer_ops(_GOOD_CHUNKS, num_streams=2)
    yield "double-buffer-4x4", double_buffer_ops(_GOOD_CHUNKS, num_streams=4)
    yield (
        "copy-stream-with-events",
        copy_stream_ops(_GOOD_CHUNKS, num_streams=3, with_events=True),
    )
    yield "device-timeline-serve", _serve_timeline_ops()
    if include_known_bad:
        yield (
            "known-bad:copy-stream-missing-events",
            copy_stream_ops(_GOOD_CHUNKS, num_streams=3, with_events=False),
        )


def check_stream_programs(
    include_known_bad: bool = False,
    programs: Iterable[Tuple[str, Sequence[StreamOp]]] = None,
) -> List[Finding]:
    """Run the hazard check over the stream-program registry."""
    if programs is None:
        programs = iter_stream_programs(include_known_bad)
    findings: List[Finding] = []
    for name, ops in programs:
        findings.extend(check_stream_ops(ops, location=f"stream:{name}"))
    return findings
