"""Consolidated findings baseline shared by every analysis engine.

One committed file (``scripts/analysis_baseline.json``) holds the
accepted findings for all engines, one section per engine::

    {
      "engines": {
        "arrays": {"suppress": [{"rule": "...", "location": "..."}]},
        "aio":    {"suppress": []}
      }
    }

The legacy flat schema (``{"suppress": [...]}`` with no engine keys,
what the array verifier shipped with) is still read and applies to
every engine, so older baseline files keep working.

Matching is by exact ``rule`` and *suffix* on ``location`` (absorbing
absolute vs. relative path spellings only — entries do not survive line
drift and must be re-baselined when code moves).  A baseline entry that
matches no finding surfaces as a ``stale-baseline`` warning so the file
cannot rot.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from repro.analysis.findings import Finding, Severity

__all__ = ["load_baseline_sections", "apply_baseline"]

#: Section key that applies to every engine (legacy flat schema).
ALL_ENGINES = "*"


def _check_entries(entries: object, where: str) -> List[Dict[str, str]]:
    if not isinstance(entries, list):
        raise ValueError(f"baseline {where}: 'suppress' must be a list")
    for e in entries:
        if not isinstance(e, dict) or "rule" not in e or "location" not in e:
            raise ValueError(f"malformed baseline entry in {where}: {e!r}")
    return entries


def load_baseline_sections(path: Path) -> Dict[str, List[Dict[str, str]]]:
    """Parse a baseline file into ``{engine: [entries]}``.

    Entries under the legacy top-level ``suppress`` key are returned
    under the :data:`ALL_ENGINES` section and apply to every engine.
    """
    data = json.loads(Path(path).read_text())
    sections: Dict[str, List[Dict[str, str]]] = {}
    flat = data.get("suppress", [])
    if flat:
        sections[ALL_ENGINES] = _check_entries(flat, "top level")
    engines = data.get("engines", {})
    if not isinstance(engines, dict):
        raise ValueError("baseline 'engines' must be an object")
    for engine, section in engines.items():
        if not isinstance(section, dict):
            raise ValueError(f"baseline engine {engine!r} must be an object")
        sections[engine] = _check_entries(
            section.get("suppress", []), f"engine {engine!r}"
        )
    return sections


def apply_baseline(
    findings: List[Finding],
    sections: Dict[str, List[Dict[str, str]]],
    engine: str,
) -> List[Finding]:
    """Drop findings baselined for ``engine``; flag stale entries.

    Only the entries in the engine's own section (plus the legacy
    :data:`ALL_ENGINES` section) are consulted; stale-entry warnings are
    raised per engine so a leftover suppression is attributed to the
    section that holds it.
    """
    entries = list(sections.get(engine, ())) + list(
        sections.get(ALL_ENGINES, ())
    )
    if not entries:
        return findings
    used = [False] * len(entries)

    def suppressed(f: Finding) -> bool:
        for i, e in enumerate(entries):
            if f.rule == e["rule"] and f.location.endswith(e["location"]):
                used[i] = True
                return True
        return False

    kept = [f for f in findings if not suppressed(f)]
    for i, e in enumerate(entries):
        if not used[i]:
            kept.append(
                Finding(
                    rule="stale-baseline",
                    severity=Severity.WARNING,
                    location=e["location"],
                    message=(
                        f"baseline entry for [{e['rule']}] matched no "
                        f"{engine} finding; remove it from the baseline file"
                    ),
                    engine=engine,
                )
            )
    return kept
