"""CLI for the analysis engines: ``python -m repro.analysis``.

Six engines share this entry point:

* ``sanitizer`` — trace-based SIMT kernel sanitizer over every
  registered microkernel;
* ``lint`` — hot-path linter over ``src/repro``;
* ``verifier`` — static SIMT verifier (abstract interpretation of every
  registered kernel plus the Theorem 1–3 search-invariant checks);
* ``streams`` — stream-program hazard checker over the device model;
* ``arrays`` — array-program verifier (symbolic shapes, dtype lattice,
  value intervals, packed-key overflow proofs) plus the syntactic
  nondeterminism sweep;
* ``aio`` — async-concurrency analyzer over the serving layer
  (atomicity across await, lock-order inversion, virtual-time
  determinism, task hygiene; DESIGN.md Sec. 15).

``--engines NAME[,NAME...]`` selects exactly the engines to run; the
older flags remain as aliases (``--sanitize-only``, ``--lint-only``,
``--verify-only`` = verifier+streams, ``--arrays-only``, ``--aio-only``,
and the additive ``--verify`` / ``--arrays`` / ``--aio``).  With no
selector the default set is sanitizer+lint.

Exit status: 1 if any ``error``-severity finding is present; with
``--strict``, ``warning`` findings also fail (the CI setting).

``--baseline FILE`` points at the consolidated baseline
(``scripts/analysis_baseline.json``) whose per-engine ``suppress``
sections drop accepted findings; stale entries surface as warnings.
``--json`` emits machine-readable findings (one object per line, with an
``engine`` key) in a deterministic cross-engine order.
``--include-known-bad`` adds each engine's deliberately broken fixtures
— the negative control ci.sh uses to prove the gates actually fail.
Per-engine wall times are reported in text mode and any engine slower
than 60 s warns on stderr.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.baseline import apply_baseline, load_baseline_sections
from repro.analysis.findings import Finding, split_by_severity
from repro.analysis.lint import lint_tree
from repro.analysis.registry import iter_kernel_specs, sanitize_kernel, verify_kernel

#: Engine names accepted by ``--engines``, in canonical run order.
ENGINE_NAMES = ("sanitizer", "lint", "verifier", "streams", "arrays", "aio")

#: Seconds after which an engine's runtime warns on stderr.
SLOW_ENGINE_S = 60.0


def _default_lint_root() -> Path:
    # src/repro/analysis/__main__.py -> src/repro
    return Path(__file__).resolve().parent.parent


def _finding_sort_key(f: Finding):
    """Deterministic cross-engine order: errors first, then by place."""
    return (
        f.severity.value != "error",
        f.location,
        f.rule,
        f.engine,
        f.message,
    )


def _run_sanitizer(include_known_bad: bool, lint_root) -> List[Finding]:
    out: List[Finding] = []
    for spec in iter_kernel_specs():
        out.extend(sanitize_kernel(spec))
    return out


def _run_lint(include_known_bad: bool, lint_root) -> List[Finding]:
    return lint_tree(lint_root or _default_lint_root())


def _run_verifier(include_known_bad: bool, lint_root) -> List[Finding]:
    from repro.analysis.verifier.fixtures import iter_known_bad_specs
    from repro.analysis.verifier.invariants import check_all_invariants

    out: List[Finding] = []
    for spec in iter_kernel_specs():
        out.extend(verify_kernel(spec).findings)
    if include_known_bad:
        for spec in iter_known_bad_specs():
            out.extend(verify_kernel(spec).findings)
    out.extend(check_all_invariants())
    return out


def _run_streams(include_known_bad: bool, lint_root) -> List[Finding]:
    from repro.analysis.streams import check_stream_programs

    return check_stream_programs(include_known_bad=include_known_bad)


def _run_arrays(include_known_bad: bool, lint_root) -> List[Finding]:
    from repro.analysis.arrays import check_arrays

    return check_arrays(include_known_bad=include_known_bad)


def _run_aio(include_known_bad: bool, lint_root) -> List[Finding]:
    from repro.analysis.aio import check_aio

    return check_aio(include_known_bad=include_known_bad)


_ENGINE_RUNNERS: Dict[str, Callable[..., List[Finding]]] = {
    "sanitizer": _run_sanitizer,
    "lint": _run_lint,
    "verifier": _run_verifier,
    "streams": _run_streams,
    "arrays": _run_arrays,
    "aio": _run_aio,
}


def run_engines(
    engines: Sequence[str],
    strict: bool = False,
    include_known_bad: bool = False,
    lint_root: Optional[Path] = None,
    baseline: Optional[Path] = None,
    timings: Optional[Dict[str, float]] = None,
) -> "tuple[List[Finding], int]":
    """Run the named engines; returns ``(findings, exit_code)``.

    Findings are stamped with their engine name, filtered through the
    engine's section of the consolidated baseline, and sorted with
    :func:`_finding_sort_key`.  When ``timings`` is a dict, per-engine
    wall seconds are recorded into it.
    """
    for name in engines:
        if name not in _ENGINE_RUNNERS:
            raise ValueError(
                f"unknown engine {name!r}; expected one of {ENGINE_NAMES}"
            )
    sections = load_baseline_sections(baseline) if baseline else {}
    findings: List[Finding] = []
    for name in ENGINE_NAMES:
        if name not in engines:
            continue
        started = time.perf_counter()
        raw = _ENGINE_RUNNERS[name](include_known_bad, lint_root)
        elapsed = time.perf_counter() - started
        if timings is not None:
            timings[name] = elapsed
        if elapsed > SLOW_ENGINE_S:
            print(
                f"repro.analysis: warning: engine {name!r} took "
                f"{elapsed:.1f}s (> {SLOW_ENGINE_S:.0f}s)",
                file=sys.stderr,
            )
        stamped = [
            f if f.engine else dataclasses.replace(f, engine=name)
            for f in raw
        ]
        findings.extend(apply_baseline(stamped, sections, name))
    findings.sort(key=_finding_sort_key)
    errors, warnings = split_by_severity(findings)
    failed = bool(errors) or (strict and bool(warnings))
    return findings, 1 if failed else 0


def run_analysis(
    strict: bool = False,
    sanitize: bool = True,
    lint: bool = True,
    verify: bool = False,
    arrays: bool = False,
    aio: bool = False,
    include_known_bad: bool = False,
    lint_root: Optional[Path] = None,
    baseline: Optional[Path] = None,
    timings: Optional[Dict[str, float]] = None,
) -> "tuple[List[Finding], int]":
    """Back-compat wrapper: boolean engine toggles over :func:`run_engines`.

    ``verify=True`` selects both the static verifier and the
    stream-hazard checker, matching the historical ``--verify`` flag.
    """
    engines: List[str] = []
    if sanitize:
        engines.append("sanitizer")
    if lint:
        engines.append("lint")
    if verify:
        engines.extend(["verifier", "streams"])
    if arrays:
        engines.append("arrays")
    if aio:
        engines.append("aio")
    return run_engines(
        engines,
        strict=strict,
        include_known_bad=include_known_bad,
        lint_root=lint_root,
        baseline=baseline,
        timings=timings,
    )


def _parse_engines(spec: str) -> List[str]:
    names = [part.strip() for part in spec.split(",") if part.strip()]
    if not names:
        raise argparse.ArgumentTypeError("--engines needs at least one name")
    for name in names:
        if name not in ENGINE_NAMES:
            raise argparse.ArgumentTypeError(
                f"unknown engine {name!r}; expected one of "
                + ",".join(ENGINE_NAMES)
            )
    return names


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "analysis engines: SIMT sanitizer, hot-path lint, static "
            "verifier, stream hazards, array verifier, async-concurrency "
            "(aio)"
        ),
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures (the CI gate setting)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit findings as JSON lines"
    )
    parser.add_argument(
        "--engines",
        type=_parse_engines,
        default=None,
        metavar="NAME[,NAME...]",
        help="run exactly these engines "
        f"({','.join(ENGINE_NAMES)}); overrides the default "
        "sanitizer+lint set and the additive flags",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="also run the static verifier + stream-hazard checker "
        "(abstract interpretation of every registered kernel + Theorem "
        "1-3 invariant checks)",
    )
    parser.add_argument(
        "--arrays",
        action="store_true",
        help="also run the array-program verifier (shape/dtype/overflow "
        "abstract interpretation of @array_kernel hosts + nondet sweep)",
    )
    parser.add_argument(
        "--aio",
        action="store_true",
        help="also run the async-concurrency analyzer over the serving "
        "layer (atomicity across await, lock order, determinism, task "
        "hygiene)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="consolidated findings-baseline JSON with per-engine "
        '"suppress" sections (scripts/analysis_baseline.json); stale '
        "entries warn",
    )
    parser.add_argument(
        "--include-known-bad",
        action="store_true",
        help="run each engine's known-bad fixtures too (negative CI "
        "control; implies a failing exit)",
    )
    engine = parser.add_mutually_exclusive_group()
    engine.add_argument(
        "--sanitize-only",
        action="store_true",
        help="run only the kernel sanitizer (alias of --engines sanitizer)",
    )
    engine.add_argument(
        "--lint-only",
        action="store_true",
        help="run only the hot-path linter (alias of --engines lint)",
    )
    engine.add_argument(
        "--verify-only",
        action="store_true",
        help="run only the static verifier + stream checker "
        "(alias of --engines verifier,streams)",
    )
    engine.add_argument(
        "--arrays-only",
        action="store_true",
        help="run only the array-program verifier (alias of --engines arrays)",
    )
    engine.add_argument(
        "--aio-only",
        action="store_true",
        help="run only the async-concurrency analyzer "
        "(alias of --engines aio)",
    )
    parser.add_argument(
        "--lint-root",
        type=Path,
        default=None,
        help="directory tree to lint (default: the installed repro package)",
    )
    args = parser.parse_args(argv)

    if args.engines is not None:
        engines = args.engines
    elif args.sanitize_only:
        engines = ["sanitizer"]
    elif args.lint_only:
        engines = ["lint"]
    elif args.verify_only:
        engines = ["verifier", "streams"]
    elif args.arrays_only:
        engines = ["arrays"]
    elif args.aio_only:
        engines = ["aio"]
    else:
        engines = ["sanitizer", "lint"]
        if args.verify:
            engines.extend(["verifier", "streams"])
        if args.arrays:
            engines.append("arrays")
        if args.aio:
            engines.append("aio")

    timings: Dict[str, float] = {}
    findings, code = run_engines(
        engines,
        strict=args.strict,
        include_known_bad=args.include_known_bad,
        lint_root=args.lint_root,
        baseline=args.baseline,
        timings=timings,
    )
    errors, warnings = split_by_severity(findings)
    if args.json:
        for f in findings:
            print(
                json.dumps(
                    {
                        "rule": f.rule,
                        "severity": f.severity.value,
                        "location": f.location,
                        "message": f.message,
                        "engine": f.engine,
                    }
                )
            )
    else:
        for f in findings:
            print(f.format())
        timing = ", ".join(
            f"{name}={timings[name]:.2f}s"
            for name in ENGINE_NAMES
            if name in timings
        )
        label = "FAIL" if code else "OK"
        strict_note = ", strict" if args.strict else ""
        print(
            f"repro.analysis: {label} — {len(errors)} error(s), "
            f"{len(warnings)} warning(s){strict_note} [{timing}]"
        )
    return code


if __name__ == "__main__":
    sys.exit(main())
