"""CLI for the analysis engines: ``python -m repro.analysis``.

Runs the kernel sanitizer over every registered microkernel and the
hot-path linter over ``src/repro``, prints one line per finding, and
exits non-zero when findings gate the build:

* exit 1 if any ``error``-severity finding is present;
* with ``--strict``, ``warning`` findings also fail (the CI setting).

``--sanitize-only`` / ``--lint-only`` restrict to one engine; ``--json``
emits machine-readable findings instead of text.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.findings import Finding, split_by_severity
from repro.analysis.lint import lint_tree
from repro.analysis.registry import iter_kernel_specs, sanitize_kernel


def _default_lint_root() -> Path:
    # src/repro/analysis/__main__.py -> src/repro
    return Path(__file__).resolve().parent.parent


def run_analysis(
    strict: bool = False,
    sanitize: bool = True,
    lint: bool = True,
    lint_root: Optional[Path] = None,
) -> "tuple[List[Finding], int]":
    """Run the selected engines; returns ``(findings, exit_code)``."""
    findings: List[Finding] = []
    if sanitize:
        for spec in iter_kernel_specs():
            findings.extend(sanitize_kernel(spec))
    if lint:
        findings.extend(lint_tree(lint_root or _default_lint_root()))
    errors, warnings = split_by_severity(findings)
    failed = bool(errors) or (strict and bool(warnings))
    return findings, 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="SIMT kernel sanitizer + hot-path lint",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures (the CI gate setting)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit findings as JSON lines"
    )
    engine = parser.add_mutually_exclusive_group()
    engine.add_argument(
        "--sanitize-only",
        action="store_true",
        help="run only the kernel sanitizer",
    )
    engine.add_argument(
        "--lint-only", action="store_true", help="run only the hot-path linter"
    )
    parser.add_argument(
        "--lint-root",
        type=Path,
        default=None,
        help="directory tree to lint (default: the installed repro package)",
    )
    args = parser.parse_args(argv)

    findings, code = run_analysis(
        strict=args.strict,
        sanitize=not args.lint_only,
        lint=not args.sanitize_only,
        lint_root=args.lint_root,
    )
    errors, warnings = split_by_severity(findings)
    if args.json:
        for f in findings:
            print(
                json.dumps(
                    {
                        "rule": f.rule,
                        "severity": f.severity.value,
                        "location": f.location,
                        "message": f.message,
                    }
                )
            )
    else:
        for f in findings:
            print(f.format())
        label = "FAIL" if code else "OK"
        strict_note = ", strict" if args.strict else ""
        print(
            f"repro.analysis: {label} — {len(errors)} error(s), "
            f"{len(warnings)} warning(s){strict_note}"
        )
    return code


if __name__ == "__main__":
    sys.exit(main())
