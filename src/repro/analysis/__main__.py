"""CLI for the analysis engines: ``python -m repro.analysis``.

Runs the kernel sanitizer over every registered microkernel, the
hot-path linter over ``src/repro``, and (with ``--verify``) the static
verifier — abstract interpretation of every registered kernel plus the
Theorem 1–3 search-invariant checks — prints one line per finding, and
exits non-zero when findings gate the build:

* exit 1 if any ``error``-severity finding is present;
* with ``--strict``, ``warning`` findings also fail (the CI setting).

``--arrays`` adds the array-program verifier — abstract interpretation
of every ``@array_kernel``-annotated host kernel (symbolic shapes,
dtype lattice, value intervals; packed-key overflow proofs with
concrete counterexamples) plus the syntactic nondeterminism sweep over
hot-marked modules and ``serve/``.  ``--baseline FILE`` suppresses
accepted array findings and flags stale suppressions.

``--sanitize-only`` / ``--lint-only`` / ``--verify-only`` /
``--arrays-only`` restrict to one engine; ``--json`` emits
machine-readable findings instead of text, sorted by (severity,
location, rule, message) so reports are deterministic across runs.
``--include-known-bad`` adds the deliberately broken fixture kernels to
the verify and arrays sets — the negative control ci.sh uses to prove
the gates actually fail.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.findings import Finding, split_by_severity
from repro.analysis.lint import lint_tree
from repro.analysis.registry import iter_kernel_specs, sanitize_kernel, verify_kernel


def _default_lint_root() -> Path:
    # src/repro/analysis/__main__.py -> src/repro
    return Path(__file__).resolve().parent.parent


def _finding_sort_key(f: Finding):
    """Deterministic report order: errors first, then by place and rule."""
    return (f.severity.value != "error", f.location, f.rule, f.message)


def run_analysis(
    strict: bool = False,
    sanitize: bool = True,
    lint: bool = True,
    verify: bool = False,
    arrays: bool = False,
    include_known_bad: bool = False,
    lint_root: Optional[Path] = None,
    baseline: Optional[Path] = None,
) -> "tuple[List[Finding], int]":
    """Run the selected engines; returns ``(findings, exit_code)``."""
    findings: List[Finding] = []
    if sanitize:
        for spec in iter_kernel_specs():
            findings.extend(sanitize_kernel(spec))
    if lint:
        findings.extend(lint_tree(lint_root or _default_lint_root()))
    if verify:
        from repro.analysis.streams import check_stream_programs
        from repro.analysis.verifier.fixtures import iter_known_bad_specs
        from repro.analysis.verifier.invariants import check_all_invariants

        for spec in iter_kernel_specs():
            findings.extend(verify_kernel(spec).findings)
        if include_known_bad:
            for spec in iter_known_bad_specs():
                findings.extend(verify_kernel(spec).findings)
        findings.extend(check_all_invariants())
        findings.extend(
            check_stream_programs(include_known_bad=include_known_bad)
        )
    if arrays:
        from repro.analysis.arrays import check_arrays

        findings.extend(
            check_arrays(
                include_known_bad=include_known_bad, baseline=baseline
            )
        )
    findings.sort(key=_finding_sort_key)
    errors, warnings = split_by_severity(findings)
    failed = bool(errors) or (strict and bool(warnings))
    return findings, 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="SIMT kernel sanitizer + static verifier + hot-path lint",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures (the CI gate setting)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit findings as JSON lines"
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="also run the static verifier (abstract interpretation of every "
        "registered kernel + Theorem 1-3 invariant checks)",
    )
    parser.add_argument(
        "--arrays",
        action="store_true",
        help="also run the array-program verifier (shape/dtype/overflow "
        "abstract interpretation of @array_kernel hosts + nondet sweep)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="findings-baseline JSON for the array verifier "
        '({"suppress": [{"rule", "location"}]}); stale entries warn',
    )
    parser.add_argument(
        "--include-known-bad",
        action="store_true",
        help="verify the known-bad fixture kernels too (negative CI control; "
        "implies a failing exit)",
    )
    engine = parser.add_mutually_exclusive_group()
    engine.add_argument(
        "--sanitize-only",
        action="store_true",
        help="run only the kernel sanitizer",
    )
    engine.add_argument(
        "--lint-only", action="store_true", help="run only the hot-path linter"
    )
    engine.add_argument(
        "--verify-only",
        action="store_true",
        help="run only the static verifier",
    )
    engine.add_argument(
        "--arrays-only",
        action="store_true",
        help="run only the array-program verifier",
    )
    parser.add_argument(
        "--lint-root",
        type=Path,
        default=None,
        help="directory tree to lint (default: the installed repro package)",
    )
    args = parser.parse_args(argv)

    only = (
        args.sanitize_only
        or args.lint_only
        or args.verify_only
        or args.arrays_only
    )
    findings, code = run_analysis(
        strict=args.strict,
        sanitize=args.sanitize_only or not only,
        lint=args.lint_only or not only,
        verify=args.verify_only or ((not only) and args.verify),
        arrays=args.arrays_only or ((not only) and args.arrays),
        include_known_bad=args.include_known_bad,
        lint_root=args.lint_root,
        baseline=args.baseline,
    )
    errors, warnings = split_by_severity(findings)
    if args.json:
        for f in findings:
            print(
                json.dumps(
                    {
                        "rule": f.rule,
                        "severity": f.severity.value,
                        "location": f.location,
                        "message": f.message,
                    }
                )
            )
    else:
        for f in findings:
            print(f.format())
        label = "FAIL" if code else "OK"
        strict_note = ", strict" if args.strict else ""
        print(
            f"repro.analysis: {label} — {len(errors)} error(s), "
            f"{len(warnings)} warning(s){strict_note}"
        )
    return code


if __name__ == "__main__":
    sys.exit(main())
