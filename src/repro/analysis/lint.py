"""Hot-path lint: AST rules for the modules the searcher's inner loop runs.

Files opt in with a ``# lint: hot-path`` marker comment (the four
dataset-scale modules carry it: ``core/batched.py``, ``structures/soa.py``,
``graphs/nn_descent.py``, ``distances/metrics.py``).  Marked files are
held to the repo's vectorization invariants:

``hot-loop``
    No per-element Python ``for`` loop over a dataset-sized iterable:
    ``for .. in range(<non-constant>)``, ``for .. in enumerate(..)`` and
    ``for .. in <x>.tolist()`` are flagged.  Loops over constant literal
    ranges (unrolled small factors) and ``while`` loops are exempt; the
    batch-level loops the design permits (per-batch result assembly, the
    bounded NN-descent iteration loop, tile loops) carry explicit
    allows.
``float64-upcast``
    Packed-key arrays (``uint64`` from ``pack_keys`` / ``PAD_KEY``) must
    not meet raw Python float literals in arithmetic — numpy silently
    upcasts ``uint64 op float`` to float64, which loses the low id bits
    of a packed key.  Names assigned from packing primitives are tracked
    through simple dataflow and flagged when they reach a ``BinOp``
    against a float constant.
``exports``
    A hot module must declare ``__all__``, every exported name must
    exist at module top level (error), and exported functions/classes
    plus the module itself must carry docstrings (warning).

Escape hatch: ``# lint: allow(<rule>[, <rule>...])`` on the flagged
line, on the line directly above it, or on the ``def`` line of the
enclosing function (a function-level waiver, used e.g. for the serial
NN-descent reference engine that exists precisely to stay readable).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.analysis.findings import Finding, Severity

#: Marker comment that opts a file into the hot-path rules.
HOT_MARKER = "# lint: hot-path"

#: Rule identifiers the allow() escape hatch accepts.
LINT_RULES = ("hot-loop", "float64-upcast", "exports")

_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\(\s*([a-zA-Z0-9_\-, ]+?)\s*\)")

#: Callables whose results are packed uint64 keys (dataflow seeds).
_PACK_SOURCES = {"pack_keys", "uint64"}
_PACK_CONSTANTS = {"PAD_KEY"}


def _allow_map(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """1-based line → set of rule names allowed on that line."""
    allows: Dict[int, Set[str]] = {}
    for i, line in enumerate(lines, start=1):
        m = _ALLOW_RE.search(line)
        if m:
            allows[i] = {part.strip() for part in m.group(1).split(",") if part.strip()}
    return allows


class _FunctionLines(ast.NodeVisitor):
    """Maps every node's line to the ``def`` line of its enclosing function."""

    def __init__(self) -> None:
        self.enclosing: Dict[int, int] = {}
        self._stack: List[int] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._stack.append(node.lineno)
        self.generic_visit(node)
        self._stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def generic_visit(self, node: ast.AST) -> None:
        lineno = getattr(node, "lineno", None)
        if lineno is not None and self._stack:
            self.enclosing.setdefault(lineno, self._stack[-1])
        super().generic_visit(node)


def _call_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _is_const_int(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return _is_const_int(node.operand)
    return False


def _hot_loop_reason(iter_node: ast.AST) -> Optional[str]:
    """Why a ``for`` iterable looks per-element, or ``None`` if exempt."""
    if not isinstance(iter_node, ast.Call):
        return None
    name = _call_name(iter_node)
    if name == "range" and not all(_is_const_int(a) for a in iter_node.args):
        return "iterates range() over a non-constant extent"
    if name == "enumerate":
        return "iterates enumerate() element by element"
    if name == "tolist" and isinstance(iter_node.func, ast.Attribute):
        return "iterates an array converted with .tolist()"
    return None


def _packed_names(tree: ast.Module) -> Set[str]:
    """Names assigned (transitively, two passes) from packing primitives."""
    packed: Set[str] = set()

    def value_is_packed(value: ast.AST) -> bool:
        if isinstance(value, ast.Call):
            name = _call_name(value)
            if name in _PACK_SOURCES:
                return True
        if isinstance(value, ast.Name) and (
            value.id in _PACK_CONSTANTS or value.id in packed
        ):
            return True
        if isinstance(value, ast.Attribute) and value.attr in _PACK_CONSTANTS:
            return True
        if isinstance(value, ast.BinOp):
            return value_is_packed(value.left) or value_is_packed(value.right)
        return False

    for _ in range(2):  # one propagation round is enough for chains of two
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and value_is_packed(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        packed.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if value_is_packed(node.value) and isinstance(node.target, ast.Name):
                    packed.add(node.target.id)
    return packed


def _check_exports(tree: ast.Module, path: str) -> List[Finding]:
    findings: List[Finding] = []
    top_level: Dict[str, ast.AST] = {}
    exported: Optional[List[str]] = None
    export_line = 1
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            top_level[node.name] = node
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    top_level[target.id] = node
                    if target.id == "__all__":
                        export_line = node.lineno
                        try:
                            exported = [
                                elt.value
                                for elt in node.value.elts  # type: ignore[attr-defined]
                                if isinstance(elt, ast.Constant)
                            ]
                        except AttributeError:
                            exported = None
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            top_level[node.target.id] = node
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                top_level[alias.asname or alias.name.split(".")[0]] = node

    if ast.get_docstring(tree) is None:
        findings.append(
            Finding(
                rule="exports",
                severity=Severity.WARNING,
                location=f"{path}:1",
                message="hot module has no module docstring",
            )
        )
    if exported is None:
        findings.append(
            Finding(
                rule="exports",
                severity=Severity.ERROR,
                location=f"{path}:1",
                message="hot module does not declare __all__ (or it is not a literal list)",
            )
        )
        return findings
    for name in exported:
        node = top_level.get(name)
        if node is None:
            findings.append(
                Finding(
                    rule="exports",
                    severity=Severity.ERROR,
                    location=f"{path}:{export_line}",
                    message=f"__all__ exports {name!r} but the module does not define it",
                )
            )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if ast.get_docstring(node) is None:
                findings.append(
                    Finding(
                        rule="exports",
                        severity=Severity.WARNING,
                        location=f"{path}:{node.lineno}",
                        message=f"exported {name!r} has no docstring",
                    )
                )
    return findings


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one file's text; returns findings (empty for unmarked files)."""
    lines = source.splitlines()
    # The marker must be a standalone comment line, so merely *mentioning*
    # it (docstrings, this module's own constant) does not opt a file in.
    if not any(line.strip() == HOT_MARKER for line in lines):
        return []
    allows = _allow_map(lines)
    tree = ast.parse(source, filename=path)
    functions = _FunctionLines()
    functions.visit(tree)

    def allowed(rule: str, lineno: int) -> bool:
        for candidate in (lineno, lineno - 1, functions.enclosing.get(lineno)):
            if candidate is not None and rule in allows.get(candidate, ()):
                return True
        return False

    findings: List[Finding] = []

    for node in ast.walk(tree):
        if isinstance(node, ast.For):
            reason = _hot_loop_reason(node.iter)
            if reason and not allowed("hot-loop", node.lineno):
                findings.append(
                    Finding(
                        rule="hot-loop",
                        severity=Severity.ERROR,
                        location=f"{path}:{node.lineno}",
                        message=(
                            f"per-element Python loop in a hot module ({reason}); "
                            "vectorize or annotate `# lint: allow(hot-loop)`"
                        ),
                    )
                )

    packed = _packed_names(tree)
    if packed:
        for node in ast.walk(tree):
            if not isinstance(node, ast.BinOp):
                continue
            sides = (node.left, node.right)
            has_packed = any(
                isinstance(s, ast.Name) and s.id in packed for s in sides
            )
            has_float = any(
                isinstance(s, ast.Constant) and isinstance(s.value, float)
                for s in sides
            )
            if has_packed and has_float and not allowed("float64-upcast", node.lineno):
                names = [s.id for s in sides if isinstance(s, ast.Name) and s.id in packed]
                findings.append(
                    Finding(
                        rule="float64-upcast",
                        severity=Severity.ERROR,
                        location=f"{path}:{node.lineno}",
                        message=(
                            f"packed uint64 key {names[0]!r} meets a raw float "
                            "literal: numpy upcasts to float64 and drops low id "
                            "bits; use an explicit np.uint64 operand"
                        ),
                    )
                )

    for finding in _check_exports(tree, path):
        lineno = int(finding.location.rsplit(":", 1)[1])
        if not allowed("exports", lineno):
            findings.append(finding)
    return findings


def lint_paths(paths: Iterable[Path]) -> List[Finding]:
    """Lint a set of files (non-Python and unmarked files contribute nothing)."""
    findings: List[Finding] = []
    for path in paths:
        p = Path(path)
        if p.suffix != ".py":
            continue
        findings.extend(lint_source(p.read_text(), str(p)))
    return findings


def lint_tree(root: Path) -> List[Finding]:
    """Recursively lint every ``.py`` under ``root`` (sorted, stable order)."""
    return lint_paths(sorted(Path(root).rglob("*.py")))
