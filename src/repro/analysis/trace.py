"""Lane-accurate execution tracing for the kernel sanitizer.

:class:`TraceRecorder` plugs into
:class:`~repro.simt.simulator.WarpSimulator` (the ``tracer`` constructor
argument) and records an ordered event stream: every instruction issue
with its active mask, every shared/global memory access with the
per-lane addresses it generated, every register initialization/write,
and every reconvergence point (``EndIf`` and loop exit).  The sanitizer
(:mod:`repro.analysis.sanitizer`) replays this stream to detect hazards
the functional interpreter executes silently.

Tracing is per warp; an :class:`~repro.simt.simulator.SMSimulator` run
composes naturally — give each resident warp its own recorder and
sanitize each trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.simt import isa
from repro.simt.simulator import WARP_SIZE


@dataclass(frozen=True)
class InstrEvent:
    """One instruction issue: program counter, opcode and active mask."""

    seq: int
    pc: int
    ins: isa.Instruction
    mask: np.ndarray  # (32,) bool copy of the active mask at issue


@dataclass(frozen=True)
class RegInitEvent:
    """A register initialized externally via ``set_register`` (all lanes)."""

    seq: int
    name: str


@dataclass(frozen=True)
class RegWriteEvent:
    """A register written by an instruction under ``mask``."""

    seq: int
    name: str
    mask: np.ndarray


@dataclass(frozen=True)
class MemEvent:
    """One shared/global memory access by the active lanes.

    ``addrs[i]`` is the word address lane ``lanes[i]`` touched.  ``cost``
    is the interpreter's serialization count for the access: bank
    conflicts for shared, 128-byte transactions for global.
    """

    seq: int
    pc: int
    ins: isa.Instruction
    space: str  # "shared" | "global"
    kind: str  # "read" | "write"
    addrs: np.ndarray  # (num_active,) int64
    lanes: np.ndarray  # (num_active,) int64 lane indices
    cost: int


@dataclass(frozen=True)
class ReconvergeEvent:
    """A reconvergence point; ``mask`` is the active mask after the pop."""

    seq: int
    pc: int
    mask: np.ndarray


TraceEvent = Union[InstrEvent, RegInitEvent, RegWriteEvent, MemEvent, ReconvergeEvent]


class TraceRecorder:
    """Event sink for one warp's execution (see module docstring)."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._seq = 0

    def _next(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    # -- WarpSimulator hooks -------------------------------------------------

    def on_instruction(self, pc: int, ins: isa.Instruction, mask: np.ndarray) -> None:
        self.events.append(InstrEvent(self._next(), pc, ins, mask.copy()))

    def on_reg_init(self, name: str) -> None:
        self.events.append(RegInitEvent(self._next(), name))

    def on_reg_write(self, name: str, mask: np.ndarray) -> None:
        self.events.append(RegWriteEvent(self._next(), name, mask.copy()))

    def on_shared_access(
        self,
        pc: int,
        ins: isa.Instruction,
        kind: str,
        addrs: np.ndarray,
        mask: np.ndarray,
        conflicts: int,
    ) -> None:
        lanes = np.flatnonzero(mask)
        self.events.append(
            MemEvent(self._next(), pc, ins, "shared", kind, addrs.copy(), lanes, conflicts)
        )

    def on_global_access(
        self,
        pc: int,
        ins: isa.Instruction,
        kind: str,
        addrs: np.ndarray,
        mask: np.ndarray,
        transactions: int,
    ) -> None:
        lanes = np.flatnonzero(mask)
        self.events.append(
            MemEvent(
                self._next(), pc, ins, "global", kind, addrs.copy(), lanes, transactions
            )
        )

    def on_reconverge(self, pc: int, mask: np.ndarray) -> None:
        self.events.append(ReconvergeEvent(self._next(), pc, mask.copy()))

    # -- derived views -------------------------------------------------------

    def instructions(self) -> List[InstrEvent]:
        return [e for e in self.events if isinstance(e, InstrEvent)]

    def mem_events(self, space: Optional[str] = None) -> List[MemEvent]:
        return [
            e
            for e in self.events
            if isinstance(e, MemEvent) and (space is None or e.space == space)
        ]

    def count_ops(self, op_type: type) -> int:
        """Issued instructions of one ISA opcode type."""
        return sum(1 for e in self.instructions() if isinstance(e.ins, op_type))


def instruction_reads(ins: isa.Instruction) -> Tuple[str, ...]:
    """Register names an instruction reads under its active mask.

    ``ShflDown`` is excluded — it reads cross-lane and is handled
    specially by the sanitizer (see :func:`shfl_read_lanes`).
    """
    if isinstance(ins, isa.Mov):
        ops: Tuple[isa.Operand, ...] = (ins.src,)
    elif isinstance(ins, isa.Binary):
        ops = (ins.a, ins.b)
    elif isinstance(ins, isa.Unary):
        ops = (ins.a,)
    elif isinstance(ins, isa.Fma):
        ops = (ins.a, ins.b, ins.c)
    elif isinstance(ins, isa.Cmp):
        ops = (ins.a, ins.b)
    elif isinstance(ins, isa.Popc):
        ops = (ins.a,)
    elif isinstance(ins, (isa.Ldg, isa.Lds)):
        ops = (ins.addr,)
    elif isinstance(ins, (isa.Stg, isa.Sts)):
        ops = (ins.addr, ins.src)
    elif isinstance(ins, isa.Vote):
        ops = (ins.src,)
    elif isinstance(ins, (isa.If, isa.While)):
        ops = (ins.pred,)
    else:  # LaneId, ShflDown, Else, EndIf, EndWhile
        ops = ()
    return tuple(op for op in ops if isinstance(op, str))


def shfl_read_lanes(delta: int) -> np.ndarray:
    """Boolean mask of the lanes a ``ShflDown(delta)`` reads from.

    Lane ``l`` reads lane ``min(l + delta, 31)`` when ``l + delta < 32``
    and its own value otherwise, so the union of source lanes is
    ``{delta, ..., 31}``.
    """
    mask = np.zeros(WARP_SIZE, dtype=bool)
    mask[min(delta, WARP_SIZE - 1) :] = True
    return mask
