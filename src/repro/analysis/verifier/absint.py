"""Abstract interpretation of SIMT ISA programs (the static verifier core).

:func:`verify_program` walks a structured ``simt.isa`` program once per
fixpoint iteration — never executing it — and discharges five proof
obligations:

``static-oob-shared`` / ``static-oob-global``
    Every ``Lds/Sts/Ldg/Stg`` address interval must lie inside the
    declared budget *for all lane values and all admitted inputs*; a
    failure reports the counterexample interval.
``static-divergent-shuffle``
    ``ShflDown`` must not appear inside a control region whose predicate
    can diverge (inactive lanes would contribute stale values).
``static-unbounded-loop``
    Every ``While`` must carry a ranking argument: each path through the
    body either moves a ranking register toward the loop bound by a
    positive constant, halves it (``floor((i - c) * f)``, the heap-sift
    parent step), or writes a constant that falsifies the predicate.
``static-uninit-read``
    Registers must be definitely assigned on every path before use.
``static-bound-vs-model``
    The walker also derives worst-case cycle / global-transaction /
    shuffle counts from loop trip bounds and per-access coalescing
    analysis; callers compare them against the analytic
    :mod:`repro.simt.cost` expectations (the static bound must dominate).

Loops are analysed to fixpoint with widening after a few iterations;
precision is recovered by re-applying the loop predicate at the body
entry (``i < dim`` restores ``i ≤ dim − 1`` even after ``i`` widens).
States are path-local: a register's abstraction describes the *active*
lanes of the current path, and reconvergence points join branch states,
which is what keeps lane-affine strides alive through divergent loops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.findings import Finding, Severity
from repro.analysis.verifier.domain import (
    AbstractValue,
    Interval,
    Parity,
    binary_transfer,
    unary_transfer,
)
from repro.simt import isa
from repro.simt.simulator import (
    GLOBAL_LATENCY,
    NUM_BANKS,
    SHARED_LATENCY,
    WARP_SIZE,
    WORDS_PER_TRANSACTION,
)

__all__ = ["verify_program", "VerificationReport", "StaticBounds"]

#: Fixpoint iterations before interval widening kicks in.
_WIDEN_AFTER = 3
#: Hard cap on fixpoint iterations (widening guarantees earlier exit).
_MAX_FIXPOINT = 16

_INF = float("inf")


# --------------------------------------------------------------------------
# structured program tree
# --------------------------------------------------------------------------


@dataclass
class _IfBlock:
    pc: int
    pred: str
    then: List["_Item"]
    els: List["_Item"]
    has_else: bool


@dataclass
class _WhileBlock:
    pc: int
    pred: str
    body: List["_Item"]


_Item = Union[Tuple[int, isa.Instruction], _IfBlock, _WhileBlock]


def _build_blocks(program: Sequence[isa.Instruction]) -> List[_Item]:
    """Parse the flat instruction list into a nested block tree."""
    pos = 0

    def parse(stop_on: Tuple[type, ...]) -> List[_Item]:
        nonlocal pos
        items: List[_Item] = []
        while pos < len(program):
            ins = program[pos]
            if isinstance(ins, stop_on):
                return items
            if isinstance(ins, isa.If):
                pc = pos
                pos += 1
                then = parse((isa.Else, isa.EndIf))
                has_else = isinstance(program[pos], isa.Else)
                els: List[_Item] = []
                if has_else:
                    pos += 1
                    els = parse((isa.EndIf,))
                pos += 1  # consume EndIf
                items.append(_IfBlock(pc, ins.pred, then, els, has_else))
            elif isinstance(ins, isa.While):
                pc = pos
                pos += 1
                body = parse((isa.EndWhile,))
                pos += 1  # consume EndWhile
                items.append(_WhileBlock(pc, ins.pred, body))
            else:
                items.append((pos, ins))
                pos += 1
        return items

    return parse(())


# --------------------------------------------------------------------------
# predicate facts (for branch refinement)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class _CmpFact:
    rel: str
    a: isa.Operand
    b: isa.Operand
    snapshot: Tuple[Tuple[str, int], ...]  # (reg, version) at creation

    def shape(self) -> tuple:
        return ("cmp", self.rel, self.a, self.b)


@dataclass(frozen=True)
class _BoolFact:
    op: str  # "and" | "or"
    a: str
    b: str
    snapshot: Tuple[Tuple[str, int], ...]

    def shape(self) -> tuple:
        return (self.op, self.a, self.b)


_Fact = Union[_CmpFact, _BoolFact]

_NEGATE = {"lt": "ge", "le": "gt", "gt": "le", "ge": "lt", "eq": "ne", "ne": "eq"}


# --------------------------------------------------------------------------
# abstract state
# --------------------------------------------------------------------------


@dataclass
class _State:
    regs: Dict[str, AbstractValue] = field(default_factory=dict)
    defined: Set[str] = field(default_factory=set)
    facts: Dict[str, _Fact] = field(default_factory=dict)
    versions: Dict[str, int] = field(default_factory=dict)
    reachable: bool = True

    def copy(self) -> "_State":
        return _State(
            dict(self.regs),
            set(self.defined),
            dict(self.facts),
            dict(self.versions),
            self.reachable,
        )

    def value(self, op: isa.Operand) -> AbstractValue:
        if isinstance(op, str):
            return self.regs.get(op, AbstractValue.top())
        return AbstractValue.const(op)

    def write(self, dst: str, value: AbstractValue) -> None:
        self.regs[dst] = value
        self.defined.add(dst)
        self.versions[dst] = self.versions.get(dst, 0) + 1
        self.facts.pop(dst, None)

    def fact_valid(self, fact: _Fact) -> bool:
        return all(self.versions.get(reg, 0) == ver for reg, ver in fact.snapshot)

    def snapshot_of(self, *operands: isa.Operand) -> Tuple[Tuple[str, int], ...]:
        return tuple(
            (op, self.versions.get(op, 0)) for op in operands if isinstance(op, str)
        )


def _join_states(a: _State, b: _State) -> _State:
    if not a.reachable:
        return b
    if not b.reachable:
        return a
    regs: Dict[str, AbstractValue] = {}
    for reg in set(a.regs) | set(b.regs):
        if reg in a.regs and reg in b.regs:
            regs[reg] = a.regs[reg].join(b.regs[reg])
        else:
            # Defined on one path only; def-before-use flags bad reads.
            regs[reg] = a.regs.get(reg, b.regs.get(reg))  # type: ignore[arg-type]
    versions = dict(a.versions)
    for reg, ver in b.versions.items():
        versions[reg] = max(versions.get(reg, 0), ver)
    facts: Dict[str, _Fact] = {}
    for reg in set(a.facts) & set(b.facts):
        fa, fb = a.facts[reg], b.facts[reg]
        # A fact survives a join when both paths establish the same
        # relation and neither path invalidated it; re-stamp it against
        # the joined version map (each path's execution satisfies it).
        if fa.shape() == fb.shape() and a.fact_valid(fa) and b.fact_valid(fb):
            operands = (fa.a, fa.b) if isinstance(fa, _CmpFact) else (fa.a, fa.b)
            snapshot = tuple(
                (reg2, versions.get(reg2, 0))
                for reg2 in operands
                if isinstance(reg2, str)
            )
            facts[reg] = (
                _CmpFact(fa.rel, fa.a, fa.b, snapshot)
                if isinstance(fa, _CmpFact)
                else _BoolFact(fa.op, fa.a, fa.b, snapshot)
            )
    return _State(regs, a.defined & b.defined, facts, versions, True)


def _widen_states(older: _State, newer: _State) -> _State:
    joined = _join_states(older, newer)
    if not older.reachable or not newer.reachable:
        return joined
    for reg in list(joined.regs):
        if reg in older.regs and reg in newer.regs:
            joined.regs[reg] = older.regs[reg].widen(newer.regs[reg])
    return joined


def _states_equal(a: _State, b: _State) -> bool:
    if a.reachable != b.reachable or a.defined != b.defined:
        return False
    if set(a.regs) != set(b.regs):
        return False
    for reg, av in a.regs.items():
        if av != b.regs[reg]:
            return False
    return {r: f.shape() for r, f in a.facts.items()} == {
        r: f.shape() for r, f in b.facts.items()
    }


# --------------------------------------------------------------------------
# predicate refinement
# --------------------------------------------------------------------------


def _refine_cmp(state: _State, rel: str, a: isa.Operand, b: isa.Operand) -> None:
    av, bv = state.value(a), state.value(b)
    step = 1.0 if (av.integral and bv.integral) else 0.0
    na, nb = av.interval, bv.interval
    if rel == "lt":
        na = na.meet(Interval(-_INF, bv.interval.hi - step))
        nb = nb.meet(Interval(av.interval.lo + step, _INF))
    elif rel == "le":
        na = na.meet(Interval(-_INF, bv.interval.hi))
        nb = nb.meet(Interval(av.interval.lo, _INF))
    elif rel == "gt":
        na = na.meet(Interval(bv.interval.lo + step, _INF))
        nb = nb.meet(Interval(-_INF, av.interval.hi - step))
    elif rel == "ge":
        na = na.meet(Interval(bv.interval.lo, _INF))
        nb = nb.meet(Interval(-_INF, av.interval.hi))
    elif rel == "eq":
        na = nb = av.interval.meet(bv.interval)
    else:  # ne: no interval refinement
        return
    if na.is_empty or nb.is_empty:
        state.reachable = False
        return
    if isinstance(a, str):
        state.regs[a] = av.with_interval(na)
    if isinstance(b, str):
        state.regs[b] = bv.with_interval(nb)


def _assume(state: _State, pred: str, truth: bool, depth: int = 0) -> None:
    """Refine ``state`` in place under ``pred == truth`` (best effort)."""
    if depth > 4 or not state.reachable:
        return
    pv = state.regs.get(pred)
    if pv is not None and pv.integral and pv.interval.lo >= 0.0 and pv.interval.hi <= 1.0:
        want = Interval.const(1.0 if truth else 0.0)
        narrowed = pv.interval.meet(want)
        if narrowed.is_empty:
            state.reachable = False
            return
        state.regs[pred] = pv.with_interval(narrowed)
    fact = state.facts.get(pred)
    if fact is None or not state.fact_valid(fact):
        return
    if isinstance(fact, _CmpFact):
        rel = fact.rel if truth else _NEGATE[fact.rel]
        _refine_cmp(state, rel, fact.a, fact.b)
    elif fact.op == "and" and truth:
        _assume(state, fact.a, True, depth + 1)
        _assume(state, fact.b, True, depth + 1)
    elif fact.op == "or" and not truth:
        _assume(state, fact.a, False, depth + 1)
        _assume(state, fact.b, False, depth + 1)


# --------------------------------------------------------------------------
# symbolic write classification (loop ranking functions)
# --------------------------------------------------------------------------

_OPAQUE = ("opaque",)


def _sym_of(sym: Dict[str, tuple], op: isa.Operand) -> tuple:
    if isinstance(op, str):
        return sym.get(op, ("leaf", op))
    return ("const", float(op))


def _sym_step(sym: Dict[str, tuple], ins: isa.Instruction) -> None:
    """Track straight-line expressions (for the halving-pattern matcher)."""
    if isinstance(ins, isa.Mov):
        sym[ins.dst] = _sym_of(sym, ins.src)
    elif isinstance(ins, isa.Binary) and ins.op in ("add", "sub", "mul"):
        sym[ins.dst] = (ins.op, _sym_of(sym, ins.a), _sym_of(sym, ins.b))
    elif isinstance(ins, isa.Unary) and ins.op == "floor":
        sym[ins.dst] = ("floor", _sym_of(sym, ins.a))
    else:
        dst = getattr(ins, "dst", None)
        if isinstance(dst, str):
            sym[dst] = _OPAQUE


def _match_halving(expr: tuple, var: str) -> bool:
    """Match ``[floor] (var - c) * f`` with c ≥ 1 and 0 < f ≤ 1.

    For integral ``var ≥ 1`` this write decreases the value by at least 1
    (``(i - c)·f ≤ i - c ≤ i - 1``), the heap sift-up parent step.
    """
    if expr[0] == "floor":
        expr = expr[1]
    if expr[0] != "mul":
        return False
    left, right = expr[1], expr[2]
    if right[0] == "const" and 0.0 < right[1] <= 1.0:
        sub = left
    elif left[0] == "const" and 0.0 < left[1] <= 1.0:
        sub = right
    else:
        return False
    return (
        sub[0] == "sub"
        and sub[1] == ("leaf", var)
        and sub[2][0] == "const"
        and sub[2][1] >= 1.0
    )


# --------------------------------------------------------------------------
# reports
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class StaticBounds:
    """Worst-case resource bounds; ``None`` means no finite bound."""

    cycles: Optional[float]
    global_transactions: Optional[float]
    shfl_count: Optional[float]


@dataclass
class VerificationReport:
    """What one :func:`verify_program` run proved (or failed to)."""

    name: str
    findings: List[Finding]
    proven: List[str]
    bounds: StaticBounds
    loop_trips: Dict[int, Optional[float]]
    shared_span: Optional[Interval]
    global_span: Optional[Interval]
    outputs: Dict[str, AbstractValue]

    @property
    def ok(self) -> bool:
        """True iff every obligation was discharged."""
        return not self.findings


# --------------------------------------------------------------------------
# the interpreter
# --------------------------------------------------------------------------

_READ_FIELDS = {
    isa.Mov: ("src",),
    isa.Binary: ("a", "b"),
    isa.Unary: ("a",),
    isa.Fma: ("a", "b", "c"),
    isa.Cmp: ("a", "b"),
    isa.Popc: ("a",),
    isa.Ldg: ("addr",),
    isa.Stg: ("addr", "src"),
    isa.Lds: ("addr",),
    isa.Sts: ("addr", "src"),
    isa.ShflDown: ("src",),
    isa.Vote: ("src",),
}


class _Verifier:
    def __init__(
        self,
        program: Sequence[isa.Instruction],
        *,
        shared_words: int,
        global_words: int,
        inputs: Dict[str, AbstractValue],
        name: str,
    ) -> None:
        isa.validate_program(program)
        self.program = list(program)
        self.items = _build_blocks(self.program)
        self.shared_words = shared_words
        self.global_words = global_words
        self.inputs = dict(inputs)
        self.name = name
        self.findings: List[Finding] = []
        self.proven: List[str] = []
        self._seen: Set[tuple] = set()
        self.div_stack: List[bool] = []
        self.mem_worst: Dict[int, float] = {}  # pc -> worst txns / conflicts
        self.loop_trips: Dict[int, Optional[float]] = {}
        self.shared_span: Optional[Interval] = None
        self.global_span: Optional[Interval] = None

    # -- findings ----------------------------------------------------------

    def _flag(self, rule: str, pc: int, message: str, key: tuple) -> None:
        if key in self._seen:
            return
        self._seen.add(key)
        op = type(self.program[pc]).__name__
        self.findings.append(
            Finding(
                rule=rule,
                severity=Severity.ERROR,
                location=f"kernel:{self.name} pc={pc} {op}",
                message=message,
            )
        )

    # -- entry point -------------------------------------------------------

    def run(self) -> VerificationReport:
        state = _State()
        for reg, av in self.inputs.items():
            state.regs[reg] = av
            state.defined.add(reg)
        final = self._exec_items(self.items, state)
        bounds = self._compute_bounds()
        return VerificationReport(
            name=self.name,
            findings=self.findings,
            proven=self.proven,
            bounds=bounds,
            loop_trips=dict(self.loop_trips),
            shared_span=self.shared_span,
            global_span=self.global_span,
            outputs=dict(final.regs) if final.reachable else {},
        )

    # -- structured walk ---------------------------------------------------

    def _exec_items(self, items: List[_Item], state: _State) -> _State:
        for item in items:
            if not state.reachable:
                break
            if isinstance(item, tuple):
                self._exec_instr(item[0], item[1], state)
            elif isinstance(item, _IfBlock):
                state = self._exec_if(item, state)
            else:
                state = self._exec_while(item, state)
        return state

    def _check_reads(self, pc: int, ins: isa.Instruction, state: _State) -> None:
        for fieldname in _READ_FIELDS.get(type(ins), ()):
            op = getattr(ins, fieldname)
            if isinstance(op, str) and op not in state.defined:
                self._flag(
                    "static-uninit-read",
                    pc,
                    f"register {op!r} may be read before assignment on this path",
                    ("uninit", pc, op),
                )
                state.regs.setdefault(op, AbstractValue.top())
                state.defined.add(op)  # report once, keep walking

    def _check_pred_read(self, pc: int, pred: str, state: _State) -> None:
        if pred not in state.defined:
            self._flag(
                "static-uninit-read",
                pc,
                f"predicate {pred!r} may be read before assignment",
                ("uninit", pc, pred),
            )
            state.regs.setdefault(pred, AbstractValue.top())
            state.defined.add(pred)

    def _exec_if(self, blk: _IfBlock, state: _State) -> _State:
        self._check_pred_read(blk.pc, blk.pred, state)
        pred_av = state.value(blk.pred)
        divergent = not pred_av.is_uniform
        then_in = state.copy()
        _assume(then_in, blk.pred, True)
        else_in = state.copy()
        _assume(else_in, blk.pred, False)
        self.div_stack.append(divergent)
        then_out = self._exec_items(blk.then, then_in) if then_in.reachable else then_in
        else_out = self._exec_items(blk.els, else_in) if else_in.reachable else else_in
        self.div_stack.pop()
        return _join_states(then_out, else_out)

    def _exec_while(self, blk: _WhileBlock, state: _State) -> _State:
        self._check_pred_read(blk.pc, blk.pred, state)
        entry = state
        head = state
        entered = False
        for iteration in range(_MAX_FIXPOINT):
            body_in = head.copy()
            _assume(body_in, blk.pred, True)
            if not body_in.reachable:
                break
            entered = True
            divergent = not head.value(blk.pred).is_uniform
            self.div_stack.append(divergent)
            body_out = self._exec_items(blk.body, body_in)
            self.div_stack.pop()
            new_head = _join_states(entry, body_out)
            if _states_equal(new_head, head):
                break
            if iteration >= _WIDEN_AFTER:
                head = _widen_states(head, new_head)
            else:
                head = new_head
        terminates, trips = self._analyze_termination(blk, entry, head, entered)
        self.loop_trips[blk.pc] = 0.0 if not entered else trips
        if entered and not terminates:
            self._flag(
                "static-unbounded-loop",
                blk.pc,
                f"no ranking argument proves While({blk.pred!r}) terminates: "
                "every path through the body must step a ranking register "
                "toward the bound, halve it, or write an exiting constant",
                ("loop", blk.pc),
            )
        elif entered:
            self.proven.append(
                f"pc={blk.pc} While({blk.pred}) terminates"
                + (f" within {int(trips)} iteration(s)" if trips not in (None, _INF) else "")
            )
        exit_state = head.copy()
        _assume(exit_state, blk.pred, False)
        return exit_state

    # -- instructions ------------------------------------------------------

    def _exec_instr(self, pc: int, ins: isa.Instruction, state: _State) -> None:
        self._check_reads(pc, ins, state)
        if isinstance(ins, isa.Mov):
            state.write(ins.dst, state.value(ins.src))
        elif isinstance(ins, isa.LaneId):
            state.write(ins.dst, AbstractValue.lane_id())
        elif isinstance(ins, isa.Binary):
            a, b = state.value(ins.a), state.value(ins.b)
            state.write(ins.dst, binary_transfer(ins.op, a, b))
            if (
                ins.op in ("and", "or")
                and isinstance(ins.a, str)
                and isinstance(ins.b, str)
                and ins.dst not in (ins.a, ins.b)  # self-writes stale the fact
            ):
                state.facts[ins.dst] = _BoolFact(
                    ins.op, ins.a, ins.b, state.snapshot_of(ins.a, ins.b)
                )
        elif isinstance(ins, isa.Unary):
            state.write(ins.dst, unary_transfer(ins.op, state.value(ins.a)))
        elif isinstance(ins, isa.Fma):
            prod = binary_transfer("mul", state.value(ins.a), state.value(ins.b))
            state.write(ins.dst, binary_transfer("add", prod, state.value(ins.c)))
        elif isinstance(ins, isa.Cmp):
            a, b = state.value(ins.a), state.value(ins.b)
            stride = 0.0 if (a.is_uniform and b.is_uniform) else None
            state.write(
                ins.dst, AbstractValue(Interval(0.0, 1.0), Parity.TOP, True, stride)
            )
            if ins.dst not in (ins.a, ins.b):  # self-writes stale the fact
                state.facts[ins.dst] = _CmpFact(
                    ins.rel, ins.a, ins.b, state.snapshot_of(ins.a, ins.b)
                )
        elif isinstance(ins, isa.Popc):
            src = state.value(ins.a)
            stride = 0.0 if src.is_uniform else None
            state.write(
                ins.dst, AbstractValue(Interval(0.0, 64.0), Parity.TOP, True, stride)
            )
        elif isinstance(ins, isa.ShflDown):
            if any(self.div_stack):
                self._flag(
                    "static-divergent-shuffle",
                    pc,
                    "shfl_down inside a potentially divergent control region: "
                    "inactive lanes contribute stale values",
                    ("shfl", pc),
                )
            src = state.value(ins.src)
            stride = 0.0 if src.is_uniform else None
            state.write(
                ins.dst, AbstractValue(src.interval, src.parity, src.integral, stride)
            )
        elif isinstance(ins, isa.Vote):
            interval = (
                Interval(-1.0, float(WARP_SIZE - 1))
                if ins.mode == "ballot_ffs"
                else Interval(0.0, 1.0)
            )
            state.write(ins.dst, AbstractValue(interval, Parity.TOP, True, 0.0))
        elif isinstance(ins, isa.Ldg):
            addr = state.value(ins.addr)
            self._check_mem(pc, addr, "global")
            state.write(ins.dst, self._loaded_value(addr))
        elif isinstance(ins, isa.Lds):
            addr = state.value(ins.addr)
            self._check_mem(pc, addr, "shared")
            state.write(ins.dst, self._loaded_value(addr))
        elif isinstance(ins, isa.Stg):
            self._check_mem(pc, state.value(ins.addr), "global")
        elif isinstance(ins, isa.Sts):
            self._check_mem(pc, state.value(ins.addr), "shared")
        # Else / EndIf / EndWhile never reach here (consumed by the parser).

    @staticmethod
    def _loaded_value(addr: AbstractValue) -> AbstractValue:
        # Memory contents are unknown; a uniform address still yields a
        # uniform value (every lane reads the same word).
        return AbstractValue(
            Interval.top(), Parity.TOP, False, 0.0 if addr.is_uniform else None
        )

    # -- memory obligations ------------------------------------------------

    def _check_mem(self, pc: int, addr: AbstractValue, space: str) -> None:
        budget = self.shared_words if space == "shared" else self.global_words
        as_int = addr.interval.trunc()  # the interpreter casts to int64
        if space == "shared":
            self.shared_span = as_int if self.shared_span is None else self.shared_span.hull(as_int)
            worst = self._worst_conflicts(addr)
        else:
            self.global_span = as_int if self.global_span is None else self.global_span.hull(as_int)
            worst = self._worst_transactions(addr)
        self.mem_worst[pc] = max(self.mem_worst.get(pc, 0.0), worst)
        if as_int.lo < 0.0 or as_int.hi > budget - 1:
            self._flag(
                f"static-oob-{space}",
                pc,
                f"cannot prove {space} address in bounds: derived interval "
                f"[{as_int.lo:g}, {as_int.hi:g}] vs budget [0, {budget - 1}] "
                f"({addr.divergence})",
                (f"oob-{space}", pc),
            )
        else:
            self.proven.append(
                f"pc={pc} {space} access within [{as_int.lo:g}, {as_int.hi:g}] "
                f"⊆ [0, {budget - 1}]"
            )

    @staticmethod
    def _worst_transactions(addr: AbstractValue) -> float:
        """Upper bound on 128-byte transactions for one warp access."""
        if addr.stride is None:
            return float(WARP_SIZE)
        if addr.stride == 0.0:
            return 1.0
        span = (WARP_SIZE - 1) * abs(addr.stride)
        return float(min(WARP_SIZE, int(span // WORDS_PER_TRANSACTION) + 2))

    @staticmethod
    def _worst_conflicts(addr: AbstractValue) -> float:
        """Upper bound on bank-conflict serialisation for one access."""
        if addr.stride is None:
            return float(NUM_BANKS)
        if addr.stride == 0.0:
            return 1.0  # same word on every lane: broadcast
        stride = abs(addr.stride)
        if stride != math.floor(stride):
            return float(NUM_BANKS)
        return float(math.gcd(int(stride), NUM_BANKS))

    # -- termination (ranking-function heuristics) -------------------------

    def _analyze_termination(
        self, blk: _WhileBlock, entry: _State, head: _State, entered: bool
    ) -> Tuple[bool, Optional[float]]:
        if not entered:
            return True, 0.0
        fact = head.facts.get(blk.pred)
        if not isinstance(fact, _CmpFact) or not head.fact_valid(fact):
            return False, None
        if fact.rel in ("lt", "le") and isinstance(fact.a, str):
            var, bound, direction, rel = fact.a, fact.b, "up", fact.rel
        elif fact.rel in ("gt", "ge") and isinstance(fact.a, str):
            var, bound, direction, rel = fact.a, fact.b, "down", fact.rel
        elif fact.rel in ("lt", "le") and isinstance(fact.b, str):
            var, bound, direction, rel = (
                fact.b,
                fact.a,
                "down",
                {"lt": "gt", "le": "ge"}[fact.rel],
            )
        elif fact.rel in ("gt", "ge") and isinstance(fact.b, str):
            var, bound, direction, rel = (
                fact.b,
                fact.a,
                "up",
                {"gt": "lt", "ge": "le"}[fact.rel],
            )
        else:
            return False, None
        if isinstance(bound, str) and self._writes_reg(blk.body, bound):
            return False, None  # bound is not loop-invariant
        bound_iv = head.value(bound).interval
        var_av = head.value(var)
        # Registers never written in the body keep their head-state value,
        # so a constant one works as an immediate in the ranking patterns.
        body_writes = self._written_regs(blk.body)
        consts: Dict[str, float] = {}
        for reg, av in head.regs.items():
            if reg not in body_writes and av.const_value is not None:
                consts[reg] = av.const_value
        ok, min_step, progresses = self._classify_writes(
            blk.body, var, bound_iv, direction, rel, var_av.integral, consts=consts
        )
        if not ok or not progresses or min_step is None:
            return False, None
        entry_iv = entry.value(var).interval
        if direction == "up":
            slack = bound_iv.hi - entry_iv.lo
        else:
            slack = entry_iv.hi - bound_iv.lo
        if not math.isfinite(slack):
            return True, _INF  # terminates, but with no finite trip bound
        trips = max(0.0, math.floor(slack / min_step) + 2.0)
        return True, trips

    def _writes_reg(self, items: List[_Item], reg: str) -> bool:
        for item in items:
            if isinstance(item, tuple):
                if getattr(item[1], "dst", None) == reg:
                    return True
            elif isinstance(item, _IfBlock):
                if self._writes_reg(item.then, reg) or self._writes_reg(item.els, reg):
                    return True
            elif self._writes_reg(item.body, reg):
                return True
        return False

    def _classify_writes(
        self,
        items: List[_Item],
        var: str,
        bound: Interval,
        direction: str,
        rel: str,
        integral: bool,
        sym: Optional[Dict[str, tuple]] = None,
        nested: bool = False,
        consts: Optional[Dict[str, float]] = None,
    ) -> Tuple[bool, Optional[float], bool]:
        """(all writes compliant, min step, every path progresses)."""
        if sym is None:
            sym = {}
        if consts is None:
            consts = {}
        all_ok = True
        min_step: Optional[float] = None
        progresses = False

        def note_step(step: float) -> None:
            nonlocal min_step, progresses
            min_step = step if min_step is None else min(min_step, step)
            progresses = True

        for item in items:
            if isinstance(item, tuple):
                ins = item[1]
                if getattr(ins, "dst", None) == var:
                    step = self._compliant_write(
                        ins, var, bound, direction, rel, integral, sym, consts
                    )
                    if step is None:
                        all_ok = False
                    else:
                        note_step(step)
                    sym[var] = _OPAQUE  # later halving exprs on stale var invalid
                else:
                    _sym_step(sym, ins)
            elif isinstance(item, _IfBlock):
                t_ok, t_step, t_prog = self._classify_writes(
                    item.then, var, bound, direction, rel, integral, dict(sym),
                    nested, consts,
                )
                e_ok, e_step, e_prog = self._classify_writes(
                    item.els, var, bound, direction, rel, integral, dict(sym),
                    nested, consts,
                )
                all_ok = all_ok and t_ok and e_ok
                if t_prog and e_prog:
                    steps = [s for s in (t_step, e_step) if s is not None]
                    note_step(min(steps))
                # Conservatively forget expressions after a branch.
                for written in self._written_regs(item.then) | self._written_regs(item.els):
                    sym[written] = _OPAQUE
            else:  # nested While: may run zero times — no progress credit
                n_ok, _, _ = self._classify_writes(
                    item.body, var, bound, direction, rel, integral, dict(sym),
                    True, consts,
                )
                all_ok = all_ok and n_ok
                for written in self._written_regs(item.body):
                    sym[written] = _OPAQUE
        return all_ok, min_step, progresses

    def _written_regs(self, items: List[_Item]) -> Set[str]:
        regs: Set[str] = set()
        for item in items:
            if isinstance(item, tuple):
                dst = getattr(item[1], "dst", None)
                if isinstance(dst, str):
                    regs.add(dst)
            elif isinstance(item, _IfBlock):
                regs |= self._written_regs(item.then) | self._written_regs(item.els)
            else:
                regs |= self._written_regs(item.body)
        return regs

    def _compliant_write(
        self,
        ins: isa.Instruction,
        var: str,
        bound: Interval,
        direction: str,
        rel: str,
        integral: bool,
        sym: Dict[str, tuple],
        consts: Dict[str, float],
    ) -> Optional[float]:
        """The guaranteed progress of one write to ``var``, else None."""

        def resolve(operand) -> Optional[float]:
            if isinstance(operand, (int, float)):
                return float(operand)
            return consts.get(operand)

        # Pattern 1: additive counter — var = var ± positive constant
        # (immediate or loop-invariant constant register).
        if isinstance(ins, isa.Binary) and ins.op in ("add", "sub"):
            operands = (ins.a, ins.b) if ins.op == "add" else (ins.a,)
            if var in operands:
                other = ins.b if ins.a == var else ins.a
                value = resolve(other)
                if value is not None:
                    delta = value if ins.op == "add" else -value
                    if direction == "up" and delta > 0.0:
                        return delta
                    if direction == "down" and delta < 0.0:
                        return -delta
        # Pattern 2: exit write — a constant that falsifies the predicate
        # for every admissible bound value.
        const: Optional[float] = None
        if isinstance(ins, isa.Mov):
            const = resolve(ins.src)
        if const is not None and not bound.is_empty:
            falsifies = {
                "lt": const >= bound.hi,
                "le": const > bound.hi,
                "gt": const <= bound.lo,
                "ge": const < bound.lo,
            }.get(rel, False)
            if falsifies and math.isfinite(bound.hi if direction == "up" else bound.lo):
                return _INF  # exits immediately: no trip contribution
        # Pattern 3: halving — var = [floor]((var - c) * f), c ≥ 1,
        # 0 < f ≤ 1 (sound for down loops over integral var with bound ≥ 0).
        if (
            direction == "down"
            and integral
            and bound.lo >= 0.0
            and isinstance(ins, (isa.Mov, isa.Binary, isa.Unary))
        ):
            expr: Optional[tuple] = None
            if isinstance(ins, isa.Mov) and isinstance(ins.src, str):
                expr = _sym_of(sym, ins.src)
            elif isinstance(ins, isa.Unary) and ins.op == "floor":
                expr = ("floor", _sym_of(sym, ins.a))
            elif isinstance(ins, isa.Binary) and ins.op in ("mul", "sub"):
                expr = (ins.op, _sym_of(sym, ins.a), _sym_of(sym, ins.b))
            if expr is not None and expr != _OPAQUE and _match_halving(expr, var):
                return 1.0
        return None

    # -- static resource bounds --------------------------------------------

    def _compute_bounds(self) -> StaticBounds:
        cycles, txns, shfl = self._cost_items(self.items)

        def finite(x: float) -> Optional[float]:
            return x if math.isfinite(x) else None

        return StaticBounds(finite(cycles), finite(txns), finite(shfl))

    def _cost_items(self, items: List[_Item]) -> Tuple[float, float, float]:
        cycles = txns = shfl = 0.0
        for item in items:
            if isinstance(item, tuple):
                pc, ins = item
                if isinstance(ins, (isa.Ldg, isa.Stg)):
                    t = self.mem_worst.get(pc, float(WARP_SIZE))
                    txns += t
                    cycles += t + (GLOBAL_LATENCY if isinstance(ins, isa.Ldg) else 0.0)
                elif isinstance(ins, (isa.Lds, isa.Sts)):
                    c = self.mem_worst.get(pc, float(NUM_BANKS))
                    cycles += c + (SHARED_LATENCY if isinstance(ins, isa.Lds) else 0.0)
                else:
                    cycles += 1.0
                    if isinstance(ins, isa.ShflDown):
                        shfl += 1.0
            elif isinstance(item, _IfBlock):
                c, t, s = self._cost_items(item.then)
                ce, te, se = self._cost_items(item.els)
                # 1 for If, 1 for EndIf, 1 for Else when present; both
                # branches charged (divergent warps execute both).
                cycles += 2.0 + (1.0 if item.has_else else 0.0) + c + ce
                txns += t + te
                shfl += s + se
            else:
                trips = self.loop_trips.get(item.pc, 0.0)
                t_count = _INF if trips is None else trips
                c, t, s = self._cost_items(item.body)
                # trips+1 head evaluations, one EndWhile per iteration.
                cycles += (t_count + 1.0) + t_count * (c + 1.0)
                txns += t_count * t
                shfl += t_count * s
        return cycles, txns, shfl


def verify_program(
    program: Sequence[isa.Instruction],
    *,
    shared_words: int,
    global_words: int,
    inputs: Optional[Dict[str, AbstractValue]] = None,
    name: str = "<program>",
) -> VerificationReport:
    """Statically verify one ISA program without executing it.

    ``inputs`` maps externally-initialised registers to their abstract
    values (anything unlisted is treated as undefined and will trip the
    def-before-use check on first read).  Returns a
    :class:`VerificationReport` whose ``findings`` are empty iff every
    proof obligation was discharged.
    """
    return _Verifier(
        program,
        shared_words=shared_words,
        global_words=global_words,
        inputs=inputs or {},
        name=name,
    ).run()
