"""Deliberately broken kernels the verifier must reject *statically*.

These are the negative fixtures behind the CI gate: each one violates a
proof obligation in a way PR 3's trace sanitizer could only catch on a
lucky concrete input, while the abstract interpreter refutes it for all
inputs without executing a single instruction.  ``iter_known_bad_specs``
packages them as registry specs so ``python -m repro.analysis --verify
--include-known-bad`` (and the paired ci.sh check) can assert the gate
actually fails when a proof is violated.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.simt.isa import (
    Binary,
    Cmp,
    EndIf,
    EndWhile,
    If,
    Instruction,
    LaneId,
    Mov,
    ShflDown,
    Sts,
    While,
)

__all__ = [
    "unguarded_heap_push_kernel",
    "oob_unbounded_index_kernel",
    "divergent_shuffle_kernel",
    "iter_known_bad_specs",
]


def unguarded_heap_push_kernel(heap_capacity: int = 16) -> List[Instruction]:
    """The PR 3 regression: heap push without the ``has_room`` guard.

    With ``heap_size`` anywhere in ``[0, capacity]`` the id-slot store at
    ``heap_base + capacity + heap_size`` can reach word ``2 * capacity``,
    one past the declared two-array budget — an off-by-one the verifier
    refutes with a counterexample interval instead of hoping a trace
    happens to start from a full heap.
    """
    return [
        LaneId("lane"),
        Mov("zero", 0.0),
        Cmp("eq", "is_lane0", "lane", "zero"),
        If("is_lane0"),
        Binary("add", "addr_dist", "heap_base", "heap_size"),
        Sts("addr_dist", "new_dist"),
        Mov("cap", float(heap_capacity)),
        Binary("add", "addr_id", "addr_dist", "cap"),
        Sts("addr_id", "new_id"),
        Mov("one", 1.0),
        Binary("add", "heap_size_out", "heap_size", "one"),
        EndIf(),
    ]


def oob_unbounded_index_kernel(bound: int = 100) -> List[Instruction]:
    """A scan whose loop index provably escapes the shared budget.

    Every lane walks ``i`` from its lane id up to ``bound`` storing into
    ``shared[i]``; the loop terminates (additive ranking function), but
    with a 32-word budget the address interval reaches ``bound - 1``, so
    the store is out of bounds for all but tiny bounds.
    """
    return [
        LaneId("i"),
        Mov("limit", float(bound)),
        Mov("one", 1.0),
        Cmp("lt", "more", "i", "limit"),
        While("more"),
        Sts("i", "one"),
        Binary("add", "i", "i", "one"),
        Cmp("lt", "more", "i", "limit"),
        EndWhile(),
    ]


def divergent_shuffle_kernel() -> List[Instruction]:
    """A warp shuffle issued under a divergent mask.

    Half the warp is inactive when ``ShflDown`` executes, so lanes 8..15
    read from disabled lanes — undefined on real hardware.  The
    divergence lattice proves the guard is lane-varying, so the verifier
    flags the shuffle without needing any trace.
    """
    return [
        LaneId("lane"),
        Mov("acc", 1.0),
        Mov("half", 16.0),
        Cmp("lt", "low_half", "lane", "half"),
        If("low_half"),
        ShflDown("other", "acc", 8),
        Binary("add", "acc", "acc", "other"),
        EndIf(),
    ]


def iter_known_bad_specs() -> Iterator["KernelSpec"]:
    """Registry specs for the known-bad kernels (verify-only; never traced).

    Each spec reuses the registry plumbing — name, program factory,
    budgets, ``verify_ranges`` — but is consumed exclusively by
    ``verify_kernel``; running one through the trace sanitizer would
    defeat the point of a *static* gate.
    """
    from repro.analysis.registry import KernelSpec
    from repro.simt.simulator import WarpSimulator

    def _wrap(program: List[Instruction], shared_words: int):
        def make(tracer=None) -> WarpSimulator:
            shared = np.zeros(max(shared_words, 1))
            return WarpSimulator(
                program, global_mem=np.zeros(8), shared_mem=shared, tracer=tracer
            )

        return make

    cap = 16
    yield KernelSpec(
        name="bad_heap_push_unguarded",
        make=_wrap(unguarded_heap_push_kernel(cap), 2 * cap),
        shared_words=2 * cap,
        verify_ranges={
            "heap_size": (0.0, float(cap)),
            "heap_base": (0.0, 0.0),
            "new_dist": (0.0, 1.0),
            "new_id": (0.0, 63.0),
        },
    )
    yield KernelSpec(
        name="bad_oob_unbounded_index",
        make=_wrap(oob_unbounded_index_kernel(), 32),
        shared_words=32,
    )
    yield KernelSpec(
        name="bad_divergent_shuffle",
        make=_wrap(divergent_shuffle_kernel(), 0),
        shared_words=0,
    )
