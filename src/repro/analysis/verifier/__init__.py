"""Static SIMT verifier: abstract interpretation + invariant proofs.

Where PR 3's sanitizer replays one concrete trace, this package proves
properties of :mod:`repro.simt.isa` programs for *all* inputs:

* :mod:`~repro.analysis.verifier.domain` — the abstract value domain:
  intervals, parity, integrality, and a lane-stride divergence lattice
  (uniform / lane-affine / divergent);
* :mod:`~repro.analysis.verifier.absint` — the structured abstract
  interpreter with widening, predicate refinement, ranking-function
  termination proofs, and static cycle/transaction upper bounds;
* :mod:`~repro.analysis.verifier.invariants` — SONG Theorem 1–3
  data-structure invariant checks over the real search loop;
* :mod:`~repro.analysis.verifier.fixtures` — known-bad kernels the CI
  gate must statically reject.

Entry points: :func:`verify_program` for raw programs,
:func:`repro.analysis.registry.verify_kernel` for registered specs, and
``python -m repro.analysis --verify`` for the CLI/CI gate.  See
DESIGN.md Section 10.
"""

from repro.analysis.verifier.absint import (
    StaticBounds,
    VerificationReport,
    verify_program,
)
from repro.analysis.verifier.domain import AbstractValue, Interval, Parity
from repro.analysis.verifier.fixtures import (
    divergent_shuffle_kernel,
    iter_known_bad_specs,
    oob_unbounded_index_kernel,
    unguarded_heap_push_kernel,
)
from repro.analysis.verifier.invariants import (
    check_all_invariants,
    check_bounded_queue,
    check_search_invariants,
)

__all__ = [
    "AbstractValue",
    "Interval",
    "Parity",
    "StaticBounds",
    "VerificationReport",
    "verify_program",
    "check_all_invariants",
    "check_bounded_queue",
    "check_search_invariants",
    "iter_known_bad_specs",
    "unguarded_heap_push_kernel",
    "oob_unbounded_index_kernel",
    "divergent_shuffle_kernel",
]
