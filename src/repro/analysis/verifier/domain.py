"""Abstract domains for the static SIMT verifier.

Three cooperating domains describe the values a register can hold across
the 32 lanes of a warp *without executing the program*:

* an **interval** — a closed range ``[lo, hi]`` over-approximating every
  lane's value on every input the kernel admits;
* a **parity** — even / odd / unknown, tracked only for values proven
  integral (heap index arithmetic is parity-sensitive: ``(i - 1) / 2``);
* a **divergence class** — the lattice ``uniform ⊑ lane-affine ⊑
  divergent``, encoded as an optional exact per-lane stride: a register
  is *uniform* when every lane provably holds the same value (stride
  ``0``), *lane-affine* when lane ℓ holds ``base + ℓ·stride`` for a
  known constant stride, and *divergent* (stride ``None``) otherwise.

The stride encoding is what makes the memory checks precise: a
lane-affine address with stride 1 coalesces into at most two 128-byte
transactions and is bank-conflict free, facts the cost-bound pass uses
without ever materialising 32 concrete addresses.

Transfer functions mirror :mod:`repro.simt.simulator` semantics: bit
operations truncate to int64 (so their results are integral), ``floor``
is an identity on proven-integral values, and division by an interval
containing zero degrades to ⊤ rather than guessing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "Interval",
    "Parity",
    "AbstractValue",
    "binary_transfer",
    "unary_transfer",
]

_INF = float("inf")


class Parity:
    """The even/odd lattice; meaningful only for integral values."""

    BOTTOM = "bottom"
    EVEN = "even"
    ODD = "odd"
    TOP = "top"

    @staticmethod
    def of(value: float) -> str:
        """Parity of one concrete value (TOP for non-integers)."""
        if value != math.floor(value):
            return Parity.TOP
        return Parity.EVEN if int(value) % 2 == 0 else Parity.ODD

    @staticmethod
    def join(a: str, b: str) -> str:
        """Least upper bound."""
        if a == Parity.BOTTOM:
            return b
        if b == Parity.BOTTOM:
            return a
        return a if a == b else Parity.TOP

    @staticmethod
    def add(a: str, b: str) -> str:
        """Parity of a sum (also of a difference)."""
        if Parity.TOP in (a, b) or Parity.BOTTOM in (a, b):
            return Parity.TOP
        return Parity.EVEN if a == b else Parity.ODD

    @staticmethod
    def mul(a: str, b: str) -> str:
        """Parity of a product."""
        if Parity.EVEN in (a, b):
            return Parity.EVEN
        if a == Parity.ODD and b == Parity.ODD:
            return Parity.ODD
        return Parity.TOP


def _mul_bound(x: float, y: float) -> float:
    # 0 * inf arises only from a genuinely-zero factor: the product of the
    # underlying concrete values is 0, not NaN.
    if x == 0.0 or y == 0.0:
        return 0.0
    return x * y


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]``; ``lo > hi`` encodes ⊥ (empty)."""

    lo: float
    hi: float

    # -- construction ------------------------------------------------------

    @staticmethod
    def top() -> "Interval":
        """The unconstrained interval (−∞, +∞)."""
        return Interval(-_INF, _INF)

    @staticmethod
    def const(v: float) -> "Interval":
        """The degenerate interval [v, v]."""
        return Interval(float(v), float(v))

    @staticmethod
    def empty() -> "Interval":
        """The empty interval (⊥)."""
        return Interval(_INF, -_INF)

    # -- predicates --------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True iff no concrete value is admitted."""
        return self.lo > self.hi

    @property
    def is_const(self) -> bool:
        """True iff exactly one (finite) value is admitted."""
        return self.lo == self.hi and math.isfinite(self.lo)

    def contains(self, v: float) -> bool:
        """Membership test."""
        return self.lo <= v <= self.hi

    # -- lattice -----------------------------------------------------------

    def hull(self, other: "Interval") -> "Interval":
        """Join: smallest interval containing both."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "Interval") -> "Interval":
        """Intersection."""
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def widen(self, newer: "Interval") -> "Interval":
        """Standard interval widening: jump unstable endpoints to ±∞."""
        if self.is_empty:
            return newer
        if newer.is_empty:
            return self
        lo = self.lo if newer.lo >= self.lo else -_INF
        hi = self.hi if newer.hi <= self.hi else _INF
        return Interval(lo, hi)

    # -- arithmetic --------------------------------------------------------

    def add(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def sub(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def neg(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def mul(self, other: "Interval") -> "Interval":
        products = [
            _mul_bound(self.lo, other.lo),
            _mul_bound(self.lo, other.hi),
            _mul_bound(self.hi, other.lo),
            _mul_bound(self.hi, other.hi),
        ]
        return Interval(min(products), max(products))

    def div(self, other: "Interval") -> "Interval":
        if other.contains(0.0):
            return Interval.top()
        quotients = [
            self.lo / other.lo,
            self.lo / other.hi,
            self.hi / other.lo,
            self.hi / other.hi,
        ]
        return Interval(min(quotients), max(quotients))

    def minimum(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), min(self.hi, other.hi))

    def maximum(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), max(self.hi, other.hi))

    def floor(self) -> "Interval":
        lo = math.floor(self.lo) if math.isfinite(self.lo) else self.lo
        hi = math.floor(self.hi) if math.isfinite(self.hi) else self.hi
        return Interval(lo, hi)

    def trunc(self) -> "Interval":
        """int64-cast semantics (toward zero) — what address casts apply."""
        lo = math.trunc(self.lo) if math.isfinite(self.lo) else self.lo
        hi = math.trunc(self.hi) if math.isfinite(self.hi) else self.hi
        return Interval(lo, hi)

    def absolute(self) -> "Interval":
        if self.lo >= 0.0:
            return self
        if self.hi <= 0.0:
            return self.neg()
        return Interval(0.0, max(-self.lo, self.hi))


# --------------------------------------------------------------------------
# abstract values (interval × parity × divergence)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class AbstractValue:
    """One register's abstraction across all 32 lanes.

    ``stride`` encodes the divergence lattice: ``0.0`` — uniform (every
    lane equal); a nonzero float — lane-affine (lane ℓ = base + ℓ·stride
    exactly); ``None`` — divergent (no cross-lane relation known).
    ``parity`` is only meaningful when ``integral`` is True.
    """

    interval: Interval
    parity: str = Parity.TOP
    integral: bool = False
    stride: Optional[float] = None

    # -- constructors ------------------------------------------------------

    @staticmethod
    def top() -> "AbstractValue":
        """No information: any value, any lane pattern."""
        return AbstractValue(Interval.top())

    @staticmethod
    def const(v: float) -> "AbstractValue":
        """An immediate: the same known value on every lane."""
        v = float(v)
        integral = math.isfinite(v) and v == math.floor(v)
        return AbstractValue(
            Interval.const(v),
            parity=Parity.of(v) if integral else Parity.TOP,
            integral=integral,
            stride=0.0,
        )

    @staticmethod
    def lane_id() -> "AbstractValue":
        """The ``LaneId`` result: 0..31 with exact stride 1."""
        return AbstractValue(Interval(0.0, 31.0), Parity.TOP, True, 1.0)

    @staticmethod
    def uniform_range(lo: float, hi: float, integral: bool = True) -> "AbstractValue":
        """A uniform input whose (single) value lies anywhere in [lo, hi]."""
        return AbstractValue(Interval(float(lo), float(hi)), Parity.TOP, integral, 0.0)

    @staticmethod
    def from_lanes(values: np.ndarray) -> "AbstractValue":
        """Abstract one concrete 32-lane register (a simulator input)."""
        arr = np.asarray(values, dtype=np.float64)
        lo, hi = float(arr.min()), float(arr.max())
        integral = bool(np.all(arr == np.floor(arr)))
        parity = Parity.TOP
        if integral:
            mods = np.mod(arr, 2.0)
            if np.all(mods == 0.0):
                parity = Parity.EVEN
            elif np.all(mods == 1.0):
                parity = Parity.ODD
        diffs = np.diff(arr)
        stride: Optional[float] = None
        if diffs.size == 0 or np.all(diffs == diffs[0]):
            stride = float(diffs[0]) if diffs.size else 0.0
        return AbstractValue(Interval(lo, hi), parity, integral, stride)

    # -- divergence queries ------------------------------------------------

    @property
    def is_uniform(self) -> bool:
        """True iff every lane provably holds the same value."""
        return self.stride == 0.0

    @property
    def divergence(self) -> str:
        """Human-readable divergence class."""
        if self.stride == 0.0:
            return "uniform"
        if self.stride is not None:
            return "lane-affine"
        return "divergent"

    @property
    def const_value(self) -> Optional[float]:
        """The single concrete value, when uniform and degenerate."""
        if self.is_uniform and self.interval.is_const:
            return self.interval.lo
        return None

    # -- lattice -----------------------------------------------------------

    def join(self, other: "AbstractValue") -> "AbstractValue":
        """Least upper bound (at reconvergence points)."""
        if self.interval.is_empty:
            return other
        if other.interval.is_empty:
            return self
        return AbstractValue(
            self.interval.hull(other.interval),
            Parity.join(self.parity, other.parity),
            self.integral and other.integral,
            self.stride if self.stride == other.stride else None,
        )

    def widen(self, newer: "AbstractValue") -> "AbstractValue":
        """Widening join for loop heads."""
        if self.interval.is_empty:
            return newer
        if newer.interval.is_empty:
            return self
        return AbstractValue(
            self.interval.widen(newer.interval),
            Parity.join(self.parity, newer.parity),
            self.integral and newer.integral,
            self.stride if self.stride == newer.stride else None,
        )

    def with_interval(self, interval: Interval) -> "AbstractValue":
        """Same value with a refined interval (predicate narrowing)."""
        return replace(self, interval=interval)


# --------------------------------------------------------------------------
# transfer functions
# --------------------------------------------------------------------------


def _stride_mul(a: AbstractValue, b: AbstractValue) -> Optional[float]:
    if a.const_value is not None and b.stride is not None:
        return b.stride * a.const_value
    if b.const_value is not None and a.stride is not None:
        return a.stride * b.const_value
    if a.stride == 0.0 and b.stride == 0.0:
        return 0.0
    return None


def _bitop(op: str, a: AbstractValue, b: AbstractValue) -> AbstractValue:
    # The interpreter casts both operands to int64, so results are
    # integral regardless of inputs; bounds hold only for non-negatives.
    ai, bi = a.interval.trunc(), b.interval.trunc()
    stride = 0.0 if (a.stride == 0.0 and b.stride == 0.0) else None
    nonneg = ai.lo >= 0.0 and bi.lo >= 0.0
    if op == "and":
        interval = Interval(0.0, min(ai.hi, bi.hi)) if nonneg else Interval.top()
        parity = (
            Parity.EVEN
            if Parity.EVEN in (a.parity, b.parity)
            else Parity.mul(a.parity, b.parity)
        )
    elif op in ("or", "xor"):
        # a|b ≤ a+b and a^b ≤ a|b for non-negative integers (no carries).
        interval = Interval(0.0, ai.hi + bi.hi) if nonneg else Interval.top()
        if op == "xor":
            parity = Parity.add(a.parity, b.parity)
        else:
            parity = (
                Parity.ODD
                if Parity.ODD in (a.parity, b.parity)
                else Parity.add(a.parity, b.parity)
            )
    elif op == "shl":
        if nonneg and b.const_value is not None:
            interval = ai.mul(Interval.const(2.0 ** b.const_value))
        else:
            interval = Interval.top() if not nonneg else Interval(0.0, _INF)
        parity = Parity.TOP
    else:  # shr
        if nonneg and b.const_value is not None:
            interval = ai.div(Interval.const(2.0 ** b.const_value)).floor()
        else:
            interval = Interval(0.0, ai.hi) if nonneg else Interval.top()
        parity = Parity.TOP
    return AbstractValue(interval, parity, True, stride)


def binary_transfer(op: str, a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Abstract semantics of ``Binary(op, ·, ·)``."""
    if op == "add":
        stride = None if (a.stride is None or b.stride is None) else a.stride + b.stride
        return AbstractValue(
            a.interval.add(b.interval),
            Parity.add(a.parity, b.parity),
            a.integral and b.integral,
            stride,
        )
    if op == "sub":
        stride = None if (a.stride is None or b.stride is None) else a.stride - b.stride
        return AbstractValue(
            a.interval.sub(b.interval),
            Parity.add(a.parity, b.parity),
            a.integral and b.integral,
            stride,
        )
    if op == "mul":
        return AbstractValue(
            a.interval.mul(b.interval),
            Parity.mul(a.parity, b.parity),
            a.integral and b.integral,
            _stride_mul(a, b),
        )
    if op == "div":
        stride: Optional[float] = None
        if b.const_value not in (None, 0.0) and a.stride is not None:
            stride = a.stride / b.const_value
        elif a.stride == 0.0 and b.stride == 0.0:
            stride = 0.0
        return AbstractValue(a.interval.div(b.interval), Parity.TOP, False, stride)
    if op in ("min", "max"):
        interval = (
            a.interval.minimum(b.interval)
            if op == "min"
            else a.interval.maximum(b.interval)
        )
        stride = 0.0 if (a.stride == 0.0 and b.stride == 0.0) else None
        return AbstractValue(
            interval,
            Parity.join(a.parity, b.parity) if a.integral and b.integral else Parity.TOP,
            a.integral and b.integral,
            stride,
        )
    if op in ("and", "or", "xor", "shl", "shr"):
        return _bitop(op, a, b)
    raise ValueError(f"unknown binary op {op!r}")


def unary_transfer(op: str, a: AbstractValue) -> AbstractValue:
    """Abstract semantics of ``Unary(op, ·)``."""
    if op == "neg":
        stride = None if a.stride is None else -a.stride
        return AbstractValue(a.interval.neg(), a.parity, a.integral, stride)
    if op == "abs":
        if a.interval.lo >= 0.0:
            return a
        if a.interval.hi <= 0.0:
            return unary_transfer("neg", a)
        stride = 0.0 if a.stride == 0.0 else None
        return AbstractValue(a.interval.absolute(), Parity.TOP, a.integral, stride)
    if op == "floor":
        if a.integral:  # floor is the identity on integral values
            return a
        stride = 0.0 if a.stride == 0.0 else None
        return AbstractValue(a.interval.floor(), Parity.TOP, True, stride)
    if op == "sqrt":
        lo = math.sqrt(a.interval.lo) if a.interval.lo > 0.0 else 0.0
        hi = math.sqrt(a.interval.hi) if a.interval.hi > 0.0 else 0.0
        stride = 0.0 if a.stride == 0.0 else None
        return AbstractValue(Interval(lo, hi), Parity.TOP, False, stride)
    if op == "rsqrt":
        stride = 0.0 if a.stride == 0.0 else None
        return AbstractValue(Interval.top(), Parity.TOP, False, stride)
    raise ValueError(f"unknown unary op {op!r}")
