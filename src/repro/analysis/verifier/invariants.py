"""Symbolic checks of SONG's Theorem 1–3 data-structure invariants.

The paper's memory optimizations rest on three claims:

**Theorem 1 (bounded queue).** Capping the frontier queue ``q`` at
``K = queue_size`` entries and evicting the maximum on overflow never
changes the search result; in particular ``|q| ≤ K`` always holds and
every eviction is exactly the queue's current maximum.

**Theorem 2 (selected insertion).** Once ``topk`` is full, a candidate
at distance ≥ the current top-K bound can never enter the final result,
so it is neither marked visited nor enqueued.

**Theorem 3 (visited deletion).** With a deletable filter, a vertex is
removed from ``visited`` the moment it leaves ``q ∪ topk``; therefore
``visited ⊆ q ∪ topk`` and ``|visited| ≤ 2K`` throughout the search.

:func:`check_bounded_queue` model-checks Theorem 1 against the real
:class:`~repro.structures.minmax_heap.BoundedPriorityQueue` by
bounded-exhaustive enumeration of operation sequences against a sorted
reference model (including the min-max heap's structural level
property).  :func:`check_search_invariants` proves Theorems 1–3 over
the *actual stage loop*: it instruments :class:`~repro.core.song.
SongSearcher` (the production descendant of ``core/algorithm1.py``)
with a recording subclass and a stage-boundary meter, runs real
searches, and validates every recorded state.  Both checkers accept
injectable structure/searcher classes so the refutation tests can prove
they fire on deliberately broken variants.

All findings carry ``error`` severity: an invariant violation means the
paper's correctness argument does not hold for this code.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.findings import Finding, Severity
from repro.core.config import SearchConfig
from repro.core.song import SongSearcher
from repro.core.stages import NullMeter
from repro.graphs.bruteforce_knn import build_knn_graph
from repro.structures.minmax_heap import BoundedPriorityQueue, _is_min_level
from repro.structures.visited import VisitedBackend

__all__ = [
    "check_bounded_queue",
    "check_search_invariants",
    "check_all_invariants",
]


def _finding(rule: str, location: str, message: str) -> Finding:
    return Finding(rule=rule, severity=Severity.ERROR, location=location, message=message)


# --------------------------------------------------------------------------
# Theorem 1: bounded-exhaustive model check of the queue structure
# --------------------------------------------------------------------------


def _heap_property_violation(items: Sequence[Tuple[float, int]]) -> Optional[str]:
    """Check the min-max level property over the flat array, if exposed."""
    for i, entry in enumerate(items):
        j = (i - 1) >> 1
        while j >= 0:
            anc = items[j]
            if _is_min_level(j) and entry < anc:
                return f"index {i} {entry} below min-level ancestor {j} {anc}"
            if not _is_min_level(j) and entry > anc:
                return f"index {i} {entry} above max-level ancestor {j} {anc}"
            j = (j - 1) >> 1 if j else -1
    return None


def check_bounded_queue(
    queue_factory: Optional[Callable[[int], object]] = None,
    capacity: int = 3,
    depth: int = 5,
    values: Iterable[float] = (0.5, 1.5, 2.5, 3.5),
    max_findings: int = 3,
) -> List[Finding]:
    """Model-check Theorem 1 on the bounded queue implementation.

    Enumerates every operation sequence of length ``depth`` over
    ``push(v)`` for each value plus ``pop_min`` / ``pop_max``, replaying
    each against a sorted-list reference model, and reports any state
    where ``|q|`` exceeds ``capacity``, an eviction is not the true
    maximum, a pop/peek disagrees with the model, or the min-max heap's
    level property is broken.  Pass a broken ``queue_factory`` to watch
    it fire (the refutation tests do).
    """
    factory = queue_factory or BoundedPriorityQueue
    loc = "structures/minmax_heap.py:BoundedPriorityQueue"
    findings: List[Finding] = []
    ops: List[Tuple[str, Optional[float]]] = [("push", v) for v in values]
    ops += [("pop_min", None), ("pop_max", None)]

    for sequence in itertools.product(ops, repeat=depth):
        queue = factory(capacity)
        model: List[Tuple[float, int]] = []
        trace: List[str] = []
        next_id = 0
        for op, value in sequence:
            if op == "push":
                assert value is not None
                entry = (value, next_id)
                next_id += 1
                trace.append(f"push{entry}")
                evicted = queue.push(*entry)
                if len(model) < capacity:
                    model.append(entry)
                    expected = None
                elif entry >= max(model):
                    expected = entry
                else:
                    expected = max(model)
                    model.remove(expected)
                    model.append(entry)
                model.sort()
                if evicted != expected:
                    findings.append(_finding(
                        "invariant-bounded-queue", loc,
                        f"eviction mismatch after {' '.join(trace)}: "
                        f"got {evicted}, expected {expected}",
                    ))
            else:
                if not model:
                    continue  # popping empty is out of the theorem's scope
                trace.append(op)
                expected = model.pop(0 if op == "pop_min" else -1)
                got = queue.pop_min() if op == "pop_min" else queue.pop_max()
                if got != expected:
                    findings.append(_finding(
                        "invariant-bounded-queue", loc,
                        f"{op} mismatch after {' '.join(trace)}: "
                        f"got {got}, expected {expected}",
                    ))
            if len(queue) > capacity:
                findings.append(_finding(
                    "invariant-bounded-queue", loc,
                    f"|q| = {len(queue)} exceeds capacity {capacity} "
                    f"after {' '.join(trace)} (Theorem 1 violated)",
                ))
            if len(queue) != len(model):
                findings.append(_finding(
                    "invariant-bounded-queue", loc,
                    f"size drift after {' '.join(trace)}: "
                    f"|q| = {len(queue)}, model has {len(model)}",
                ))
            heap = getattr(queue, "_heap", None)
            items = getattr(heap, "_items", None)
            if items is not None:
                why = _heap_property_violation(items)
                if why is not None:
                    findings.append(_finding(
                        "invariant-bounded-queue", loc,
                        f"min-max level property broken after "
                        f"{' '.join(trace)}: {why}",
                    ))
            if len(findings) >= max_findings:
                return findings
        if model and len(findings) < max_findings:
            sorted_q = sorted(queue.to_sorted_list())
            if sorted_q != model:
                findings.append(_finding(
                    "invariant-bounded-queue", loc,
                    f"content mismatch after {' '.join(trace)}: "
                    f"queue {sorted_q}, model {model}",
                ))
    return findings


# --------------------------------------------------------------------------
# Theorems 1–3 over the real stage loop
# --------------------------------------------------------------------------


class _Recorder:
    """Shared mutable record the monitored searcher and meter fill in."""

    def __init__(self) -> None:
        self.frontier = None
        self.topk = None
        self.visited = None
        self.push_events: List[Tuple[float, bool, float]] = []
        self.snapshots: List[Tuple[int, int, bool, int]] = []
        # (|frontier|, |visited|, visited ⊆ q ∪ topk, iteration index)
        self._iteration = 0

    def snapshot(self) -> None:
        if self.frontier is None or self.topk is None or self.visited is None:
            return
        in_structures = {v for _, v in self.topk.to_sorted_list()}
        in_structures |= {v for _, v in self.frontier.to_sorted_list()}
        subset = set(self.visited._shadow) <= in_structures
        self.snapshots.append(
            (len(self.frontier), len(self.visited), subset, self._iteration)
        )
        self._iteration += 1


class _StageMeter(NullMeter):
    """Fires an invariant snapshot at the start of every search iteration."""

    def __init__(self, recorder: _Recorder) -> None:
        self._recorder = recorder

    def stage(self, name: str) -> None:
        if name == "locate":
            self._recorder.snapshot()


def _monitored(searcher_cls: type) -> type:
    """A subclass of ``searcher_cls`` that records structure states."""

    class _Monitored(searcher_cls):  # type: ignore[misc, valid-type]
        _recorder: _Recorder

        def _make_frontier(self, config):
            frontier = searcher_cls._make_frontier(config)
            self._recorder.frontier = frontier
            return frontier

        def _frontier_push(self, frontier, dist, vertex, topk, visited, config, meter):
            self._recorder.topk = topk
            self._recorder.visited = visited
            self._recorder.push_events.append(
                (dist, topk.is_full(), topk.worst_distance() if len(topk) else float("inf"))
            )
            super()._frontier_push(frontier, dist, vertex, topk, visited, config, meter)

        def _topk_push(self, topk, dist, vertex, visited, config, meter):
            self._recorder.topk = topk
            self._recorder.visited = visited
            super()._topk_push(topk, dist, vertex, visited, config, meter)

    return _Monitored


def check_search_invariants(
    config: Optional[SearchConfig] = None,
    searcher_cls: type = SongSearcher,
    num_points: int = 96,
    num_queries: int = 6,
    dim: int = 8,
    seed: int = 5,
    max_findings: int = 4,
) -> List[Finding]:
    """Prove Theorems 1–3 over recorded runs of the real search loop.

    Builds a small exact kNN graph, runs ``num_queries`` searches through
    an instrumented ``searcher_cls``, and checks every recorded state:

    * Theorem 1 — ``|q| ≤ queue_size`` at every iteration boundary;
    * Theorem 2 — no frontier push ever carried a distance ≥ the current
      top-K bound while ``topk`` was full;
    * Theorem 3 — ``visited ⊆ q ∪ topk`` and ``|visited| ≤ 2·queue_size``
      at every iteration boundary (requires an exact deletable backend).

    Pass a config with an optimization disabled (or a searcher/structure
    subclass with the maintenance logic broken) and the corresponding
    check fires — that is exactly what the refutation tests do.
    """
    if config is None:
        config = SearchConfig(
            k=8,
            queue_size=12,
            bounded_queue=True,
            selected_insertion=True,
            visited_deletion=True,
            visited_backend=VisitedBackend.HASH_TABLE,
        )
    loc = "core/song.py:SongSearcher.search"
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((num_points, dim)).astype(np.float32)
    queries = rng.standard_normal((num_queries, dim)).astype(np.float32)
    graph = build_knn_graph(data, k=8)

    findings: List[Finding] = []
    for qi, query in enumerate(queries):
        recorder = _Recorder()
        searcher = _monitored(searcher_cls)(graph, data)
        searcher._recorder = recorder
        searcher.search(query, config, meter=_StageMeter(recorder))
        # Snapshots are taken only at locate boundaries: after the final
        # iteration's stop-break the discarded vertex legitimately lingers
        # in visited (the search is over, nothing reads the filter again).

        for frontier_len, visited_len, subset, iteration in recorder.snapshots:
            if frontier_len > config.queue_size:
                findings.append(_finding(
                    "invariant-bounded-queue", loc,
                    f"query {qi} iteration {iteration}: |q| = {frontier_len} "
                    f"exceeds K = {config.queue_size} (Theorem 1)",
                ))
                break
        for visited_len in (v for _, v, _, _ in recorder.snapshots):
            if visited_len > 2 * config.queue_size:
                findings.append(_finding(
                    "invariant-visited-deletion", loc,
                    f"query {qi}: |visited| = {visited_len} exceeds "
                    f"2K = {2 * config.queue_size} (Theorem 3)",
                ))
                break
        for frontier_len, visited_len, subset, iteration in recorder.snapshots:
            if not subset:
                findings.append(_finding(
                    "invariant-visited-deletion", loc,
                    f"query {qi} iteration {iteration}: visited ⊄ q ∪ topk "
                    f"(Theorem 3: a vertex left both structures without "
                    f"being deleted from the filter)",
                ))
                break
        for dist, was_full, bound in recorder.push_events:
            if was_full and dist >= bound:
                findings.append(_finding(
                    "invariant-selected-insertion", loc,
                    f"query {qi}: enqueued a vertex at distance {dist:.4f} ≥ "
                    f"top-K bound {bound:.4f} while topk was full (Theorem 2)",
                ))
                break
        if len(findings) >= max_findings:
            break
    return findings


def check_all_invariants() -> List[Finding]:
    """The Theorem 1–3 pass ``python -m repro.analysis --verify`` runs."""
    return check_bounded_queue() + check_search_invariants()
