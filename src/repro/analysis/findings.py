"""Shared finding/severity types for both analysis engines.

The kernel sanitizer and the hot-path linter report through one
:class:`Finding` shape so the CLI, CI gate and tests can treat "a SIMT
race at pc 7 of ``heap_push``" and "a per-element loop at
``batched.py:359``" uniformly: every finding names the rule that fired,
where it fired, and how severe it is.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Sequence


class Severity(enum.Enum):
    """How a finding gates CI.

    ``ERROR`` fails every run; ``WARNING`` fails only under ``--strict``
    (advisory hazards like imperfect coalescing that a kernel may waive).
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    Attributes
    ----------
    rule:
        Stable rule identifier (``shared-race``, ``hot-loop``, ...).
    severity:
        :class:`Severity` of the violation.
    location:
        Where it fired — ``kernel:<name> pc=<n> <Op>`` for sanitizer
        findings, ``<path>:<line>`` for lint findings.
    message:
        Human-readable explanation with the concrete evidence (lanes,
        addresses, counts).
    engine:
        Which analysis engine produced the finding (``sanitizer``,
        ``lint``, ``verifier``, ``streams``, ``arrays``, ``aio``).
        Engines may leave it empty; the CLI stamps it when assembling a
        cross-engine report.
    """

    rule: str
    severity: Severity
    location: str
    message: str
    engine: str = ""

    def format(self) -> str:
        """One-line report rendering."""
        return f"{self.location}: {self.severity.value}: [{self.rule}] {self.message}"


def worst_severity(findings: Iterable[Finding]) -> Severity:
    """The most severe level present (``WARNING`` when empty)."""
    worst = Severity.WARNING
    for f in findings:
        if f.severity is Severity.ERROR:
            return Severity.ERROR
    return worst


def split_by_severity(
    findings: Sequence[Finding],
) -> "tuple[List[Finding], List[Finding]]":
    """Partition into ``(errors, warnings)``."""
    errors = [f for f in findings if f.severity is Severity.ERROR]
    warnings = [f for f in findings if f.severity is Severity.WARNING]
    return errors, warnings
