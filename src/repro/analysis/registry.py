"""Sanitizer registry: every microkernel in :mod:`repro.simt.kernels`.

Each :class:`KernelSpec` packages a microkernel the way its runner
launches it — program, memory image, input registers — together with the
*declared* shared-memory budget in words (what a
:class:`~repro.simt.memory.SharedMemoryBudget` would reserve, which may
be smaller than the runner's defensive over-allocation) and the analytic
model's :class:`~repro.analysis.sanitizer.DriftExpectation` for the run.

Expected transaction counts are produced by the same
:class:`~repro.simt.memory.MemorySpace` formulas the analytic meters
use, so the registry is a live cross-check: if either the lane-accurate
interpreter or the analytic accounting changes shape, the drift rule
fires here before the cost model silently diverges.

``python -m repro.analysis`` sanitizes every registered spec;
:func:`iter_kernel_specs` is the test suite's parametrization source.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, FrozenSet, Iterator, List, Mapping, Tuple

import numpy as np

from repro.analysis.findings import Finding, Severity
from repro.analysis.sanitizer import (
    DriftExpectation,
    check_drift,
    sanitize_program,
    sanitize_trace,
)
from repro.analysis.trace import TraceRecorder
from repro.simt import kernels
from repro.simt.memory import MemorySpace
from repro.simt.simulator import WARP_SIZE, WarpSimulator


@dataclass(frozen=True)
class KernelSpec:
    """One sanitizer target.

    ``make(tracer)`` builds a fully-configured simulator (program, memory
    image, input registers) with the tracer attached, mirroring how the
    kernel's runner launches it.  ``shared_words`` is the declared
    shared-memory budget the OOB check enforces; ``waive`` lists rules
    whose findings are expected for this kernel (e.g. a deliberate
    scattered-read measurement waives ``uncoalesced-global``).
    """

    name: str
    make: Callable[[TraceRecorder], WarpSimulator]
    shared_words: int
    drift: DriftExpectation = field(default_factory=DriftExpectation)
    waive: FrozenSet[str] = frozenset()
    #: Input registers whose *abstract* range is wider than the concrete
    #: launch values ``make`` installs: the verifier proves the kernel for
    #: every value in ``[lo, hi]`` (uniform across lanes), not just the
    #: one the sanitizer traces.
    verify_ranges: Mapping[str, Tuple[float, float]] = field(default_factory=dict)


def sanitize_kernel(spec: KernelSpec) -> List[Finding]:
    """Run one spec under tracing and return its (non-waived) findings."""
    recorder = TraceRecorder()
    sim = spec.make(recorder)
    stats = sim.run()
    findings = sanitize_program(sim.program, name=spec.name)
    findings += sanitize_trace(
        recorder,
        shared_words=spec.shared_words,
        global_words=len(sim.global_mem),
        name=spec.name,
    )
    findings += check_drift(stats, recorder, spec.drift, name=spec.name)
    return [f for f in findings if f.rule not in spec.waive]


def verify_kernel(spec: KernelSpec):
    """Statically verify one spec; no instruction is ever executed.

    Builds the simulator only to recover the launch configuration —
    program, memory sizes, input registers — then hands everything to the
    abstract interpreter.  Registers named in ``spec.verify_ranges``
    are widened from their concrete launch values to the declared
    abstract interval, so the proof covers the whole range.  On top of
    the interpreter's findings this adds the ``static-bound-vs-model``
    obligation: the static worst-case transaction/shuffle bounds must
    dominate the analytic :class:`DriftExpectation` counts, otherwise
    either the bound or the cost model is wrong.

    Returns the :class:`~repro.analysis.verifier.absint.VerificationReport`
    with waived rules filtered out.
    """
    from repro.analysis.verifier.absint import verify_program
    from repro.analysis.verifier.domain import AbstractValue

    sim = spec.make(TraceRecorder())
    inputs = {
        reg: AbstractValue.from_lanes(values) for reg, values in sim.regs.items()
    }
    for reg, (lo, hi) in spec.verify_ranges.items():
        integral = float(lo).is_integer() and float(hi).is_integer()
        inputs[reg] = AbstractValue.uniform_range(float(lo), float(hi), integral=integral)

    report = verify_program(
        sim.program,
        shared_words=spec.shared_words,
        global_words=len(sim.global_mem),
        inputs=inputs,
        name=spec.name,
    )

    location = f"kernel:{spec.name}"
    checks = (
        ("global transactions", spec.drift.global_transactions,
         report.bounds.global_transactions),
        ("shfl issues", spec.drift.shfl_count, report.bounds.shfl_count),
    )
    for label, analytic, static in checks:
        if analytic is None:
            continue
        if static is None:
            report.findings.append(Finding(
                rule="static-bound-vs-model",
                severity=Severity.ERROR,
                location=location,
                message=(
                    f"no static bound on {label} but the analytic model "
                    f"expects {analytic}"
                ),
            ))
        elif static < analytic:
            report.findings.append(Finding(
                rule="static-bound-vs-model",
                severity=Severity.ERROR,
                location=location,
                message=(
                    f"static {label} bound {static} does not dominate the "
                    f"analytic model's {analytic}"
                ),
            ))
        else:
            report.proven.append(
                f"{label}: static bound {static} >= analytic {analytic}"
            )
    report.findings[:] = [f for f in report.findings if f.rule not in spec.waive]
    return report


# --------------------------------------------------------------------------
# spec builders
# --------------------------------------------------------------------------

#: shfl_down steps one warp_reduce issues (log2 of the warp width).
REDUCE_STEPS = int(math.log2(WARP_SIZE))


def _distance_spec(name: str, metric: str, dim: int) -> KernelSpec:
    if metric == "l2":
        program = kernels.squared_l2_kernel(dim)
    elif metric == "ip":
        program = kernels.dot_product_kernel(dim)
    elif metric == "cosine":
        program = kernels.cosine_kernel(dim)
    else:
        raise ValueError(f"unknown metric {metric!r}")

    def make(tracer: TraceRecorder) -> WarpSimulator:
        rng = np.random.default_rng(7)
        shared = np.zeros(max(dim, WARP_SIZE))
        shared[:dim] = rng.standard_normal(dim)
        global_mem = np.zeros(max(dim, WARP_SIZE))
        global_mem[:dim] = rng.standard_normal(dim)
        sim = WarpSimulator(program, global_mem=global_mem, shared_mem=shared, tracer=tracer)
        sim.set_register("query_base", 0.0)
        sim.set_register("vec_base", 0.0)
        return sim

    reductions = 3 if metric == "cosine" else 1
    return KernelSpec(
        name=name,
        make=make,
        shared_words=max(dim, WARP_SIZE),
        drift=DriftExpectation(
            global_transactions=MemorySpace().read_coalesced(4 * dim),
            shfl_count=reductions * REDUCE_STEPS,
        ),
    )


def _hamming_spec(num_words: int) -> KernelSpec:
    program = kernels.hamming_kernel(num_words)

    def make(tracer: TraceRecorder) -> WarpSimulator:
        rng = np.random.default_rng(11)
        shared = np.zeros(max(num_words, WARP_SIZE))
        shared[:num_words] = rng.integers(0, 2**32, num_words).astype(np.float64)
        global_mem = np.zeros(max(num_words, WARP_SIZE))
        global_mem[:num_words] = rng.integers(0, 2**32, num_words).astype(np.float64)
        sim = WarpSimulator(program, global_mem=global_mem, shared_mem=shared, tracer=tracer)
        sim.set_register("query_base", 0.0)
        sim.set_register("vec_base", 0.0)
        return sim

    return KernelSpec(
        name=f"hamming_{num_words}w",
        make=make,
        shared_words=max(num_words, WARP_SIZE),
        drift=DriftExpectation(
            global_transactions=MemorySpace().read_coalesced(4 * num_words),
            shfl_count=REDUCE_STEPS,
        ),
    )


def _warp_reduce_spec() -> KernelSpec:
    program = kernels.warp_reduce_kernel("acc")

    def make(tracer: TraceRecorder) -> WarpSimulator:
        sim = WarpSimulator(program, global_mem=np.zeros(8), tracer=tracer)
        sim.set_register("acc", np.arange(WARP_SIZE, dtype=np.float64))
        return sim

    return KernelSpec(
        name="warp_reduce",
        make=make,
        shared_words=0,
        drift=DriftExpectation(global_transactions=0, shfl_count=REDUCE_STEPS),
    )


def _heap_push_spec(name: str, size: int, capacity: int) -> KernelSpec:
    program = kernels.heap_push_kernel()

    def make(tracer: TraceRecorder) -> WarpSimulator:
        shared = np.zeros(2 * capacity + WARP_SIZE)
        shared[:size] = np.sort(np.linspace(0.5, 3.0, size)) if size else []
        shared[capacity : capacity + size] = np.arange(size, dtype=np.float64)
        sim = WarpSimulator(program, global_mem=np.zeros(8), shared_mem=shared, tracer=tracer)
        sim.set_register("heap_base", 0.0)
        sim.set_register("heap_capacity", float(capacity))
        sim.set_register("heap_size", float(size))
        sim.set_register("new_dist", 0.25)
        sim.set_register("new_id", 99.0)
        return sim

    return KernelSpec(
        name=name,
        make=make,
        # Declared budget: the two parallel arrays, dists then ids.
        shared_words=2 * capacity,
        drift=DriftExpectation(global_transactions=0, shfl_count=0),
        # The static proof covers every legal occupancy, not just `size`.
        verify_ranges={"heap_size": (0.0, float(capacity))},
    )


def _single_lane_scan_spec(count: int) -> KernelSpec:
    program = kernels.single_lane_scan_kernel(count)

    def make(tracer: TraceRecorder) -> WarpSimulator:
        shared = np.zeros(max(count, WARP_SIZE))
        shared[:count] = np.arange(count, dtype=np.float64)
        return WarpSimulator(program, global_mem=np.zeros(8), shared_mem=shared, tracer=tracer)

    return KernelSpec(
        name=f"single_lane_scan_{count}",
        make=make,
        shared_words=max(count, WARP_SIZE),
        drift=DriftExpectation(global_transactions=0, shfl_count=0),
    )


def _warp_probe_spec() -> KernelSpec:
    program = kernels.warp_parallel_probe_kernel()

    def make(tracer: TraceRecorder) -> WarpSimulator:
        table = np.full(WARP_SIZE, -1.0)
        table[5] = 42.0
        sim = WarpSimulator(program, global_mem=np.zeros(8), shared_mem=table, tracer=tracer)
        sim.set_register("table_base", 0.0)
        sim.set_register("table_mask", float(WARP_SIZE - 1))
        sim.set_register("home", 3.0)
        sim.set_register("key", 42.0)
        return sim

    return KernelSpec(
        name="warp_parallel_probe",
        make=make,
        shared_words=WARP_SIZE,
        drift=DriftExpectation(global_transactions=0, shfl_count=0),
        # Any home slot is safe: the table mask folds the probe window in.
        verify_ranges={"home": (0.0, float(WARP_SIZE - 1))},
    )


def _strided_read_spec(stride: int) -> KernelSpec:
    program = kernels.strided_read_kernel(stride)
    span = (WARP_SIZE - 1) * stride + 1

    def make(tracer: TraceRecorder) -> WarpSimulator:
        global_mem = np.arange(max(span, WARP_SIZE), dtype=np.float64)
        return WarpSimulator(program, global_mem=global_mem, tracer=tracer)

    meter = MemorySpace()
    if stride == 1:
        expected = meter.read_coalesced(4 * WARP_SIZE)
        waive: FrozenSet[str] = frozenset()
    else:
        # Scattered by construction: the kernel exists to measure this,
        # so the coalescing warning is waived, but the transaction count
        # must still match the analytic scattered-read accounting.
        expected = meter.read_scattered(WARP_SIZE)
        waive = frozenset({"uncoalesced-global"})

    return KernelSpec(
        name=f"strided_read_{stride}",
        make=make,
        shared_words=0,
        drift=DriftExpectation(global_transactions=expected, shfl_count=0),
        waive=waive,
    )


def iter_kernel_specs() -> Iterator[KernelSpec]:
    """Every registered microkernel launch, in a stable order."""
    yield _distance_spec("squared_l2_64", "l2", 64)
    yield _distance_spec("squared_l2_48_ragged", "l2", 48)
    yield _distance_spec("dot_product_64", "ip", 64)
    yield _distance_spec("cosine_64", "cosine", 64)
    yield _hamming_spec(8)
    yield _warp_reduce_spec()
    yield _heap_push_spec("heap_push", size=5, capacity=16)
    yield _heap_push_spec("heap_push_full", size=16, capacity=16)
    yield _single_lane_scan_spec(24)
    yield _warp_probe_spec()
    yield _strided_read_spec(1)
    yield _strided_read_spec(32)
