"""SIMT kernel sanitizer: race / OOB / uninitialized / divergence checks.

A cuda-memcheck + racecheck analogue for the simulated substrate.  The
checks replay a :class:`~repro.analysis.trace.TraceRecorder` event
stream produced by a lane-accurate
:class:`~repro.simt.simulator.WarpSimulator` run and flag hazards the
functional interpreter executes silently:

``shared-race``
    Two different active lanes store one shared address in the same
    instruction (the hardware keeps an arbitrary winner), or a cross-lane
    write → read/write pair on one shared address with no reconvergence
    point ordering the lanes in between.  Reconvergence (``EndIf``, loop
    exit) orders exactly the lanes in the post-pop mask, mirroring
    independent-thread-scheduling semantics: a write is safe to observe
    only from lanes the hazard model knows reconverged with the writer.
``shared-oob`` / ``global-oob``
    An access outside the declared :class:`SharedMemoryBudget` word span
    (or the global allocation).  Negative word addresses are the nasty
    case — numpy wraps them silently, real hardware corrupts memory.
``uninit-read``
    An instruction reads a register that some active lane never wrote.
    ``ShflDown`` is checked against the cross-lane set it actually reads
    (lanes ``delta..31``) since it ignores the active mask.
``divergent-shuffle``
    A ``ShflDown`` issued under a partial mask — the ``__shfl_sync``
    hazard: inactive lanes contribute undefined values on hardware.
``empty-mask-issue``
    A non-control instruction issued with no active lanes (a stale-mask
    interpreter regression; structured control flow should skip it).
``stale-loop-predicate``
    Static check: a ``While`` whose predicate register no instruction in
    the loop body writes — the loop can never make progress.
``uncoalesced-global`` (warning)
    A wide global access whose transaction count approaches one per
    lane; kernels that measure scattering on purpose waive it.
``bank-conflict`` (warning)
    A shared access serializing over more than two conflicting lanes per
    bank.
``model-drift``
    The lane-accurate trace disagrees with the analytic
    :class:`~repro.simt.warp.Warp` / :class:`~repro.simt.cost.CostModel`
    assumptions: transaction counts, bank-conflict-free layout, and the
    ``log2(32)``-step shuffle reduction are cross-checked against a
    declared :class:`DriftExpectation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.findings import Finding, Severity
from repro.analysis.trace import (
    InstrEvent,
    MemEvent,
    RegInitEvent,
    RegWriteEvent,
    ReconvergeEvent,
    TraceRecorder,
    instruction_reads,
    shfl_read_lanes,
)
from repro.simt import isa
from repro.simt.simulator import WARP_SIZE, WarpStats

#: Control-flow opcodes (manage masks; exempt from empty-mask check).
_CONTROL_OPS = (isa.If, isa.Else, isa.EndIf, isa.While, isa.EndWhile)

#: Bank-conflict serialization beyond this is reported (warning).
BANK_CONFLICT_LIMIT = 2

#: Minimum active lanes before coalescing quality is judged.
_COALESCE_MIN_LANES = 8


@dataclass(frozen=True)
class DriftExpectation:
    """Analytic-model expectations for one kernel run.

    Populated from the same formulas the analytic meters use
    (:meth:`repro.simt.memory.MemorySpace.read_coalesced` for transaction
    counts, ``log2(warp_size)`` steps per :meth:`repro.simt.warp.Warp.warp_reduce`),
    so a mismatch means the lane-accurate trace and the analytic cost
    model have drifted apart.
    """

    #: Expected 128-byte global transactions (``None`` = don't check).
    global_transactions: Optional[int] = None
    #: Absolute slack allowed on the transaction count.
    transaction_tolerance: int = 0
    #: Ceiling on shared bank-conflict serialization cycles.
    max_shared_conflict_cycles: int = 0
    #: Expected ``ShflDown`` issues (``None`` = don't check).
    shfl_count: Optional[int] = None


class _SharedWriteRecord:
    """Last write to one shared address, plus the lanes ordered after it."""

    __slots__ = ("seq", "pc", "lanes", "ordered")

    def __init__(self, seq: int, pc: int, lanes: np.ndarray) -> None:
        self.seq = seq
        self.pc = pc
        self.lanes = lanes  # (k,) lane ids that wrote
        self.ordered = np.zeros(WARP_SIZE, dtype=bool)
        self.ordered[lanes] = True


def _loc(name: str, pc: int, ins=None) -> str:
    op = f" {type(ins).__name__}" if ins is not None else ""
    return f"kernel:{name} pc={pc}{op}"


def sanitize_program(program: Sequence[isa.Instruction], name: str = "kernel") -> List[Finding]:
    """Static divergence-hygiene checks (no execution needed)."""
    findings: List[Finding] = []
    stack: List[dict] = []
    for pc, ins in enumerate(program):
        if isinstance(ins, isa.While):
            stack.append({"pc": pc, "pred": ins.pred, "written": False})
        elif isinstance(ins, isa.EndWhile):
            frame = stack.pop()
            if not frame["written"]:
                findings.append(
                    Finding(
                        rule="stale-loop-predicate",
                        severity=Severity.ERROR,
                        location=_loc(name, frame["pc"], program[frame["pc"]]),
                        message=(
                            f"While predicate {frame['pred']!r} is never written "
                            "inside the loop body: the loop cannot reconverge"
                        ),
                    )
                )
        else:
            dst = getattr(ins, "dst", None)
            for frame in stack:
                if dst is not None and dst == frame["pred"]:
                    frame["written"] = True
    return findings


def sanitize_trace(
    trace: TraceRecorder,
    shared_words: Optional[int] = None,
    global_words: Optional[int] = None,
    name: str = "kernel",
) -> List[Finding]:
    """Replay a recorded event stream and report dynamic hazards."""
    findings: List[Finding] = []
    initialized: Dict[str, np.ndarray] = {}
    last_write: Dict[int, _SharedWriteRecord] = {}

    def _check_reads(event: InstrEvent) -> None:
        ins = event.ins
        if isinstance(ins, isa.ShflDown):
            need = shfl_read_lanes(ins.delta)
            state = initialized.get(ins.src)
            bad = need if state is None else (need & ~state)
            if bad.any():
                findings.append(
                    Finding(
                        rule="uninit-read",
                        severity=Severity.ERROR,
                        location=_loc(name, event.pc, ins),
                        message=(
                            f"ShflDown reads register {ins.src!r} from lanes "
                            f"{np.flatnonzero(bad).tolist()} that never wrote it"
                        ),
                    )
                )
            return
        for reg in instruction_reads(ins):
            state = initialized.get(reg)
            bad = event.mask if state is None else (event.mask & ~state)
            if bad.any():
                findings.append(
                    Finding(
                        rule="uninit-read",
                        severity=Severity.ERROR,
                        location=_loc(name, event.pc, ins),
                        message=(
                            f"register {reg!r} read while uninitialized on active "
                            f"lanes {np.flatnonzero(bad).tolist()}"
                        ),
                    )
                )

    def _check_shared(event: MemEvent) -> None:
        if shared_words is not None:
            oob = (event.addrs < 0) | (event.addrs >= shared_words)
            if oob.any():
                findings.append(
                    Finding(
                        rule="shared-oob",
                        severity=Severity.ERROR,
                        location=_loc(name, event.pc, event.ins),
                        message=(
                            f"shared {event.kind} at word(s) "
                            f"{sorted(set(event.addrs[oob].tolist()))} outside the "
                            f"declared budget of {shared_words} words "
                            f"(lanes {event.lanes[oob].tolist()})"
                        ),
                    )
                )
        if event.cost > BANK_CONFLICT_LIMIT:
            findings.append(
                Finding(
                    rule="bank-conflict",
                    severity=Severity.WARNING,
                    location=_loc(name, event.pc, event.ins),
                    message=(
                        f"shared {event.kind} serializes over {event.cost} "
                        f"conflicting addresses in one bank"
                    ),
                )
            )
        # -- race detection -------------------------------------------------
        for addr in np.unique(event.addrs):
            lanes_here = event.lanes[event.addrs == addr]
            if event.kind == "write" and len(lanes_here) > 1:
                findings.append(
                    Finding(
                        rule="shared-race",
                        severity=Severity.ERROR,
                        location=_loc(name, event.pc, event.ins),
                        message=(
                            f"lanes {lanes_here.tolist()} store shared word "
                            f"{int(addr)} in the same instruction (arbitrary winner)"
                        ),
                    )
                )
            record = last_write.get(int(addr))
            if record is not None and not record.ordered[lanes_here].all():
                racing = lanes_here[~record.ordered[lanes_here]]
                findings.append(
                    Finding(
                        rule="shared-race",
                        severity=Severity.ERROR,
                        location=_loc(name, event.pc, event.ins),
                        message=(
                            f"shared word {int(addr)} {event.kind} by lanes "
                            f"{racing.tolist()} races with the write from lanes "
                            f"{record.lanes.tolist()} at pc={record.pc} "
                            "(no reconvergence point orders them)"
                        ),
                    )
                )
            if event.kind == "write":
                last_write[int(addr)] = _SharedWriteRecord(
                    event.seq, event.pc, lanes_here
                )

    def _check_global(event: MemEvent) -> None:
        if global_words is not None:
            oob = (event.addrs < 0) | (event.addrs >= global_words)
            if oob.any():
                findings.append(
                    Finding(
                        rule="global-oob",
                        severity=Severity.ERROR,
                        location=_loc(name, event.pc, event.ins),
                        message=(
                            f"global {event.kind} at word(s) "
                            f"{sorted(set(event.addrs[oob].tolist()))} outside the "
                            f"{global_words}-word allocation "
                            f"(lanes {event.lanes[oob].tolist()})"
                        ),
                    )
                )
        active = len(event.lanes)
        if (
            active >= _COALESCE_MIN_LANES
            and event.cost > 1
            and event.cost * 2 >= active
        ):
            findings.append(
                Finding(
                    rule="uncoalesced-global",
                    severity=Severity.WARNING,
                    location=_loc(name, event.pc, event.ins),
                    message=(
                        f"global {event.kind} by {active} lanes generated "
                        f"{event.cost} transactions (scattered access pattern)"
                    ),
                )
            )

    for event in trace.events:
        if isinstance(event, RegInitEvent):
            initialized[event.name] = np.ones(WARP_SIZE, dtype=bool)
        elif isinstance(event, RegWriteEvent):
            state = initialized.setdefault(event.name, np.zeros(WARP_SIZE, dtype=bool))
            state |= event.mask
        elif isinstance(event, InstrEvent):
            if event.ins is not None and not isinstance(event.ins, _CONTROL_OPS):
                if not event.mask.any():
                    findings.append(
                        Finding(
                            rule="empty-mask-issue",
                            severity=Severity.ERROR,
                            location=_loc(name, event.pc, event.ins),
                            message="instruction issued with an empty active mask",
                        )
                    )
                if isinstance(event.ins, isa.ShflDown) and not event.mask.all():
                    findings.append(
                        Finding(
                            rule="divergent-shuffle",
                            severity=Severity.ERROR,
                            location=_loc(name, event.pc, event.ins),
                            message=(
                                "ShflDown under a partial mask: inactive lanes "
                                f"({np.flatnonzero(~event.mask).tolist()}) "
                                "contribute undefined values on hardware"
                            ),
                        )
                    )
            _check_reads(event)
        elif isinstance(event, MemEvent):
            if event.space == "shared":
                _check_shared(event)
            else:
                _check_global(event)
        elif isinstance(event, ReconvergeEvent):
            mask = event.mask
            for record in last_write.values():
                if (record.ordered & mask).any():
                    record.ordered |= mask
    return findings


def check_drift(
    stats: WarpStats,
    trace: TraceRecorder,
    expectation: DriftExpectation,
    name: str = "kernel",
) -> List[Finding]:
    """Cross-check trace counters against the analytic model's assumptions."""
    findings: List[Finding] = []
    if expectation.global_transactions is not None:
        gap = abs(stats.global_transactions - expectation.global_transactions)
        if gap > expectation.transaction_tolerance:
            findings.append(
                Finding(
                    rule="model-drift",
                    severity=Severity.ERROR,
                    location=f"kernel:{name}",
                    message=(
                        f"lane-accurate trace issued {stats.global_transactions} "
                        f"global transactions; the analytic model prices "
                        f"{expectation.global_transactions} "
                        f"(tolerance ±{expectation.transaction_tolerance})"
                    ),
                )
            )
    if stats.shared_conflict_cycles > expectation.max_shared_conflict_cycles:
        findings.append(
            Finding(
                rule="model-drift",
                severity=Severity.ERROR,
                location=f"kernel:{name}",
                message=(
                    f"trace shows {stats.shared_conflict_cycles} bank-conflict "
                    f"cycles; the analytic model assumes at most "
                    f"{expectation.max_shared_conflict_cycles}"
                ),
            )
        )
    if expectation.shfl_count is not None:
        issued = trace.count_ops(isa.ShflDown)
        if issued != expectation.shfl_count:
            findings.append(
                Finding(
                    rule="model-drift",
                    severity=Severity.ERROR,
                    location=f"kernel:{name}",
                    message=(
                        f"trace issued {issued} ShflDown steps; the analytic "
                        f"warp_reduce pricing assumes {expectation.shfl_count} "
                        f"(log2(warp) per reduction)"
                    ),
                )
            )
    return findings
