"""Static/dynamic analysis for the repo's SIMT substrate and hot paths.

Two engines, both runnable as ``python -m repro.analysis`` and gated in
``scripts/ci.sh``:

* the **kernel sanitizer** (:mod:`repro.analysis.sanitizer`) replays
  lane-accurate :class:`TraceRecorder` streams from the
  :class:`~repro.simt.simulator.WarpSimulator` and flags SIMT hazards —
  shared-memory races, OOB accesses, uninitialized-register reads,
  divergence violations and analytic-model drift — over every microkernel
  in the :mod:`repro.analysis.registry`;
* the **hot-path linter** (:mod:`repro.analysis.lint`) enforces the
  vectorization invariants in modules marked ``# lint: hot-path``;
* the **static verifier** (:mod:`repro.analysis.verifier`, opt-in via
  ``--verify``) abstractly interprets every registered kernel — proving
  memory bounds, termination, divergence safety and static cost bounds
  for *all* inputs — and checks SONG's Theorem 1–3 data-structure
  invariants against the real search loop;
* the **array-program verifier** (:mod:`repro.analysis.arrays`, opt-in
  via ``--arrays``) abstractly interprets the vectorized *host* kernels
  decorated ``@array_kernel`` over a symbolic-shape / dtype / interval
  domain — proving packed-key dtype bounds (with smallest concrete
  counterexamples when they fail), broadcast compatibility, fancy-index
  bounds, scatter aliasing safety, and determinism of tie-breaking —
  plus a syntactic nondeterminism sweep over hot modules and ``serve/``;
* the **async-concurrency analyzer** (:mod:`repro.analysis.aio`, opt-in
  via ``--aio``) statically checks the coroutine code of the serving
  layer — atomicity of read-modify-writes across await points (with an
  inferred field→lock protection map and ``# aio: guarded-by``
  annotations), lock-order-inversion cycles including ``AsyncRWLock``
  writer upgrades, virtual-time determinism (wall-clock reads, seedless
  RNG, set-ordered task spawns), and task hygiene (unawaited
  coroutines, dropped ``create_task`` handles, gather policy on
  shutdown paths).

See DESIGN.md Section 9 for the hazard taxonomy and rule catalogue,
Section 10 for the SIMT abstract domains and invariant encodings,
Section 14 for the array verifier's domains and soundness caveats, and
Section 15 for the aio engine's call-graph and checker semantics.
"""

from repro.analysis.aio import (
    AIO_RULES,
    analyze_source as analyze_aio_source,
    build_call_graph,
    check_aio,
)
from repro.analysis.arrays import (
    ANNOTATED_MODULES,
    ARRAY_RULES,
    NONDET_RULES,
    analyze_kernel,
    check_arrays,
    find_counterexample,
    verify_array_kernels,
)
from repro.analysis.findings import Finding, Severity, split_by_severity, worst_severity
from repro.analysis.lint import HOT_MARKER, LINT_RULES, lint_paths, lint_source, lint_tree
from repro.analysis.registry import (
    KernelSpec,
    iter_kernel_specs,
    sanitize_kernel,
    verify_kernel,
)
from repro.analysis.verifier import (
    AbstractValue,
    Interval,
    StaticBounds,
    VerificationReport,
    check_all_invariants,
    check_bounded_queue,
    check_search_invariants,
    iter_known_bad_specs,
    verify_program,
)
from repro.analysis.sanitizer import (
    DriftExpectation,
    check_drift,
    sanitize_program,
    sanitize_trace,
)
from repro.analysis.streams import (
    STREAM_RULES,
    check_stream_ops,
    check_stream_programs,
    iter_stream_programs,
)
from repro.analysis.trace import TraceRecorder

__all__ = [
    "Finding",
    "Severity",
    "worst_severity",
    "split_by_severity",
    "TraceRecorder",
    "DriftExpectation",
    "sanitize_program",
    "sanitize_trace",
    "check_drift",
    "KernelSpec",
    "iter_kernel_specs",
    "sanitize_kernel",
    "verify_kernel",
    "AbstractValue",
    "Interval",
    "StaticBounds",
    "VerificationReport",
    "verify_program",
    "check_all_invariants",
    "check_bounded_queue",
    "check_search_invariants",
    "iter_known_bad_specs",
    "STREAM_RULES",
    "check_stream_ops",
    "check_stream_programs",
    "iter_stream_programs",
    "HOT_MARKER",
    "LINT_RULES",
    "lint_source",
    "lint_paths",
    "lint_tree",
    "ANNOTATED_MODULES",
    "ARRAY_RULES",
    "NONDET_RULES",
    "analyze_kernel",
    "check_arrays",
    "find_counterexample",
    "verify_array_kernels",
    "AIO_RULES",
    "analyze_aio_source",
    "build_call_graph",
    "check_aio",
]
