"""Async-concurrency static analyzer for the serving layer (engine 4).

``repro.analysis.aio`` checks the coroutine code in ``repro.serve`` (and
the stream-model integration points in ``repro.simt.streams``) the way
the SIMT sanitizer checks kernels: await points are interleaving
boundaries, lock/semaphore acquisition contexts are tracked (including
the ``AsyncRWLock`` reader/writer split and lazily-constructed
semaphores behind factory methods), and four checker families gate CI —
atomicity-across-await, lock-order inversion, virtual-time determinism,
and task hygiene.  See DESIGN.md Sec. 15 for semantics and soundness
caveats.

Entry points:

* :func:`analyze_source` — one source string, for tests;
* :func:`check_aio` — the CLI/CI driver over the default path set;
* :data:`AIO_RULES` — every rule id the engine can emit.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.aio.callgraph import CallGraph, build_call_graph
from repro.analysis.aio.checkers import AIO_RULES, run_checkers
from repro.analysis.aio.model import ModuleModel, extract_module, extract_paths
from repro.analysis.findings import Finding

__all__ = [
    "AIO_RULES",
    "CallGraph",
    "ModuleModel",
    "analyze_source",
    "build_call_graph",
    "check_aio",
    "default_paths",
    "extract_module",
    "extract_paths",
    "run_checkers",
]


def default_paths(root: Optional[Path] = None) -> List[Path]:
    """The committed scan set: every serve module plus the stream model."""
    if root is None:
        root = Path(__file__).resolve().parents[2]  # src/repro
    paths = sorted((root / "serve").glob("*.py"))
    streams = root / "simt" / "streams.py"
    if streams.exists():
        paths.append(streams)
    return paths


def analyze_source(source: str, path: str = "<string>") -> List[Finding]:
    """Extract + check one source string (test entry point)."""
    module = extract_module(source, path=path)
    return run_checkers([module])


def check_aio(
    include_known_bad: bool = False,
    paths: Optional[Sequence[Path]] = None,
    root: Optional[Path] = None,
) -> List[Finding]:
    """Run the aio engine over ``paths`` (default: the committed scan set).

    ``include_known_bad`` appends the negative-control fixtures, whose
    findings (and ``aio-known-bad-miss`` ERRORs for any silent fixture)
    let CI assert the checkers still catch what they must catch.
    """
    scan = list(paths) if paths is not None else default_paths(root)
    modules = extract_paths(scan)
    findings = run_checkers(modules)
    if include_known_bad:
        from repro.analysis.aio.fixtures import check_known_bad

        findings.extend(check_known_bad())
    return findings
