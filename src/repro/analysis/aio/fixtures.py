"""Known-bad coroutines: the aio engine's negative control.

Each snippet below is a minimal reproduction of a bug family the
checkers must catch; CI runs the engine over this module (via
``--include-known-bad``) and **fails if any fixture stops producing its
finding** — the same contract as the sanitizer/verifier/arrays
known-bad registries.  The snippets are held as source strings (not live
code) so importing this module never schedules a broken coroutine.

``KNOWN_BAD`` maps fixture name → ``(source, expected_rules)``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.aio.checkers import run_checkers
from repro.analysis.aio.model import extract_module
from repro.analysis.findings import Finding

__all__ = ["KNOWN_BAD", "check_known_bad", "fixture_findings"]


_LOST_UPDATE = '''\
import asyncio

class Counter:
    def __init__(self):
        self._lock = asyncio.Lock()
        self.hits = 0

    async def bump(self):
        current = self.hits
        await asyncio.sleep(0.001)
        self.hits = current + 1
'''

_ABBA_DEADLOCK = '''\
import asyncio

class Pool:
    def __init__(self):
        self._a = asyncio.Lock()
        self._b = asyncio.Lock()

    async def forward(self):
        async with self._a:
            async with self._b:
                pass

    async def backward(self):
        async with self._b:
            async with self._a:
                pass
'''

_CLOCK_LEAK = '''\
import time

class Prober:
    async def probe(self):
        started = time.time()
        return started
'''

_RW_UPGRADE = '''\
class Store:
    def __init__(self):
        self._rw = AsyncRWLock()

    async def reload(self):
        await self._rw.acquire_read()
        await self._rw.acquire_write()
'''

_UNAWAITED = '''\
class Worker:
    async def step(self):
        pass

    async def run(self):
        self.step()
'''

_DROPPED_TASK = '''\
import asyncio

class Spawner:
    async def kick(self):
        asyncio.create_task(self.work())

    async def work(self):
        pass
'''

_UNORDERED_SPAWN = '''\
import asyncio

class Fanout:
    def __init__(self):
        self._pending = set()

    async def flush(self):
        await asyncio.gather(*tuple(self._pending))
'''

_GATHER_NO_POLICY = '''\
import asyncio

class Service:
    async def shutdown(self, tasks):
        await asyncio.gather(*tasks)
'''

_SEM_UNDER_LOCK = '''\
import asyncio

class Slots:
    def __init__(self):
        self._lock = asyncio.Lock()
        self._slots = asyncio.Semaphore(2)

    async def grab(self):
        async with self._lock:
            async with self._slots:
                pass
'''

_SLEEP_ZERO = '''\
import asyncio

class Yielder:
    async def nudge(self):
        await asyncio.sleep(0)
'''

_SEEDLESS_RNG = '''\
import numpy as np

class Sampler:
    async def draw(self):
        rng = np.random.default_rng()
        return np.random.rand(4)
'''

_GUARD_VIOLATION = '''\
import asyncio

class Ledger:
    def __init__(self):
        self._lock = asyncio.Lock()
        self.balance = 0  # aio: guarded-by(self._lock)

    async def credit(self, n):
        self.balance = self.balance + n
'''

#: fixture name -> (source, rules that MUST fire on it).
KNOWN_BAD: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    "lost-update": (_LOST_UPDATE, ("aio-atomicity",)),
    "abba-deadlock": (_ABBA_DEADLOCK, ("aio-lock-order",)),
    "clock-leak": (_CLOCK_LEAK, ("aio-wall-clock",)),
    "rw-upgrade": (_RW_UPGRADE, ("aio-rw-upgrade",)),
    "unawaited-coroutine": (_UNAWAITED, ("aio-unawaited",)),
    "dropped-task": (_DROPPED_TASK, ("aio-dropped-task",)),
    "unordered-spawn": (_UNORDERED_SPAWN, ("aio-unordered-spawn",)),
    "gather-no-policy": (_GATHER_NO_POLICY, ("aio-gather-policy",)),
    "sem-under-lock": (_SEM_UNDER_LOCK, ("aio-sem-under-lock",)),
    "sleep-zero": (_SLEEP_ZERO, ("aio-sleep-zero",)),
    "seedless-rng": (_SEEDLESS_RNG, ("aio-rng",)),
    "guard-violation": (_GUARD_VIOLATION, ("aio-guard",)),
}


def fixture_findings(name: str) -> List[Finding]:
    """Run the checkers over one fixture snippet."""
    source, _expected = KNOWN_BAD[name]
    module = extract_module(source, path=f"<known-bad:{name}>")
    return run_checkers([module])


def check_known_bad() -> List[Finding]:
    """Findings from every fixture, plus ERRORs for silent fixtures.

    Contract shared with the other engines: every fixture must fire its
    expected rule; one that comes back clean is itself an ERROR finding
    (``aio-known-bad-miss``), so CI's negative control cannot rot.
    """
    from repro.analysis.findings import Severity

    out: List[Finding] = []
    for name, (_source, expected) in sorted(KNOWN_BAD.items()):
        found = fixture_findings(name)
        out.extend(found)
        fired = {f.rule for f in found}
        for rule in expected:
            if rule not in fired:
                out.append(
                    Finding(
                        rule="aio-known-bad-miss",
                        severity=Severity.ERROR,
                        location=f"<known-bad:{name}>",
                        message=(
                            f"fixture {name!r} no longer triggers {rule}; "
                            "the checker regressed"
                        ),
                    )
                )
    return out
