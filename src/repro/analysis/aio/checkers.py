"""Checker families over the extracted async-concurrency model.

Four families, each returning :class:`~repro.analysis.findings.Finding`
lists (rule ids are stable and waivable via ``# aio: allow(<rule>)``):

``aio-atomicity`` (ERROR)
    A read-modify-write of shared ``self.`` state spans an await with no
    exclusive lock held at both ends.  Protection is *inferred*: a field
    written at least once under an exclusive token is assumed guarded by
    it, and the finding names the inferred lock so the fix is obvious.
``aio-guard`` (ERROR)
    A write to a field carrying an explicit ``# aio: guarded-by(...)``
    annotation from a coroutine that does not hold the declared token.
``aio-lock-order`` (ERROR)
    A cycle in the acquisition-order graph: function F acquires B while
    holding A, and (possibly through callees, via the call-graph
    may-acquire summaries) some coroutine acquires A while holding B.
``aio-rw-upgrade`` (ERROR)
    Writer acquisition of an ``AsyncRWLock`` while already holding its
    read side — self-deadlock under the fair FIFO implementation.
``aio-sem-under-lock`` (WARNING)
    Semaphore slot acquisition while holding an exclusive lock: slot
    release may require the lock, deadlocking the pool.
``aio-wall-clock`` / ``aio-rng`` (ERROR), ``aio-unordered-spawn`` /
``aio-sleep-zero`` (WARNING)
    Virtual-time determinism events (wall-clock reads, seedless or
    shared-state RNG, set iteration driving spawn/await order, bare
    ``asyncio.sleep(0)``) inside async functions.
``aio-unawaited`` (ERROR), ``aio-dropped-task`` (WARNING),
``aio-gather-policy`` (WARNING)
    Task hygiene: coroutine called but never awaited, ``create_task``
    handle discarded, ``gather`` on a shutdown path (or over a task
    container field) without an explicit ``return_exceptions`` policy.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.aio.callgraph import CallGraph
from repro.analysis.aio.model import FunctionModel, ModuleModel
from repro.analysis.findings import Finding, Severity

__all__ = [
    "AIO_RULES",
    "check_atomicity",
    "check_determinism",
    "check_hygiene",
    "check_lock_order",
    "run_checkers",
]

AIO_RULES = (
    "aio-atomicity",
    "aio-guard",
    "aio-lock-order",
    "aio-rw-upgrade",
    "aio-sem-under-lock",
    "aio-wall-clock",
    "aio-rng",
    "aio-unordered-spawn",
    "aio-sleep-zero",
    "aio-unawaited",
    "aio-dropped-task",
    "aio-gather-policy",
)

def _loc(module: ModuleModel, line: int) -> str:
    return f"{module.path}:{line}"


def _exclusive(locks: Iterable[Tuple]) -> Set[str]:
    """Tokens held in an exclusive mode (plain lock, or rw writer)."""
    out: Set[str] = set()
    for token, kind, mode, *_ in locks:
        if (kind == "lock" and mode == "x") or (kind == "rw" and mode == "w"):
            out.add(token)
    return out


def _exclusive_spans(locks: Iterable[Tuple]) -> Set[Tuple[str, int]]:
    """``(token, acquisition-seq)`` ids of the exclusive locks held.

    Intersecting read-side and write-side ids demands the *same
    acquisition* at both ends: a lock released and re-taken across the
    await gets a new seq and no longer counts as protection.
    """
    out: Set[Tuple[str, int]] = set()
    for token, kind, mode, seq in locks:
        if (kind == "lock" and mode == "x") or (kind == "rw" and mode == "w"):
            out.add((token, seq))
    return out


# -- family 1: atomicity across await -----------------------------------


def _protection_map(modules: Sequence[ModuleModel]) -> Dict[Tuple[str, str], str]:
    """Infer ``(class, field) -> lock token`` from observed writes.

    A field is *assumed* guarded by a token when every write to it from
    an async method that holds any exclusive token holds that same one.
    Declared ``# aio: guarded-by(...)`` annotations win over inference.
    """
    votes: Dict[Tuple[str, str], Set[str]] = {}
    seen: Set[Tuple[str, str]] = set()
    for module in modules:
        for cls in module.classes.values():
            for fn in cls.methods.values():
                if not fn.is_async:
                    continue
                for w in fn.writes:
                    key = (cls.name, w.field.split(".")[0])
                    seen.add(key)
                    excl = _exclusive(w.locks)
                    if excl:
                        votes.setdefault(key, set()).update(excl)
    inferred = {
        key: sorted(tokens)[0]
        for key, tokens in votes.items()
        if len(tokens) == 1
    }
    for module in modules:
        for cls in module.classes.values():
            for fld, token in cls.guards.items():
                inferred[(cls.name, fld)] = _canon_guard(cls.name, token)
    return inferred


def _canon_guard(cls_name: str, token: str) -> str:
    """``self._lock`` / ``Replica._rw`` → canonical ``Class.attr``."""
    token = token.strip()
    if token.startswith("self."):
        return f"{cls_name}.{token[len('self.'):]}"
    return token


def check_atomicity(
    modules: Sequence[ModuleModel], graph: CallGraph
) -> List[Finding]:
    findings: List[Finding] = []
    protection = _protection_map(modules)
    for module in modules:
        for fn in module.all_functions():
            if not fn.is_async:
                continue
            cls_name = fn.cls or ""
            for pair in fn.atomicity:
                base = pair.field.split(".")[0]
                if _exclusive_spans(pair.read_locks) & _exclusive_spans(
                    pair.write_locks
                ):
                    continue  # same exclusive acquisition spans the await
                if module.allowed("aio-atomicity", pair.write_line):
                    continue
                guard = protection.get((cls_name, base))
                hint = (
                    f"; inferred protection map says hold {guard} across both"
                    if guard
                    else "; no lock is known to guard this field — add one or "
                    "annotate with # aio: guarded-by(...)"
                )
                findings.append(
                    Finding(
                        rule="aio-atomicity",
                        severity=Severity.ERROR,
                        location=_loc(module, pair.write_line),
                        message=(
                            f"{fn.qualname}: read of self.{pair.field} at line "
                            f"{pair.read_line} crosses {pair.awaits_between} "
                            f"await point(s) before the write-back; another "
                            f"coroutine can interleave and the update is lost"
                            f"{hint}"
                        ),
                    )
                )
            # Declared-guard violations: any write without the token.
            if fn.cls is not None:
                cls = _class_of(modules, fn.cls)
                if cls is None:
                    continue
                for w in fn.writes:
                    base = w.field.split(".")[0]
                    token = cls.guards.get(base)
                    if token is None:
                        continue
                    canon = _canon_guard(fn.cls, token)
                    held = {t for t, *_ in w.locks}
                    if canon in held:
                        continue
                    if module.allowed("aio-guard", w.line):
                        continue
                    findings.append(
                        Finding(
                            rule="aio-guard",
                            severity=Severity.ERROR,
                            location=_loc(module, w.line),
                            message=(
                                f"{fn.qualname}: write to self.{w.field} "
                                f"without holding {canon}, declared by its "
                                f"# aio: guarded-by annotation"
                            ),
                        )
                    )
    return findings


def _class_of(modules: Sequence[ModuleModel], name: str):
    for module in modules:
        if name in module.classes:
            return module.classes[name]
    return None


# -- family 2: lock order / deadlock ------------------------------------


def check_lock_order(
    modules: Sequence[ModuleModel], graph: CallGraph
) -> List[Finding]:
    findings: List[Finding] = []
    # Acquisition-order edges: token held -> token acquired, with the
    # site that witnesses the edge.  Semaphore self-edges are legal
    # (counting semantics) and skipped.
    edges: Dict[str, Dict[str, Tuple[ModuleModel, FunctionModel, int]]] = {}

    def add_edge(a: str, b: str, module, fn, line) -> None:
        if a == b:
            return
        edges.setdefault(a, {}).setdefault(b, (module, fn, line))

    for module in modules:
        for fn in module.all_functions():
            for acq in fn.acquisitions:
                # rw upgrade: write acquire while holding the read side.
                if acq.kind == "rw" and acq.mode == "w":
                    for t, k, m, _s in acq.held:
                        if t == acq.token and k == "rw" and m == "r":
                            if not module.allowed("aio-rw-upgrade", acq.line):
                                findings.append(
                                    Finding(
                                        rule="aio-rw-upgrade",
                                        severity=Severity.ERROR,
                                        location=_loc(module, acq.line),
                                        message=(
                                            f"{fn.qualname}: writer acquire of "
                                            f"{acq.token} while holding its read "
                                            "side; the fair FIFO rw-lock queues "
                                            "the writer behind itself — "
                                            "self-deadlock"
                                        ),
                                    )
                                )
                # semaphore under an exclusive lock.
                if acq.kind == "sem" and _exclusive(acq.held):
                    holder = sorted(_exclusive(acq.held))[0]
                    if not module.allowed("aio-sem-under-lock", acq.line):
                        findings.append(
                            Finding(
                                rule="aio-sem-under-lock",
                                severity=Severity.WARNING,
                                location=_loc(module, acq.line),
                                message=(
                                    f"{fn.qualname}: semaphore {acq.token} "
                                    f"acquired while holding exclusive "
                                    f"{holder}; if slot release needs that "
                                    "lock the pool deadlocks"
                                ),
                            )
                        )
                for t, _k, _m, _s in acq.held:
                    add_edge(t, acq.token, module, fn, acq.line)
            # Call-edge propagation: everything a callee may acquire is
            # ordered after every token held at the call site.
            for site in fn.calls:
                if site.style == "task" or not site.held:
                    continue
                for callee in graph.resolve(fn, site.target):
                    for token, _kind, _mode in graph.may_acquire.get(
                        callee, frozenset()
                    ):
                        for t, _k, _m, _s in site.held:
                            add_edge(t, token, module, fn, site.line)

    # DFS cycle detection over the order graph.
    reported: Set[frozenset] = set()
    for start in sorted(edges):
        stack = [(start, [start])]
        while stack:
            node, path = stack.pop()
            for nxt in sorted(edges.get(node, ())):
                if nxt == start and len(path) > 1:
                    key = frozenset(path)
                    if key in reported:
                        continue
                    reported.add(key)
                    module, fn, line = edges[path[-1]][start]
                    if module.allowed("aio-lock-order", line):
                        continue
                    cycle = " -> ".join(path + [start])
                    findings.append(
                        Finding(
                            rule="aio-lock-order",
                            severity=Severity.ERROR,
                            location=_loc(module, line),
                            message=(
                                f"{fn.qualname}: acquisition-order cycle "
                                f"{cycle}; two coroutines taking these locks "
                                "in opposite orders deadlock"
                            ),
                        )
                    )
                elif nxt not in path:
                    stack.append((nxt, path + [nxt]))
    return findings


# -- family 3: virtual-time determinism ---------------------------------

_EVENT_RULES = {
    "wall-clock": ("aio-wall-clock", Severity.ERROR),
    "rng": ("aio-rng", Severity.ERROR),
    "unordered-iter": ("aio-unordered-spawn", Severity.WARNING),
    "sleep-zero": ("aio-sleep-zero", Severity.WARNING),
}


def check_determinism(
    modules: Sequence[ModuleModel], graph: CallGraph
) -> List[Finding]:
    findings: List[Finding] = []
    for module in modules:
        for fn in module.all_functions():
            if not fn.is_async:
                continue
            for ev in fn.events:
                if ev.kind not in _EVENT_RULES:
                    continue
                rule, severity = _EVENT_RULES[ev.kind]
                if module.allowed(rule, ev.line):
                    continue
                findings.append(
                    Finding(
                        rule=rule,
                        severity=severity,
                        location=_loc(module, ev.line),
                        message=f"{fn.qualname}: {ev.detail}",
                    )
                )
    return findings


# -- family 4: task hygiene ---------------------------------------------

_SHUTDOWN_RE = None  # set lazily from model to keep one definition


def _is_shutdown_name(name: str) -> bool:
    global _SHUTDOWN_RE
    if _SHUTDOWN_RE is None:
        from repro.analysis.aio.model import _SHUTDOWN_RE as pat

        _SHUTDOWN_RE = pat
    return bool(_SHUTDOWN_RE.search(name))


def check_hygiene(
    modules: Sequence[ModuleModel], graph: CallGraph
) -> List[Finding]:
    findings: List[Finding] = []
    for module in modules:
        for fn in module.all_functions():
            for site in fn.calls:
                if site.style != "bare":
                    continue
                if not graph.is_coroutine(site.target):
                    continue
                if module.allowed("aio-unawaited", site.line):
                    continue
                findings.append(
                    Finding(
                        rule="aio-unawaited",
                        severity=Severity.ERROR,
                        location=_loc(module, site.line),
                        message=(
                            f"{fn.qualname}: coroutine {site.target}() called "
                            "but never awaited — the body never runs"
                        ),
                    )
                )
            for ev in fn.events:
                if ev.kind != "dropped-task":
                    continue
                if module.allowed("aio-dropped-task", ev.line):
                    continue
                findings.append(
                    Finding(
                        rule="aio-dropped-task",
                        severity=Severity.WARNING,
                        location=_loc(module, ev.line),
                        message=f"{fn.qualname}: {ev.detail}",
                    )
                )
            cls = _class_of(modules, fn.cls) if fn.cls else None
            task_fields = cls.task_fields if cls is not None else set()
            for g in fn.gathers:
                if g.has_policy:
                    continue
                on_shutdown = _is_shutdown_name(g.func_name)
                over_tasks = (
                    g.source_field is not None
                    and g.source_field.split(".")[0] in task_fields
                )
                if not (on_shutdown or over_tasks):
                    continue
                if module.allowed("aio-gather-policy", g.line):
                    continue
                why = (
                    "a shutdown path" if on_shutdown else "a task container"
                )
                findings.append(
                    Finding(
                        rule="aio-gather-policy",
                        severity=Severity.WARNING,
                        location=_loc(module, g.line),
                        message=(
                            f"{fn.qualname}: gather on {why} without an "
                            "explicit return_exceptions policy; the first "
                            "failure abandons the remaining awaits mid-"
                            "shutdown"
                        ),
                    )
                )
    return findings


# -- driver -------------------------------------------------------------


def run_checkers(
    modules: Sequence[ModuleModel], graph: Optional[CallGraph] = None
) -> List[Finding]:
    """All four families over ``modules`` (building the graph if needed)."""
    if graph is None:
        from repro.analysis.aio.callgraph import build_call_graph

        graph = build_call_graph(modules)
    findings: List[Finding] = []
    findings.extend(check_atomicity(modules, graph))
    findings.extend(check_lock_order(modules, graph))
    findings.extend(check_determinism(modules, graph))
    findings.extend(check_hygiene(modules, graph))
    return findings
