"""Async-concurrency model extraction for the serving layer.

This module turns the source of ``repro.serve`` (and the stream-model
integration points) into a checkable model of its concurrency behaviour:

* **await points** — every ``await`` is numbered in source order and
  treated as a potential interleaving boundary (on a virtual-time loop a
  non-suspending await does not actually yield, but the scheduler is
  free to change that; the analysis is conservative);
* **lock contexts** — ``async with`` blocks and manual
  ``acquire``/``release`` pairs over fields constructed as
  :class:`asyncio.Lock`, :class:`asyncio.Semaphore` or the serving
  layer's ``AsyncRWLock`` (whose reader/writer split is modelled as two
  modes of one token).  Factory methods that hand out a lazily created
  lock (``def _slots(self): ... return self._stream_slots``) canonicalise
  to the underlying field, so ``async with self._slots():`` and a direct
  field acquisition name the same token;
* **field accesses** — reads and writes of ``self.`` state, each stamped
  with the await index and the locks held at that instant, plus a small
  local dataflow (reads assigned to locals are *taints* that surface
  when the local later flows into a write of the same field);
* **call/spawn structure** — awaited calls, ``create_task`` spawns, bare
  (un-awaited) calls, and ``gather`` sites with their exception policy.

Annotations (comments, checked by :mod:`repro.analysis.aio.checkers`):

``# aio: guarded-by(self._lock)``
    on a field's assignment declares the lock that must be held to
    mutate it from a coroutine.
``# aio: allow(<rule>[, <rule>...])``
    on the flagged line, the line above, or the enclosing ``def`` line
    waives a rule occurrence (same contract as the hot-path lint).

Soundness caveats (documented in DESIGN.md Sec. 15): branches of a
conditional are walked in sequence, loop bodies once; acquisitions whose
release lives in a different function are treated as held to the end of
the acquiring function; attribute aliasing through locals is not
tracked beyond single-assignment taints.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Acquisition",
    "AtomicityPair",
    "CallSite",
    "ClassModel",
    "FunctionModel",
    "GatherSite",
    "ModuleModel",
    "ReadRecord",
    "WriteRecord",
    "extract_module",
    "extract_paths",
]

#: Constructors that make a field (or module global) a lock token.
_LOCK_CTORS = {
    "Lock": "lock",
    "Semaphore": "sem",
    "BoundedSemaphore": "sem",
    "AsyncRWLock": "rw",
}

#: Constructors/literals that type a field as a container.
_CONTAINER_CTORS = {"set": "set", "frozenset": "set", "dict": "dict",
                    "deque": "deque", "list": "list", "OrderedDict": "dict"}

#: Method calls that mutate the container/field they are called on.
_MUTATORS = {
    "append", "appendleft", "add", "discard", "remove", "pop", "popleft",
    "clear", "update", "extend", "insert", "setdefault",
}

#: (module-ish name, attribute) pairs that read the wall clock.  The
#: event loop's own ``loop.time()`` is virtual time and exempt.
_CLOCK_READS = {
    ("time", "time"), ("time", "perf_counter"), ("time", "monotonic"),
    ("time", "process_time"), ("time", "clock_gettime"),
    ("datetime", "now"), ("datetime", "utcnow"), ("date", "today"),
}

#: Legacy shared-state RNG attributes (np.random.*) and stdlib random.
_LEGACY_RNG = {
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "seed", "uniform", "normal",
    "standard_normal", "randrange", "sample",
}

_GUARD_RE = re.compile(r"#\s*aio:\s*guarded-by\(\s*([^)]+?)\s*\)")
_ALLOW_RE = re.compile(r"#\s*aio:\s*allow\(\s*([a-zA-Z0-9_\-, ]+?)\s*\)")

#: Function names that mark a shutdown/teardown path for gather policy.
_SHUTDOWN_RE = re.compile(r"stop|drain|close|shutdown|cancel|aclose|join")


#: A held-lock entry: ``(token, kind, mode, seq)``.  ``seq`` numbers the
#: acquisition within its function, so the same token re-acquired after
#: a release is a *different* entry — "held at both ends" is only
#: protection when the same acquisition spans the whole window.
HeldLock = Tuple[str, str, str, int]


@dataclass(frozen=True)
class ReadRecord:
    """One read of a ``self.`` field inside a coroutine."""

    field: str
    await_index: int
    locks: Tuple[HeldLock, ...]
    line: int


@dataclass(frozen=True)
class WriteRecord:
    """One write (store, augmented store, or mutating call) of a field."""

    field: str
    await_index: int
    locks: Tuple[HeldLock, ...]
    line: int


@dataclass(frozen=True)
class AtomicityPair:
    """A read whose value crosses an await before being written back."""

    field: str
    read_line: int
    write_line: int
    awaits_between: int
    read_locks: Tuple[HeldLock, ...]
    write_locks: Tuple[HeldLock, ...]


@dataclass(frozen=True)
class Acquisition:
    """One lock/semaphore acquisition with the context it happened in."""

    token: str
    kind: str  # "lock" | "sem" | "rw"
    mode: str  # "x" (exclusive), "r", "w", "s" (semaphore slot)
    line: int
    held: Tuple[HeldLock, ...]  # snapshot before this acquire
    via: str  # "with" | "manual"


@dataclass(frozen=True)
class CallSite:
    """One call to a (possibly) known coroutine."""

    target: str  # "Class.method", "function", or "?.method"
    line: int
    style: str  # "await" | "task" | "bare" | "sync"
    held: Tuple[HeldLock, ...]


@dataclass(frozen=True)
class GatherSite:
    """One ``asyncio.gather`` call."""

    line: int
    has_policy: bool  # return_exceptions passed explicitly
    source_field: Optional[str]  # self-field the starred args came from
    func_name: str


@dataclass(frozen=True)
class Event:
    """A syntactic determinism/hygiene event inside a coroutine."""

    kind: str  # "wall-clock" | "rng" | "sleep-zero" | "unordered-iter" | "dropped-task"
    line: int
    detail: str


@dataclass
class FunctionModel:
    """Everything the checkers need to know about one function."""

    qualname: str
    path: str
    lineno: int
    is_async: bool
    cls: Optional[str] = None
    name: str = ""
    reads: List[ReadRecord] = field(default_factory=list)
    writes: List[WriteRecord] = field(default_factory=list)
    atomicity: List[AtomicityPair] = field(default_factory=list)
    acquisitions: List[Acquisition] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    gathers: List[GatherSite] = field(default_factory=list)
    events: List[Event] = field(default_factory=list)
    await_count: int = 0


@dataclass
class ClassModel:
    """Per-class lock/field typing plus the method models."""

    name: str
    lock_fields: Dict[str, str] = field(default_factory=dict)  # attr -> kind
    lock_methods: Dict[str, str] = field(default_factory=dict)  # method -> attr
    container_fields: Dict[str, str] = field(default_factory=dict)
    task_fields: Set[str] = field(default_factory=set)
    guards: Dict[str, str] = field(default_factory=dict)  # field -> token
    methods: Dict[str, FunctionModel] = field(default_factory=dict)


@dataclass
class ModuleModel:
    """One analyzed source file."""

    path: str
    classes: Dict[str, ClassModel] = field(default_factory=dict)
    functions: Dict[str, FunctionModel] = field(default_factory=dict)
    module_locks: Dict[str, str] = field(default_factory=dict)  # name -> kind
    allow: Dict[int, Set[str]] = field(default_factory=dict)
    enclosing_def: Dict[int, int] = field(default_factory=dict)

    def all_functions(self) -> List[FunctionModel]:
        """Every function model, methods included, in source order."""
        out = list(self.functions.values())
        for cls in self.classes.values():
            out.extend(cls.methods.values())
        return sorted(out, key=lambda f: f.lineno)

    def allowed(self, rule: str, lineno: int) -> bool:
        """True when an ``# aio: allow`` waiver covers this line."""
        for cand in (lineno, lineno - 1, self.enclosing_def.get(lineno)):
            if cand is not None and rule in self.allow.get(cand, ()):
                return True
        return False


def _ctor_kind(value: ast.AST, table: Dict[str, str]) -> Optional[str]:
    """Classify ``asyncio.Lock()`` / ``set()`` / ``{}`` style constructors."""
    if isinstance(value, ast.Call):
        func = value.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name in table:
            return table[name]
    if table is _CONTAINER_CTORS:
        if isinstance(value, (ast.Dict, ast.DictComp)):
            return "dict"
        if isinstance(value, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(value, (ast.List, ast.ListComp)):
            return "list"
    return None


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.a.b`` → ``"a.b"``; ``None`` for non-self-rooted expressions."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and parts:
        return ".".join(reversed(parts))
    return None


def _attr_chain(node: ast.AST) -> List[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return list(reversed(parts))


class _ClassScanner:
    """First pass over a class: field typing, guards, factory methods."""

    def __init__(self, node: ast.ClassDef, lines: Sequence[str]) -> None:
        self.model = ClassModel(name=node.name)
        self._lines = lines
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_method(item)
        # Factory methods resolve after all fields are typed.
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_factory(item)

    def _guard_on(self, lineno: int) -> Optional[str]:
        if 1 <= lineno <= len(self._lines):
            m = _GUARD_RE.search(self._lines[lineno - 1])
            if m:
                return m.group(1)
        return None

    def _scan_method(self, fn) -> None:
        for node in ast.walk(fn):
            target = None
            value = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            if target is None:
                continue
            attr = _self_attr(target)
            if attr is None or "." in attr:
                continue
            kind = _ctor_kind(value, _LOCK_CTORS)
            if kind is not None:
                self.model.lock_fields[attr] = kind
            ckind = _ctor_kind(value, _CONTAINER_CTORS)
            if ckind is not None:
                self.model.container_fields.setdefault(attr, ckind)
            guard = self._guard_on(node.lineno)
            if guard is not None:
                self.model.guards[attr] = guard
            # Task containers: self.F[task] = None / self.F.add(task)
            # are detected in the event walker; here catch annotations
            # like ``self._inflight: Dict[asyncio.Task, None] = {}``.
            if isinstance(node, ast.AnnAssign) and "Task" in ast.unparse(
                node.annotation
            ):
                self.model.task_fields.add(attr)

    def _scan_factory(self, fn) -> None:
        for node in ast.walk(fn):
            if isinstance(node, ast.Return) and node.value is not None:
                attr = _self_attr(node.value)
                if attr in self.model.lock_fields:
                    self.model.lock_methods[fn.name] = attr


class _DefLines(ast.NodeVisitor):
    """Line → enclosing ``def`` line, for allow() waivers on the def."""

    def __init__(self) -> None:
        self.enclosing: Dict[int, int] = {}
        self._stack: List[int] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._stack.append(node.lineno)
        self.generic_visit(node)
        self._stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def generic_visit(self, node: ast.AST) -> None:
        lineno = getattr(node, "lineno", None)
        if lineno is not None and self._stack:
            self.enclosing.setdefault(lineno, self._stack[-1])
        super().generic_visit(node)


class _FuncWalker:
    """Ordered walk of one coroutine: awaits, locks, accesses, events."""

    def __init__(
        self,
        fn,
        module: ModuleModel,
        cls: Optional[ClassModel],
        path: str,
    ) -> None:
        self.fn = fn
        self.module = module
        self.cls = cls
        qual = f"{cls.name}.{fn.name}" if cls else fn.name
        self.model = FunctionModel(
            qualname=qual,
            path=path,
            lineno=fn.lineno,
            is_async=isinstance(fn, ast.AsyncFunctionDef),
            cls=cls.name if cls else None,
            name=fn.name,
        )
        self.await_index = 0
        self.held: List[HeldLock] = []
        self._acq_seq = 0
        # local name -> reads that produced it (the taint set)
        self.taints: Dict[str, Tuple[ReadRecord, ...]] = {}
        # local name -> "task" when bound from create_task(...)
        self.task_vars: Set[str] = set()
        # local name -> self-field it was materialised from (tuple(self.F))
        self.container_vars: Dict[str, str] = {}

    # -- lock canonicalisation -------------------------------------------

    def _token_of(self, expr: ast.AST) -> Optional[Tuple[str, str]]:
        """Resolve a lock expression to ``(token, kind)``."""
        attr = _self_attr(expr)
        if attr is not None and self.cls is not None:
            if attr in self.cls.lock_fields:
                return f"{self.cls.name}.{attr}", self.cls.lock_fields[attr]
        if isinstance(expr, ast.Call):
            inner = _self_attr(expr.func)
            if (
                inner is not None
                and self.cls is not None
                and inner in self.cls.lock_methods
            ):
                target = self.cls.lock_methods[inner]
                return (
                    f"{self.cls.name}.{target}",
                    self.cls.lock_fields[target],
                )
        if isinstance(expr, ast.Name):
            kind = self.module.module_locks.get(expr.id)
            if kind is not None:
                return expr.id, kind
        return None

    def _held_snapshot(self) -> Tuple[HeldLock, ...]:
        return tuple(self.held)

    def _acquire(self, token: str, kind: str, mode: str, line: int, via: str) -> None:
        self.model.acquisitions.append(
            Acquisition(token, kind, mode, line, self._held_snapshot(), via)
        )
        self.held.append((token, kind, mode, self._acq_seq))
        self._acq_seq += 1

    def _release(self, token: str, mode: Optional[str]) -> None:
        for i in range(len(self.held) - 1, -1, -1):
            t, _k, m, _s = self.held[i]
            if t == token and (mode is None or m == mode):
                del self.held[i]
                return

    # -- entry -----------------------------------------------------------

    def run(self) -> FunctionModel:
        self.block(self.fn.body)
        self.model.await_count = self.await_index
        return self.model

    def block(self, stmts: Sequence[ast.stmt]) -> None:
        for s in stmts:
            self.stmt(s)

    # -- statements ------------------------------------------------------

    def stmt(self, s: ast.stmt) -> None:
        if isinstance(s, ast.Assign):
            reads = self.expr(s.value)
            for target in s.targets:
                self._store(target, s.value, reads)
        elif isinstance(s, ast.AnnAssign):
            reads = self.expr(s.value) if s.value is not None else []
            if s.value is not None:
                self._store(s.target, s.value, reads)
        elif isinstance(s, ast.AugAssign):
            field_name = _self_attr(s.target)
            pre_read = None
            if field_name is not None:
                pre_read = ReadRecord(
                    field_name, self.await_index, self._held_snapshot(), s.lineno
                )
                self.model.reads.append(pre_read)
            reads = self.expr(s.value)
            if field_name is not None:
                self._write_field(field_name, s.lineno, s.value, reads, pre_read)
        elif isinstance(s, ast.Expr):
            self._expr_stmt(s.value)
        elif isinstance(s, (ast.AsyncWith, ast.With)):
            self._with(s)
        elif isinstance(s, (ast.For, ast.AsyncFor)):
            self._for(s)
        elif isinstance(s, ast.While):
            self.expr(s.test)
            self.block(s.body)
            self.block(s.orelse)
        elif isinstance(s, ast.If):
            self.expr(s.test)
            self.block(s.body)
            self.block(s.orelse)
        elif isinstance(s, ast.Try):
            self.block(s.body)
            for handler in s.handlers:
                self.block(handler.body)
            self.block(s.orelse)
            self.block(s.finalbody)
        elif isinstance(s, ast.Return) and s.value is not None:
            self.expr(s.value)
        elif isinstance(s, ast.Raise) and s.exc is not None:
            self.expr(s.exc)
        elif isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # nested defs are modelled separately if at class/module level
        elif isinstance(s, ast.Delete):
            pass
        else:
            for child in ast.iter_child_nodes(s):
                if isinstance(child, ast.expr):
                    self.expr(child)

    def _store(
        self, target: ast.AST, value: ast.AST, reads: List[ReadRecord]
    ) -> None:
        field_name = _self_attr(target)
        if field_name is not None:
            self._write_field(field_name, target.lineno, value, reads, None)
            return
        if isinstance(target, ast.Subscript):
            base = _self_attr(target.value)
            if base is not None:
                self._write_field(base, target.lineno, value, reads, None)
                self._note_task_store(base, target)
            return
        if isinstance(target, ast.Name):
            names = {
                n.id
                for n in ast.walk(value)
                if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
            }
            taint: List[ReadRecord] = list(reads)
            for n in names:
                taint.extend(self.taints.get(n, ()))
            if taint:
                self.taints[target.id] = tuple(taint)
            else:
                self.taints.pop(target.id, None)
            if self._is_create_task(value):
                self.task_vars.add(target.id)
            src = self._container_source(value)
            if src is not None:
                self.container_vars[target.id] = src
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._store(elt, value, reads)

    def _note_task_store(self, base: str, target: ast.Subscript) -> None:
        """``self.F[task] = ...`` with a create_task-bound key marks F."""
        if self.cls is None:
            return
        key = target.slice
        if isinstance(key, ast.Name) and key.id in self.task_vars:
            self.cls.task_fields.add(base.split(".")[0])

    def _write_field(
        self,
        field_name: str,
        line: int,
        value: Optional[ast.AST],
        reads: List[ReadRecord],
        pre_read: Optional[ReadRecord],
    ) -> None:
        locks = self._held_snapshot()
        self.model.writes.append(
            WriteRecord(field_name, self.await_index, locks, line)
        )
        candidates: List[ReadRecord] = []
        for rec in reads:
            if rec.field == field_name and rec.await_index < self.await_index:
                candidates.append(rec)
        if pre_read is not None and pre_read.await_index < self.await_index:
            candidates.append(pre_read)
        if value is not None:
            for n in ast.walk(value):
                if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load):
                    for rec in self.taints.get(n.id, ()):
                        if (
                            rec.field == field_name
                            and rec.await_index < self.await_index
                        ):
                            candidates.append(rec)
        if candidates:
            first = min(candidates, key=lambda r: (r.await_index, r.line))
            self.model.atomicity.append(
                AtomicityPair(
                    field=field_name,
                    read_line=first.line,
                    write_line=line,
                    awaits_between=self.await_index - first.await_index,
                    read_locks=first.locks,
                    write_locks=locks,
                )
            )

    # -- expression statements (bare calls, releases, spawns) ------------

    def _expr_stmt(self, e: ast.expr) -> None:
        if isinstance(e, ast.Call):
            func = e.func
            if isinstance(func, ast.Attribute) and func.attr in (
                "release",
                "release_read",
                "release_write",
            ):
                tok = self._token_of(func.value)
                if tok is not None:
                    mode = {"release_read": "r", "release_write": "w"}.get(
                        func.attr
                    )
                    self._release(tok[0], mode)
                    return
            if self._is_create_task(e):
                self.model.events.append(
                    Event(
                        "dropped-task",
                        e.lineno,
                        "create_task handle discarded; no owner can cancel "
                        "or observe the task",
                    )
                )
            self._call(e, awaited=False, bare=True)
            return
        self.expr(e)

    # -- with / for -------------------------------------------------------

    def _with(self, s) -> None:
        is_async = isinstance(s, ast.AsyncWith)
        entered: List[Optional[Tuple[str, str]]] = []
        for item in s.items:
            ctx = item.context_expr
            self.expr(ctx, skip_lock_call=True)
            tok = self._token_of(ctx)
            if is_async:
                self.await_index += 1
            if tok is not None and is_async:
                token, kind = tok
                mode = "x" if kind == "lock" else ("s" if kind == "sem" else "w")
                self._acquire(token, kind, mode, ctx.lineno, "with")
            entered.append(tok if is_async else None)
        self.block(s.body)
        for tok in reversed(entered):
            if is_async:
                self.await_index += 1
            if tok is not None:
                self._release(tok[0], None)

    def _for(self, s) -> None:
        self.expr(s.iter)
        src = self._container_source(s.iter) or (
            s.iter.id if isinstance(s.iter, ast.Name) else None
        )
        field_name = src if src is not None else None
        if field_name is not None:
            resolved = self.container_vars.get(field_name, field_name)
            ctype = (
                self.cls.container_fields.get(resolved.split(".")[0])
                if self.cls is not None
                else None
            )
            if ctype == "set" and any(
                isinstance(n, (ast.Await, ast.Call))
                and (isinstance(n, ast.Await) or self._is_spawn(n))
                for n in ast.walk(s)
            ):
                self.model.events.append(
                    Event(
                        "unordered-iter",
                        s.lineno,
                        f"iterating set-typed self.{resolved} drives task "
                        "spawn/await order; sets iterate in hash order, which "
                        "varies run to run",
                    )
                )
        if isinstance(s.target, ast.Name):
            self.taints.pop(s.target.id, None)
        self.block(s.body)
        self.block(s.orelse)

    # -- expressions ------------------------------------------------------

    def expr(
        self, e: Optional[ast.AST], awaited: bool = False, skip_lock_call: bool = False
    ) -> List[ReadRecord]:
        """Process one expression; returns the field reads it performed."""
        if e is None:
            return []
        reads: List[ReadRecord] = []
        if isinstance(e, ast.Await):
            reads.extend(self._await(e))
            return reads
        if isinstance(e, ast.Call):
            reads.extend(self._call(e, awaited=awaited, skip_lock=skip_lock_call))
            return reads
        if isinstance(e, ast.Attribute) and isinstance(e.ctx, ast.Load):
            attr = _self_attr(e)
            if attr is not None:
                rec = ReadRecord(
                    attr, self.await_index, self._held_snapshot(), e.lineno
                )
                self.model.reads.append(rec)
                reads.append(rec)
                return reads
        for child in ast.iter_child_nodes(e):
            if isinstance(child, ast.expr):
                reads.extend(self.expr(child))
        return reads

    def _await(self, e: ast.Await) -> List[ReadRecord]:
        inner = e.value
        if isinstance(inner, ast.Call):
            func = inner.func
            # Manual lock acquisition: await <lockexpr>.acquire[_read|_write]()
            if isinstance(func, ast.Attribute) and func.attr in (
                "acquire",
                "acquire_read",
                "acquire_write",
            ):
                tok = self._token_of(func.value)
                if tok is not None:
                    token, kind = tok
                    mode = {
                        "acquire_read": "r",
                        "acquire_write": "w",
                    }.get(func.attr, "x" if kind == "lock" else "s")
                    self.await_index += 1
                    self._acquire(token, kind, mode, e.lineno, "manual")
                    return []
            reads = self._call(inner, awaited=True)
            self.await_index += 1
            return reads
        reads = self.expr(inner)
        self.await_index += 1
        return reads

    def _call(
        self,
        e: ast.Call,
        awaited: bool = False,
        skip_lock: bool = False,
        bare: bool = False,
    ) -> List[ReadRecord]:
        reads: List[ReadRecord] = []
        chain = _attr_chain(e.func)
        leaf = chain[-1] if chain else ""
        if self._is_create_task(e):
            spawned = self._spawn_target(e)
            if spawned is not None:
                self.model.calls.append(
                    CallSite(spawned, e.lineno, "task", self._held_snapshot())
                )
            # Walk the spawned call's own arguments, but not the inner
            # call itself: it runs in the task's context, not here.
            if e.args and isinstance(e.args[0], ast.Call):
                inner = e.args[0]
                for arg in inner.args:
                    reads.extend(self.expr(arg))
                for kw in inner.keywords:
                    reads.extend(self.expr(kw.value))
            return reads
        if leaf == "sleep" and "asyncio" in chain[:-1] or (
            leaf == "sleep" and len(chain) == 1
        ):
            if e.args and isinstance(e.args[0], ast.Constant) and e.args[0].value == 0:
                self.model.events.append(
                    Event(
                        "sleep-zero",
                        e.lineno,
                        "bare asyncio.sleep(0) is a scheduling race: it "
                        "yields to whatever happens to be ready",
                    )
                )
        if leaf == "gather":
            self._gather(e)
        if len(chain) >= 2 and (chain[-2], leaf) in _CLOCK_READS:
            self.model.events.append(
                Event(
                    "wall-clock",
                    e.lineno,
                    f"{chain[-2]}.{leaf}() reads the wall clock inside a "
                    "coroutine; use loop.time() so virtual-time runs replay "
                    "bit-for-bit",
                )
            )
        self._rng_event(e, chain, leaf)
        if not skip_lock:
            target = self._call_target(e)
            if target is not None:
                style = "await" if awaited else ("bare" if bare else "sync")
                self.model.calls.append(
                    CallSite(target, e.lineno, style, self._held_snapshot())
                )
        for arg in e.args:
            if isinstance(arg, ast.Starred):
                reads.extend(self.expr(arg.value))
            else:
                reads.extend(self.expr(arg))
        for kw in e.keywords:
            reads.extend(self.expr(kw.value))
        if not isinstance(e.func, ast.Name):
            reads.extend(self.expr(e.func.value) if isinstance(e.func, ast.Attribute) else [])
        # Mutating method calls on self fields are writes.
        if isinstance(e.func, ast.Attribute) and leaf in _MUTATORS:
            base = _self_attr(e.func.value)
            if base is not None:
                self.model.writes.append(
                    WriteRecord(
                        base, self.await_index, self._held_snapshot(), e.lineno
                    )
                )
                if leaf in ("add", "append", "appendleft") and e.args:
                    a0 = e.args[0]
                    if (
                        isinstance(a0, ast.Name)
                        and a0.id in self.task_vars
                        and self.cls is not None
                    ):
                        self.cls.task_fields.add(base.split(".")[0])
        return reads

    def _rng_event(self, e: ast.Call, chain: List[str], leaf: str) -> None:
        if leaf == "default_rng" and not e.args and not e.keywords:
            self.model.events.append(
                Event(
                    "rng",
                    e.lineno,
                    "default_rng() without a seed draws OS entropy inside a "
                    "coroutine; thread an explicit seed through",
                )
            )
            return
        if len(chain) >= 2 and chain[-2] == "random" and leaf in _LEGACY_RNG:
            self.model.events.append(
                Event(
                    "rng",
                    e.lineno,
                    f"shared-state RNG {chain[-2]}.{leaf}() inside a "
                    "coroutine; use a seeded np.random.default_rng(...)",
                )
            )

    def _gather(self, e: ast.Call) -> None:
        has_policy = any(kw.arg == "return_exceptions" for kw in e.keywords)
        source_field: Optional[str] = None
        for arg in e.args:
            if not isinstance(arg, ast.Starred):
                continue
            src = self._container_source(arg.value)
            if src is None and isinstance(arg.value, ast.Name):
                src = self.container_vars.get(arg.value.id)
            if src is not None:
                source_field = src
                ctype = (
                    self.cls.container_fields.get(src.split(".")[0])
                    if self.cls is not None
                    else None
                )
                if ctype == "set":
                    self.model.events.append(
                        Event(
                            "unordered-iter",
                            e.lineno,
                            f"gather(*…self.{src}) spreads a set: the await "
                            "registration order varies run to run",
                        )
                    )
        self.model.gathers.append(
            GatherSite(e.lineno, has_policy, source_field, self.fn.name)
        )

    def _container_source(self, expr: ast.AST) -> Optional[str]:
        """``tuple(self.F)`` / ``list(self.F)`` / ``self.F`` → ``F``."""
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            if expr.func.id in ("tuple", "list", "sorted", "frozenset", "set"):
                if expr.args:
                    return self._container_source(expr.args[0])
        attr = _self_attr(expr)
        return attr

    def _is_create_task(self, e: ast.AST) -> bool:
        if not isinstance(e, ast.Call):
            return False
        chain = _attr_chain(e.func)
        return bool(chain) and chain[-1] in ("create_task", "ensure_future")

    def _is_spawn(self, e: ast.AST) -> bool:
        if not isinstance(e, ast.Call):
            return False
        chain = _attr_chain(e.func)
        return bool(chain) and chain[-1] in (
            "create_task",
            "ensure_future",
            "gather",
        )

    def _spawn_target(self, e: ast.Call) -> Optional[str]:
        if e.args and isinstance(e.args[0], ast.Call):
            return self._call_target(e.args[0])
        return None

    def _call_target(self, e: ast.Call) -> Optional[str]:
        func = e.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            chain = _attr_chain(func)
            if chain and chain[0] in ("asyncio", "np", "numpy", "time", "loop"):
                return None
            attr = _self_attr(func)
            if attr is not None and "." not in attr and self.cls is not None:
                return f"{self.cls.name}.{attr}"
            if isinstance(func.value, ast.Name):
                return f"?.{func.attr}"
        return None


def extract_module(source: str, path: str = "<string>") -> ModuleModel:
    """Parse one file into a :class:`ModuleModel` (all passes)."""
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    module = ModuleModel(path=path)
    for i, line in enumerate(lines, start=1):
        m = _ALLOW_RE.search(line)
        if m:
            module.allow[i] = {
                part.strip() for part in m.group(1).split(",") if part.strip()
            }
    defs = _DefLines()
    defs.visit(tree)
    module.enclosing_def = defs.enclosing
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                kind = _ctor_kind(node.value, _LOCK_CTORS)
                if kind is not None:
                    module.module_locks[target.id] = kind
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            cls = _ClassScanner(node, lines).model
            module.classes[node.name] = cls
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    walker = _FuncWalker(item, module, cls, path)
                    cls.methods[item.name] = walker.run()
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            walker = _FuncWalker(node, module, None, path)
            module.functions[node.name] = walker.run()
    return module


def extract_paths(paths: Sequence[Path]) -> List[ModuleModel]:
    """Extract every ``.py`` file in ``paths`` (sorted, stable order)."""
    models: List[ModuleModel] = []
    for path in sorted(Path(p) for p in paths):
        if path.suffix != ".py":
            continue
        models.append(extract_module(path.read_text(), str(path)))
    return models
