"""Coroutine call graph and transitive lock summaries.

The extraction layer (:mod:`repro.analysis.aio.model`) records *call
sites* with syntactic targets: ``Class.method`` for ``self.m(...)``,
``function`` for bare names, and ``?.method`` for attribute calls whose
receiver is an unknown local.  This module links those sites against the
function table of the analyzed module set and computes, per function, a
fixpoint **may-acquire** summary: the set of ``(token, kind, mode)``
lock acquisitions the function may perform directly or through any
callee reachable without spawning a new task (``create_task`` spawns
run in their own context, so a spawn does not propagate acquisitions to
the spawner).

Resolution rules (deliberately conservative):

* ``Class.method`` resolves exactly;
* a bare ``function`` target resolves to a module-level function of that
  name in any analyzed module;
* ``?.method`` (unknown receiver) resolves, **for lock summaries only**,
  to every method of that name across the analyzed classes — this keeps
  the deadlock checker sound across ``replica.run_batch(...)`` style
  calls through router locals at the cost of possible over-approximation
  (waivable with ``# aio: allow(aio-lock-order)``).

The graph also serves the task-hygiene checker: :meth:`CallGraph.is_coroutine`
answers whether a call target definitely names an ``async def``, which
is what makes a bare (un-awaited) call a lost coroutine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.analysis.aio.model import FunctionModel, ModuleModel

__all__ = ["CallGraph", "build_call_graph"]

LockToken = Tuple[str, str, str]  # (token, kind, mode)


@dataclass
class CallGraph:
    """Linked function table plus transitive lock summaries."""

    #: qualname -> function model (methods under ``Class.method``).
    functions: Dict[str, FunctionModel] = field(default_factory=dict)
    #: method name -> qualnames sharing it (for ``?.method`` resolution).
    by_method: Dict[str, List[str]] = field(default_factory=dict)
    #: qualname -> resolved callee qualnames (excluding spawns).
    edges: Dict[str, List[str]] = field(default_factory=dict)
    #: qualname -> every (token, kind, mode) it may acquire transitively.
    may_acquire: Dict[str, FrozenSet[LockToken]] = field(default_factory=dict)

    def is_coroutine(self, target: str) -> bool:
        """True when ``target`` definitely names an ``async def``.

        ``?.method`` targets answer True only if *every* method of that
        name is async — an un-awaited call must not be flagged when a
        same-named sync method exists somewhere.
        """
        if target in self.functions:
            return self.functions[target].is_async
        if target.startswith("?."):
            quals = self.by_method.get(target[2:], [])
            return bool(quals) and all(
                self.functions[q].is_async for q in quals
            )
        return False

    def resolve(self, fn: FunctionModel, target: str) -> List[str]:
        """Qualnames a call-site target may refer to (summary scope)."""
        if target in self.functions:
            return [target]
        if target.startswith("?."):
            return self.by_method.get(target[2:], [])
        return []


def _direct_acquires(fn: FunctionModel) -> Set[LockToken]:
    return {(a.token, a.kind, a.mode) for a in fn.acquisitions}


def build_call_graph(modules: Sequence[ModuleModel]) -> CallGraph:
    """Link modules into one :class:`CallGraph` with fixpoint summaries."""
    graph = CallGraph()
    for module in modules:
        for fn in module.all_functions():
            graph.functions[fn.qualname] = fn
            if fn.cls is not None:
                graph.by_method.setdefault(fn.name, []).append(fn.qualname)
    for qual, fn in graph.functions.items():
        callees: List[str] = []
        for site in fn.calls:
            if site.style == "task":
                continue  # spawned context: acquisitions don't propagate
            for resolved in graph.resolve(fn, site.target):
                if resolved != qual:
                    callees.append(resolved)
        graph.edges[qual] = callees

    # Fixpoint: may_acquire = direct ∪ union over callees.
    summaries: Dict[str, Set[LockToken]] = {
        qual: _direct_acquires(fn) for qual, fn in graph.functions.items()
    }
    changed = True
    while changed:
        changed = False
        for qual, callees in graph.edges.items():
            acc = summaries[qual]
            before = len(acc)
            for callee in callees:
                acc |= summaries[callee]
            if len(acc) != before:
                changed = True
    graph.may_acquire = {
        qual: frozenset(locks) for qual, locks in summaries.items()
    }
    return graph
