"""Array-program static verifier: the analysis package's third engine.

An abstract interpreter (:mod:`repro.analysis.arrays.interp`) runs each
``@array_kernel``-decorated host kernel over a symbolic-shape / dtype /
value-interval domain (:mod:`sym`, :mod:`values`, :mod:`dtypes`,
:mod:`transfer`) and reports:

* ``packed-key-overflow`` — composite keys like ``row * n + id`` that
  can exceed their dtype, with the smallest concrete counterexample;
* ``broadcast-mismatch`` — elementwise ops over provably incompatible
  symbolic extents;
* ``fancy-index-oob`` — gathers/scatters whose declared index bounds
  provably escape the indexed dim;
* ``inplace-aliasing`` — ``out[idx] op= v`` through non-unique indices
  (numpy's unbuffered read-modify-write drops contributions);
* ``nondet-sort`` / ``nondet-rng`` / ``nondet-clock`` — run-to-run
  divergence hazards, value-aware inside kernels (a bare ``argsort``
  over provably *unique* keys is recorded as a proven obligation, not a
  finding) and syntactic elsewhere (:mod:`nondet`).

Kernels opt in via :func:`repro.annotations.array_kernel`; the modules
listed in :data:`ANNOTATED_MODULES` are imported by :func:`check_arrays`
so their registrations are visible.  DESIGN.md Section 14 documents the
domains, transfer functions and soundness caveats.
"""

from __future__ import annotations

import importlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.arrays.interp import analyze_kernel, find_counterexample
from repro.analysis.arrays.nondet import (
    NONDET_RULES,
    kernel_spans,
    scan_paths,
    scan_source,
)
from repro.analysis.findings import Finding, Severity
from repro.annotations import iter_array_annotations

__all__ = [
    "ANNOTATED_MODULES",
    "ARRAY_RULES",
    "NONDET_RULES",
    "analyze_kernel",
    "find_counterexample",
    "check_arrays",
    "verify_array_kernels",
    "load_baseline",
    "scan_source",
    "scan_paths",
    "kernel_spans",
]

ARRAY_RULES = (
    "packed-key-overflow",
    "broadcast-mismatch",
    "fancy-index-oob",
    "inplace-aliasing",
) + NONDET_RULES

#: Hot modules whose kernels carry @array_kernel contracts.  Importing
#: them populates the default annotation registry; the acceptance bar is
#: a clean --arrays --strict run over at least eight of these.
ANNOTATED_MODULES = (
    "repro.structures.soa",
    "repro.graphs.storage",
    "repro.graphs.stats",
    "repro.graphs.nn_descent",
    "repro.graphs.cagra",
    "repro.graphs.nsg",
    "repro.graphs.dpg",
    "repro.graphs._repair",
    "repro.core.batched",
    "repro.hashing.random_projection",
    "repro.tiered.cache",
    "repro.tiered.index",
)


def _import_annotated(include_known_bad: bool = False) -> None:
    for mod in ANNOTATED_MODULES:
        importlib.import_module(mod)
    if include_known_bad:
        importlib.import_module("repro.analysis.arrays.fixtures")


def load_baseline(path: Path) -> List[Dict[str, str]]:
    """Parse a findings-baseline file: ``{"suppress": [{rule, location}]}``.

    Baseline entries match by exact rule and *prefix* on location (so a
    committed ``src/repro/graphs/foo.py:42`` entry survives line drift
    within the same statement is NOT attempted — the location must be
    re-baselined when lines move; prefix matching only absorbs absolute
    vs. relative path spellings).
    """
    data = json.loads(Path(path).read_text())
    entries = data.get("suppress", [])
    for e in entries:
        if not isinstance(e, dict) or "rule" not in e or "location" not in e:
            raise ValueError(f"malformed baseline entry: {e!r}")
    return entries


def _apply_baseline(
    findings: List[Finding], entries: List[Dict[str, str]]
) -> List[Finding]:
    """Drop baselined findings; surface stale entries as warnings."""
    used = [False] * len(entries)

    def suppressed(f: Finding) -> bool:
        for i, e in enumerate(entries):
            if f.rule == e["rule"] and f.location.endswith(e["location"]):
                used[i] = True
                return True
        return False

    kept = [f for f in findings if not suppressed(f)]
    for i, e in enumerate(entries):
        if not used[i]:
            kept.append(
                Finding(
                    rule="stale-baseline",
                    severity=Severity.WARNING,
                    location=e["location"],
                    message=(
                        f"baseline entry for [{e['rule']}] matched no "
                        "finding; remove it from the baseline file"
                    ),
                )
            )
    return kept


def check_arrays(
    include_known_bad: bool = False,
    baseline: Optional[Path] = None,
    nondet_paths: Optional[Iterable[Path]] = None,
) -> List[Finding]:
    """Run the array verifier: abstract interpretation + nondet sweep.

    Imports :data:`ANNOTATED_MODULES` (plus the known-bad fixtures when
    requested), analyzes every registered kernel, then syntactically
    sweeps the hot-marked modules and ``serve/`` for nondeterminism
    outside kernel spans.  ``baseline`` suppresses accepted findings and
    flags stale suppressions.
    """
    findings, _ = _run(include_known_bad, nondet_paths)
    if baseline is not None:
        findings = _apply_baseline(findings, load_baseline(baseline))
    return findings


def _default_nondet_paths() -> List[Path]:
    root = Path(__file__).resolve().parents[3]  # src/repro
    return sorted(root.rglob("*.py"))


def _run(
    include_known_bad: bool,
    nondet_paths: Optional[Iterable[Path]],
) -> Tuple[List[Finding], List[str]]:
    _import_annotated(include_known_bad=include_known_bad)
    registries = ["default"] + (["known-bad"] if include_known_bad else [])
    findings: List[Finding] = []
    proven: List[str] = []
    for registry in registries:
        for ann in iter_array_annotations(registry=registry):
            kernel_findings, kernel_proven = analyze_kernel(ann)
            findings.extend(kernel_findings)
            proven.extend(kernel_proven)
    spans = kernel_spans(
        registries=("default", "known-bad") if include_known_bad else ("default",)
    )
    paths = nondet_paths if nondet_paths is not None else _default_nondet_paths()
    findings.extend(scan_paths(paths, spans=spans))
    return findings, proven


def verify_array_kernels(
    include_known_bad: bool = False,
) -> "Tuple[List[Finding], List[str], int]":
    """Full report: ``(findings, proven obligations, kernel count)``."""
    findings, proven = _run(include_known_bad, nondet_paths=None)
    _import_annotated(include_known_bad=include_known_bad)
    registries = ["default"] + (["known-bad"] if include_known_bad else [])
    kernels = sum(
        1 for r in registries for _ in iter_array_annotations(registry=r)
    )
    return findings, proven, kernels
