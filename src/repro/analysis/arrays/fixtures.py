"""Known-bad kernels exercising each array-verifier rule.

These register under the ``known-bad`` annotation registry, so they are
invisible to the default analysis run; ``--include-known-bad`` (and the
negative-control step in ``scripts/ci.sh``) pulls them in and asserts
the verifier still catches every seeded defect.  Each fixture is a
minimal, *runnable* kernel whose bug class appears in real array code:

``bad_pack_overflow``
    ``row * n + id`` packing with ``n`` admitted up to ``2**32`` —
    overflows int64 from ``n = 3037000500`` (≈ ``2**31.5``) upward.
``bad_aliased_scatter``
    ``out[idx] += val`` with a duplicate-bearing index: numpy's
    unbuffered read-modify-write drops all but one contribution.
``bad_unstable_tiebreak``
    bare ``np.argsort`` over non-distinct keys: tie order (and any
    downstream selection) is backend-dependent.
``bad_broadcast``
    elementwise op over provably incompatible dims (``n`` vs ``k``).
``bad_oob_gather``
    gather whose declared index bound reaches one past the end.
"""

from __future__ import annotations

import numpy as np

from repro.annotations import arr, array_kernel, scalar

_REGISTRY = "known-bad"


@array_kernel(
    params={"n": (1, 2**32)},
    args={
        "rows": arr("E", lo=0, hi="n-1"),
        "ids": arr("E", lo=0, hi="n-1"),
        "n": scalar("n"),
    },
    returns=[arr("E", dtype="int64")],
    registry=_REGISTRY,
)
def bad_pack_overflow(rows: np.ndarray, ids: np.ndarray, n: int) -> np.ndarray:
    """Packed key whose admitted ``n`` range overflows int64."""
    return rows * np.int64(n) + ids


@array_kernel(
    params={"n": (2, 2**20), "E": (2, 2**20)},
    args={
        "idx": arr("E", lo=0, hi="n-1"),
        "val": arr("E", dtype="float64"),
        "out": arr("n", dtype="float64"),
    },
    returns=[arr("n", dtype="float64")],
    registry=_REGISTRY,
)
def bad_aliased_scatter(idx: np.ndarray, val: np.ndarray, out: np.ndarray) -> np.ndarray:
    """In-place scatter-add through a possibly-duplicated index."""
    out[idx] += val
    return out


@array_kernel(
    params={"E": (2, 2**20)},
    args={"keys": arr("E", lo=0, hi="E-1")},
    returns=[arr("E", dtype="int64")],
    registry=_REGISTRY,
)
def bad_unstable_tiebreak(keys: np.ndarray) -> np.ndarray:
    """Bare argsort on keys that may contain duplicates."""
    return np.argsort(keys)


@array_kernel(
    params={"n": (1, 2**20), "k": (1, 2**20)},
    args={
        "a": arr("n", dtype="float64"),
        "b": arr("k", dtype="float64"),
    },
    returns=[arr("n", dtype="float64")],
    registry=_REGISTRY,
)
def bad_broadcast(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise sum of provably incompatible extents."""
    return a + b


@array_kernel(
    params={"n": (1, 2**20), "E": (1, 2**20)},
    args={
        "data": arr("n", dtype="float64"),
        "idx": arr("E", lo=0, hi="n"),
    },
    returns=[arr("E", dtype="float64")],
    registry=_REGISTRY,
)
def bad_oob_gather(data: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Gather whose declared index bound reaches one past the end."""
    return data[idx]
