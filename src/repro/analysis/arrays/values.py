"""Abstract values for the array interpreter.

An :class:`ArrayVal` abstracts one ndarray (or scalar: rank 0) by

* ``shape`` — tuple of symbolic dims (:class:`~.sym.SymExpr`) or ``None``
  for an unknown extent; ``None`` for the whole tuple = unknown rank,
* ``dtype`` — numpy dtype name, or ``None`` for a weak python scalar,
* ``ival`` — elementwise value bounds as a symbolic interval,
* ``unique`` / ``sorted_`` — flattened-distinctness and last-axis order
  facts (used by the nondeterminism and aliasing passes),
* ``base`` — the id() of the buffer this value views, for aliasing.

Values are *immutable in spirit*: every transfer function builds a new
ArrayVal, so mask-refinement facts keyed by ``id(value)`` (see
``interp.py``) can never survive a reassignment — reassigning a name
produces a fresh object and silently drops stale refinements, which is
the sound direction.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from .sym import ParamEnv, SInterval, SymExpr

__all__ = ["ArrayVal", "Shape", "broadcast_shapes", "shape_str"]

#: A shape: per-dim SymExpr (None = unknown extent), or None = unknown rank.
Shape = Optional[Tuple[Optional[SymExpr], ...]]


@dataclass(frozen=True, eq=False)
class ArrayVal:
    """Abstraction of one array or scalar value."""

    shape: Shape
    dtype: Optional[str]
    ival: SInterval
    unique: bool = False
    sorted_: bool = False
    #: id() of the underlying buffer for view-aliasing; None = fresh.
    base: Optional[int] = None

    # dataclass(eq=False) keeps identity semantics: mask-refinement facts
    # are keyed by id(self) and must not unify across distinct objects.

    @staticmethod
    def top() -> "ArrayVal":
        return ArrayVal(shape=None, dtype=None, ival=SInterval.top())

    @staticmethod
    def scalar(
        ival: SInterval, dtype: Optional[str] = None, **facts: bool
    ) -> "ArrayVal":
        return ArrayVal(shape=(), dtype=dtype, ival=ival, **facts)

    @staticmethod
    def const(value: int, dtype: Optional[str] = None) -> "ArrayVal":
        return ArrayVal(shape=(), dtype=dtype, ival=SInterval.const(value))

    @property
    def rank(self) -> Optional[int]:
        return None if self.shape is None else len(self.shape)

    @property
    def is_scalar(self) -> bool:
        return self.shape == ()

    def const_value(self) -> Optional[SymExpr]:
        """The single symbolic value when this is a degenerate scalar."""
        if self.is_scalar:
            return self.ival.exact()
        return None

    def with_(self, **changes) -> "ArrayVal":
        return replace(self, **changes)

    def join(self, other: "ArrayVal", env: ParamEnv) -> "ArrayVal":
        """Least upper bound at control-flow merges."""
        return ArrayVal(
            shape=_join_shapes(self.shape, other.shape),
            dtype=self.dtype if self.dtype == other.dtype else None,
            ival=self.ival.hull(other.ival, env),
            unique=self.unique and other.unique,
            sorted_=self.sorted_ and other.sorted_,
            base=self.base if self.base == other.base else None,
        )

    def same(self, other: "ArrayVal") -> bool:
        """Structural equality (for loop-fixpoint stability checks)."""
        return (
            self.shape == other.shape
            and self.dtype == other.dtype
            and self.ival.same(other.ival)
            and self.unique == other.unique
            and self.sorted_ == other.sorted_
        )

    def widened(self, newer: "ArrayVal", env: ParamEnv) -> "ArrayVal":
        joined = self.join(newer, env)
        return joined.with_(ival=self.ival.widen(joined.ival, env))

    def __str__(self) -> str:
        return f"array(shape={shape_str(self.shape)}, dtype={self.dtype}, {self.ival})"


def _join_shapes(a: Shape, b: Shape) -> Shape:
    if a is None or b is None or len(a) != len(b):
        return None
    return tuple(da if _dims_eq(da, db) else None for da, db in zip(a, b))


def _dims_eq(a: Optional[SymExpr], b: Optional[SymExpr]) -> bool:
    # Unknown dims compare equal to themselves for join stability.
    if a is None or b is None:
        return a is None and b is None
    return a == b


def broadcast_shapes(a: Shape, b: Shape) -> Tuple[Shape, Optional[Tuple[int, str, str]]]:
    """Numpy broadcasting of two symbolic shapes.

    Returns ``(result_shape, conflict)``; ``conflict`` is ``(axis,
    dim_a, dim_b)`` (axis counted from the end) when two known dims are
    provably different and neither is 1 — a broadcast-mismatch finding.
    Unknown dims broadcast silently (no claim either way).
    """
    if a is None or b is None:
        return None, None
    one = SymExpr.const(1)
    out = []
    conflict = None
    for axis, (da, db) in enumerate(
        itertools.zip_longest(reversed(a), reversed(b), fillvalue=one)
    ):
        if da is None or db is None:
            out.append(None)
        elif da == db:
            out.append(da)
        elif da == one:
            out.append(db)
        elif db == one:
            out.append(da)
        elif da.is_const and db.is_const:
            # Provably different constants, neither 1: hard mismatch.
            conflict = (axis, str(da), str(db))
            out.append(None)
        else:
            # Symbolically different (e.g. n vs k): report unless one
            # could equal the other; distinct declared params are a
            # mismatch for at least one assignment, which is what the
            # checker reports (shapes must match for ALL assignments).
            conflict = (axis, str(da), str(db))
            out.append(None)
    return tuple(reversed(out)), conflict


def shape_str(shape: Shape) -> str:
    if shape is None:
        return "?"
    return "(" + ", ".join("?" if d is None else str(d) for d in shape) + ")"
