"""Transfer functions: numpy idioms and trusted kernel summaries.

Each function here maps abstract inputs (:class:`~.values.ArrayVal`)
to an abstract result, mirroring the numpy operations the annotated
host kernels actually use — broadcasting arithmetic, ``argsort`` /
``lexsort`` / ``searchsorted``, fancy indexing, ``repeat`` / ``tile`` /
``concatenate``, ``cumsum``, ``bincount``, ``packbits`` / ``view``.
The interpreter (:mod:`.interp`) drives the AST walk and calls in here
for the array math; checker callbacks (overflow, OOB) are threaded
through the analyzer object.

``SUMMARIES`` holds hand-written call summaries for the repo's packing
primitives — :func:`repro.structures.soa.pack_rowid` and friends — that
are sharper than their declared return contracts: they propagate call
site shapes, prove the joint ``row * n + id <= int64 max`` obligation
(recording it in the analyzer's proven-obligation ledger), and carry
uniqueness through the pack (``pack_rowid`` output is all-distinct
whenever either coordinate array is).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .dtypes import int_range, is_bool, is_integer, promote
from .sym import ParamEnv, SInterval, SymExpr
from .values import ArrayVal, Shape, broadcast_shapes

__all__ = ["SUMMARIES", "INT64_MAX"]

INT64_MAX = 2**63 - 1

_INF = float("inf")


# --------------------------------------------------------------------------
# shape helpers
# --------------------------------------------------------------------------


def dim_product(shape: Shape) -> Optional[SymExpr]:
    """Symbolic element count, when every dim is known."""
    if shape is None or any(d is None for d in shape):
        return None
    out = SymExpr.const(1)
    for d in shape:
        out = out * d
    return out


def first_dim(shape: Shape) -> Optional[SymExpr]:
    if shape is None or not shape:
        return None
    return shape[0]


def nonneg(ival: SInterval, env: ParamEnv) -> bool:
    return ival.num_lo(env) >= 0.0


# --------------------------------------------------------------------------
# elementwise arithmetic
# --------------------------------------------------------------------------


def binop_ival(op: str, a: ArrayVal, b: ArrayVal, env: ParamEnv) -> SInterval:
    """Interval transfer of one elementwise binary op."""
    x, y = a.ival, b.ival
    if op == "+":
        return x.add(y)
    if op == "-":
        return x.sub(y)
    if op == "*":
        return x.mul(y, env)
    if op == "//":
        return x.floordiv(y, env)
    if op == "%":
        return x.mod(y, env)
    if op == "<<":
        shift = y.exact()
        if shift is not None and shift.const_value is not None:
            return x.mul(SInterval.const(2 ** shift.const_value), env)
        return SInterval.top()
    if op == ">>":
        shift = y.exact()
        if shift is not None and shift.const_value is not None:
            return x.floordiv(SInterval.const(2 ** shift.const_value), env)
        return SInterval.top()
    if op == "|":
        return _or_ival(a, b, env)
    if op == "&":
        return _and_ival(a, b, env)
    if op == "^":
        if nonneg(x, env) and nonneg(y, env):
            return SInterval.of(0, _pow2_cap(x, y, env))
        return SInterval.top()
    if op == "/":
        return SInterval.top()
    return SInterval.top()


def _pow2_cap(x: SInterval, y: SInterval, env: ParamEnv) -> float:
    """Smallest ``2**k - 1`` covering both upper bounds (numeric)."""
    hi = max(x.num_hi(env), y.num_hi(env))
    if hi == _INF:
        return _INF
    hi = int(hi)
    cap = 1
    while cap - 1 < hi:
        cap <<= 1
    return cap - 1


def _or_ival(a: ArrayVal, b: ArrayVal, env: ParamEnv) -> SInterval:
    """``a | b`` for nonneg ints: bounded by ``a + b`` and the pow2 cap.

    The symbolic ``a.hi + b.hi`` endpoint is kept when it is provably
    the tighter bound — that is what keeps ``(tgt << 32) | low`` at the
    exact ``n * 2**32 - 1`` a later ``>> 32`` can divide back down.
    """
    x, y = a.ival, b.ival
    if is_bool(a.dtype) and is_bool(b.dtype):
        return SInterval.of(0, 1)
    if not (nonneg(x, env) and nonneg(y, env)):
        return SInterval.top()
    lo = x.maximum(y, env).lo  # a|b >= max(a, b) >= each lower bound
    sum_hi = x.add(y).hi
    cap = _pow2_cap(x, y, env)
    if isinstance(sum_hi, SymExpr):
        hi_num = SInterval.of(0, sum_hi).num_hi(env)
        hi = sum_hi if hi_num <= cap else SInterval.of(0, cap).hi
    else:
        hi = min(sum_hi, cap)
    return SInterval(lo, hi)


def _and_ival(a: ArrayVal, b: ArrayVal, env: ParamEnv) -> SInterval:
    x, y = a.ival, b.ival
    if is_bool(a.dtype) and is_bool(b.dtype):
        return SInterval.of(0, 1)
    if nonneg(x, env) and nonneg(y, env):
        # a & b <= min(a, b)
        return SInterval(SymExpr.const(0), x.minimum(y, env).hi)
    return SInterval.top()


def invert_ival(a: ArrayVal, env: ParamEnv) -> SInterval:
    """``~a`` for unsigned dtypes: ``dtype_max - a`` reversed."""
    if is_bool(a.dtype):
        return SInterval.of(0, 1)
    rng = int_range(a.dtype) if a.dtype else None
    if rng and rng[0] == 0 and nonneg(a.ival, env):
        top = SInterval.const(rng[1])
        return top.sub(a.ival)
    return SInterval.top()


# --------------------------------------------------------------------------
# constructors / rearrangers
# --------------------------------------------------------------------------


def arange_val(
    stop: ArrayVal, env: ParamEnv, dtype: Optional[str], start: Optional[ArrayVal] = None
) -> ArrayVal:
    lo = start.ival.lo if start is not None else SymExpr.const(0)
    stop_exact = stop.const_value()
    if stop_exact is not None:
        length: Optional[SymExpr] = stop_exact
        if start is not None:
            s = start.const_value()
            length = stop_exact - s if s is not None else None
        hi = stop_exact - SymExpr.const(1)
    else:
        length = None
        hi = stop.ival.hi
        if isinstance(hi, SymExpr):
            hi = hi - SymExpr.const(1)
    return ArrayVal(
        shape=(length,),
        dtype=dtype or "int64",
        ival=SInterval(lo, hi),
        unique=True,
        sorted_=True,
    )


def filled_val(shape: Shape, dtype: str, ival: SInterval) -> ArrayVal:
    return ArrayVal(shape=shape, dtype=dtype, ival=ival)


def repeat_val(x: ArrayVal, reps: ArrayVal, env: ParamEnv) -> ArrayVal:
    """``np.repeat``: in-place expansion keeps order, loses uniqueness."""
    length: Optional[SymExpr] = None
    r = reps.const_value()
    if r is not None and x.rank == 1 and x.shape[0] is not None:
        length = x.shape[0] * r
    return ArrayVal(
        shape=(length,),
        dtype=x.dtype,
        ival=x.ival,
        unique=False,
        sorted_=x.sorted_ and x.rank == 1,
    )


def tile_val(x: ArrayVal, reps: ArrayVal, env: ParamEnv) -> ArrayVal:
    length: Optional[SymExpr] = None
    r = reps.const_value()
    if r is not None and x.rank == 1 and x.shape[0] is not None:
        length = x.shape[0] * r
    return ArrayVal(shape=(length,), dtype=x.dtype, ival=x.ival)


def concat_val(parts: Sequence[ArrayVal], env: ParamEnv, axis: int) -> ArrayVal:
    if not parts:
        return ArrayVal.top()
    ival = parts[0].ival
    dtype = parts[0].dtype
    for p in parts[1:]:
        ival = ival.hull(p.ival, env)
        dtype = promote(dtype, p.dtype)
    shape: Shape = None
    ranks = {p.rank for p in parts}
    if len(ranks) == 1 and None not in ranks:
        rank = parts[0].rank
        if 0 <= axis < rank:
            dims = []
            for i in range(rank):
                if i == axis:
                    total = SymExpr.const(0)
                    for p in parts:
                        d = p.shape[i]
                        if d is None:
                            total = None
                            break
                        total = total + d
                    dims.append(total)
                else:
                    ds = {p.shape[i] for p in parts}
                    dims.append(ds.pop() if len(ds) == 1 else None)
            shape = tuple(dims)
    return ArrayVal(shape=shape, dtype=dtype, ival=ival)


def ravel_val(x: ArrayVal) -> ArrayVal:
    return ArrayVal(
        shape=(dim_product(x.shape),),
        dtype=x.dtype,
        ival=x.ival,
        unique=x.unique,
        base=x.base,
    )


def view_val(x: ArrayVal, dtype: str) -> ArrayVal:
    """Reinterpret-cast: last dim scales by the itemsize ratio."""
    import numpy as np

    shape: Shape = None
    if x.shape is not None and x.dtype is not None and x.rank:
        old = np.dtype(x.dtype).itemsize
        new = np.dtype(dtype).itemsize
        last = x.shape[-1]
        if last is not None:
            if old == new:
                scaled: Optional[SymExpr] = last
            elif old > new and old % new == 0:
                scaled = last * SymExpr.const(old // new)
            elif new > old and new % old == 0:
                div = last.floordiv(SymExpr.const(new // old), ParamEnv())
                scaled = div[0] if div and div[0] == div[1] else None
            else:
                scaled = None
            shape = x.shape[:-1] + (scaled,)
    rng = int_range(dtype)
    ival = SInterval.of(rng[0], rng[1]) if rng else SInterval.top()
    return ArrayVal(shape=shape, dtype=dtype, ival=ival, base=x.base)


def sort_val(x: ArrayVal) -> ArrayVal:
    return x.with_(sorted_=True, base=None)


def unique_val(x: ArrayVal, env: ParamEnv) -> ArrayVal:
    count = dim_product(x.shape)
    length = env.fresh("uniq", 0, SInterval.of(0, count).num_hi(env) if count else _INF)
    return ArrayVal(
        shape=(length,), dtype=x.dtype, ival=x.ival, unique=True, sorted_=True
    )


def argsort_val(x: ArrayVal, env: ParamEnv, axis: Optional[int]) -> ArrayVal:
    """Permutation indices of one axis (the last, for ``axis=1`` tables)."""
    if x.shape is None:
        return ArrayVal(shape=None, dtype="int64", ival=_index_ival(None), unique=x.rank == 1)
    dim = x.shape[-1] if axis in (1, -1) and x.rank and x.rank > 1 else x.shape[0] if x.rank else None
    return ArrayVal(
        shape=x.shape,
        dtype="int64",
        ival=_index_ival(dim),
        unique=x.rank == 1,
    )


def lexsort_val(keys: Sequence[ArrayVal], env: ParamEnv) -> ArrayVal:
    dim = None
    for k in keys:
        if k.rank == 1 and k.shape[0] is not None:
            dim = k.shape[0]
            break
    return ArrayVal(shape=(dim,), dtype="int64", ival=_index_ival(dim), unique=True)


def _index_ival(dim: Optional[SymExpr]) -> SInterval:
    if dim is None:
        return SInterval(SymExpr.const(0), _INF)
    return SInterval(SymExpr.const(0), dim - SymExpr.const(1))


def searchsorted_val(a: ArrayVal, v: ArrayVal) -> ArrayVal:
    """Insertion positions in ``[0, len(a)]`` with ``v``'s shape."""
    dim = first_dim(a.shape)
    hi = dim if dim is not None else _INF
    return ArrayVal(shape=v.shape, dtype="int64", ival=SInterval(SymExpr.const(0), hi))


def cumsum_val(x: ArrayVal, env: ParamEnv, axis: Optional[int]) -> ArrayVal:
    """Running sum: nonneg input stays in ``[0, hi * axis_len]``."""
    count = None
    if x.shape is not None and x.rank:
        count = x.shape[-1 if axis in (1, -1) else 0] if axis is not None else dim_product(x.shape)
    if nonneg(x.ival, env):
        hi = x.ival.hi
        if count is not None and isinstance(hi, SymExpr):
            hi = hi * count
        elif count is not None:
            hi = SInterval.of(0, hi).mul(SInterval.const(count), env).hi
        else:
            hi = _INF
        return ArrayVal(
            shape=x.shape,
            dtype=x.dtype if is_integer(x.dtype) else "int64" if x.dtype is None or is_bool(x.dtype) else x.dtype,
            ival=SInterval(SymExpr.const(0), hi),
            sorted_=x.rank == 1 or axis in (1, -1),
        )
    return ArrayVal(shape=x.shape, dtype=x.dtype, ival=SInterval.top())


def accumulate_val(x: ArrayVal) -> ArrayVal:
    """ufunc.accumulate (maximum/minimum): values stay within input bounds."""
    return x.with_(unique=False, sorted_=True, base=None)


def bincount_val(x: ArrayVal, env: ParamEnv, minlength: Optional[ArrayVal]) -> ArrayVal:
    from .sym import _le_end  # sound dim: minlength when x.hi <= minlength-1

    dim = None
    if minlength is not None:
        m = minlength.const_value()
        if m is not None and _le_end(x.ival.hi, m - SymExpr.const(1), env):
            dim = m
    count = dim_product(x.shape)
    hi = count if count is not None else _INF
    return ArrayVal(
        shape=(dim,), dtype="int64", ival=SInterval(SymExpr.const(0), hi)
    )


def packbits_val(x: ArrayVal, env: ParamEnv) -> ArrayVal:
    """axis=1 bit packing: last dim becomes ``ceil(dim / 8)``."""
    shape: Shape = None
    if x.shape is not None and x.rank and x.shape[-1] is not None:
        padded = x.shape[-1] + SymExpr.const(7)
        div = padded.floordiv(SymExpr.const(8), env)
        last = div[1] if div else None
        shape = x.shape[:-1] + (last,)
    return ArrayVal(shape=shape, dtype="uint8", ival=SInterval.of(0, 255))


def tri_val(n: ArrayVal, m: ArrayVal, dtype: str) -> ArrayVal:
    return ArrayVal(
        shape=(n.const_value(), m.const_value()),
        dtype=dtype,
        ival=SInterval.of(0, 1),
    )


def take_along_axis_val(a: ArrayVal, idx: ArrayVal) -> ArrayVal:
    return ArrayVal(shape=idx.shape, dtype=a.dtype, ival=a.ival)


def where_val(c: ArrayVal, a: ArrayVal, b: ArrayVal, env: ParamEnv) -> Tuple[ArrayVal, Optional[tuple]]:
    shape, conflict = broadcast_shapes(c.shape, a.shape)
    shape2, conflict2 = broadcast_shapes(shape, b.shape)
    return (
        ArrayVal(
            shape=shape2,
            dtype=promote(a.dtype, b.dtype),
            ival=a.ival.hull(b.ival, env),
        ),
        conflict or conflict2,
    )


def minmax_val(op: str, a: ArrayVal, b: ArrayVal, env: ParamEnv) -> Tuple[ArrayVal, Optional[tuple]]:
    shape, conflict = broadcast_shapes(a.shape, b.shape)
    ival = a.ival.minimum(b.ival, env) if op == "minimum" else a.ival.maximum(b.ival, env)
    return ArrayVal(shape=shape, dtype=promote(a.dtype, b.dtype), ival=ival), conflict


def reduce_val(x: ArrayVal, env: ParamEnv, op: str, axis: Optional[int]) -> ArrayVal:
    """``sum`` / ``min`` / ``max`` / ``any`` / ``all`` / ``mean`` reductions."""
    shape: Shape = ()
    if axis is not None and x.shape is not None and x.rank:
        ax = axis % x.rank
        shape = tuple(d for i, d in enumerate(x.shape) if i != ax)
    elif axis is not None:
        shape = None
    if op in ("any", "all"):
        return ArrayVal(shape=shape, dtype="bool", ival=SInterval.of(0, 1))
    if op in ("min", "max"):
        return ArrayVal(shape=shape, dtype=x.dtype, ival=x.ival)
    if op == "mean":
        return ArrayVal(shape=shape, dtype="float64", ival=x.ival)
    # sum over `count` elements
    count = None
    if x.shape is not None:
        count = x.shape[axis % x.rank] if axis is not None and x.rank else dim_product(x.shape)
    if is_bool(x.dtype):
        hi = count if count is not None else _INF
        return ArrayVal(shape=shape, dtype="int64", ival=SInterval(SymExpr.const(0), hi))
    if count is not None and nonneg(x.ival, env):
        hi = x.ival.hi
        hi = hi * count if isinstance(hi, SymExpr) else _INF
        dtype = x.dtype if x.dtype and not is_bool(x.dtype) else "int64"
        return ArrayVal(shape=shape, dtype="int64" if is_integer(dtype) else dtype,
                        ival=SInterval(SymExpr.const(0), hi))
    if is_integer(x.dtype) or x.dtype is None:
        return ArrayVal(shape=shape, dtype="int64", ival=SInterval.top())
    return ArrayVal(shape=shape, dtype=x.dtype, ival=SInterval.top())


# --------------------------------------------------------------------------
# trusted summaries for the packing primitives
# --------------------------------------------------------------------------


def _summary_pack_rowid(analyzer, loc: str, args: List[ArrayVal]):
    """``pack_rowid(rows, ids, n)``: joint int64 proof + shape/uniqueness.

    The obligation is exactly what the runtime guard asserts: ``ids``
    in ``[0, n)``, ``rows`` nonnegative, and ``rows.hi * n + (n - 1)``
    representable in int64.  ``rows`` beyond ``n - 1`` is legal (nested
    packs widen the row coordinate); only the product bound matters.
    """
    env = analyzer.env
    rows, ids, n = args[0], args[1], args[2]
    nval = n.const_value()
    if nval is None:
        analyzer.warn(
            "packed-key-overflow", loc,
            "pack_rowid modulus is not a known parameter expression; "
            "cannot prove the int64 bound",
        )
        key = SInterval.top()
    else:
        n_iv = SInterval.const(nval)
        key = rows.ival.mul(n_iv, env).add(ids.ival)
        ok = True
        if not nonneg(rows.ival, env):
            analyzer.warn("packed-key-overflow", loc, "cannot prove pack_rowid rows >= 0")
            ok = False
        if not nonneg(ids.ival, env):
            analyzer.warn("packed-key-overflow", loc, "cannot prove pack_rowid ids >= 0")
            ok = False
        from .sym import _le_end

        if not _le_end(ids.ival.hi, nval - SymExpr.const(1), env):
            analyzer.warn(
                "packed-key-overflow", loc,
                f"cannot prove pack_rowid ids <= {nval} - 1 "
                "(keys would not decode uniquely)",
            )
            ok = False
        hi = key.num_hi(env)
        if hi > INT64_MAX:
            analyzer.report_overflow(loc, key.hi, "int64", "pack_rowid key row * n + id")
            ok = False
        if ok:
            analyzer.prove(
                loc,
                f"pack_rowid key <= {key.hi} <= {int(hi)} fits int64 "
                f"over the declared parameter box",
            )
    shape, conflict = broadcast_shapes(rows.shape, ids.shape)
    if conflict:
        analyzer.report_broadcast(loc, conflict, "pack_rowid(rows, ids)")
    return ArrayVal(
        shape=shape,
        dtype="int64",
        ival=key.meet(SInterval.of(0, INT64_MAX), env),
        unique=rows.unique or ids.unique,
    )


def _summary_unpack_rowid(analyzer, loc: str, args: List[ArrayVal]):
    env = analyzer.env
    keys, n = args[0], args[1]
    nval = n.const_value()
    if nval is None:
        top = ArrayVal(shape=keys.shape, dtype="int64", ival=SInterval.top())
        return (top, top)
    n_iv = SInterval.const(nval)
    rows = ArrayVal(
        shape=keys.shape, dtype="int64", ival=keys.ival.floordiv(n_iv, env)
    )
    ids = ArrayVal(shape=keys.shape, dtype="int64", ival=keys.ival.mod(n_iv, env))
    return (rows, ids)


def _summary_pack_keys(analyzer, loc: str, args: List[ArrayVal]):
    env = analyzer.env
    dists, ids = args[0], args[1]
    if not nonneg(ids.ival, env):
        analyzer.warn("packed-key-overflow", loc, "cannot prove pack_keys ids >= 0")
    elif ids.ival.num_hi(env) > 2**32 - 1:
        analyzer.report_overflow(
            loc, ids.ival.hi, "uint32", "pack_keys id (low 32 bits)"
        )
    else:
        analyzer.prove(loc, f"pack_keys ids <= {ids.ival.hi} fit the low 32 bits")
    shape, conflict = broadcast_shapes(dists.shape, ids.shape)
    if conflict:
        analyzer.report_broadcast(loc, conflict, "pack_keys(dists, ids)")
    return ArrayVal(
        shape=shape, dtype="uint64", ival=SInterval.of(0, 2**64 - 1), unique=ids.unique
    )


def _summary_unpack_ids(analyzer, loc: str, args: List[ArrayVal]):
    keys = args[0]
    return ArrayVal(shape=keys.shape, dtype="int64", ival=SInterval.of(0, 2**32 - 1))


def _summary_unpack_distances(analyzer, loc: str, args: List[ArrayVal]):
    keys = args[0]
    return ArrayVal(shape=keys.shape, dtype="float32", ival=SInterval.top())


def _summary_rank_within_groups(analyzer, loc: str, args: List[ArrayVal]):
    """Per-run rank of a sorted 1-D array: ``[0, len - 1]``."""
    x = args[0]
    dim = first_dim(x.shape)
    return ArrayVal(shape=(dim,), dtype="int64", ival=_index_ival(dim))


def _summary_ragged_arange(analyzer, loc: str, args: List[ArrayVal]):
    return ArrayVal(
        shape=(None,), dtype="int64", ival=SInterval(SymExpr.const(0), _INF)
    )


#: qualname -> summary(analyzer, location, argvals) -> ArrayVal | tuple.
SUMMARIES = {
    "repro.structures.soa.pack_rowid": _summary_pack_rowid,
    "repro.structures.soa.unpack_rowid": _summary_unpack_rowid,
    "repro.structures.soa.pack_keys": _summary_pack_keys,
    "repro.structures.soa.unpack_ids": _summary_unpack_ids,
    "repro.structures.soa.unpack_distances": _summary_unpack_distances,
    "repro.graphs.nn_descent._rank_within_groups": _summary_rank_within_groups,
    "repro.graphs.nn_descent._ragged_arange": _summary_ragged_arange,
}
