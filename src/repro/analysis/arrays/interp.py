"""AST-driven abstract interpreter for annotated vectorized host kernels.

:class:`KernelAnalyzer` walks one ``@array_kernel`` function's AST with
an abstract store mapping names to :class:`~.values.ArrayVal`, using the
transfer functions in :mod:`.transfer` for the numpy idioms the repo's
kernels are written in.  Four value-aware checker passes fire during the
walk (the fifth, syntactic nondeterminism, lives in :mod:`.nondet`):

``packed-key-overflow``
    Integer results (binops, casts, stores, the ``pack_rowid`` /
    ``pack_keys`` summaries) whose symbolic bounds exceed their dtype's
    representable range.  A binary search over the declared parameter
    box looks for the smallest concrete witness (``n = 3037000500`` for
    an int64 ``row * n + id`` pack at ``n <= 2**32``) and reports it.
``broadcast-mismatch``
    Elementwise ops whose operand shapes are provably incompatible —
    two known dims differ for at least one admitted assignment and
    neither is 1.
``fancy-index-oob``
    Gather/scatter index arrays not provably inside ``[0, dim - 1]``.
    Provable violations are errors; unprovable ones are warnings (the
    pressure to annotate tighter bounds), and unknown dims make no
    claim.
``inplace-aliasing``
    Fancy-indexed in-place updates (``out[idx] += v``) whose index is
    not provably duplicate-free — numpy's unbuffered read-modify-write
    silently drops all but one contribution per duplicated index.

Soundness caveats (DESIGN.md Sec. 14): declared argument specs and
``returns`` contracts are *assumed*, not re-verified against bodies
(assume-guarantee); numeric projections of polynomial bounds sum
per-monomial ranges, dropping cross-monomial correlation (sound but
occasionally unprovable); unsupported constructs degrade to ``TOP``
silently rather than reporting.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding, Severity
from repro.annotations import (
    ArraySpec,
    KernelAnnotation,
    OpaqueSpec,
    ScalarSpec,
    get_annotation,
)

from . import transfer
from .dtypes import int_range, is_bool, is_integer, normalize, promote
from .sym import ParamEnv, SInterval, SymExpr, parse_expr
from .values import ArrayVal, broadcast_shapes, shape_str

__all__ = ["KernelAnalyzer", "analyze_kernel", "find_counterexample"]

_INF = float("inf")

#: Loop body re-executions before widening kicks in.
_LOOP_ITERATIONS = 3


# --------------------------------------------------------------------------
# non-array evaluation results
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class NpModule:
    """The ``np`` module (or ``np.random``-style submodules)."""

    path: str = "numpy"


@dataclass(frozen=True)
class NpFunc:
    """A numpy callable attribute (``np.arange``, ``np.maximum.accumulate``)."""

    name: str


@dataclass(frozen=True)
class DtypeCtor:
    """A dtype constructor (``np.int64``) — callable and usable as dtype=."""

    name: str


@dataclass(frozen=True)
class FuncRef:
    """A resolved python function (possible kernel-summary target)."""

    qualname: str


@dataclass(frozen=True)
class Method:
    """A bound array method; remembers the receiver for in-place ops."""

    receiver: ArrayVal
    node: ast.AST
    name: str


@dataclass(frozen=True)
class Values:
    """A python tuple/list of evaluated items (shape tuples, arg lists)."""

    items: Tuple[Any, ...]


_OPAQUE = ArrayVal.top()

_NUMPY_DTYPES = {
    "int8", "int16", "int32", "int64", "uint8", "uint16", "uint32", "uint64",
    "float16", "float32", "float64", "bool_", "bool8", "intp",
}

_REDUCTIONS = {"sum", "min", "max", "any", "all", "mean"}

_BINOPS = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.FloorDiv: "//",
    ast.Mod: "%", ast.LShift: "<<", ast.RShift: ">>", ast.BitOr: "|",
    ast.BitAnd: "&", ast.BitXor: "^", ast.Div: "/", ast.Pow: "**",
}


def find_counterexample(
    expr: SymExpr, env: ParamEnv, limit: int
) -> Optional[Dict[str, int]]:
    """Smallest single-parameter witness with ``expr > limit``, if any.

    Fixes every parameter at its declared maximum (the polynomial
    endpoints the kernels produce are monotone in each parameter), then
    binary-searches each parameter in turn for the smallest value that
    still exceeds ``limit``.  Returns the full assignment, or ``None``
    when even the all-max corner stays within bounds.
    """
    names = expr.params()
    if not names:
        value = expr.evaluate({})
        return {} if value > limit else None
    corner: Dict[str, int] = {}
    for name in names:
        lo, hi = env.range_of(name)
        if hi == _INF or lo == -_INF:
            return None
        corner[name] = int(hi)
    if expr.evaluate(corner) <= limit:
        return None
    best = dict(corner)
    for name in names:
        lo = int(env.range_of(name)[0])
        hi = best[name]
        while lo < hi:
            mid = (lo + hi) // 2
            trial = dict(best)
            trial[name] = mid
            if expr.evaluate(trial) > limit:
                hi = mid
            else:
                lo = mid + 1
        best[name] = hi
    return best


class KernelAnalyzer:
    """Abstractly interpret one annotated kernel and collect findings."""

    def __init__(self, annotation: KernelAnnotation) -> None:
        self.annotation = annotation
        self.env = ParamEnv()
        self.findings: List[Finding] = []
        self.proven: List[str] = []
        self.scope: Dict[str, Any] = {}
        #: id(mask ArrayVal) -> {id(source ArrayVal): refined interval}
        self._mask_facts: Dict[int, Dict[int, SInterval]] = {}
        #: id(mask ArrayVal) -> the shared fresh length of its selections
        self._mask_len: Dict[int, SymExpr] = {}
        #: strong refs so id() keys can never be recycled mid-analysis
        self._keepalive: List[Any] = []
        self._file = "<unknown>"
        self._line_offset = 0
        self._current_line = 0

    # -- reporting ---------------------------------------------------------

    def _loc(self, node: Optional[ast.AST] = None) -> str:
        line = getattr(node, "lineno", None) if node is not None else None
        if line is None:
            line = self._current_line
        return f"{self._file}:{self._line_offset + line - 1}"

    def _emit(self, rule: str, severity: Severity, loc: str, message: str) -> None:
        if rule in self.annotation.waive:
            return
        self.findings.append(
            Finding(rule=rule, severity=severity, location=loc,
                    message=f"{self.annotation.name}: {message}")
        )

    def warn(self, rule: str, loc: str, message: str) -> None:
        self._emit(rule, Severity.WARNING, loc, message)

    def error(self, rule: str, loc: str, message: str) -> None:
        self._emit(rule, Severity.ERROR, loc, message)

    def prove(self, loc: str, message: str) -> None:
        self.proven.append(f"{loc}: {self.annotation.name}: {message}")

    def report_overflow(self, loc: str, hi, dtype: str, what: str) -> None:
        limit = int_range(dtype)
        example = None
        if limit is not None and isinstance(hi, SymExpr):
            example = find_counterexample(hi, self.env, limit[1])
        if example is not None:
            at = ", ".join(f"{k}={v}" for k, v in sorted(example.items()))
            self.error(
                "packed-key-overflow", loc,
                f"{what} can reach {hi}, exceeding {dtype}; "
                f"counterexample: {at or 'constant bound'}",
            )
        else:
            self.warn(
                "packed-key-overflow", loc,
                f"{what} has upper bound {hi}, not provably within {dtype}",
            )

    def report_broadcast(self, loc: str, conflict: tuple, what: str) -> None:
        axis, da, db = conflict
        self.error(
            "broadcast-mismatch", loc,
            f"{what}: dims {da} and {db} (axis -{axis + 1}) are provably "
            "incompatible for at least one admitted parameter assignment",
        )

    # -- entry point -------------------------------------------------------

    def run(self) -> List[Finding]:
        func = self.annotation.func
        try:
            source, start = inspect.getsourcelines(func)
            self._file = self._relpath(inspect.getsourcefile(func) or "<unknown>")
        except (OSError, TypeError):
            return self.findings
        self._line_offset = start
        tree = ast.parse(textwrap.dedent("".join(source)))
        fdef = tree.body[0]
        if not isinstance(fdef, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return self.findings
        self._bind_params()
        self._bind_args(fdef)
        self._exec_block(fdef.body)
        return self.findings

    @staticmethod
    def _relpath(path: str) -> str:
        p = Path(path).resolve()
        for parent in p.parents:
            if parent.name == "src":
                return str(p.relative_to(parent.parent))
        return str(p)

    def _bind_params(self) -> None:
        for name, (lo, hi) in self.annotation.params.items():
            self.env.declare(name, lo, hi)

    def _spec_ival(self, lo, hi) -> SInterval:
        lo_e = parse_expr(lo) if lo is not None else -_INF
        hi_e = parse_expr(hi) if hi is not None else _INF
        return SInterval(lo_e, hi_e)

    def _clamp_dtype(self, ival: SInterval, dtype: Optional[str]) -> SInterval:
        """Integer arrays always hold values within their dtype's range."""
        rng = int_range(dtype) if dtype is not None else None
        if rng is None:
            return ival
        return ival.meet(SInterval.of(rng[0], rng[1]), self.env)

    def _from_spec(self, spec) -> Any:
        if isinstance(spec, OpaqueSpec):
            return _OPAQUE
        if isinstance(spec, ScalarSpec):
            if spec.expr is not None:
                return ArrayVal.scalar(
                    SInterval.const(parse_expr(spec.expr)), dtype=normalize(spec.dtype)
                )
            return ArrayVal.scalar(
                self._clamp_dtype(
                    self._spec_ival(spec.lo, spec.hi), normalize(spec.dtype)
                ),
                dtype=normalize(spec.dtype),
            )
        if isinstance(spec, ArraySpec):
            dims = None
            if spec.dims is not None:
                dims = tuple(parse_expr(d) for d in spec.dims)
            dtype = normalize(spec.dtype)
            return ArrayVal(
                shape=dims,
                dtype=dtype,
                ival=self._clamp_dtype(self._spec_ival(spec.lo, spec.hi), dtype),
                unique=spec.unique,
                sorted_=spec.sorted_,
            )
        return _OPAQUE

    def _bind_args(self, fdef: ast.FunctionDef) -> None:
        for arg in fdef.args.args + fdef.args.kwonlyargs:
            spec = self.annotation.args.get(arg.arg)
            self.scope[arg.arg] = self._from_spec(spec) if spec is not None else _OPAQUE

    # -- statements --------------------------------------------------------

    def _exec_block(self, stmts: Sequence[ast.stmt]) -> str:
        """Run statements; returns ``"fall"`` or a terminal status."""
        for stmt in stmts:
            self._current_line = getattr(stmt, "lineno", self._current_line)
            status = self._exec_stmt(stmt)
            if status != "fall":
                return status
        return "fall"

    def _exec_stmt(self, stmt: ast.stmt) -> str:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, value, stmt)
            return "fall"
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._eval(stmt.value), stmt)
            return "fall"
        if isinstance(stmt, ast.AugAssign):
            self._aug_assign(stmt)
            return "fall"
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
            return "fall"
        if isinstance(stmt, ast.If):
            return self._exec_if(stmt)
        if isinstance(stmt, ast.While):
            self._exec_while(stmt)
            return "fall"
        if isinstance(stmt, ast.For):
            self._exec_for(stmt)
            return "fall"
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._eval(stmt.value)
            return "return"
        if isinstance(stmt, ast.Raise):
            return "raise"
        if isinstance(stmt, ast.ImportFrom):
            self._exec_import(stmt)
            return "fall"
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self._eval(item.context_expr)
            return self._exec_block(stmt.body)
        if isinstance(stmt, (ast.Pass, ast.Assert, ast.Import)):
            return "fall"
        return "fall"  # unsupported statements are skipped (TOP state kept)

    def _exec_import(self, stmt: ast.ImportFrom) -> None:
        import importlib

        try:
            module = importlib.import_module(stmt.module or "")
        except ImportError:
            return
        for alias in stmt.names:
            obj = getattr(module, alias.name, None)
            self.scope[alias.asname or alias.name] = self._resolve_global(obj)

    def _exec_if(self, stmt: ast.If) -> str:
        self._eval(stmt.test)
        before = dict(self.scope)
        status_body = self._exec_block(stmt.body)
        after_body = dict(self.scope)
        self.scope = before
        status_else = self._exec_block(stmt.orelse)
        if status_body != "fall" and status_else != "fall":
            return status_body
        if status_body != "fall":
            return "fall"  # scope already holds the else state
        if status_else != "fall":
            self.scope = after_body
            return "fall"
        self.scope = self._join_scopes(after_body, self.scope)
        return "fall"

    def _exec_while(self, stmt: ast.While) -> None:
        self._eval(stmt.test)
        state = dict(self.scope)
        for iteration in range(_LOOP_ITERATIONS + 1):
            self.scope = dict(state)
            status = self._exec_block(stmt.body)
            merged = (
                state if status != "fall" else self._join_scopes(state, self.scope)
            )
            if iteration >= _LOOP_ITERATIONS:
                merged = self._widen_scopes(state, merged)
            if self._scopes_same(state, merged):
                state = merged
                break
            state = merged
        self.scope = state

    def _exec_for(self, stmt: ast.For) -> None:
        """Loops in decorated kernels are block/tile loops: havoc targets."""
        self._eval(stmt.iter)
        self._assign(stmt.target, _OPAQUE, stmt)
        state = dict(self.scope)
        for iteration in range(_LOOP_ITERATIONS + 1):
            self.scope = dict(state)
            status = self._exec_block(stmt.body)
            merged = (
                state if status != "fall" else self._join_scopes(state, self.scope)
            )
            if iteration >= _LOOP_ITERATIONS:
                merged = self._widen_scopes(state, merged)
            if self._scopes_same(state, merged):
                state = merged
                break
            state = merged
        self.scope = state

    def _join_scopes(self, a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for name, va in a.items():
            if name not in b:
                continue
            vb = b[name]
            if va is vb:
                out[name] = va
            elif isinstance(va, ArrayVal) and isinstance(vb, ArrayVal):
                out[name] = va.join(vb, self.env)
            else:
                out[name] = va
        return out

    def _widen_scopes(self, old: Dict[str, Any], new: Dict[str, Any]) -> Dict[str, Any]:
        out = dict(new)
        for name, vn in new.items():
            vo = old.get(name)
            if isinstance(vo, ArrayVal) and isinstance(vn, ArrayVal) and vo is not vn:
                out[name] = vo.widened(vn, self.env)
        return out

    def _scopes_same(self, a: Dict[str, Any], b: Dict[str, Any]) -> bool:
        if a.keys() != b.keys():
            return False
        for name, va in a.items():
            vb = b[name]
            if va is vb:
                continue
            if isinstance(va, ArrayVal) and isinstance(vb, ArrayVal):
                if not va.same(vb):
                    return False
            else:
                return False
        return True

    # -- assignment --------------------------------------------------------

    def _assign(self, target: ast.AST, value: Any, stmt: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            self.scope[target.id] = value
            if isinstance(value, ArrayVal):
                self._keepalive.append(value)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            items = value.items if isinstance(value, Values) else None
            if items is None and isinstance(value, tuple):
                items = value
            for i, elt in enumerate(target.elts):
                item = items[i] if items is not None and i < len(items) else _OPAQUE
                self._assign(elt, item, stmt)
            return
        if isinstance(target, ast.Subscript):
            self._scatter(target, value, stmt, inplace_op=None)
            return

    def _aug_assign(self, stmt: ast.AugAssign) -> None:
        op = _BINOPS.get(type(stmt.op), "?")
        value = self._eval(stmt.value)
        if isinstance(stmt.target, ast.Name):
            current = self.scope.get(stmt.target.id, _OPAQUE)
            if isinstance(current, ArrayVal) and isinstance(value, ArrayVal):
                self.scope[stmt.target.id] = self._binop(current, value, op, stmt)
            else:
                self.scope[stmt.target.id] = _OPAQUE
            return
        if isinstance(stmt.target, ast.Subscript):
            self._scatter(stmt.target, value, stmt, inplace_op=op)

    def _scatter(
        self,
        target: ast.Subscript,
        value: Any,
        stmt: ast.stmt,
        inplace_op: Optional[str],
    ) -> None:
        base = self._eval(target.value)
        if not isinstance(base, ArrayVal):
            return
        index_vals = self._check_indices(base, target.slice, stmt)
        if inplace_op is not None:
            self._check_aliasing(index_vals, stmt)
        if not isinstance(value, ArrayVal):
            value = _OPAQUE
        # store-time overflow: the value is cast into the target dtype
        if (
            is_integer(base.dtype)
            and not is_bool(base.dtype)
            and isinstance(value.ival.hi, SymExpr)
        ):
            rng = int_range(base.dtype)
            if rng is not None and value.ival.num_hi(self.env) > rng[1]:
                self.report_overflow(
                    self._loc(stmt), value.ival.hi, base.dtype,
                    "stored value",
                )
        updated = base.with_(
            ival=base.ival.hull(value.ival, self.env),
            unique=False,
            sorted_=False,
        )
        if isinstance(target.value, ast.Name):
            self.scope[target.value.id] = updated
            self._keepalive.append(updated)

    def _check_aliasing(self, index_vals: List[ArrayVal], stmt: ast.stmt) -> None:
        for idx in index_vals:
            if idx.is_scalar:
                continue
            if not idx.unique:
                self.error(
                    "inplace-aliasing", self._loc(stmt),
                    "fancy-indexed in-place update whose index array is not "
                    "provably duplicate-free: numpy's unbuffered "
                    "read-modify-write keeps only one contribution per "
                    "duplicated index (use np.add.at or a segmented "
                    "reduction)",
                )
                return

    # -- indexing ----------------------------------------------------------

    def _index_parts(self, slice_node: ast.AST) -> List[ast.AST]:
        if isinstance(slice_node, ast.Tuple):
            return list(slice_node.elts)
        return [slice_node]

    def _check_indices(
        self, base: ArrayVal, slice_node: ast.AST, stmt: ast.stmt
    ) -> List[ArrayVal]:
        """Validate every integer index term against its axis extent."""
        parts = self._index_parts(slice_node)
        index_vals: List[ArrayVal] = []
        axis = 0
        for part in parts:
            if isinstance(part, ast.Slice):
                axis += 1
                continue
            if isinstance(part, ast.Constant) and part.value is None:
                continue  # np.newaxis inserts an axis, consumes none
            val = self._eval(part)
            if isinstance(val, ArrayVal):
                if is_bool(val.dtype):
                    axis += val.rank if val.rank else 1
                    continue
                index_vals.append(val)
                dim = None
                if base.shape is not None and axis < len(base.shape):
                    dim = base.shape[axis]
                self._check_index_bounds(val, dim, stmt)
            axis += 1
        return index_vals

    def _check_index_bounds(
        self, idx: ArrayVal, dim: Optional[SymExpr], stmt: ast.stmt
    ) -> None:
        from .sym import _le_end

        if dim is None:
            return  # unknown extent: no claim either way
        loc = self._loc(stmt)
        zero = SymExpr.const(0)
        upper = dim - SymExpr.const(1)
        lo_ok = _le_end(zero, idx.ival.lo, self.env)
        hi_ok = _le_end(idx.ival.hi, upper, self.env)
        if lo_ok and hi_ok:
            return
        # Declared bounds are assumed tight, so an upper endpoint that is
        # >= dim for EVERY admitted assignment is a definite violation.
        # Negative endpoints stay warnings: numpy accepts [-dim, -1].
        if isinstance(idx.ival.hi, SymExpr) and _le_end(dim, idx.ival.hi, self.env):
            self.error(
                "fancy-index-oob", loc,
                f"index upper bound {idx.ival.hi} reaches past {dim} - 1 "
                "for every admitted assignment (declared bounds are tight)",
            )
            return
        self.warn(
            "fancy-index-oob", loc,
            f"cannot prove index within [0, {dim} - 1] "
            f"(index bounds {idx.ival})",
        )

    def _subscript_load(self, node: ast.Subscript) -> Any:
        base = self._eval(node.value)
        if isinstance(base, Values):  # tuple indexing: shape[0] etc.
            part = node.slice
            if isinstance(part, ast.Constant) and isinstance(part.value, int):
                try:
                    return base.items[part.value]
                except IndexError:
                    return _OPAQUE
            return _OPAQUE
        if not isinstance(base, ArrayVal):
            return _OPAQUE
        parts = self._index_parts(node.slice)
        # boolean-mask compression: 1-D result with a shared fresh length
        if len(parts) == 1 and not isinstance(parts[0], ast.Slice):
            only = self._eval_cached(parts[0])
            if isinstance(only, ArrayVal) and is_bool(only.dtype) and not only.is_scalar:
                return self._compress(base, only)
            if isinstance(only, ArrayVal):
                self._check_index_bounds(only, transfer.first_dim(base.shape), node)
                if only.is_scalar:
                    new_shape = base.shape[1:] if base.shape else None
                    return ArrayVal(shape=new_shape, dtype=base.dtype, ival=base.ival)
                gathered_shape = None
                if only.shape is not None and base.shape is not None:
                    gathered_shape = tuple(only.shape) + tuple(base.shape[1:])
                return ArrayVal(shape=gathered_shape, dtype=base.dtype, ival=base.ival)
        # general tuple indexing: slices keep dims, arrays broadcast,
        # None inserts, scalars drop
        self._check_indices(base, node.slice, node)
        return self._tuple_index_shape(base, parts)

    def _tuple_index_shape(self, base: ArrayVal, parts: List[ast.AST]) -> ArrayVal:
        if base.shape is None:
            return ArrayVal(shape=None, dtype=base.dtype, ival=base.ival)
        dims: List[Optional[SymExpr]] = []
        fancy_shape: Optional[Tuple[Optional[SymExpr], ...]] = None
        fancy_used = False
        axis = 0
        for part in parts:
            if isinstance(part, ast.Constant) and part.value is None:
                dims.append(SymExpr.const(1))
                continue
            if isinstance(part, ast.Slice):
                dims.append(self._slice_dim(base.shape[axis] if axis < len(base.shape) else None, part))
                axis += 1
                continue
            val = self._eval_cached(part)
            if isinstance(val, ArrayVal) and not val.is_scalar:
                shape, _ = broadcast_shapes(
                    fancy_shape if fancy_used else (), val.shape
                )
                fancy_shape = shape
                fancy_used = True
                axis += 1
                continue
            axis += 1  # scalar index: drops the axis
        tail = list(base.shape[axis:]) if axis <= len(base.shape) else []
        if fancy_used:
            fancy = list(fancy_shape) if fancy_shape is not None else [None]
            out_shape = tuple(dims) + tuple(fancy) + tuple(tail)
        else:
            out_shape = tuple(dims) + tuple(tail)
        return ArrayVal(shape=out_shape, dtype=base.dtype, ival=base.ival,
                        sorted_=base.sorted_ and not fancy_used, base=base.base)

    def _slice_dim(self, dim: Optional[SymExpr], node: ast.Slice) -> Optional[SymExpr]:
        if node.step is not None:
            return None
        lower = 0
        if node.lower is not None:
            if isinstance(node.lower, ast.Constant) and isinstance(node.lower.value, int):
                lower = node.lower.value
            else:
                return None
        if node.upper is None:
            if dim is None or lower < 0:
                return None
            return dim - SymExpr.const(lower)
        upper = self._eval(node.upper)
        if not isinstance(upper, ArrayVal) or lower != 0 or dim is None:
            return None
        stop = upper.const_value()
        if stop is None:
            return None
        from .sym import _le_end

        if stop.const_value is not None and stop.const_value < 0:
            # x[:-c] drops the last c elements
            return dim + stop
        if _le_end(stop, dim, self.env):
            return stop
        return None

    def _compress(self, base: ArrayVal, mask: ArrayVal) -> ArrayVal:
        """``x[mask]``: 1-D selection; equal masks share one fresh length."""
        length = self._mask_len.get(id(mask))
        if length is None:
            count = transfer.dim_product(base.shape)
            hi = SInterval.of(0, count).num_hi(self.env) if count is not None else _INF
            length = self.env.fresh("sel", 0, hi)
            self._mask_len[id(mask)] = length
            self._keepalive.append(mask)
        ival = base.ival
        refined = self._mask_facts.get(id(mask), {}).get(id(base))
        if refined is not None:
            ival = refined
        return ArrayVal(
            shape=(length,),
            dtype=base.dtype,
            ival=ival,
            unique=base.unique,
            sorted_=base.sorted_ and base.rank == 1,
        )

    # -- expressions -------------------------------------------------------

    def _eval_cached(self, node: ast.AST) -> Any:
        """Evaluate a name through the store (identity-preserving)."""
        return self._eval(node)

    def _eval(self, node: ast.AST) -> Any:
        if isinstance(node, ast.Constant):
            return self._const(node.value)
        if isinstance(node, ast.Name):
            if node.id in self.scope:
                return self.scope[node.id]
            module_globals = self.annotation.func.__globals__
            if node.id in module_globals:
                return self._resolve_global(module_globals[node.id])
            import builtins

            return self._resolve_global(getattr(builtins, node.id, _MISSING))
        if isinstance(node, ast.Attribute):
            return self._attribute(node)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Subscript):
            return self._subscript_load(node)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left)
            right = self._eval(node.right)
            op = _BINOPS.get(type(node.op), "?")
            if isinstance(left, ArrayVal) and isinstance(right, ArrayVal):
                return self._binop(left, right, op, node)
            return _OPAQUE
        if isinstance(node, ast.UnaryOp):
            return self._unary(node)
        if isinstance(node, ast.Compare):
            return self._compare(node)
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._eval(value)
            return ArrayVal.scalar(SInterval.of(0, 1), dtype="bool")
        if isinstance(node, (ast.Tuple, ast.List)):
            return Values(tuple(self._eval(e) for e in node.elts))
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            a = self._eval(node.body)
            b = self._eval(node.orelse)
            if isinstance(a, ArrayVal) and isinstance(b, ArrayVal):
                return a.join(b, self.env)
            return _OPAQUE
        if isinstance(node, ast.JoinedStr):
            return _OPAQUE
        return _OPAQUE

    def _const(self, value: Any) -> Any:
        if isinstance(value, bool):
            return ArrayVal.scalar(SInterval.const(int(value)), dtype="bool")
        if isinstance(value, int):
            return ArrayVal.const(value)
        if isinstance(value, float):
            return ArrayVal.scalar(SInterval.top())
        if value is None:
            return None
        return _OPAQUE

    def _resolve_global(self, obj: Any) -> Any:
        import types

        import numpy as np

        if obj is _MISSING:
            return _OPAQUE
        if obj is np:
            return NpModule()
        if isinstance(obj, bool):
            return ArrayVal.scalar(SInterval.const(int(obj)), dtype="bool")
        if isinstance(obj, int):
            return ArrayVal.const(obj)
        if isinstance(obj, float):
            return ArrayVal.scalar(SInterval.top())
        if isinstance(obj, np.generic):
            if np.issubdtype(obj.dtype, np.integer) or obj.dtype == np.dtype(bool):
                return ArrayVal.scalar(
                    SInterval.const(int(obj)), dtype=obj.dtype.name
                )
            return ArrayVal.scalar(SInterval.top(), dtype=obj.dtype.name)
        if obj in (int, len, bool, float, abs, min, max):
            return NpFunc(f"builtin.{obj.__name__}")
        if isinstance(obj, types.FunctionType):
            return FuncRef(f"{obj.__module__}.{obj.__qualname__}")
        return _OPAQUE


_MISSING = object()


# attribute / call dispatch lives on the class but below for readability
def _attribute(self: KernelAnalyzer, node: ast.Attribute) -> Any:
    base = self._eval(node.value)
    attr = node.attr
    if isinstance(base, NpModule):
        if attr in _NUMPY_DTYPES:
            return DtypeCtor(normalize(attr.rstrip("_") or attr))
        if attr in ("inf", "nan", "pi", "e"):
            return ArrayVal.scalar(SInterval.top())
        if attr == "newaxis":
            return None
        if attr == "random":
            return NpModule(path="numpy.random")
        return NpFunc(attr)
    if isinstance(base, NpFunc):
        return NpFunc(f"{base.name}.{attr}")
    if isinstance(base, ArrayVal):
        if attr == "size":
            count = transfer.dim_product(base.shape)
            if count is not None:
                return ArrayVal.scalar(SInterval.const(count), dtype="int64")
            return ArrayVal.scalar(SInterval(SymExpr.const(0), _INF), dtype="int64")
        if attr == "shape":
            if base.shape is None:
                return _OPAQUE
            return Values(
                tuple(
                    ArrayVal.scalar(SInterval.const(d), dtype="int64")
                    if d is not None
                    else ArrayVal.scalar(SInterval(SymExpr.const(0), _INF), dtype="int64")
                    for d in base.shape
                )
            )
        if attr == "ndim":
            if base.rank is not None:
                return ArrayVal.const(base.rank)
            return _OPAQUE
        if attr == "dtype":
            return _OPAQUE
        return Method(receiver=base, node=node.value, name=attr)
    return _OPAQUE


KernelAnalyzer._attribute = _attribute


def _kwargs(self: KernelAnalyzer, node: ast.Call) -> Dict[str, Any]:
    out = {}
    for kw in node.keywords:
        if kw.arg is not None:
            out[kw.arg] = kw
    return out


def _dtype_kw(self: KernelAnalyzer, node: ast.Call) -> Optional[str]:
    for kw in node.keywords:
        if kw.arg == "dtype":
            val = self._eval(kw.value)
            if isinstance(val, DtypeCtor):
                return val.name
            if isinstance(val, NpFunc) and val.name.startswith("builtin."):
                name = val.name.split(".", 1)[1]
                if name in ("bool", "int", "float"):
                    return normalize(name)
            if (
                isinstance(kw.value, ast.Constant)
                and isinstance(kw.value.value, str)
            ):
                return normalize(kw.value.value)
            if isinstance(kw.value, ast.Name) and kw.value.id == "bool":
                return "bool"
    return None


def _int_kw(self: KernelAnalyzer, node: ast.Call, name: str) -> Optional[int]:
    for kw in node.keywords:
        if kw.arg == name:
            val = self._eval(kw.value)
            if isinstance(val, ArrayVal):
                c = val.const_value()
                if c is not None and c.const_value is not None:
                    return c.const_value
    return None


def _out_target(self: KernelAnalyzer, node: ast.Call, result: Any) -> None:
    """Apply an ``out=`` keyword: rebind a Name, hull into a Subscript."""
    for kw in node.keywords:
        if kw.arg != "out":
            continue
        if isinstance(kw.value, ast.Name) and isinstance(result, ArrayVal):
            self.scope[kw.value.id] = result
            self._keepalive.append(result)
        elif isinstance(kw.value, ast.Subscript) and isinstance(result, ArrayVal):
            base_node = kw.value.value
            base = self._eval(base_node)
            if isinstance(base, ArrayVal) and isinstance(base_node, ast.Name):
                updated = base.with_(
                    ival=base.ival.hull(result.ival, self.env),
                    unique=False,
                    sorted_=False,
                )
                self.scope[base_node.id] = updated
                self._keepalive.append(updated)


KernelAnalyzer._kwargs = _kwargs
KernelAnalyzer._dtype_kw = _dtype_kw
KernelAnalyzer._int_kw = _int_kw
KernelAnalyzer._out_target = _out_target


def _binop(self: KernelAnalyzer, left: ArrayVal, right: ArrayVal, op: str, node: ast.AST) -> ArrayVal:
    shape, conflict = broadcast_shapes(left.shape, right.shape)
    if conflict is not None:
        self.report_broadcast(self._loc(node), conflict, f"operands of '{op}'")
    dtype = promote(left.dtype, right.dtype)
    ival = transfer.binop_ival(op, left, right, self.env)
    if is_bool(dtype) and op in ("|", "&", "^"):
        ival = SInterval.of(0, 1)
    result = ArrayVal(shape=shape, dtype=dtype, ival=ival)
    self._check_int_overflow(result, node, f"result of '{op}'")
    # combined masks inherit both sides' refinements
    if is_bool(dtype) and op == "&":
        facts = dict(self._mask_facts.get(id(left), {}))
        facts.update(self._mask_facts.get(id(right), {}))
        if facts:
            self._mask_facts[id(result)] = facts
            self._keepalive.append(result)
    return result


def _dtype_scale_bound(expr: SymExpr) -> bool:
    """Bound inherited from a dtype-range clamp, not a tight annotation.

    Declared parameter ranges in this codebase top out near ``2**40``;
    a coefficient at ``>= 2**62`` can only have entered via the
    representable-range clamp on an unannotated array, so arithmetic on
    it is "unknown magnitude", not a provable overflow.
    """
    return any(abs(c) >= 2**62 for c in expr.terms.values())


def _check_int_overflow(self: KernelAnalyzer, val: ArrayVal, node: ast.AST, what: str) -> None:
    """Flag provable integer overflow (silent when bounds are unknown)."""
    if not is_integer(val.dtype) or is_bool(val.dtype):
        return
    rng = int_range(val.dtype)
    if rng is None:
        return
    hi = val.ival.num_hi(self.env)
    lo = val.ival.num_lo(self.env)
    if hi == _INF or lo == -_INF:
        return  # unknown bounds make no claim (documented caveat)
    if hi > rng[1] and isinstance(val.ival.hi, SymExpr):
        if _dtype_scale_bound(val.ival.hi):
            return
        if find_counterexample(val.ival.hi, self.env, rng[1]) is not None:
            self.report_overflow(self._loc(node), val.ival.hi, val.dtype, what)
    elif lo < rng[0]:
        pass  # negative-direction overflow out of scope for these kernels


KernelAnalyzer._binop = _binop
KernelAnalyzer._check_int_overflow = _check_int_overflow


def _unary(self: KernelAnalyzer, node: ast.UnaryOp) -> Any:
    val = self._eval(node.operand)
    if not isinstance(val, ArrayVal):
        return _OPAQUE
    if isinstance(node.op, ast.USub):
        return val.with_(ival=val.ival.neg(), unique=val.unique, sorted_=False)
    if isinstance(node.op, ast.Invert):
        if is_bool(val.dtype):
            return val.with_(ival=SInterval.of(0, 1), unique=False, sorted_=False)
        return val.with_(
            ival=transfer.invert_ival(val, self.env), unique=val.unique, sorted_=False
        )
    if isinstance(node.op, ast.Not):
        return ArrayVal.scalar(SInterval.of(0, 1), dtype="bool")
    return _OPAQUE


KernelAnalyzer._unary = _unary


def _compare(self: KernelAnalyzer, node: ast.Compare) -> Any:
    left = self._eval(node.left)
    if len(node.ops) != 1:
        for c in node.comparators:
            self._eval(c)
        return ArrayVal.scalar(SInterval.of(0, 1), dtype="bool")
    right = self._eval(node.comparators[0])
    if not isinstance(left, ArrayVal) or not isinstance(right, ArrayVal):
        return ArrayVal.scalar(SInterval.of(0, 1), dtype="bool")
    shape, conflict = broadcast_shapes(left.shape, right.shape)
    if conflict is not None:
        self.report_broadcast(self._loc(node), conflict, "comparison operands")
    mask = ArrayVal(shape=shape, dtype="bool", ival=SInterval.of(0, 1))
    refined = self._refine(left, type(node.ops[0]), right)
    if refined is not None:
        self._mask_facts[id(mask)] = {id(left): refined}
        self._keepalive.extend((mask, left))
    return mask


def _refine(
    self: KernelAnalyzer, left: ArrayVal, op: type, right: ArrayVal
) -> Optional[SInterval]:
    """Interval for ``left``'s elements where the mask holds, if sharper."""
    if not right.is_scalar and op is not ast.NotEq:
        return None
    one = SymExpr.const(1)
    if op is ast.Lt and isinstance(right.ival.hi, SymExpr):
        bound = SInterval(-_INF, right.ival.hi - one)
    elif op is ast.LtE:
        bound = SInterval(-_INF, right.ival.hi)
    elif op is ast.Gt and isinstance(right.ival.lo, SymExpr):
        bound = SInterval(right.ival.lo + one, _INF)
    elif op is ast.GtE:
        bound = SInterval(right.ival.lo, _INF)
    elif op is ast.Eq:
        bound = right.ival
    elif op is ast.NotEq:
        c = right.const_value() if right.is_scalar else None
        if c is None:
            return None
        if isinstance(left.ival.lo, SymExpr) and left.ival.lo == c:
            return SInterval(left.ival.lo + one, left.ival.hi)
        if isinstance(left.ival.hi, SymExpr) and left.ival.hi == c:
            return SInterval(left.ival.lo, left.ival.hi - one)
        return None
    else:
        return None
    return _refined_meet(left.ival, bound, self.env)


def _refined_meet(ival: SInterval, bound: SInterval, env: ParamEnv) -> SInterval:
    """Intersection that keeps the *constraint's* symbolic end.

    Both sides' endpoints bound the intersection, so either choice is
    sound; the constraint's end (``cap - 1`` from ``rank < cap``) is
    kept unless the source's is provably tighter — a numeric collapse
    here would break later symbolic comparisons against ``cap``-sized
    dims.
    """
    from .sym import _le_end

    lo = ival.lo if _le_end(bound.lo, ival.lo, env) else bound.lo
    hi = ival.hi if _le_end(ival.hi, bound.hi, env) else bound.hi
    return SInterval(lo, hi)


KernelAnalyzer._compare = _compare
KernelAnalyzer._refine = _refine


# --------------------------------------------------------------------------
# call dispatch
# --------------------------------------------------------------------------


def _call(self: KernelAnalyzer, node: ast.Call) -> Any:
    callee = self._eval(node.func)
    if isinstance(callee, NpFunc):
        return self._np_call(callee.name, node)
    if isinstance(callee, DtypeCtor):
        return self._ctor_call(callee, node)
    if isinstance(callee, Method):
        return self._method_call(callee, node)
    if isinstance(callee, FuncRef):
        return self._func_call(callee, node)
    for a in node.args:
        self._eval(a)
    for kw in node.keywords:
        self._eval(kw.value)
    return _OPAQUE


def _shape_arg(self: KernelAnalyzer, val: Any) -> Any:
    """A shape argument: tuple of dims, or a single extent."""
    if isinstance(val, Values):
        return tuple(
            item.const_value() if isinstance(item, ArrayVal) else None
            for item in val.items
        )
    if isinstance(val, ArrayVal) and val.is_scalar:
        return (val.const_value(),)
    return None


def _as_val(x: Any) -> ArrayVal:
    return x if isinstance(x, ArrayVal) else _OPAQUE


def _cast(self: KernelAnalyzer, val: ArrayVal, dtype: str, node: ast.AST) -> ArrayVal:
    """dtype cast: keeps bounds/facts, flags provable wraparound.

    After the check the result interval is clamped to the target's
    representable range — wraparound maps into it, so the clamp is
    sound even for a flagged misfit.
    """
    result = val.with_(dtype=dtype)
    self._check_int_overflow(result, node, f"value cast to {dtype}")
    return result.with_(ival=self._clamp_dtype(result.ival, dtype))


def _kind_arg(self: KernelAnalyzer, node: ast.Call) -> Optional[str]:
    for kw in node.keywords:
        if kw.arg == "kind" and isinstance(kw.value, ast.Constant):
            return str(kw.value.value)
    return None


def _argsort_nondet(self: KernelAnalyzer, x: Any, node: ast.Call) -> None:
    """Value-aware unstable-tie check for permutation-producing sorts."""
    kind = self._kind_arg(node)
    if kind in ("stable", "mergesort"):
        return
    if isinstance(x, ArrayVal) and x.unique:
        self.prove(
            self._loc(node),
            "bare argsort is deterministic: keys provably duplicate-free",
        )
        return
    self.warn(
        "nondet-sort", self._loc(node),
        "argsort without kind='stable' on keys not provably duplicate-free: "
        "tie order is backend-dependent",
    )


def _np_call(self: KernelAnalyzer, name: str, node: ast.Call) -> Any:
    env = self.env
    args = [self._eval(a) for a in node.args]
    # builtins routed through the same sentinel
    if name.startswith("builtin."):
        return self._builtin_call(name.split(".", 1)[1], args)
    if name in ("asarray", "ascontiguousarray", "atleast_1d", "atleast_2d"):
        x = _as_val(args[0]) if args else _OPAQUE
        dtype = self._dtype_kw(node)
        return self._cast(x, dtype, node) if dtype else x
    if name == "arange":
        dtype = self._dtype_kw(node)
        if len(args) >= 2:
            return transfer.arange_val(_as_val(args[1]), env, dtype, start=_as_val(args[0]))
        return transfer.arange_val(_as_val(args[0]), env, dtype)
    if name in ("zeros", "ones", "empty", "full"):
        shape = self._shape_arg(args[0]) if args else None
        dtype = self._dtype_kw(node) or "float64"
        if name == "zeros":
            ival = SInterval.const(0)
        elif name == "ones":
            ival = SInterval.const(1)
        elif name == "full" and len(args) >= 2:
            ival = _as_val(args[1]).ival
        else:
            rng = int_range(dtype)
            ival = SInterval.of(rng[0], rng[1]) if rng else SInterval.top()
        if is_bool(dtype):
            ival = ival.meet(SInterval.of(0, 1), env)
        return transfer.filled_val(shape, dtype, ival)
    if name == "array":
        dtype = self._dtype_kw(node)
        if args and isinstance(args[0], Values):
            items = [_as_val(i) for i in args[0].items]
            ival = items[0].ival if items else SInterval.top()
            for it in items[1:]:
                ival = ival.hull(it.ival, env)
            return ArrayVal(
                shape=(SymExpr.const(len(items)),),
                dtype=dtype or (items[0].dtype if items else None),
                ival=ival,
                unique=len(items) == 1,
            )
        x = _as_val(args[0]) if args else _OPAQUE
        return self._cast(x, dtype, node) if dtype else x
    if name == "repeat":
        return transfer.repeat_val(_as_val(args[0]), _as_val(args[1]), env)
    if name == "tile":
        return transfer.tile_val(_as_val(args[0]), _as_val(args[1]), env)
    if name in ("concatenate", "hstack"):
        parts = (
            [_as_val(i) for i in args[0].items]
            if args and isinstance(args[0], Values)
            else []
        )
        axis = self._int_kw(node, "axis") or 0
        return transfer.concat_val(parts, env, axis)
    if name == "lexsort":
        keys = (
            [_as_val(i) for i in args[0].items]
            if args and isinstance(args[0], Values)
            else []
        )
        return transfer.lexsort_val(keys, env)
    if name == "argsort":
        x = _as_val(args[0]) if args else _OPAQUE
        self._argsort_nondet(x, node)
        return transfer.argsort_val(x, env, self._int_kw(node, "axis"))
    if name == "sort":
        return transfer.sort_val(_as_val(args[0]))
    if name == "unique":
        return transfer.unique_val(_as_val(args[0]), env)
    if name == "searchsorted":
        return transfer.searchsorted_val(_as_val(args[0]), _as_val(args[1]))
    if name == "take_along_axis":
        a, idx = _as_val(args[0]), _as_val(args[1])
        axis = self._int_kw(node, "axis")
        if axis is None and len(args) >= 3:
            c = _as_val(args[2]).const_value()
            axis = c.const_value if c is not None else None
        dim = None
        if a.shape is not None and axis is not None and a.rank and axis < a.rank:
            dim = a.shape[axis]
        self._check_index_bounds(idx, dim, node)
        return transfer.take_along_axis_val(a, idx)
    if name == "where":
        if len(args) >= 3:
            val, conflict = transfer.where_val(
                _as_val(args[0]), _as_val(args[1]), _as_val(args[2]), env
            )
            if conflict:
                self.report_broadcast(self._loc(node), conflict, "np.where operands")
            return val
        return _OPAQUE
    if name in ("minimum", "maximum"):
        val, conflict = transfer.minmax_val(name, _as_val(args[0]), _as_val(args[1]), env)
        if conflict:
            self.report_broadcast(self._loc(node), conflict, f"np.{name} operands")
        self._out_target(node, val)
        return val
    if name in ("maximum.accumulate", "minimum.accumulate"):
        return transfer.accumulate_val(_as_val(args[0]))
    if name == "cumsum":
        axis = self._int_kw(node, "axis")
        val = transfer.cumsum_val(_as_val(args[0]), env, axis)
        dtype = self._dtype_kw(node)
        if dtype:
            val = val.with_(dtype=dtype)
        self._check_int_overflow(val, node, "cumsum result")
        self._out_target(node, val)
        return val
    if name == "bincount":
        minlength = None
        for kw in node.keywords:
            if kw.arg == "minlength":
                m = self._eval(kw.value)
                minlength = m if isinstance(m, ArrayVal) else None
        return transfer.bincount_val(_as_val(args[0]), env, minlength)
    if name == "packbits":
        return transfer.packbits_val(_as_val(args[0]), env)
    if name == "tri":
        dtype = self._dtype_kw(node) or "float64"
        m = _as_val(args[1]) if len(args) >= 2 else _as_val(args[0])
        return transfer.tri_val(_as_val(args[0]), m, dtype)
    if name in _REDUCTIONS:
        return transfer.reduce_val(
            _as_val(args[0]), env, name, self._int_kw(node, "axis")
        )
    if name == "clip":
        x = _as_val(args[0])
        lo = _as_val(args[1]).ival.lo if len(args) >= 2 else -_INF
        hi = _as_val(args[2]).ival.hi if len(args) >= 3 else _INF
        return x.with_(
            ival=x.ival.meet(SInterval(lo, hi), env), unique=False, sorted_=x.sorted_
        )
    if name in ("flatnonzero", "nonzero"):
        x = _as_val(args[0])
        count = transfer.dim_product(x.shape)
        hi = SInterval.of(0, count).num_hi(env) if count is not None else _INF
        length = env.fresh("nz", 0, hi)
        idx = ArrayVal(
            shape=(length,), dtype="int64",
            ival=SInterval(SymExpr.const(0), count - SymExpr.const(1)) if count is not None else SInterval(SymExpr.const(0), _INF),
            unique=True, sorted_=True,
        )
        return idx if name == "flatnonzero" else Values((idx,))
    return _OPAQUE


def _builtin_call(self: KernelAnalyzer, name: str, args: List[Any]) -> Any:
    env = self.env
    if name == "int" and args and isinstance(args[0], ArrayVal):
        return ArrayVal.scalar(args[0].ival)
    if name == "len" and args and isinstance(args[0], ArrayVal):
        dim = transfer.first_dim(args[0].shape)
        if dim is not None:
            return ArrayVal.scalar(SInterval.const(dim), dtype="int64")
        return ArrayVal.scalar(SInterval(SymExpr.const(0), _INF), dtype="int64")
    if name == "bool":
        return ArrayVal.scalar(SInterval.of(0, 1), dtype="bool")
    if name == "float":
        return ArrayVal.scalar(SInterval.top())
    if name in ("min", "max") and len(args) >= 2:
        a, b = _as_val(args[0]), _as_val(args[1])
        ival = a.ival.minimum(b.ival, env) if name == "min" else a.ival.maximum(b.ival, env)
        return ArrayVal.scalar(ival)
    return _OPAQUE


def _ctor_call(self: KernelAnalyzer, ctor: DtypeCtor, node: ast.Call) -> Any:
    args = [self._eval(a) for a in node.args]
    if not args:
        return _OPAQUE
    return self._cast(_as_val(args[0]), ctor.name, node)


def _method_call(self: KernelAnalyzer, m: Method, node: ast.Call) -> Any:
    env = self.env
    name = m.name
    args = [self._eval(a) for a in node.args]
    x = m.receiver
    if name == "astype":
        dtype = None
        if args and isinstance(args[0], DtypeCtor):
            dtype = args[0].name
        elif (
            node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            dtype = normalize(node.args[0].value)
        elif args and isinstance(args[0], NpFunc) and args[0].name.startswith("builtin."):
            short = args[0].name.split(".", 1)[1]
            if short in ("bool", "int", "float"):
                dtype = normalize(short)
        if dtype is None:
            dtype = self._dtype_kw(node)
        return self._cast(x, dtype, node) if dtype else x
    if name == "view":
        if args and isinstance(args[0], DtypeCtor):
            return transfer.view_val(x, args[0].name)
        return _OPAQUE
    if name == "ravel":
        return transfer.ravel_val(x)
    if name == "reshape":
        shape_arg = (
            self._shape_arg(args[0])
            if len(args) == 1 and isinstance(args[0], Values)
            else self._shape_arg(Values(tuple(args)))
        )
        return self._reshape(x, shape_arg)
    if name == "copy":
        return x.with_(base=None)
    if name == "sort":
        # in-place value sort: always deterministic (ties are equal values)
        if isinstance(m.node, ast.Name):
            updated = transfer.sort_val(x)
            self.scope[m.node.id] = updated
            self._keepalive.append(updated)
        return None
    if name == "argsort":
        self._argsort_nondet(x, node)
        return transfer.argsort_val(x, env, self._int_kw(node, "axis"))
    if name in _REDUCTIONS:
        return transfer.reduce_val(x, env, name, self._int_kw(node, "axis"))
    if name == "item":
        return ArrayVal.scalar(x.ival, dtype=x.dtype)
    if name == "fill":
        if isinstance(m.node, ast.Name) and args:
            updated = x.with_(ival=_as_val(args[0]).ival, unique=False, sorted_=False)
            self.scope[m.node.id] = updated
            self._keepalive.append(updated)
        return None
    return _OPAQUE


def _reshape(self: KernelAnalyzer, x: ArrayVal, shape_arg: Any) -> ArrayVal:
    if shape_arg is None:
        return ArrayVal(shape=None, dtype=x.dtype, ival=x.ival, base=x.base)
    dims = list(shape_arg)
    total = transfer.dim_product(x.shape)
    holes = [i for i, d in enumerate(dims) if d is not None and d.const_value == -1]
    if len(holes) == 1 and total is not None:
        known = SymExpr.const(1)
        ok = True
        for i, d in enumerate(dims):
            if i == holes[0]:
                continue
            if d is None:
                ok = False
                break
            known = known * d
        if ok:
            div = total.floordiv(known, self.env) if known.const_value != 1 else (total, total)
            dims[holes[0]] = div[0] if div is not None and div[0] == div[1] else None
        else:
            dims[holes[0]] = None
    return ArrayVal(
        shape=tuple(dims), dtype=x.dtype, ival=x.ival, unique=x.unique, base=x.base
    )


def _func_call(self: KernelAnalyzer, ref: FuncRef, node: ast.Call) -> Any:
    args = [self._eval(a) for a in node.args]
    summary = transfer.SUMMARIES.get(ref.qualname)
    if summary is not None:
        argvals = [_as_val(a) for a in args]
        result = summary(self, self._loc(node), argvals)
        if isinstance(result, tuple):
            return Values(result)
        return result
    ann = get_annotation(ref.qualname)
    if ann is not None:
        return self._contract_call(ann, args)
    return _OPAQUE


def _single_var(expr: SymExpr) -> Optional[str]:
    """The name when ``expr`` is exactly one bare parameter."""
    if len(expr.terms) != 1:
        return None
    (mono, coeff), = expr.terms.items()
    if coeff == 1 and len(mono) == 1 and mono[0][1] == 1:
        return mono[0][0]
    return None


def _contract_call(self: KernelAnalyzer, ann: KernelAnnotation, args: List[Any]) -> Any:
    """Instantiate an annotated callee's returns contract at this site.

    Single-parameter dims and exact scalars unify against the actual
    abstract values; parameters left unbound get fresh symbols carrying
    the callee's declared range (assume-guarantee: argument
    preconditions are trusted, not re-checked here).
    """
    bindings: Dict[str, SymExpr] = {}
    try:
        formals = [
            p.name
            for p in inspect.signature(ann.func).parameters.values()
            if p.kind
            in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY)
        ]
    except (ValueError, TypeError):
        formals = []
    for formal, actual in zip(formals, args):
        spec = ann.args.get(formal)
        if not isinstance(actual, ArrayVal):
            continue
        if isinstance(spec, ScalarSpec) and spec.expr is not None:
            name = _single_var(parse_expr(spec.expr))
            cv = actual.const_value()
            if name and name not in bindings and cv is not None:
                bindings[name] = cv
        elif isinstance(spec, ArraySpec) and spec.dims and actual.shape is not None:
            for dim_expr, adim in zip(spec.dims, actual.shape):
                name = _single_var(parse_expr(dim_expr))
                if name and name not in bindings and adim is not None:
                    bindings[name] = adim
    for pname, (lo, hi) in ann.params.items():
        if pname not in bindings:
            bindings[pname] = self.env.fresh(pname, lo, hi)

    def inst(text) -> SymExpr:
        return parse_expr(text).subst(bindings)

    results = []
    for spec in ann.returns:
        if isinstance(spec, ArraySpec):
            dims = (
                tuple(inst(d) for d in spec.dims) if spec.dims is not None else None
            )
            lo = inst(spec.lo) if spec.lo is not None else -_INF
            hi = inst(spec.hi) if spec.hi is not None else _INF
            results.append(
                ArrayVal(
                    shape=dims,
                    dtype=normalize(spec.dtype),
                    ival=SInterval(lo, hi),
                    unique=spec.unique,
                    sorted_=spec.sorted_,
                )
            )
        elif isinstance(spec, ScalarSpec):
            if spec.expr is not None:
                ival = SInterval.const(inst(spec.expr))
            else:
                ival = SInterval(
                    inst(spec.lo) if spec.lo is not None else -_INF,
                    inst(spec.hi) if spec.hi is not None else _INF,
                )
            results.append(ArrayVal.scalar(ival, dtype=normalize(spec.dtype)))
        else:
            results.append(_OPAQUE)
    if not results:
        return _OPAQUE
    if len(results) == 1:
        return results[0]
    return Values(tuple(results))


KernelAnalyzer._call = _call
KernelAnalyzer._shape_arg = _shape_arg
KernelAnalyzer._cast = _cast
KernelAnalyzer._kind_arg = _kind_arg
KernelAnalyzer._argsort_nondet = _argsort_nondet
KernelAnalyzer._np_call = _np_call
KernelAnalyzer._builtin_call = _builtin_call
KernelAnalyzer._ctor_call = _ctor_call
KernelAnalyzer._method_call = _method_call
KernelAnalyzer._reshape = _reshape
KernelAnalyzer._func_call = _func_call
KernelAnalyzer._contract_call = _contract_call


def analyze_kernel(annotation: KernelAnnotation) -> Tuple[List[Finding], List[str]]:
    """Run the abstract interpreter over one annotated kernel."""
    analyzer = KernelAnalyzer(annotation)
    findings = analyzer.run()
    return findings, analyzer.proven
