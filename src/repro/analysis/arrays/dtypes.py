"""Dtype lattice for the array verifier.

Thin wrapper over numpy's own promotion rules (``np.result_type`` under
NEP 50 value-independent promotion, which is what the analyzed kernels
run under): a dtype is a numpy dtype name or ``None`` for a *weak*
python scalar (adopts the other operand's dtype, exactly as NEP 50
does).  Integer dtypes expose their representable range so the overflow
checker can compare symbolic value bounds against ``iinfo`` limits.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "promote",
    "int_range",
    "is_integer",
    "is_float",
    "is_bool",
    "normalize",
]


def normalize(name: str) -> str:
    """Canonical dtype name (``"int"`` -> ``"int64"`` etc.)."""
    return np.dtype(name).name


def promote(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """NEP 50 result dtype of a binary op; ``None`` = weak python scalar."""
    if a is None:
        return b
    if b is None:
        return a
    return np.result_type(np.dtype(a), np.dtype(b)).name


def is_integer(name: Optional[str]) -> bool:
    return name is not None and np.issubdtype(np.dtype(name), np.integer)


def is_float(name: Optional[str]) -> bool:
    return name is not None and np.issubdtype(np.dtype(name), np.floating)


def is_bool(name: Optional[str]) -> bool:
    return name is not None and np.dtype(name) == np.dtype(bool)


def int_range(name: str) -> Optional[Tuple[int, int]]:
    """``(min, max)`` representable for an integer dtype, else ``None``."""
    dtype = np.dtype(name)
    if np.issubdtype(dtype, np.integer):
        info = np.iinfo(dtype)
        return int(info.min), int(info.max)
    if dtype == np.dtype(bool):
        return 0, 1
    return None
