"""Symbolic polynomial expressions and intervals over kernel parameters.

The array verifier's dims and value bounds are polynomials over the
declared parameters (``n - 1``, ``n*degree - 1``, ``32*w``), represented
as sparse monomial sums.  :class:`SymExpr` supports the ring operations
plus the one division pattern packed-key arithmetic needs —
``(n*n - 1) // n == n - 1`` — via exact monomial division with a bounded
remainder.  :class:`SInterval` is a closed interval whose endpoints are
symbolic, so ``row ∈ [0, n-1]`` times ``n`` plus ``id ∈ [0, n-1]`` stays
*exactly* ``[0, n*n - 1]`` instead of widening to a numeric box; numeric
questions ("does this exceed 2**63-1 for any admitted ``n``?") evaluate
the endpoints over the declared parameter box, summing per-monomial
ranges (sound: correlation between monomials is dropped, never added).

Parameter environments (:class:`ParamEnv`) carry the declared ranges and
mint fresh symbols for data-dependent lengths (boolean-mask selections,
``np.unique`` results) bounded by their source extent.
"""

from __future__ import annotations

import ast
import itertools
import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple, Union

__all__ = ["SymExpr", "SInterval", "ParamEnv", "parse_expr"]

_INF = float("inf")

#: A monomial: sorted ``((param, power), ...)``; ``()`` is the constant.
Monomial = Tuple[Tuple[str, int], ...]


def _exactify(value: float) -> float:
    """Ints stay ints (exact); only non-finite values stay floats."""
    if isinstance(value, float) and math.isfinite(value):
        return int(value) if value.is_integer() else value
    return value


def _mono_mul(a: Monomial, b: Monomial) -> Monomial:
    powers: Dict[str, int] = {}
    for name, exp in itertools.chain(a, b):
        powers[name] = powers.get(name, 0) + exp
    return tuple(sorted(powers.items()))


class SymExpr:
    """A polynomial ``sum(coeff * prod(param**power))`` with int coeffs."""

    __slots__ = ("terms",)

    def __init__(self, terms: Optional[Mapping[Monomial, int]] = None) -> None:
        self.terms: Dict[Monomial, int] = {
            m: c for m, c in (terms or {}).items() if c != 0
        }

    # -- constructors ------------------------------------------------------

    @staticmethod
    def const(value: int) -> "SymExpr":
        return SymExpr({(): int(value)} if value else {})

    @staticmethod
    def var(name: str) -> "SymExpr":
        return SymExpr({((name, 1),): 1})

    # -- predicates --------------------------------------------------------

    @property
    def is_const(self) -> bool:
        return all(m == () for m in self.terms)

    @property
    def const_value(self) -> Optional[int]:
        if self.is_const:
            return self.terms.get((), 0)
        return None

    def params(self) -> Tuple[str, ...]:
        names = {name for mono in self.terms for name, _ in mono}
        return tuple(sorted(names))

    # -- ring ops ----------------------------------------------------------

    def __add__(self, other: "SymExpr") -> "SymExpr":
        terms = dict(self.terms)
        for mono, coeff in other.terms.items():
            terms[mono] = terms.get(mono, 0) + coeff
        return SymExpr(terms)

    def __neg__(self) -> "SymExpr":
        return SymExpr({m: -c for m, c in self.terms.items()})

    def __sub__(self, other: "SymExpr") -> "SymExpr":
        return self + (-other)

    def __mul__(self, other: "SymExpr") -> "SymExpr":
        terms: Dict[Monomial, int] = {}
        for (ma, ca), (mb, cb) in itertools.product(
            self.terms.items(), other.terms.items()
        ):
            mono = _mono_mul(ma, mb)
            terms[mono] = terms.get(mono, 0) + ca * cb
        return SymExpr(terms)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SymExpr) and self.terms == other.terms

    def __hash__(self) -> int:
        return hash(frozenset(self.terms.items()))

    # -- evaluation --------------------------------------------------------

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        """Concrete value under a full parameter assignment (exact int)."""
        total = 0
        for mono, coeff in self.terms.items():
            value = coeff
            for name, exp in mono:
                value *= int(assignment[name]) ** exp
            total += value
        return total

    def subst(self, bindings: Mapping[str, "SymExpr"]) -> "SymExpr":
        """Substitute parameters with expressions (contract instantiation).

        Unbound parameters stay as-is — callers pre-bind them to fresh
        symbols carrying the callee's declared range.
        """
        out = SymExpr()
        for mono, coeff in self.terms.items():
            term = SymExpr.const(coeff)
            for name, exp in mono:
                base = bindings.get(name, SymExpr.var(name))
                for _ in range(exp):
                    term = term * base
            out = out + term
        return out

    def bounds(self, env: "ParamEnv") -> Tuple[float, float]:
        """Sound numeric range over the parameter box (per-monomial).

        Arithmetic stays in exact python ints for finite ranges — float
        rounding near ``2**63`` would otherwise let an off-by-one
        overflow slip past the dtype check — and only degrades to
        ``±inf`` floats for undeclared parameters.
        """
        lo: float = 0
        hi: float = 0
        for mono, coeff in self.terms.items():
            mlo: float = coeff
            mhi: float = coeff
            for name, exp in mono:
                plo, phi = env.range_of(name)
                # power of an interval (integer exponent >= 1)
                cands = [plo**exp, phi**exp]
                if plo < 0 < phi and exp % 2 == 0:
                    cands.append(0)
                plo, phi = min(cands), max(cands)
                cands = [
                    _mul_num(mlo, plo), _mul_num(mlo, phi),
                    _mul_num(mhi, plo), _mul_num(mhi, phi),
                ]
                mlo, mhi = min(cands), max(cands)
            lo += mlo
            hi += mhi
        return lo, hi

    def floordiv(
        self, divisor: "SymExpr", env: "ParamEnv"
    ) -> Optional[Tuple["SymExpr", "SymExpr"]]:
        """Symbolic ``(lo, hi)`` bounds of ``self // divisor``.

        Requires a single-monomial divisor that is provably positive.
        Splits the dividend into exactly-divisible terms (quotient ``q``)
        plus a remainder ``r``.  Python/numpy floor division satisfies
        ``(q*d + r) // d == q + (r // d)``, so when ``r`` provably lies
        in ``[-min(d), min(d))`` the result is within ``[q - 1, q]`` —
        exactly ``q`` for ``r in [0, d)`` and exactly ``q - 1`` for
        ``r in [-d, 0)``.  Returns ``None`` when the pattern is out of
        reach — callers fall back to numeric interval division.
        """
        if self.is_const and divisor.const_value is not None:
            if divisor.const_value == 0:
                return None
            q = SymExpr.const(self.const_value // divisor.const_value)
            return q, q
        if len(divisor.terms) != 1:
            return None
        (dmono, dcoeff), = divisor.terms.items()
        d_lo, _ = divisor.bounds(env)
        if dcoeff <= 0 or d_lo <= 0.0:
            return None
        quotient: Dict[Monomial, int] = {}
        remainder: Dict[Monomial, int] = {}
        for mono, coeff in self.terms.items():
            powers = dict(mono)
            divisible = coeff % dcoeff == 0 and all(
                powers.get(name, 0) >= exp for name, exp in dmono
            )
            if divisible:
                for name, exp in dmono:
                    powers[name] -= exp
                qmono = tuple(sorted((n, e) for n, e in powers.items() if e))
                quotient[qmono] = quotient.get(qmono, 0) + coeff // dcoeff
            else:
                remainder[mono] = remainder.get(mono, 0) + coeff
        q = SymExpr(quotient)
        r = SymExpr(remainder)
        r_lo, r_hi = r.bounds(env)
        if not (-d_lo <= r_lo and r_hi < d_lo):
            return None
        lo = q if r_lo >= 0 else q - SymExpr.const(1)
        hi = q - SymExpr.const(1) if r_hi < 0 else q
        return lo, hi

    def __str__(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for mono, coeff in sorted(self.terms.items()):
            factors = "*".join(
                name if exp == 1 else f"{name}**{exp}" for name, exp in mono
            )
            if not factors:
                parts.append(str(coeff))
            elif coeff == 1:
                parts.append(factors)
            elif coeff == -1:
                parts.append(f"-{factors}")
            else:
                parts.append(f"{coeff}*{factors}")
        out = " + ".join(parts).replace("+ -", "- ")
        return out

    __repr__ = __str__


class ParamEnv:
    """Declared parameter ranges plus analyzer-minted fresh lengths."""

    def __init__(self, ranges: Optional[Mapping[str, Tuple[float, float]]] = None):
        # Finite range ends stay python ints for exact arithmetic near
        # 2**63; only ±inf is a float.
        self.ranges: Dict[str, Tuple[float, float]] = {
            name: (_exactify(lo), _exactify(hi))
            for name, (lo, hi) in (ranges or {}).items()
        }
        self._fresh = 0

    def range_of(self, name: str) -> Tuple[float, float]:
        return self.ranges.get(name, (-_INF, _INF))

    def declare(self, name: str, lo: float, hi: float) -> SymExpr:
        self.ranges[name] = (_exactify(lo), _exactify(hi))
        return SymExpr.var(name)

    def fresh(self, label: str, lo: float, hi: float) -> SymExpr:
        """Mint a fresh symbol for a data-dependent extent in [lo, hi]."""
        self._fresh += 1
        name = f"_{label}{self._fresh}"
        return self.declare(name, lo, hi)


# --------------------------------------------------------------------------
# symbolic intervals
# --------------------------------------------------------------------------

#: Interval endpoints: a SymExpr, or +/-inf floats for unbounded sides.
End = Union[SymExpr, float]


def _end_bounds(end: End, env: ParamEnv) -> Tuple[float, float]:
    if isinstance(end, SymExpr):
        return end.bounds(env)
    return end, end


def _as_expr(value: Union[int, float, SymExpr]) -> End:
    if isinstance(value, SymExpr):
        return value
    if isinstance(value, float) and math.isinf(value):
        return value
    if isinstance(value, float) and not value.is_integer():
        # conservative: round outward is the caller's job; keep floats
        return value
    return SymExpr.const(int(value))


@dataclass(frozen=True)
class SInterval:
    """Closed interval with symbolic endpoints (``[lo, hi]``)."""

    lo: End
    hi: End

    @staticmethod
    def top() -> "SInterval":
        return SInterval(-_INF, _INF)

    @staticmethod
    def const(value: Union[int, float, SymExpr]) -> "SInterval":
        end = _as_expr(value)
        return SInterval(end, end)

    @staticmethod
    def of(lo: Union[int, float, SymExpr], hi: Union[int, float, SymExpr]) -> "SInterval":
        return SInterval(_as_expr(lo), _as_expr(hi))

    # -- numeric projections ----------------------------------------------

    def num_lo(self, env: ParamEnv) -> float:
        """Smallest concrete value admitted over the parameter box."""
        return _end_bounds(self.lo, env)[0]

    def num_hi(self, env: ParamEnv) -> float:
        """Largest concrete value admitted over the parameter box."""
        return _end_bounds(self.hi, env)[1]

    @property
    def is_top(self) -> bool:
        return self.lo == -_INF and self.hi == _INF

    def exact(self) -> Optional[SymExpr]:
        """The single symbolic value, when degenerate."""
        if isinstance(self.lo, SymExpr) and self.lo == self.hi:
            return self.lo
        return None

    # -- lattice -----------------------------------------------------------

    def hull(self, other: "SInterval", env: ParamEnv) -> "SInterval":
        return SInterval(
            _min_end(self.lo, other.lo, env, lower=True),
            _max_end(self.hi, other.hi, env, lower=False),
        )

    def meet(self, other: "SInterval", env: ParamEnv) -> "SInterval":
        # The *larger* lower end and *smaller* upper end; on incomparable
        # symbolic ends keep self's (sound only for refinement where the
        # other side is a known constraint — callers pass constraints as
        # `other` with comparable numeric ends).
        lo = _max_end(self.lo, other.lo, env, lower=True)
        hi = _min_end(self.hi, other.hi, env, lower=False)
        return SInterval(lo, hi)

    def same(self, other: "SInterval") -> bool:
        return self.lo == other.lo and self.hi == other.hi

    # -- arithmetic --------------------------------------------------------

    def add(self, other: "SInterval") -> "SInterval":
        return SInterval(
            _add_end(self.lo, other.lo, lower=True),
            _add_end(self.hi, other.hi, lower=False),
        )

    def sub(self, other: "SInterval") -> "SInterval":
        return SInterval(
            _add_end(self.lo, _neg_end(other.hi), lower=True),
            _add_end(self.hi, _neg_end(other.lo), lower=False),
        )

    def neg(self) -> "SInterval":
        return SInterval(_neg_end(self.hi), _neg_end(self.lo))

    def mul(self, other: "SInterval", env: ParamEnv) -> "SInterval":
        # Precise symbolic product for the common nonnegative case.
        if (
            isinstance(self.lo, SymExpr)
            and isinstance(other.lo, SymExpr)
            and self.num_lo(env) >= 0.0
            and other.num_lo(env) >= 0.0
            and isinstance(self.hi, SymExpr)
            and isinstance(other.hi, SymExpr)
        ):
            return SInterval(self.lo * other.lo, self.hi * other.hi)
        lo1, hi1 = _end_bounds(self.lo, env)[0], _end_bounds(self.hi, env)[1]
        lo2, hi2 = _end_bounds(other.lo, env)[0], _end_bounds(other.hi, env)[1]
        products = [
            _mul_num(lo1, lo2), _mul_num(lo1, hi2),
            _mul_num(hi1, lo2), _mul_num(hi1, hi2),
        ]
        return SInterval.of(min(products), max(products))

    def floordiv(self, other: "SInterval", env: ParamEnv) -> "SInterval":
        divisor = other.exact()
        if divisor is not None and isinstance(self.hi, SymExpr):
            hi_b = self.hi.floordiv(divisor, env)
            lo_b = self.lo.floordiv(divisor, env) if isinstance(self.lo, SymExpr) else None
            if hi_b is not None and lo_b is not None:
                return SInterval(lo_b[0], hi_b[1])
        lo1 = self.num_lo(env)
        hi1 = self.num_hi(env)
        lo2 = other.num_lo(env)
        hi2 = other.num_hi(env)
        if lo2 <= 0.0 <= hi2:
            return SInterval.top()
        quotients = [
            _floordiv_num(lo1, lo2), _floordiv_num(lo1, hi2),
            _floordiv_num(hi1, lo2), _floordiv_num(hi1, hi2),
        ]
        return SInterval.of(min(quotients), max(quotients))

    def mod(self, other: "SInterval", env: ParamEnv) -> "SInterval":
        """``x % d`` for provably-positive ``d`` (numpy sign convention)."""
        if other.num_lo(env) > 0.0:
            if self.num_lo(env) >= 0.0:
                hi = other.hi
                if isinstance(hi, SymExpr):
                    hi = hi - SymExpr.const(1)
                # Result <= d.hi - 1 always; tighten to x.hi only when
                # provably smaller (a numeric min would trade the exact
                # symbolic divisor bound for an incomparable constant).
                if _le_end(self.hi, hi, env):
                    hi = self.hi
                return SInterval(SymExpr.const(0), hi)
            hi = other.hi
            hi = hi - SymExpr.const(1) if isinstance(hi, SymExpr) else hi
            return SInterval(SymExpr.const(0), hi)
        return SInterval.top()

    def minimum(self, other: "SInterval", env: ParamEnv) -> "SInterval":
        return SInterval(
            _min_end(self.lo, other.lo, env, lower=True),
            _min_end(self.hi, other.hi, env, lower=False),
        )

    def maximum(self, other: "SInterval", env: ParamEnv) -> "SInterval":
        return SInterval(
            _max_end(self.lo, other.lo, env, lower=True),
            _max_end(self.hi, other.hi, env, lower=False),
        )

    def widen(self, newer: "SInterval", env: ParamEnv) -> "SInterval":
        """Jump endpoints that moved to the numeric box edge (or infinity)."""
        lo = self.lo
        if not _le_end(self.lo, newer.lo, env):
            lo = -_INF
        hi = self.hi
        if not _le_end(newer.hi, self.hi, env):
            hi = _INF
        return SInterval(lo, hi)

    def contains(self, other: "SInterval", env: ParamEnv) -> bool:
        """True iff ``other`` provably sits inside ``self``."""
        return _le_end(self.lo, other.lo, env) and _le_end(other.hi, self.hi, env)

    def __str__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


# -- endpoint helpers -------------------------------------------------------


def _add_end(a: End, b: End, lower: bool) -> End:
    """Endpoint sum; mixed symbolic/float sides collapse soundly."""
    if isinstance(a, float):
        a = _wrap_num(a)
    if isinstance(b, float):
        b = _wrap_num(b)
    if isinstance(a, SymExpr) and isinstance(b, SymExpr):
        return a + b
    # At least one side is a float (±inf from TOP/widening, or a finite
    # numeric fallback).  Infinity dominates; a finite float plus a
    # non-constant symbol has no representation, so drop to ±inf on the
    # sound side.
    for side in (a, b):
        if isinstance(side, float) and math.isinf(side):
            return side
    for side in (a, b):
        if isinstance(side, SymExpr) and not side.is_const:
            return -_INF if lower else _INF
    fa = float(a.const_value) if isinstance(a, SymExpr) else float(a)
    fb = float(b.const_value) if isinstance(b, SymExpr) else float(b)
    return _wrap_num(fa + fb)


def _wrap_num(value: float) -> End:
    """Integral numerics back to exact SymExpr consts; keep ±inf floats."""
    if isinstance(value, float) and not math.isfinite(value):
        return value
    if isinstance(value, float) and not value.is_integer():
        return value
    return SymExpr.const(int(value))


def _neg_end(end: End) -> End:
    if isinstance(end, SymExpr):
        return -end
    return -end


def _mul_num(x: float, y: float) -> float:
    if x == 0.0 or y == 0.0:
        return 0.0
    return x * y


def _floordiv_num(x: float, y: float) -> float:
    if y == 0:
        return _INF if x >= 0 else -_INF
    if isinstance(x, int) and isinstance(y, int):
        return x // y  # exact for arbitrary magnitude
    if math.isinf(x) and math.isinf(y):
        return 0
    q = x / y
    return math.floor(q) if math.isfinite(q) else q


def _le_end(a: End, b: End, env: ParamEnv) -> bool:
    """True iff ``a <= b`` for every parameter assignment (provable)."""
    if isinstance(a, float) and a == -_INF:
        return True
    if isinstance(b, float) and b == _INF:
        return True
    if isinstance(a, SymExpr) and isinstance(b, SymExpr):
        diff_lo, _ = (b - a).bounds(env)
        return diff_lo >= 0.0
    fa = _end_bounds(a, env)[1]
    fb = _end_bounds(b, env)[0]
    return fa <= fb


def _min_end(a: End, b: End, env: ParamEnv, lower: bool) -> End:
    if _le_end(a, b, env):
        return a
    if _le_end(b, a, env):
        return b
    # incomparable: take the sound numeric side
    if lower:
        return _wrap_num(min(_end_bounds(a, env)[0], _end_bounds(b, env)[0]))
    return _wrap_num(min(_end_bounds(a, env)[1], _end_bounds(b, env)[1]))


def _max_end(a: End, b: End, env: ParamEnv, lower: bool) -> End:
    if _le_end(a, b, env):
        return b
    if _le_end(b, a, env):
        return a
    if lower:
        return _wrap_num(max(_end_bounds(a, env)[0], _end_bounds(b, env)[0]))
    return _wrap_num(max(_end_bounds(a, env)[1], _end_bounds(b, env)[1]))


# --------------------------------------------------------------------------
# expression parsing (annotation strings -> SymExpr)
# --------------------------------------------------------------------------


def parse_expr(text: Union[int, str]) -> SymExpr:
    """Parse an annotation expression (``"n-1"``, ``"32*w"``) to SymExpr."""
    if isinstance(text, int):
        return SymExpr.const(text)
    node = ast.parse(str(text), mode="eval").body
    return _from_ast(node)


def _from_ast(node: ast.AST) -> SymExpr:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return SymExpr.const(node.value)
    if isinstance(node, ast.Name):
        return SymExpr.var(node.id)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return -_from_ast(node.operand)
    if isinstance(node, ast.BinOp):
        left, right = _from_ast(node.left), _from_ast(node.right)
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            return left * right
        if isinstance(node.op, ast.Pow):
            exp = right.const_value
            if exp is not None and exp >= 0:
                out = SymExpr.const(1)
                for _ in range(exp):
                    out = out * left
                return out
    raise ValueError(f"unsupported annotation expression: {ast.dump(node)}")
