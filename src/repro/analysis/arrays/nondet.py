"""Syntactic nondeterminism pass (the verifier's fifth checker).

Value-aware tie analysis lives in the abstract interpreter (a bare
``argsort`` inside a decorated kernel is *proved* safe or flagged based
on the keys' uniqueness).  Everything outside the decorated kernels gets
this cheaper syntactic sweep over the hot-marked modules and the serving
layer, where run-to-run divergence either corrupts reproducibility
experiments or breaks the replay harness:

``nondet-sort``
    ``argsort`` (function or method) without ``kind="stable"`` /
    ``"mergesort"``.  Tie order under the default introsort depends on
    the partition schedule, so equal keys permute between runs and
    platforms.  ``lexsort`` is stable by contract and exempt; plain
    value sorts are deterministic regardless of stability (ties are
    equal values) and not flagged.
``nondet-rng``
    The legacy global-state ``np.random.*`` API (seeded or not, it is
    shared mutable state across the process) and ``default_rng()``
    called without a seed.
``nondet-clock``
    Wall-clock reads (``time.time`` / ``perf_counter`` / ``monotonic``,
    ``datetime.now`` / ``utcnow``) — the serving layer must route time
    through its injectable ``Clock`` so replay tests stay exact.

Lines inside ``@array_kernel``-decorated functions are excluded when
the caller supplies their spans (see :func:`kernel_spans`); the
``# lint: allow(nondet-*)`` escape hatch works like the hot-path lint's.
"""

from __future__ import annotations

import ast
import inspect
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.lint import HOT_MARKER, _allow_map, _FunctionLines
from repro.annotations import iter_array_annotations

__all__ = ["NONDET_RULES", "kernel_spans", "scan_source", "scan_paths"]

NONDET_RULES = ("nondet-sort", "nondet-rng", "nondet-clock")

#: Sort kinds with a stability guarantee (ties keep input order).
_STABLE_KINDS = {"stable", "mergesort"}

#: Legacy np.random attributes backed by the shared global BitGenerator.
_LEGACY_RNG = {
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "seed", "uniform", "normal", "standard_normal",
}

#: (module-ish name, attribute) pairs that read the wall clock.
_CLOCK_READS = {
    ("time", "time"), ("time", "perf_counter"), ("time", "monotonic"),
    ("time", "process_time"), ("time", "clock_gettime"),
    ("datetime", "now"), ("datetime", "utcnow"), ("date", "today"),
}


def kernel_spans(registries: Sequence[str] = ("default", "known-bad")) -> Dict[str, List[Tuple[int, int]]]:
    """File → decorated-kernel line spans, from the annotation registry.

    The value-aware interpreter owns those lines; excluding them here
    keeps e.g. a proven-safe bare ``argsort`` on a unique composite key
    from being double-reported by the syntactic sweep.
    """
    spans: Dict[str, List[Tuple[int, int]]] = {}
    for registry in registries:
        for ann in iter_array_annotations(registry=registry):
            try:
                lines, start = inspect.getsourcelines(ann.func)
                path = inspect.getsourcefile(ann.func)
            except (OSError, TypeError):
                continue
            if path is None:
                continue
            spans.setdefault(str(Path(path).resolve()), []).append(
                (start, start + len(lines) - 1)
            )
    return spans


def _attr_chain(node: ast.AST) -> List[str]:
    """``np.random.seed`` -> ["np", "random", "seed"]."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return list(reversed(parts))


def _kind_is_stable(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg == "kind":
            return (
                isinstance(kw.value, ast.Constant)
                and kw.value.value in _STABLE_KINDS
            )
    return False


def _check_call(call: ast.Call, path: str) -> Optional[Finding]:
    chain = _attr_chain(call.func)
    if not chain:
        return None
    leaf = chain[-1]
    loc = f"{path}:{call.lineno}"
    if leaf == "argsort" and not _kind_is_stable(call):
        return Finding(
            rule="nondet-sort",
            severity=Severity.WARNING,
            location=loc,
            message=(
                "argsort without kind='stable': tie order under the default "
                "sort is backend-dependent; pass kind='stable' or prove the "
                "keys unique inside an @array_kernel"
            ),
        )
    if leaf == "default_rng" and not call.args and not call.keywords:
        return Finding(
            rule="nondet-rng",
            severity=Severity.WARNING,
            location=loc,
            message=(
                "default_rng() without a seed draws OS entropy; thread an "
                "explicit seed through for reproducible builds"
            ),
        )
    if len(chain) >= 2 and chain[-2] == "random" and leaf in _LEGACY_RNG:
        return Finding(
            rule="nondet-rng",
            severity=Severity.WARNING,
            location=loc,
            message=(
                f"legacy np.random.{leaf} uses shared global RNG state; "
                "use a seeded np.random.default_rng(...) Generator"
            ),
        )
    if len(chain) >= 2 and (chain[-2], leaf) in _CLOCK_READS:
        return Finding(
            rule="nondet-clock",
            severity=Severity.WARNING,
            location=loc,
            message=(
                f"wall-clock read {chain[-2]}.{leaf}(): route time through "
                "the injectable Clock so serving runs replay exactly"
            ),
        )
    return None


def scan_source(
    source: str,
    path: str = "<string>",
    exclude_spans: Sequence[Tuple[int, int]] = (),
) -> List[Finding]:
    """Scan one file's text; ``exclude_spans`` are 1-based inclusive."""
    lines = source.splitlines()
    allows = _allow_map(lines)
    tree = ast.parse(source, filename=path)
    functions = _FunctionLines()
    functions.visit(tree)

    def allowed(rule: str, lineno: int) -> bool:
        for candidate in (lineno, lineno - 1, functions.enclosing.get(lineno)):
            if candidate is not None and rule in allows.get(candidate, ()):
                return True
        return False

    def excluded(lineno: int) -> bool:
        return any(start <= lineno <= end for start, end in exclude_spans)

    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if excluded(node.lineno):
            continue
        finding = _check_call(node, path)
        if finding is not None and not allowed(finding.rule, node.lineno):
            findings.append(finding)
    return findings


def scan_paths(
    paths: Iterable[Path],
    spans: Optional[Dict[str, List[Tuple[int, int]]]] = None,
) -> List[Finding]:
    """Scan files that opted in (hot-marked) or live under ``serve/``."""
    if spans is None:
        spans = kernel_spans()
    findings: List[Finding] = []
    for path in paths:
        p = Path(path)
        if p.suffix != ".py":
            continue
        source = p.read_text()
        in_serve = p.parent.name == "serve"
        hot = any(line.strip() == HOT_MARKER for line in source.splitlines())
        if not (in_serve or hot):
            continue
        findings.extend(
            scan_source(source, str(p), spans.get(str(p.resolve()), ()))
        )
    return findings
