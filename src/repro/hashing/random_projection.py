"""1-bit random projections (sign random projections).

For vectors ``u, v`` and a random direction ``r`` with iid standard normal
entries, ``Pr[sgn(<u,r>) = sgn(<v,r>)] = 1 − θ(u,v)/π`` (Goemans &
Williamson / Charikar).  With ``h`` independent directions the normalized
Hamming distance between the two h-bit signatures is an unbiased estimator
of ``θ/π``.  Cauchy-distributed entries give the sign-Cauchy variant whose
collision probability tracks the χ² similarity (Li et al., NIPS 2013).
"""

from __future__ import annotations

import numpy as np

from repro.annotations import arr, array_kernel


@array_kernel(
    params={"n": (1, 2**31), "w": (1, 64)},
    args={"signs": arr("n", "32*w", dtype="bool")},
    returns=[arr("n", "w", dtype="uint32", lo=0, hi=2**32 - 1)],
)
def pack_sign_bits(signs: np.ndarray) -> np.ndarray:
    """Pack ``(n, 32*w)`` sign bits into ``(n, w)`` uint32 words.

    Little-endian bit order within each word, matching the paper's
    signature layout: bit ``j`` of word ``k`` is sign ``32*k + j``.
    """
    bits = np.packbits(signs, axis=1, bitorder="little")
    return bits.view(np.uint32)


class SignRandomProjection:
    """Compress float vectors to packed sign bits.

    Parameters
    ----------
    dim:
        Input dimensionality.
    num_bits:
        Signature length; must be a multiple of 32 so signatures pack
        into uint32 words (the paper stores them exactly this way).
    distribution:
        ``"gaussian"`` (angle estimator) or ``"cauchy"`` (χ² variant).
    seed:
        RNG seed for the projection matrix.
    """

    def __init__(
        self,
        dim: int,
        num_bits: int = 128,
        distribution: str = "gaussian",
        seed: int = 0,
    ) -> None:
        if num_bits <= 0 or num_bits % 32 != 0:
            raise ValueError("num_bits must be a positive multiple of 32")
        if distribution not in ("gaussian", "cauchy"):
            raise ValueError("distribution must be 'gaussian' or 'cauchy'")
        self.dim = dim
        self.num_bits = num_bits
        self.distribution = distribution
        rng = np.random.default_rng(seed)
        if distribution == "gaussian":
            self._directions = rng.standard_normal((dim, num_bits))
        else:
            self._directions = rng.standard_cauchy((dim, num_bits))

    @property
    def num_words(self) -> int:
        """uint32 words per signature."""
        return self.num_bits // 32

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Hash ``(n, dim)`` floats into ``(n, num_words)`` uint32."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        if data.shape[1] != self.dim:
            raise ValueError(
                f"expected dim {self.dim}, got {data.shape[1]}"
            )
        signs = (data @ self._directions) >= 0  # (n, num_bits) bool
        return pack_sign_bits(signs).reshape(len(data), self.num_words)

    def memory_bytes(self, n: int) -> int:
        """Storage for ``n`` signatures."""
        return n * self.num_words * 4

    @staticmethod
    def estimated_angle(hamming: np.ndarray, num_bits: int) -> np.ndarray:
        """Angle estimate (radians) from Hamming distances."""
        return np.asarray(hamming, dtype=np.float64) / num_bits * np.pi

    @staticmethod
    def collision_probability(u: np.ndarray, v: np.ndarray) -> float:
        """Theoretical per-bit agreement probability ``1 − θ/π``."""
        nu = np.linalg.norm(u)
        nv = np.linalg.norm(v)
        if nu == 0 or nv == 0:
            return 1.0
        cos = float(np.clip(np.dot(u, v) / (nu * nv), -1.0, 1.0))
        return 1.0 - np.arccos(cos) / np.pi
