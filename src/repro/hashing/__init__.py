"""Out-of-GPU-memory support: 1-bit random projections (Section VII).

High-dimensional float datasets that exceed device memory are compressed
to packed bit vectors: ``h`` signed random projections per point, stored
as ``h/32`` uint32 words.  Hamming distance between bit vectors estimates
the angle between the original vectors, so graph search runs unchanged on
the compressed data.
"""

from repro.hashing.random_projection import SignRandomProjection
from repro.hashing.hamming import (
    HammingSpace,
    hamming_batch,
    hamming_single,
    packed_bits,
)

__all__ = [
    "SignRandomProjection",
    "HammingSpace",
    "hamming_batch",
    "hamming_single",
    "packed_bits",
]
