"""Packed Hamming distance and the hashed search space.

Distances are popcounts over XOR-ed uint32 words, evaluated with an
8-bit popcount lookup table (the numpy analogue of the GPU ``__popc``
instruction).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: popcount of every byte value.
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def packed_bits(words: np.ndarray) -> int:
    """Number of bits represented by a packed uint32 signature array."""
    if words.dtype != np.uint32:
        raise ValueError("expected a uint32 array")
    return words.shape[-1] * 32


def hamming_single(u: np.ndarray, v: np.ndarray) -> int:
    """Hamming distance between two packed signatures."""
    x = np.bitwise_xor(u, v).view(np.uint8)
    return int(_POPCOUNT8[x].sum())


def hamming_batch(query: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Hamming distances from one signature to each row of ``rows``."""
    rows = np.atleast_2d(rows)
    x = np.bitwise_xor(rows, query).view(np.uint8)
    return _POPCOUNT8[x].sum(axis=1).astype(np.float64)


class HammingSpace:
    """Adapter exposing a hashed dataset to the SONG searcher.

    The searcher works over any "data matrix" plus a batch-distance
    callable; this class packages the packed signature matrix with
    Hamming distance (and the equivalent per-distance flop count the cost
    model should charge — XOR+popcount per word).
    """

    def __init__(self, signatures: np.ndarray) -> None:
        signatures = np.atleast_2d(signatures)
        if signatures.dtype != np.uint32:
            raise ValueError("signatures must be packed uint32")
        self.signatures = signatures
        self.num_bits = packed_bits(signatures)

    def __len__(self) -> int:
        return len(self.signatures)

    @property
    def shape(self) -> Tuple[int, int]:
        return self.signatures.shape

    def batch_distance(self, query: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """``distance_fn`` signature used by :class:`~repro.core.song.SongSearcher`."""
        return hamming_batch(query, rows)

    def flops_per_distance(self, _dim_words: int = None) -> int:
        """XOR + popcount + add per word."""
        return 3 * self.signatures.shape[1]

    def memory_bytes(self) -> int:
        return int(self.signatures.nbytes)
