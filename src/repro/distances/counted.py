"""Operation accounting for distance evaluation.

Throughput comparisons in the paper hinge on *how much work* each method
does, not on wall-clock noise of a Python prototype.  Every searcher in
this library therefore routes its distance evaluations through a
:class:`CountedDistance`, and the evaluation harness converts the recorded
counts into time through a machine model (CPU work units or the SIMT cost
model).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.distances.metrics import Metric


@dataclass
class OpCounter:
    """Tally of the work a search performed.

    Attributes
    ----------
    distance_calls:
        Number of distance evaluations (pairs).
    distance_flops:
        Floating-point operations spent in distance evaluations.
    vector_reads:
        Data vectors fetched from the dataset (global-memory traffic).
    graph_reads:
        Adjacency rows fetched from the graph index.
    queue_ops:
        Priority-queue pushes/pops (sequential work).
    hash_ops:
        Visited-set insert/lookup/delete operations (sequential work).
    hops:
        Search iterations (vertices expanded).
    """

    distance_calls: int = 0
    distance_flops: int = 0
    vector_reads: int = 0
    graph_reads: int = 0
    queue_ops: int = 0
    hash_ops: int = 0
    hops: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        self.distance_calls = 0
        self.distance_flops = 0
        self.vector_reads = 0
        self.graph_reads = 0
        self.queue_ops = 0
        self.hash_ops = 0
        self.hops = 0

    def merge(self, other: "OpCounter") -> None:
        """Accumulate ``other`` into this counter."""
        self.distance_calls += other.distance_calls
        self.distance_flops += other.distance_flops
        self.vector_reads += other.vector_reads
        self.graph_reads += other.graph_reads
        self.queue_ops += other.queue_ops
        self.hash_ops += other.hash_ops
        self.hops += other.hops

    def snapshot(self) -> dict:
        """Return the counters as a plain dict (for reports)."""
        return {
            "distance_calls": self.distance_calls,
            "distance_flops": self.distance_flops,
            "vector_reads": self.vector_reads,
            "graph_reads": self.graph_reads,
            "queue_ops": self.queue_ops,
            "hash_ops": self.hash_ops,
            "hops": self.hops,
        }


@dataclass
class CountedDistance:
    """A :class:`~repro.distances.metrics.Metric` that meters its own use."""

    metric: Metric
    counter: OpCounter = field(default_factory=OpCounter)

    @property
    def name(self) -> str:
        return self.metric.name

    def single(self, u: np.ndarray, v: np.ndarray) -> float:
        self.counter.distance_calls += 1
        self.counter.distance_flops += self.metric.flops_per_distance(len(u))
        self.counter.vector_reads += 1
        return self.metric.single(u, v)

    def batch(self, query: np.ndarray, points: np.ndarray) -> np.ndarray:
        n = len(points)
        self.counter.distance_calls += n
        if n:
            self.counter.distance_flops += n * self.metric.flops_per_distance(
                points.shape[1]
            )
        self.counter.vector_reads += n
        return self.metric.batch(query, points)
