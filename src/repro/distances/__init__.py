"""Distance kernels used throughout the library.

The paper's bulk-distance-computation stage supports the common ANN
measures: p-norm (we implement squared L2), inner product, and cosine
similarity.  :mod:`repro.distances.metrics` provides batched numpy
implementations; :mod:`repro.distances.counted` wraps them with operation
accounting used by the SIMT cost model and the CPU work-unit timer.
"""

from repro.distances.metrics import (
    METRICS,
    Metric,
    batch_distance,
    get_metric,
    pairwise_distance,
    single_distance,
)
from repro.distances.counted import CountedDistance, OpCounter

__all__ = [
    "METRICS",
    "Metric",
    "batch_distance",
    "get_metric",
    "pairwise_distance",
    "single_distance",
    "CountedDistance",
    "OpCounter",
]
