"""Batched distance metrics.

All functions take ``float32``/``float64`` numpy arrays.  Distances are
returned so that *smaller is better* — inner product and cosine similarity
are negated, which lets every search structure in the library order
candidates with a single convention.
"""

from __future__ import annotations

# lint: hot-path

from typing import Dict

import numpy as np

__all__ = [
    "METRICS",
    "Metric",
    "get_metric",
    "single_distance",
    "batch_distance",
    "pairwise_distance",
]

#: Registered metric names.
METRICS = ("l2", "ip", "cosine")


class Metric:
    """A distance measure with single, batch and pairwise evaluators.

    Parameters
    ----------
    name:
        One of ``"l2"`` (squared Euclidean), ``"ip"`` (negative inner
        product) or ``"cosine"`` (negative cosine similarity).
    """

    def __init__(self, name: str):
        if name not in METRICS:
            raise ValueError(f"unknown metric {name!r}; expected one of {METRICS}")
        self.name = name

    def __repr__(self) -> str:
        return f"Metric({self.name!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Metric) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Metric", self.name))

    # -- evaluators ---------------------------------------------------------

    def single(self, u: np.ndarray, v: np.ndarray) -> float:
        """Distance between two vectors."""
        if self.name == "l2":
            diff = u - v
            return float(np.dot(diff, diff))
        if self.name == "ip":
            return float(-np.dot(u, v))
        # cosine
        denom = float(np.linalg.norm(u) * np.linalg.norm(v))
        if denom == 0.0:
            return 0.0
        return float(-np.dot(u, v) / denom)

    def batch(
        self, query: np.ndarray, points: np.ndarray, norms: np.ndarray = None
    ) -> np.ndarray:
        """Distances from one query to each row of ``points``.

        This is the bulk-distance-computation primitive: the equivalent of
        SONG's warp-parallel reduction over candidate vectors.  ``norms``
        optionally supplies precomputed L2 norms of ``points`` (used by the
        cosine metric) so the search loop never recomputes dataset norms.

        Implemented as the ``B = 1`` case of :meth:`batch_many` so the
        serial and batched engines share one code path and return
        bit-identical values.
        """
        points = np.asarray(points)
        if points.ndim != 2:
            raise ValueError("points must be a 2-d array")
        query = np.asarray(query)
        many_norms = None if norms is None else np.asarray(norms)[None, :]
        return self.batch_many(query[None, :], points[None, :, :], many_norms)[0]

    def batch_many(
        self, queries: np.ndarray, points: np.ndarray, norms: np.ndarray = None
    ) -> np.ndarray:
        """Fused distances of ``B`` queries against ``B`` candidate panels.

        The batched engine's bulk-distance stage: ``queries`` is ``(B, d)``,
        ``points`` is a ``(B, C, d)`` gather of each query's candidate rows,
        and the result is ``(B, C)`` — one vectorized evaluation replacing
        ``B`` per-query calls.  ``norms`` optionally carries ``(B, C)``
        precomputed L2 norms of the gathered rows (cosine only).

        Every formula reduces each ``(b, c)`` row independently through the
        same flattened ``einsum``, so slice ``b`` of the result is bitwise
        identical to a ``batch`` call on that slice alone — the property the
        serial/batched parity guarantee rests on.
        """
        points = np.asarray(points)
        if points.ndim != 3:
            raise ValueError("points must be a 3-d (B, C, d) array")
        queries = np.asarray(queries)
        b, c, dim = points.shape
        if self.name == "l2":
            diff = np.ascontiguousarray(points - queries[:, None, :])
            flat = diff.reshape(b * c, dim)
            return np.einsum("ij,ij->i", flat, flat).reshape(b, c)
        tiled = np.ascontiguousarray(np.broadcast_to(queries[:, None, :], points.shape))
        flat_points = np.ascontiguousarray(points).reshape(b * c, dim)
        dots = np.einsum("ij,ij->i", flat_points, tiled.reshape(b * c, dim)).reshape(
            b, c
        )
        if self.name == "ip":
            return -dots
        if norms is None:
            norms = np.linalg.norm(flat_points, axis=1).reshape(b, c)
        qn = np.linalg.norm(queries, axis=1)
        denom = norms * qn[:, None]
        out = np.zeros((b, c), dtype=dots.dtype)
        nz = denom > 0
        out[nz] = -dots[nz] / denom[nz]
        return out

    def pair_many(
        self,
        left: np.ndarray,
        right: np.ndarray,
        left_norms: np.ndarray = None,
        right_norms: np.ndarray = None,
    ) -> np.ndarray:
        """Row-paired distances: ``out[i] = dist(left[i], right[i])``.

        The construction-side bulk evaluator: a flat candidate-pair list
        (NN-descent's local join) reduces through one row-wise ``einsum``
        instead of a ``(T, 1, d)`` panel gather.  ``left_norms`` /
        ``right_norms`` carry cached per-row values of
        :meth:`point_sq_norms` for L2 and :meth:`point_norms` for cosine
        (ignored for inner product); L2 uses the norm identity
        ``|u - v|^2 = |u|^2 + |v|^2 - 2 u.v``, which is numerically close
        to — not bitwise identical with — the subtract-square form, and is
        clamped at zero.
        """
        dots = np.einsum("ij,ij->i", left, right)
        if self.name == "l2":
            lsq = (
                left_norms
                if left_norms is not None
                else np.einsum("ij,ij->i", left, left)
            )
            rsq = (
                right_norms
                if right_norms is not None
                else np.einsum("ij,ij->i", right, right)
            )
            d = lsq + rsq - 2.0 * dots
            np.maximum(d, 0.0, out=d)
            return d
        if self.name == "ip":
            return -dots
        ln = (
            left_norms
            if left_norms is not None
            else np.linalg.norm(left, axis=1)
        )
        rn = (
            right_norms
            if right_norms is not None
            else np.linalg.norm(right, axis=1)
        )
        denom = ln * rn
        out = np.zeros_like(dots)
        nz = denom > 0
        out[nz] = -dots[nz] / denom[nz]
        return out

    def point_sq_norms(self, points: np.ndarray) -> np.ndarray:
        """Row squared L2 norms, for caching ahead of :meth:`pair_many`."""
        points = np.asarray(points)
        return np.einsum("ij,ij->i", points, points)

    def point_norms(self, points: np.ndarray) -> np.ndarray:
        """Row L2 norms of a dataset, for caching ahead of cosine searches.

        Row-wise reduction is independent per row, so gathering cached
        norms is bitwise identical to recomputing them on gathered rows.
        """
        return np.linalg.norm(np.asarray(points), axis=1)

    def pairwise(self, queries: np.ndarray, points: np.ndarray) -> np.ndarray:
        """All-pairs distance matrix of shape ``(len(queries), len(points))``."""
        if self.name == "l2":
            q_sq = np.einsum("ij,ij->i", queries, queries)[:, None]
            p_sq = np.einsum("ij,ij->i", points, points)[None, :]
            cross = queries @ points.T
            d = q_sq + p_sq - 2.0 * cross
            np.maximum(d, 0.0, out=d)
            return d
        if self.name == "ip":
            return -(queries @ points.T)
        qn = np.linalg.norm(queries, axis=1)[:, None]
        pn = np.linalg.norm(points, axis=1)[None, :]
        denom = qn * pn
        dots = queries @ points.T
        out = np.zeros_like(dots)
        nz = denom > 0
        out[nz] = -dots[nz] / denom[nz]
        return out

    # -- cost accounting ----------------------------------------------------

    def flops_per_distance(self, dim: int) -> int:
        """Floating-point operations to evaluate one distance.

        Used by the SIMT cost model to charge the bulk-distance stage.
        """
        if self.name == "l2":
            return 3 * dim  # sub, mul, add per dimension
        if self.name == "ip":
            return 2 * dim  # mul, add
        return 6 * dim  # dot + two norms


_METRIC_CACHE: Dict[str, Metric] = {}


def get_metric(name: str) -> Metric:
    """Return the shared :class:`Metric` instance for ``name``."""
    if isinstance(name, Metric):
        return name
    if name not in _METRIC_CACHE:
        _METRIC_CACHE[name] = Metric(name)
    return _METRIC_CACHE[name]


def single_distance(u: np.ndarray, v: np.ndarray, metric: str = "l2") -> float:
    """Convenience wrapper: distance between two vectors."""
    return get_metric(metric).single(u, v)


def batch_distance(
    query: np.ndarray, points: np.ndarray, metric: str = "l2"
) -> np.ndarray:
    """Convenience wrapper: one query vs. many points."""
    return get_metric(metric).batch(query, points)


def pairwise_distance(
    queries: np.ndarray, points: np.ndarray, metric: str = "l2"
) -> np.ndarray:
    """Convenience wrapper: all-pairs distance matrix."""
    return get_metric(metric).pairwise(queries, points)
