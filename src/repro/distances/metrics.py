"""Batched distance metrics.

All functions take ``float32``/``float64`` numpy arrays.  Distances are
returned so that *smaller is better* — inner product and cosine similarity
are negated, which lets every search structure in the library order
candidates with a single convention.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

#: Registered metric names.
METRICS = ("l2", "ip", "cosine")


class Metric:
    """A distance measure with single, batch and pairwise evaluators.

    Parameters
    ----------
    name:
        One of ``"l2"`` (squared Euclidean), ``"ip"`` (negative inner
        product) or ``"cosine"`` (negative cosine similarity).
    """

    def __init__(self, name: str):
        if name not in METRICS:
            raise ValueError(f"unknown metric {name!r}; expected one of {METRICS}")
        self.name = name

    def __repr__(self) -> str:
        return f"Metric({self.name!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Metric) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Metric", self.name))

    # -- evaluators ---------------------------------------------------------

    def single(self, u: np.ndarray, v: np.ndarray) -> float:
        """Distance between two vectors."""
        if self.name == "l2":
            diff = u - v
            return float(np.dot(diff, diff))
        if self.name == "ip":
            return float(-np.dot(u, v))
        # cosine
        denom = float(np.linalg.norm(u) * np.linalg.norm(v))
        if denom == 0.0:
            return 0.0
        return float(-np.dot(u, v) / denom)

    def batch(self, query: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Distances from one query to each row of ``points``.

        This is the bulk-distance-computation primitive: the equivalent of
        SONG's warp-parallel reduction over candidate vectors.
        """
        if points.ndim != 2:
            raise ValueError("points must be a 2-d array")
        if self.name == "l2":
            diff = points - query
            return np.einsum("ij,ij->i", diff, diff)
        if self.name == "ip":
            return -points @ query
        norms = np.linalg.norm(points, axis=1) * np.linalg.norm(query)
        dots = points @ query
        out = np.zeros(len(points), dtype=dots.dtype)
        nz = norms > 0
        out[nz] = -dots[nz] / norms[nz]
        return out

    def pairwise(self, queries: np.ndarray, points: np.ndarray) -> np.ndarray:
        """All-pairs distance matrix of shape ``(len(queries), len(points))``."""
        if self.name == "l2":
            q_sq = np.einsum("ij,ij->i", queries, queries)[:, None]
            p_sq = np.einsum("ij,ij->i", points, points)[None, :]
            cross = queries @ points.T
            d = q_sq + p_sq - 2.0 * cross
            np.maximum(d, 0.0, out=d)
            return d
        if self.name == "ip":
            return -(queries @ points.T)
        qn = np.linalg.norm(queries, axis=1)[:, None]
        pn = np.linalg.norm(points, axis=1)[None, :]
        denom = qn * pn
        dots = queries @ points.T
        out = np.zeros_like(dots)
        nz = denom > 0
        out[nz] = -dots[nz] / denom[nz]
        return out

    # -- cost accounting ----------------------------------------------------

    def flops_per_distance(self, dim: int) -> int:
        """Floating-point operations to evaluate one distance.

        Used by the SIMT cost model to charge the bulk-distance stage.
        """
        if self.name == "l2":
            return 3 * dim  # sub, mul, add per dimension
        if self.name == "ip":
            return 2 * dim  # mul, add
        return 6 * dim  # dot + two norms


_METRIC_CACHE: Dict[str, Metric] = {}


def get_metric(name: str) -> Metric:
    """Return the shared :class:`Metric` instance for ``name``."""
    if isinstance(name, Metric):
        return name
    if name not in _METRIC_CACHE:
        _METRIC_CACHE[name] = Metric(name)
    return _METRIC_CACHE[name]


def single_distance(u: np.ndarray, v: np.ndarray, metric: str = "l2") -> float:
    """Convenience wrapper: distance between two vectors."""
    return get_metric(metric).single(u, v)


def batch_distance(
    query: np.ndarray, points: np.ndarray, metric: str = "l2"
) -> np.ndarray:
    """Convenience wrapper: one query vs. many points."""
    return get_metric(metric).batch(query, points)


def pairwise_distance(
    queries: np.ndarray, points: np.ndarray, metric: str = "l2"
) -> np.ndarray:
    """Convenience wrapper: all-pairs distance matrix."""
    return get_metric(metric).pairwise(queries, points)
