"""SONG's CPU implementation (paper Section VIII-I, Fig. 15).

The same 3-stage search as the GPU kernel, metered with a CPU machine
model instead of warp costs.  Its edge over plain HNSW search comes from
exactly what the paper engineered: batched distance evaluation (SIMD
friendly) and the bounded data structures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.config import SearchConfig
from repro.core.machine import TUNED_CPU, CpuModel
from repro.core.song import SongSearcher
from repro.core.stages import CountingMeter
from repro.distances import OpCounter, get_metric
from repro.graphs.storage import FixedDegreeGraph


@dataclass
class CpuBatchResult:
    """Results plus the modelled single-thread execution time."""

    results: List[List[Tuple[float, int]]]
    seconds: float
    counter: OpCounter

    def qps(self) -> float:
        if self.seconds == 0:
            return float("inf")
        return len(self.results) / self.seconds


class CpuSongIndex:
    """Single-thread CPU SONG over a fixed-degree proximity graph."""

    def __init__(
        self,
        graph: FixedDegreeGraph,
        data: np.ndarray,
        model: CpuModel = TUNED_CPU,
    ) -> None:
        self.graph = graph
        self.data = np.asarray(data, dtype=np.float32)
        self.model = model
        self.searcher = SongSearcher(graph, self.data)

    def search(
        self, query: np.ndarray, config: SearchConfig
    ) -> Tuple[List[Tuple[float, int]], float]:
        """One query; returns ``(results, modelled_seconds)``."""
        metric = get_metric(config.metric)
        counter = OpCounter()
        dim = self.data.shape[1]
        meter = CountingMeter(counter, dim, metric.flops_per_distance(dim))
        out = self.searcher.search(query, config, meter=meter)
        seconds = self.model.seconds(counter, bytes_read=4 * dim * counter.vector_reads)
        return out, seconds

    def search_batch(self, queries: np.ndarray, config: SearchConfig) -> CpuBatchResult:
        """Search every query; seconds accumulate (single thread)."""
        queries = np.asarray(queries, dtype=self.data.dtype)
        if queries.ndim == 1:
            queries = queries[None, :]
        metric = get_metric(config.metric)
        counter = OpCounter()
        dim = self.data.shape[1]
        meter = CountingMeter(counter, dim, metric.flops_per_distance(dim))
        results = [
            self.searcher.search(q, config, meter=meter) for q in queries
        ]
        seconds = self.model.seconds(counter, bytes_read=4 * dim * counter.vector_reads)
        return CpuBatchResult(results=results, seconds=seconds, counter=counter)
