"""SONG's core: the 3-stage decoupled graph search and its optimizations.

Public entry points:

- :class:`~repro.core.config.SearchConfig` — every knob of the paper
  (queue size, visited backend, bounded queue / selected insertion /
  visited deletion, multi-query, multi-step probing).
- :func:`~repro.core.algorithm1.algorithm1_search` — the reference CPU
  best-first search, exactly Algorithm 1 of the paper.
- :class:`~repro.core.song.SongSearcher` — the decoupled searcher
  (functional result + operation metering).
- :class:`~repro.core.batched.BatchedSongSearcher` — the vectorized
  lockstep engine advancing a whole query batch per round (warp-per-query
  execution in numpy); ``SongSearcher.search_batch`` auto-dispatches to it.
- :class:`~repro.core.gpu_kernel.GpuSongIndex` — SONG on the SIMT
  simulator: batch queries, kernel timing, stage profiles.
- :class:`~repro.core.cpu_song.CpuSongIndex` — the engineered CPU variant
  of Fig. 15.
"""

from repro.core.config import (
    BUILD_ENGINES,
    GRAPH_TYPES,
    BuildConfig,
    OptimizationLevel,
    SearchConfig,
)
from repro.core.algorithm1 import algorithm1_search
from repro.core.song import SearchStats, SongSearcher
from repro.core.batched import BatchedSongSearcher
from repro.core.gpu_kernel import GpuSongIndex
from repro.core.cpu_song import CpuSongIndex
from repro.core.sharding import ShardedSongIndex
from repro.core.online import OnlineSongIndex

__all__ = [
    "ShardedSongIndex",
    "OnlineSongIndex",
    "SearchConfig",
    "BuildConfig",
    "BUILD_ENGINES",
    "GRAPH_TYPES",
    "SearchStats",
    "OptimizationLevel",
    "algorithm1_search",
    "SongSearcher",
    "BatchedSongSearcher",
    "GpuSongIndex",
    "CpuSongIndex",
]
