"""Multi-GPU sharding (paper Section VII, closing paragraph).

    "when multiple GPUs are considered, we can shard the data for each
     GPU, build a graph index for each shard, perform graph search on
     each GPU and merge the results."

:class:`ShardedSongIndex` implements exactly that: the dataset is split
round-robin into ``num_shards`` shards, each shard gets its own proximity
graph and simulated device, every query runs on all shards in parallel
(wall time = slowest shard), and the per-shard top-k lists merge into the
global top-k.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import SearchConfig
from repro.core.gpu_kernel import GpuSongIndex
from repro.graphs.nsw import build_nsw
from repro.graphs.storage import FixedDegreeGraph


class ShardedSongIndex:
    """SONG over a dataset sharded across multiple (simulated) GPUs.

    Parameters
    ----------
    data:
        ``(n, d)`` dataset.
    num_shards:
        Number of GPUs; shard ``i`` holds points with ``index % num_shards == i``.
    devices:
        Device preset per shard (a single name is broadcast).
    graph_builder:
        Callable ``(shard_data) -> FixedDegreeGraph``; defaults to NSW with
        the paper's construction parameters.
    """

    def __init__(
        self,
        data: np.ndarray,
        num_shards: int = 2,
        devices: Sequence[str] = "v100",
        graph_builder: Optional[Callable[[np.ndarray], FixedDegreeGraph]] = None,
    ) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        data = np.asarray(data)
        if num_shards > len(data):
            raise ValueError("more shards than data points")
        if isinstance(devices, str):
            devices = [devices] * num_shards
        if len(devices) != num_shards:
            raise ValueError("need one device per shard")
        if graph_builder is None:
            graph_builder = lambda d: build_nsw(d, m=8, ef_construction=48, seed=7)

        self.num_shards = num_shards
        self.data = data
        self._global_ids: List[np.ndarray] = []
        self.shards: List[GpuSongIndex] = []
        for s in range(num_shards):
            ids = np.arange(s, len(data), num_shards)
            shard_data = data[ids]
            graph = graph_builder(shard_data)
            self._global_ids.append(ids)
            self.shards.append(GpuSongIndex(graph, shard_data, device=devices[s]))

    def shard_sizes(self) -> List[int]:
        return [len(ids) for ids in self._global_ids]

    def search_batch(
        self, queries: np.ndarray, config: SearchConfig
    ) -> Tuple[List[List[Tuple[float, int]]], dict]:
        """Search all shards and merge.

        Returns ``(results, timing)`` where ``timing`` has the raw
        per-shard kernel results (``shard_timings``), a ``per_shard``
        attribution table (seconds, kernel/transfer split, occupancy and
        shard size for each shard), the parallel wall time (max over
        shards, with ``slowest_shard`` naming the straggler), the
        ``shard_imbalance`` ratio (slowest / mean shard time) and the
        merge-implied QPS — so serving routers and benchmarks can blame
        latency on the straggling shard instead of recomputing it.
        """
        queries = np.atleast_2d(np.asarray(queries))
        shard_outputs = []
        shard_timings = []
        for shard, ids in zip(self.shards, self._global_ids):
            results, timing = shard.search_batch(queries, config)
            remapped = [
                [(d, int(ids[v])) for d, v in res] for res in results
            ]
            shard_outputs.append(remapped)
            shard_timings.append(timing)

        merged: List[List[Tuple[float, int]]] = []
        for qi in range(len(queries)):
            pool: List[Tuple[float, int]] = []
            for out in shard_outputs:
                pool.extend(out[qi])
            pool.sort()
            merged.append(pool[: config.k])

        seconds = [t.total_seconds for t in shard_timings]
        wall = max(seconds)
        mean = sum(seconds) / len(seconds)
        per_shard = [
            {
                "shard": s,
                "size": len(self._global_ids[s]),
                "device": self.shards[s].device.name,
                "total_seconds": t.total_seconds,
                "kernel_seconds": t.kernel_seconds,
                "transfer_seconds": t.htod_seconds + t.dtoh_seconds,
                "occupancy_warps_per_sm": t.occupancy_warps_per_sm,
                "qps": len(queries) / t.total_seconds
                if t.total_seconds > 0
                else float("inf"),
            }
            for s, t in enumerate(shard_timings)
        ]
        timing = {
            "shard_timings": shard_timings,
            "per_shard": per_shard,
            "slowest_shard": int(np.argmax(seconds)),
            "shard_imbalance": wall / mean if mean > 0 else 1.0,
            "wall_seconds": wall,
            "qps": len(queries) / wall if wall > 0 else float("inf"),
        }
        return merged, timing

    def total_index_memory_bytes(self) -> int:
        return sum(s.index_memory_bytes() for s in self.shards)

    def per_device_memory_bytes(self) -> List[int]:
        """Dataset + index bytes resident on each simulated GPU."""
        return [
            s.index_memory_bytes() + s.dataset_memory_bytes() for s in self.shards
        ]
