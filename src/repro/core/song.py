"""The decoupled 3-stage SONG search (Sections III–V of the paper).

Each iteration:

1. **Candidate locating** — pop the best vertex (or ``probe_steps``
   vertices) from the frontier, fetch their fixed-degree adjacency rows,
   and filter against ``visited`` into a candidate buffer.
2. **Bulk distance computation** — one batched distance evaluation of
   every candidate against the query (the GPU's warp-parallel reduction).
3. **Data-structure maintenance** — update ``topk``, apply selected
   insertion, push survivors into the frontier, and apply visited
   deletion.

The implementation is functional and machine-agnostic: plug in a meter
(:mod:`repro.core.stages`) to obtain CPU work units or GPU cycles.
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import SearchConfig
from repro.core.stages import NullMeter
from repro.distances import get_metric
from repro.graphs.storage import FixedDegreeGraph
from repro.structures.heap import MinHeap, TopKMaxHeap
from repro.structures.minmax_heap import BoundedPriorityQueue
from repro.structures.visited import VisitedBackend, VisitedSet

#: Visited backends with exact (set) semantics, required by the batched
#: engine's dense lane-visited bitmap.
EXACT_VISITED_BACKENDS = (VisitedBackend.HASH_TABLE, VisitedBackend.PYSET)


def coerce_float32(arr: np.ndarray, label: str = "array") -> np.ndarray:
    """Return ``arr`` as contiguous float32, warning when a copy is forced.

    Non-floating inputs (e.g. bit-packed Hamming datasets) pass through
    untouched apart from a contiguity fix-up, so the hashed search path
    keeps its integer storage.
    """
    a = np.asarray(arr)
    if np.issubdtype(a.dtype, np.floating) and a.dtype != np.float32:
        warnings.warn(
            f"{label}: converting {a.dtype} to float32 (silent copy); pass "
            f"float32 data to avoid the conversion",
            stacklevel=3,
        )
        return np.ascontiguousarray(a, dtype=np.float32)
    if not a.flags["C_CONTIGUOUS"]:
        return np.ascontiguousarray(a)
    return a


class SearchStats:
    """Per-query statistics the experiments report."""

    __slots__ = ("iterations", "distance_computations", "visited_peak", "visited_inserts")

    def __init__(self) -> None:
        self.iterations = 0
        self.distance_computations = 0
        self.visited_peak = 0
        self.visited_inserts = 0


class SongSearcher:
    """Searches a fixed-degree proximity graph with SONG's algorithm.

    Parameters
    ----------
    graph:
        The proximity graph (NSW, HNSW layer 0, NSG, ...).
    data:
        ``(n, d)`` dataset the graph indexes.  For hashed (bit-packed)
        datasets pass the packed array and ``metric="hamming"`` via a
        :class:`~repro.hashing.hamming.HammingSpace` — see
        :mod:`repro.hashing`.
    """

    def __init__(self, graph: FixedDegreeGraph, data: np.ndarray) -> None:
        if graph.num_vertices != len(data):
            raise ValueError(
                f"graph has {graph.num_vertices} vertices but data has "
                f"{len(data)} rows"
            )
        self.graph = graph
        self.data = coerce_float32(data, "SongSearcher data")
        self._data_norms: Optional[np.ndarray] = None
        self._batched = None

    def data_norms(self) -> np.ndarray:
        """Cached row L2 norms of the dataset (cosine/ip fast path).

        Computed once per searcher and shared with the batched engine, so
        no search loop ever recomputes ``np.linalg.norm(points, axis=1)``.
        """
        if self._data_norms is None:
            self._data_norms = get_metric("cosine").point_norms(self.data)
        return self._data_norms

    # -- public API -----------------------------------------------------------

    def search(
        self,
        query: np.ndarray,
        config: SearchConfig,
        meter=None,
        stats: Optional[SearchStats] = None,
        distance_fn=None,
    ) -> List[Tuple[float, int]]:
        """Top-``config.k`` neighbors of ``query`` (ascending distance).

        Parameters
        ----------
        query:
            Query vector (same dimensionality as the dataset).
        config:
            Search parameters and optimization switches.
        meter:
            Event meter (defaults to a no-op :class:`NullMeter`).
        stats:
            Optional :class:`SearchStats` to fill.
        distance_fn:
            Override for the batch distance: ``f(query, rows) -> array``.
            Used by the Hamming-space search over hashed datasets.
        """
        meter = meter if meter is not None else NullMeter()
        metric = get_metric(config.metric)
        graph = self.graph
        data = self.data
        if distance_fn is not None:

            def bulk(q, rows, idx):
                return distance_fn(q, rows)

        else:
            if data.dtype == np.float32:
                query = coerce_float32(query, "query")
            if metric.name == "cosine":
                norms = self.data_norms()

                def bulk(q, rows, idx):
                    return metric.batch(q, rows, norms=norms[idx])

            else:

                def bulk(q, rows, idx):
                    return metric.batch(q, rows)

        dim = data.shape[1]
        pool = config.queue_size

        frontier = self._make_frontier(config)
        topk = TopKMaxHeap(pool)
        visited = VisitedSet(
            backend=config.visited_backend,
            capacity=config.effective_visited_capacity(graph.degree),
            fp_rate=config.bloom_fp_rate,
        )

        # Seed with the entry point.
        start = graph.entry_point
        meter.stage("distance")
        d0 = float(bulk(query, data[start : start + 1], slice(start, start + 1))[0])
        meter.bulk_distance(1, dim)
        meter.stage("maintain")
        visited.insert(start)
        meter.visited_insert()
        self._frontier_push(frontier, d0, start, topk, visited, config, meter)

        while len(frontier):
            # ---- Stage 1: candidate locating -------------------------------
            meter.stage("locate")
            popped: List[Tuple[float, int]] = []
            stop = False
            for _ in range(config.probe_steps):
                if not len(frontier):
                    break
                d, v = self._frontier_pop(frontier)
                meter.pop_frontier()
                if topk.is_full() and topk.worst_distance() < d:
                    stop = True
                    break
                popped.append((d, v))
            if not popped:
                break

            candidates: List[int] = []
            seen_this_round = set()
            for _, v in popped:
                meter.read_graph_row(graph.degree)
                for u in graph.neighbors(v):
                    u = int(u)
                    meter.visited_test()
                    if u in seen_this_round or visited.contains(u):
                        continue
                    seen_this_round.add(u)
                    candidates.append(u)

            # ---- Stage 2: bulk distance computation -------------------------
            meter.stage("distance")
            if candidates:
                dists = bulk(query, data[candidates], candidates)
                meter.bulk_distance(len(candidates), dim)
            else:
                dists = ()
            if stats is not None:
                stats.iterations += 1
                stats.distance_computations += len(candidates)

            # ---- Stage 3: data-structure maintenance ------------------------
            meter.stage("maintain")
            for d, v in popped:
                self._topk_push(topk, d, v, visited, config, meter)
            for u, d in zip(candidates, np.asarray(dists, dtype=float).tolist()):
                if (
                    config.selected_insertion
                    and topk.is_full()
                    and d >= topk.worst_distance()
                ):
                    continue  # filtered out: not marked visited, not enqueued
                visited.insert(u)
                meter.visited_insert()
                if stats is not None:
                    stats.visited_inserts += 1
                self._frontier_push(frontier, d, u, topk, visited, config, meter)
            if stats is not None:
                stats.visited_peak = max(stats.visited_peak, len(visited))
            if stop:
                break

        # With a probabilistic deletable filter (Cuckoo + visited deletion)
        # a fingerprint collision can false-delete another key, letting a
        # vertex re-enter the frontier; keep only its best appearance.
        out: List[Tuple[float, int]] = []
        seen_ids = set()
        for d, v in sorted(topk.to_sorted_list()):
            if v not in seen_ids:
                seen_ids.add(v)
                out.append((d, v))
            if len(out) == config.k:
                break
        return out

    # -- frontier helpers ------------------------------------------------------

    @staticmethod
    def _make_frontier(config: SearchConfig):
        if config.bounded_queue:
            return BoundedPriorityQueue(config.queue_size)
        return MinHeap()

    @staticmethod
    def _frontier_pop(frontier) -> Tuple[float, int]:
        if isinstance(frontier, BoundedPriorityQueue):
            return frontier.pop_min()
        return frontier.pop()

    def _frontier_push(
        self,
        frontier,
        dist: float,
        vertex: int,
        topk: TopKMaxHeap,
        visited: VisitedSet,
        config: SearchConfig,
        meter,
    ) -> None:
        meter.push_frontier()
        if isinstance(frontier, BoundedPriorityQueue):
            evicted = frontier.push(dist, vertex)
            if evicted is not None and config.visited_deletion:
                # The evicted vertex left q and was never in topk: it can be
                # safely re-marked unvisited (it is outside the top-K radius).
                visited.delete(evicted[1])
                meter.visited_delete()
        else:
            frontier.push(dist, vertex)

    def _topk_push(
        self,
        topk: TopKMaxHeap,
        dist: float,
        vertex: int,
        visited: VisitedSet,
        config: SearchConfig,
        meter,
    ) -> None:
        evicted = topk.push_bounded(dist, vertex)
        meter.topk_update()
        if evicted is not None and config.visited_deletion:
            # Either the candidate itself failed to enter topk, or a previous
            # result was displaced; both are now outside q ∪ topk.
            visited.delete(evicted[1])
            meter.visited_delete()

    # -- conveniences ------------------------------------------------------------

    def supports_batched(self, config: SearchConfig) -> bool:
        """Whether ``config`` permits the vectorized lockstep engine.

        The batched engine needs a metric-space float32 dataset and an
        exact visited backend (its lane-visited bitmap cannot reproduce
        Bloom/Cuckoo false positives); anything else runs serially.
        """
        return (
            self.data.dtype == np.float32
            and self.data.ndim == 2
            and VisitedBackend(config.visited_backend) in EXACT_VISITED_BACKENDS
        )

    def search_batch(
        self,
        queries: np.ndarray,
        config: SearchConfig,
        meter=None,
        stats: Optional[Sequence[SearchStats]] = None,
        engine: str = "auto",
    ) -> List[List[Tuple[float, int]]]:
        """Search every row of ``queries``.

        Parameters
        ----------
        queries:
            ``(B, d)`` query matrix.
        config:
            Search parameters, shared by all queries.
        meter:
            Optional shared event meter; the serial engine replays every
            per-query event through it, the batched engine reports
            aggregated per-round events.
        stats:
            Optional sequence of ``B`` :class:`SearchStats`, filled
            per-query by either engine.
        engine:
            ``"auto"`` (default) dispatches multi-query batches to the
            vectorized :class:`~repro.core.batched.BatchedSongSearcher`
            whenever :meth:`supports_batched` allows — results are
            identical either way; ``"serial"`` / ``"batched"`` force one
            path.
        """
        if engine not in ("auto", "serial", "batched"):
            raise ValueError(f"unknown engine {engine!r}")
        queries = np.asarray(queries)
        if stats is not None and len(stats) != len(queries):
            raise ValueError(
                f"stats has {len(stats)} entries for {len(queries)} queries"
            )
        use_batched = engine == "batched" or (
            engine == "auto" and len(queries) > 1 and self.supports_batched(config)
        )
        if use_batched:
            return self.batched().search_batch(
                queries, config, meter=meter, stats=stats
            )
        return [
            self.search(
                q, config, meter=meter, stats=None if stats is None else stats[i]
            )
            for i, q in enumerate(queries)
        ]

    def batched(self):
        """The lockstep engine over this searcher's graph/data (cached)."""
        if self._batched is None:
            from repro.core.batched import BatchedSongSearcher

            self._batched = BatchedSongSearcher(self.graph, self.data, parent=self)
        return self._batched
