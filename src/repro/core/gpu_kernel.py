"""SONG on the simulated GPU: the warp meter and the batch index.

:class:`WarpMeter` translates the algorithm's primitive events into SIMT
warp costs (Section II/III of the paper):

- bulk distance → lock-step SIMD lanes + ``shfl_down`` warp reduction,
  coalesced vector reads;
- adjacency fetch → one coalesced fixed-degree row read (scattered when
  several queries share the warp and pull different rows);
- queue/visited maintenance → single-lane sequential work, priced higher
  when the structure spilled to global memory.

:class:`GpuSongIndex` owns placement decisions (what fits in shared
memory), launches the metered search over a query batch, and converts the
result into QPS via the cost model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import SearchConfig
from repro.core.song import SearchStats, SongSearcher
from repro.core.stages import NullMeter
from repro.distances import get_metric
from repro.graphs.storage import FixedDegreeGraph
from repro.simt.device import DeviceSpec, get_device
from repro.simt.kernel import KernelLauncher, KernelResult
from repro.simt.memory import CapacityLedger, SharedMemoryBudget
from repro.simt.profiler import StageProfiler
from repro.simt.warp import Warp
from repro.structures.visited import VisitedBackend, VisitedSet


#: Sequential visited-set op cost in abstract steps, per backend.  The
#: open-addressing table parallelizes its linear probing across warp
#: lanes (Section IV-B), so one step usually suffices; the Bloom filter's
#: k hash positions and the Cuckoo filter's two buckets are touched by the
#: single maintaining thread, hence cost more steps per op.
_VISITED_OP_STEPS = {
    VisitedBackend.HASH_TABLE: 1,
    VisitedBackend.BLOOM: 4,  # k ≈ 7 positions touched sequentially
    VisitedBackend.CUCKOO: 3,  # fingerprint + two 4-slot buckets
    VisitedBackend.PYSET: 1,
}


@dataclass
class Placement:
    """Where each search structure lives on the device."""

    frontier_in_shared: bool
    topk_in_shared: bool
    visited_in_shared: bool
    shared_bytes_per_warp: int


class WarpMeter(NullMeter):
    """Maps search events onto a :class:`~repro.simt.warp.Warp`."""

    def __init__(
        self,
        warp: Warp,
        config: SearchConfig,
        placement: Placement,
        flops_per_distance_fn,
    ) -> None:
        self.warp = warp
        self.config = config
        self.placement = placement
        self._flops = flops_per_distance_fn
        self._queue_depth = max(2, int(math.log2(config.queue_size)) + 1)
        self._visited_steps = _VISITED_OP_STEPS[config.visited_backend]

    def stage(self, name: str) -> None:
        self.warp.set_stage(name)

    # -- frontier / topk -------------------------------------------------

    def pop_frontier(self, n: int = 1) -> None:
        self.warp.sequential(
            n * self._queue_depth, in_shared=self.placement.frontier_in_shared
        )

    def push_frontier(self, n: int = 1) -> None:
        self.warp.sequential(
            n * self._queue_depth, in_shared=self.placement.frontier_in_shared
        )

    def topk_update(self, n: int = 1) -> None:
        self.warp.sequential(
            n * self._queue_depth, in_shared=self.placement.topk_in_shared
        )

    # -- graph / visited -------------------------------------------------------

    def read_graph_row(self, degree_slots: int) -> None:
        if self.config.multi_query > 1:
            # Several queries pull unrelated rows at once: no coalescing.
            self.warp.global_read_scattered(degree_slots)
        else:
            self.warp.global_read_coalesced(4 * degree_slots)

    def visited_test(self, n: int = 1) -> None:
        self.warp.sequential(
            n * self._visited_steps, in_shared=self.placement.visited_in_shared
        )

    def visited_insert(self, n: int = 1) -> None:
        self.warp.sequential(
            n * self._visited_steps, in_shared=self.placement.visited_in_shared
        )

    def visited_delete(self, n: int = 1) -> None:
        self.warp.sequential(
            n * self._visited_steps, in_shared=self.placement.visited_in_shared
        )

    # -- distances ---------------------------------------------------------------

    def bulk_distance(self, num_candidates: int, dim: int) -> None:
        warp = self.warp
        lanes = max(1, warp.device.warp_size // self.config.multi_query)
        warps_per_block = max(1, self.config.block_size // warp.device.warp_size)
        total_bytes = 4 * dim * num_candidates
        if warps_per_block == 1:
            warp.global_read_coalesced(total_bytes)
        else:
            # The block's warps fetch disjoint dimension slices in
            # parallel: the group's critical path sees 1/warps of the
            # transactions, while the full traffic still counts against
            # device bandwidth.
            per_warp = -(-total_bytes // warps_per_block)
            warp.global_read_coalesced(per_warp)
            warp.memory.read_coalesced(total_bytes - per_warp)
        total_ops = num_candidates * self._flops(dim)
        # The block's warps split the dimensions: the per-group critical
        # path shrinks by the warp count (paper Sec. VI: "all threads in
        # the block are involved in this stage").
        warp.simd_compute(-(-total_ops // warps_per_block), active_lanes=lanes)
        warp.warp_reduce(num_candidates)
        if warps_per_block > 1:
            # Cross-warp aggregation goes through shared memory, then
            # thread 0 folds the per-warp partials.
            warp.shared_access(num_candidates * warps_per_block)
            warp.sequential(num_candidates * (warps_per_block - 1))
        warp.shared_access(num_candidates)  # dist buffer writes


class GpuSongIndex:
    """Batch ANN queries over a proximity graph on a simulated GPU.

    Parameters
    ----------
    graph:
        Fixed-degree proximity graph (NSW in the paper's experiments).
    data:
        ``(n, d)`` dataset, resident in simulated global memory.
    device:
        Device preset name or :class:`DeviceSpec`.
    resident_bytes:
        Bytes this index keeps in device global memory.  Defaults to
        graph + dataset; the tiered index passes the *compressed* store
        footprint instead, because its traversal array is a host-side
        proxy for codes that live packed on the device.
    allow_oversubscription:
        When the resident footprint exceeds the device budget, warn
        (``ResourceWarning``) instead of raising
        :class:`~repro.simt.memory.DeviceMemoryExceeded`.  Documented
        escape hatch for pricing reference runs on datasets the card
        could not actually hold.
    """

    def __init__(
        self,
        graph: FixedDegreeGraph,
        data: np.ndarray,
        device: str = "v100",
        resident_bytes: Optional[int] = None,
        allow_oversubscription: bool = False,
    ) -> None:
        self.graph = graph
        data = np.asarray(data)
        # Float data is stored single-precision as on the GPU; packed
        # bit-signature datasets (uint32) pass through untouched.
        if data.dtype.kind == "f":
            data = data.astype(np.float32, copy=False)
        self.data = data
        self.device: DeviceSpec = get_device(device)
        self.searcher = SongSearcher(graph, self.data)
        self.launcher = KernelLauncher(self.device)
        if resident_bytes is None:
            resident_bytes = self.index_memory_bytes() + self.dataset_memory_bytes()
        self.resident_bytes = int(resident_bytes)
        self.ledger = CapacityLedger(self.device)
        self.ledger.reserve(
            "index", self.resident_bytes, allow_oversubscription
        )

    # -- memory accounting ----------------------------------------------------

    def index_memory_bytes(self) -> int:
        """Graph-index footprint in global memory (Table III)."""
        return self.graph.memory_bytes()

    def dataset_memory_bytes(self) -> int:
        return int(self.data.nbytes)

    def fits_in_device_memory(self) -> bool:
        return self.resident_bytes <= self.device.memory_bytes

    def placement(self, config: SearchConfig) -> Placement:
        """Decide which structures fit in shared memory (Sec. VIII)."""
        dim = self.data.shape[1]
        limit = self.device.shared_mem_per_sm_kb * 1024
        # An open-addressing table without visited deletion grows without
        # bound, so it must live in global memory (paper Sec. VIII).  The
        # probabilistic filters have *fixed* allocations — they saturate
        # rather than grow — so they qualify for shared memory, as does
        # the 2K-bounded table under visited deletion.
        visited_bounded = config.visited_deletion or config.visited_backend in (
            VisitedBackend.BLOOM,
            VisitedBackend.CUCKOO,
        )
        visited_bytes = 0
        if visited_bounded:
            probe = VisitedSet(
                backend=config.visited_backend,
                capacity=config.effective_visited_capacity(self.graph.degree),
                fp_rate=config.bloom_fp_rate,
            )
            visited_bytes = probe.memory_bytes()

        def budget(queue_shared: bool, visited_shared: bool) -> SharedMemoryBudget:
            return SharedMemoryBudget.for_search(
                dim=dim,
                degree=self.graph.degree,
                queue_capacity=config.queue_size if queue_shared else 0,
                topk=config.queue_size if queue_shared else 0,
                visited_bytes=visited_bytes if visited_shared else 0,
                multi_query=config.multi_query,
            )

        queue_shared = config.bounded_queue
        visited_shared = visited_bounded
        plan = budget(queue_shared, visited_shared)
        if plan.total > limit and visited_shared:
            visited_shared = False
            plan = budget(queue_shared, visited_shared)
        if plan.total > limit and queue_shared:
            queue_shared = False
            plan = budget(queue_shared, visited_shared)
        return Placement(
            frontier_in_shared=queue_shared,
            topk_in_shared=queue_shared,
            visited_in_shared=visited_shared,
            shared_bytes_per_warp=plan.total,
        )

    def warp_demand(self, config: SearchConfig, num_queries: int) -> int:
        """Resident warps a batch of ``num_queries`` asks of the device.

        One warp group serves ``config.multi_query`` queries and spans
        ``block_size / warp_size`` warps.  The stream model uses this as
        the kernel's SM-capacity demand: small batches occupy a sliver
        of the machine (the paper's Fig. 11), so concurrent launches can
        share SMs almost freely.
        """
        if num_queries <= 0:
            return 0
        groups = -(-num_queries // max(1, config.multi_query))
        warps_per_group = max(1, config.block_size // self.device.warp_size)
        return groups * warps_per_group

    # -- search --------------------------------------------------------------

    def search_batch(
        self,
        queries: np.ndarray,
        config: SearchConfig,
        profiler: Optional[StageProfiler] = None,
        collect_stats: bool = False,
        distance_fn=None,
    ) -> Tuple[List[List[Tuple[float, int]]], KernelResult]:
        """Run the batch and return ``(results, kernel_result)``.

        ``kernel_result`` carries the estimated timing; use
        ``kernel_result.qps(len(queries))`` for throughput.
        """
        queries = np.asarray(queries, dtype=self.data.dtype)
        if queries.ndim == 1:
            queries = queries[None, :]
        placement = self.placement(config)
        metric = get_metric(config.metric)
        stats_list: List[SearchStats] = []

        def kernel(q_index: int, warp: Warp):
            meter = WarpMeter(warp, config, placement, metric.flops_per_distance)
            # The query vector is staged into shared memory once.
            warp.set_stage("locate")
            warp.global_read_coalesced(queries.shape[1] * 4)
            warp.shared_access(queries.shape[1])
            stats = SearchStats() if collect_stats else None
            out = self.searcher.search(
                queries[q_index],
                config,
                meter=meter,
                stats=stats,
                distance_fn=distance_fn,
            )
            if stats is not None:
                stats_list.append(stats)
            return out

        result = self.launcher.launch(
            kernel,
            num_queries=len(queries),
            htod_bytes=int(queries.nbytes),
            dtoh_bytes=len(queries) * config.k * 8,
            shared_bytes_per_warp=placement.shared_bytes_per_warp,
            queries_per_warp=config.multi_query,
            warps_per_query=max(1, config.block_size // self.device.warp_size),
            profiler=profiler,
        )
        if collect_stats:
            result.stats = stats_list  # type: ignore[attr-defined]
        return result.outputs, result
