"""Search and build configuration: every knob the paper evaluates."""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.structures.visited import VisitedBackend

#: Valid graph-construction engines (mirrored by every graph builder).
BUILD_ENGINES = ("serial", "batched")

#: Graph families the repo can build and serve (see ``repro.graphs``).
GRAPH_TYPES = ("nsw", "hnsw", "nsg", "dpg", "cagra", "knn")


class OptimizationLevel(str, enum.Enum):
    """Named bundles matching the series of the paper's Fig. 7."""

    BASELINE = "hashtable"  # bounded queue only, plain hash table
    SELECTED_INSERTION = "hashtable-sel"
    SELECTED_AND_DELETION = "hashtable-sel-del"
    BLOOM = "bloomfilter"
    CUCKOO = "cuckoofilter"


@dataclass(frozen=True)
class SearchConfig:
    """Parameters of a SONG search.

    Attributes
    ----------
    k:
        Results returned per query.
    queue_size:
        Capacity of the frontier priority queue and of the result pool
        (the paper's "searching priority queue size"; ≥ k).  This is the
        recall/throughput dial.
    metric:
        Distance measure name (``l2`` / ``ip`` / ``cosine``).
    visited_backend:
        Implementation of the visited set.
    bounded_queue:
        Apply the bounded-priority-queue optimization (Observation 1).
        Disabling it reverts to an unbounded frontier in global memory.
    selected_insertion:
        Only mark/enqueue vertices currently inside the top-K radius.
    visited_deletion:
        Remove vertices from ``visited`` once they leave q ∪ topk
        (requires a deletable backend).
    multi_query:
        Queries sharing one warp (paper Sec. V, Fig. 8).
    probe_steps:
        Vertices popped per candidate-locating step (multi-step probing,
        Fig. 9).
    block_size:
        Threads per block serving one query (paper Sec. VI: "all threads
        in the block are involved" in the bulk distance stage; partials
        are aggregated across warps by thread 0).  Must be a multiple of
        32.  Larger blocks speed the distance stage on high-dimensional
        data but multiply the shared-memory footprint per query and add
        an inter-warp reduction step.
    visited_capacity:
        Expected visited-set population; ``0`` picks a heuristic.
    bloom_fp_rate:
        Target false-positive rate when the backend is a Bloom filter.
    """

    k: int = 10
    queue_size: int = 64
    metric: str = "l2"
    visited_backend: VisitedBackend = VisitedBackend.HASH_TABLE
    bounded_queue: bool = True
    selected_insertion: bool = False
    visited_deletion: bool = False
    multi_query: int = 1
    probe_steps: int = 1
    block_size: int = 32
    visited_capacity: int = 0
    bloom_fp_rate: float = 0.01

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError("k must be positive")
        if self.queue_size < self.k:
            raise ValueError("queue_size must be at least k")
        if self.multi_query not in (1, 2, 4, 8):
            raise ValueError("multi_query must be one of 1, 2, 4, 8")
        if self.probe_steps <= 0:
            raise ValueError("probe_steps must be positive")
        if self.block_size <= 0 or self.block_size % 32 != 0:
            raise ValueError("block_size must be a positive multiple of 32")
        if self.multi_query > 1 and self.block_size != 32:
            raise ValueError("multi_query applies to single-warp blocks only")
        if self.visited_deletion and not self.visited_backend.supports_deletion():
            raise ValueError(
                f"visited deletion requires a deletable backend, "
                f"not {self.visited_backend.value}"
            )
        if not 0.0 < self.bloom_fp_rate < 1.0:
            raise ValueError("bloom_fp_rate must be in (0, 1)")

    def effective_visited_capacity(self, degree: int) -> int:
        """Visited-set sizing for a graph of the given degree.

        With visited deletion the population is bounded by 2×queue_size
        (q ∪ topk); otherwise budget for the whole expansion frontier.
        """
        if self.visited_capacity > 0:
            return self.visited_capacity
        if self.visited_deletion:
            return max(16, 2 * self.queue_size + degree)
        return max(256, 8 * self.queue_size * self.probe_steps + 4 * degree)

    def with_options(self, **kwargs) -> "SearchConfig":
        """A copy with selected fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def from_level(cls, level: OptimizationLevel, **kwargs) -> "SearchConfig":
        """Build a config matching one of Fig. 7's named series."""
        level = OptimizationLevel(level)
        if level == OptimizationLevel.BASELINE:
            opts = dict(visited_backend=VisitedBackend.HASH_TABLE)
        elif level == OptimizationLevel.SELECTED_INSERTION:
            opts = dict(
                visited_backend=VisitedBackend.HASH_TABLE, selected_insertion=True
            )
        elif level == OptimizationLevel.SELECTED_AND_DELETION:
            opts = dict(
                visited_backend=VisitedBackend.HASH_TABLE,
                selected_insertion=True,
                visited_deletion=True,
            )
        elif level == OptimizationLevel.BLOOM:
            opts = dict(visited_backend=VisitedBackend.BLOOM)
        else:  # CUCKOO
            opts = dict(visited_backend=VisitedBackend.CUCKOO)
        opts.update(kwargs)
        return cls(**opts)


@dataclass(frozen=True)
class BuildConfig:
    """Parameters of graph construction (the build-side twin of
    :class:`SearchConfig`).

    Attributes
    ----------
    graph_type:
        Graph family to build — one of :data:`GRAPH_TYPES`
        (``nsw`` / ``hnsw`` / ``nsg`` / ``dpg`` / ``cagra`` / ``knn``).
    engine:
        ``"serial"`` runs the reference per-point/per-pair build loops;
        ``"batched"`` runs the vectorized construction layer (NN-descent
        local joins as fused pair tiles, NSW/HNSW insertion in lockstep
        generation batches, CAGRA/NSG/DPG pruning as flat array kernels).
    insert_batch:
        Cap on one insertion generation's size for the batched NSW/HNSW
        engines.
    max_candidates:
        Per-vertex join-list cap for batched NN-descent.  ``None``
        (default) adapts the cap per round to the observed list-length
        tail (``max(32, 4 * p99)``), so it binds only on genuine hub
        vertices; pass an int for a fixed cap.
    seed:
        Construction seed forwarded to the builders.
    """

    graph_type: str = "nsw"
    engine: str = "batched"
    insert_batch: int = 512
    max_candidates: int = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.graph_type not in GRAPH_TYPES:
            raise ValueError(
                f"unknown graph type {self.graph_type!r}; "
                f"expected one of {GRAPH_TYPES}"
            )
        if self.engine not in BUILD_ENGINES:
            raise ValueError(
                f"unknown build engine {self.engine!r}; "
                f"expected one of {BUILD_ENGINES}"
            )
        if self.insert_batch <= 0:
            raise ValueError("insert_batch must be positive")
        if self.max_candidates is not None and self.max_candidates <= 0:
            raise ValueError("max_candidates must be positive")

    def with_options(self, **kwargs) -> "BuildConfig":
        """A copy with selected fields replaced."""
        return replace(self, **kwargs)
