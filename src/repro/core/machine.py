"""CPU machine model: converts operation counts into single-thread time.

The paper compares GPU SONG against *single-thread* HNSW and reports
speedup factors.  Wall-clocking a Python prototype would measure the
interpreter, not the algorithm, so CPU time is derived from the same
operation counts the GPU cost model uses, priced with conventional
single-core constants.  Only the *ratios* between methods matter for the
reproduced figures, and those are driven by the counted work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distances import OpCounter


@dataclass(frozen=True)
class CpuModel:
    """Single-core cost constants.

    Attributes
    ----------
    flops_per_second:
        Sustained scalar+SIMD floating throughput of one core on the
        distance inner loop.
    seq_op_seconds:
        Cost of one pointer-chasing data-structure operation (heap sift
        step, hash probe).
    bytes_per_second:
        Memory bandwidth available to the single core.
    """

    name: str = "xeon-e5-2660-1t"
    flops_per_second: float = 1.0e10
    seq_op_seconds: float = 1.5e-8
    bytes_per_second: float = 1.2e10

    def seconds(self, counter: OpCounter, bytes_read: int = 0) -> float:
        """Estimated single-thread seconds for the counted work."""
        compute = counter.distance_flops / self.flops_per_second
        sequential = (
            counter.queue_ops + counter.hash_ops + counter.graph_reads
        ) * self.seq_op_seconds
        memory = bytes_read / self.bytes_per_second
        return compute + sequential + memory


#: Default model for the paper's Xeon E5-2660 single-thread baseline.
DEFAULT_CPU = CpuModel()

#: SONG's "heavily engineered" CPU implementation (Sec. VIII-I): tighter
#: batched distance loops and cheaper maintenance thanks to the bounded
#: structures — modelled as better sustained throughput per op.
TUNED_CPU = CpuModel(
    name="song-cpu-tuned",
    flops_per_second=1.6e10,
    seq_op_seconds=0.9e-8,
    bytes_per_second=1.6e10,
)
