"""Vectorized batched multi-query search (warp-per-query, lockstep).

SONG's throughput comes from running one query per warp with many warps in
flight, every warp executing the same 3-stage iteration in lockstep and
the bulk-distance stage dominating as pure data-parallel work (paper
Sections III–V).  :class:`BatchedSongSearcher` reproduces that execution
shape in numpy: ``B`` queries advance together through the search loop
over structure-of-arrays state —

- a ``(B, queue_size)`` packed-key frontier
  (:class:`~repro.structures.soa.BatchedFrontier`),
- a ``(B, pool)`` packed-key result pool
  (:class:`~repro.structures.soa.BatchedTopK`),
- a dense ``(B, n)`` lane-visited bitmap —

so candidate locating yields one ``(B, probe_steps * degree)`` candidate
matrix per round, and stage 2 is a **single fused distance call**
(``(B, C, d)`` gather → :meth:`~repro.distances.metrics.Metric.batch_many`)
instead of ``B`` tiny per-iteration numpy calls.  Queries that converge
early are masked out like inactive SIMT lanes until the whole batch
drains.

Correctness bar: under an exact visited backend the engine returns results
**bit-identical** to :meth:`repro.core.song.SongSearcher.search`.  The
equivalence rests on two facts:

1. every bounded structure's *content* is insertion-order independent (a
   sorted merge per round equals the serial per-entry push sequence), and
2. the fused evaluator reduces each ``(b, c)`` row through the same
   flattened ``einsum`` as the serial ``Metric.batch``, so every distance
   value matches bitwise.

Probabilistic visited backends (Bloom/Cuckoo) are sequence-dependent and
are therefore routed to the serial engine by
:meth:`SongSearcher.search_batch`'s auto-dispatch.
"""

from __future__ import annotations

# lint: hot-path

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.annotations import arr, array_kernel
from repro.core.config import SearchConfig
from repro.core.song import (
    EXACT_VISITED_BACKENDS,
    SearchStats,
    SongSearcher,
    coerce_float32,
)
from repro.core.stages import NullMeter
from repro.distances import get_metric
from repro.graphs.storage import PAD, FixedDegreeGraph
from repro.structures.soa import (
    PAD_KEY,
    BatchedFrontier,
    BatchedTopK,
    pack_keys,
    unpack_distances,
    unpack_ids,
)
from repro.structures.visited import VisitedBackend

__all__ = ["BatchedSongSearcher"]


@array_kernel(
    params={"n": (1, 2**31), "B": (1, 2**20), "L": (1, 2**16)},
    args={
        "cand": arr("B", "L", lo=-1, hi="n-1"),
        "valid": arr("B", "L", dtype="bool"),
    },
    returns=[arr("B", "L", dtype="bool")],
)
def _first_occurrence_mask(cand: np.ndarray, valid: np.ndarray) -> np.ndarray:
    """Keep only each lane's first valid occurrence of every vertex id.

    The batched twin of the serial ``seen_this_round`` set: slot ``j``
    is dropped when any earlier valid slot ``i`` holds the same vertex.
    O(L^2) bitmask over the round's candidate window, ``L`` = slots.
    """
    num_slots = cand.shape[1]
    same = cand[:, :, None] == cand[:, None, :]
    earlier = np.tri(num_slots, num_slots, -1, dtype=bool)
    return valid & ~(same & valid[:, None, :] & earlier[None]).any(axis=2)


class BatchedSongSearcher:
    """Lockstep multi-query searcher over a fixed-degree proximity graph.

    Parameters
    ----------
    graph:
        The proximity graph (NSW, HNSW layer 0, NSG, ...).
    data:
        ``(n, d)`` float32 dataset the graph indexes.
    parent:
        Optional :class:`SongSearcher` to share cached dataset norms with.
    """

    def __init__(
        self,
        graph: FixedDegreeGraph,
        data: np.ndarray,
        parent: Optional[SongSearcher] = None,
    ) -> None:
        if graph.num_vertices != len(data):
            raise ValueError(
                f"graph has {graph.num_vertices} vertices but data has "
                f"{len(data)} rows"
            )
        self.graph = graph
        self.data = coerce_float32(data, "BatchedSongSearcher data")
        if self.data.ndim != 2 or self.data.dtype != np.float32:
            raise ValueError(
                "the batched engine requires a 2-d float32 dataset; use "
                "SongSearcher for hashed/bit-packed data"
            )
        self._parent = parent
        self._data_norms: Optional[np.ndarray] = None

    def data_norms(self) -> np.ndarray:
        """Cached row L2 norms, shared with the parent serial searcher."""
        if self._parent is not None:
            return self._parent.data_norms()
        if self._data_norms is None:
            self._data_norms = get_metric("cosine").point_norms(self.data)
        return self._data_norms

    # -- public API -----------------------------------------------------------

    def search(
        self,
        query: np.ndarray,
        config: SearchConfig,
        meter=None,
        stats: Optional[SearchStats] = None,
    ) -> List[Tuple[float, int]]:
        """Single-query convenience wrapper (a batch of one lane)."""
        batch_stats = None if stats is None else [stats]
        return self.search_batch(
            np.asarray(query)[None, :], config, meter=meter, stats=batch_stats
        )[0]

    def search_batch_with_stats(
        self,
        queries: np.ndarray,
        config: SearchConfig,
        meter=None,
        entry_points: Optional[np.ndarray] = None,
    ) -> Tuple[List[List[Tuple[float, int]]], List[SearchStats]]:
        """Batch search returning ``(results, per-lane stats)``.

        Convenience for callers that always want the counters — the
        serving layer prices batches on the simulated GPU by replaying
        these per-lane stats through the warp cost model.
        """
        queries = np.atleast_2d(np.asarray(queries))
        stats = [SearchStats() for _ in range(len(queries))]
        results = self.search_batch(
            queries, config, meter=meter, stats=stats, entry_points=entry_points
        )
        return results, stats

    def search_batch(
        self,
        queries: np.ndarray,
        config: SearchConfig,
        meter=None,
        stats: Optional[Sequence[SearchStats]] = None,
        entry_points: Optional[np.ndarray] = None,
    ) -> List[List[Tuple[float, int]]]:
        """Top-``config.k`` neighbors for every row of ``queries``.

        Parameters
        ----------
        queries:
            ``(B, d)`` query matrix (coerced to float32).
        config:
            Search parameters; the visited backend must be exact
            (``hashtable`` or ``pyset``).
        meter:
            Optional event meter.  Events are reported *aggregated per
            round* (one ``bulk_distance`` for the whole batch, operation
            counts summed over lanes) — totals match the serial engine,
            per-event granularity does not.
        stats:
            Optional sequence of ``B`` :class:`SearchStats`, filled with
            per-lane counts identical to the serial engine's.
        entry_points:
            Optional ``(B,)`` per-lane start vertices (defaults to the
            graph's entry point for every lane).  Batched graph
            construction uses this to resume each insertion's search from
            its upper-layer descent.
        """
        if VisitedBackend(config.visited_backend) not in EXACT_VISITED_BACKENDS:
            raise ValueError(
                "the batched engine requires an exact visited backend "
                f"(hashtable/pyset), not {config.visited_backend!r}"
            )
        queries = coerce_float32(np.atleast_2d(np.asarray(queries)), "queries")
        if queries.shape[1] != self.data.shape[1]:
            raise ValueError(
                f"queries have dim {queries.shape[1]} but data has dim "
                f"{self.data.shape[1]}"
            )
        if stats is not None and len(stats) != len(queries):
            raise ValueError(
                f"stats has {len(stats)} entries for {len(queries)} queries"
            )
        num_queries = len(queries)
        if num_queries == 0:
            return []
        if entry_points is not None:
            entry_points = np.asarray(entry_points, dtype=np.int64)
            if entry_points.shape != (num_queries,):
                raise ValueError(
                    f"entry_points must have shape ({num_queries},), got "
                    f"{entry_points.shape}"
                )
            if entry_points.min() < 0 or entry_points.max() >= self.graph.num_vertices:
                raise ValueError("entry_points out of range")
        meter = meter if meter is not None else NullMeter()
        state = _LockstepState(self, queries, config, meter, entry_points)
        while state.round():
            pass
        results = state.results()
        if stats is not None:
            state.fill_stats(stats)
        return results


class _LockstepState:
    """All structure-of-arrays state of one batch search, plus the round loop.

    One instance is one "kernel launch": ``B`` lanes, each owning a row of
    the frontier, the result pool, and the visited bitmap.  :meth:`round`
    executes one lockstep iteration of the 3-stage loop across every
    active lane and returns False once the batch has drained.
    """

    def __init__(self, searcher, queries, config, meter, entry_points=None):
        graph = searcher.graph
        self.config = config
        self.meter = meter
        self.data = searcher.data
        self.queries = queries
        self.adj = graph.adjacency_array
        self.degree = graph.degree
        self.dim = self.data.shape[1]
        self.metric = get_metric(config.metric)
        self.norms = (
            searcher.data_norms() if self.metric.name == "cosine" else None
        )
        self.steps = config.probe_steps
        self.pool = config.queue_size
        self.k = config.k

        b = len(queries)
        n = graph.num_vertices
        self.b = b
        self._rows = np.arange(b)[:, None]
        capacity = config.queue_size if config.bounded_queue else None
        self.frontier = BatchedFrontier(b, capacity)
        self.topk = BatchedTopK(b, self.pool)
        self.visited = np.zeros((b, n), dtype=bool)
        self.visited_len = np.zeros(b, dtype=np.int64)
        self.active = np.ones(b, dtype=bool)
        # Per-lane statistics (mirrors SearchStats fields).
        self.iterations = np.zeros(b, dtype=np.int64)
        self.distance_computations = np.zeros(b, dtype=np.int64)
        self.visited_inserts = np.zeros(b, dtype=np.int64)
        self.visited_peak = np.zeros(b, dtype=np.int64)

        # Seed every lane with its entry point, like the serial searcher.
        if entry_points is None:
            start = np.full(b, graph.entry_point, dtype=np.int64)
        else:
            start = entry_points
        meter.stage("distance")
        seed_rows = self.data[start][:, None, :]
        seed_norms = None if self.norms is None else self.norms[start][:, None]
        d0 = self.metric.batch_many(queries, seed_rows, seed_norms)[:, 0]
        meter.bulk_distance(b, self.dim)
        meter.stage("maintain")
        self.visited[np.arange(b), start] = True
        self.visited_len[:] = 1
        meter.visited_insert(b)
        self.frontier.seed(pack_keys(d0, start))
        meter.push_frontier(b)

    # -- one lockstep iteration ----------------------------------------------

    def round(self) -> bool:
        """Advance every active lane one iteration; False when drained."""
        # Lanes whose frontier drained stop exactly like the serial
        # ``while len(frontier)`` check.
        self.active &= self.frontier.sizes > 0
        if not self.active.any():
            return False
        meter = self.meter
        config = self.config

        # ---- Stage 1: candidate locating ---------------------------------
        meter.stage("locate")
        window = self.frontier.window(self.steps)
        win_dists = unpack_distances(window)
        full, worst = self.topk.full_and_worst()
        avail = np.minimum(self.steps, self.frontier.sizes)
        slot = np.arange(window.shape[1], dtype=np.int64)[None, :]
        # A pop survives the serial check unless ``full and worst < d``;
        # the frontier rows are sorted, so survivors form a prefix.
        ok = (~full[:, None]) | (win_dists <= worst[:, None])
        ok &= slot < avail[:, None]
        ok &= self.active[:, None]
        n_pop = np.cumprod(ok, axis=1, dtype=np.int64).sum(axis=1)
        # A lane that hit the stop condition consumes (and discards) the
        # failing entry, finishes this round, then goes inactive.
        stop = self.active & (n_pop < avail)
        process = self.active & (n_pop > 0)
        meter.pop_frontier(int(n_pop.sum() + stop.sum()))
        if not process.any():
            self.active = process
            return False

        pop_mask = slot < n_pop[:, None]
        popped_ids = np.where(pop_mask, unpack_ids(window), 0)
        neighbors = self.adj[popped_ids]  # (B, ws, degree)
        valid = (pop_mask[:, :, None] & (neighbors != PAD)).reshape(self.b, -1)
        cand = neighbors.reshape(self.b, -1)
        meter.read_graph_row(int(pop_mask.sum()) * self.degree)
        meter.visited_test(int(valid.sum()))
        cand_safe = np.where(valid, cand, 0)
        valid &= ~self.visited[self._rows, cand_safe]
        valid = _first_occurrence_mask(cand, valid)
        n_cand = valid.sum(axis=1)

        # ---- Stage 2: one fused bulk distance computation ----------------
        meter.stage("distance")
        gathered = self.data[cand_safe]  # (B, L, d)
        gathered_norms = None if self.norms is None else self.norms[cand_safe]
        dists = self.metric.batch_many(self.queries, gathered, gathered_norms)
        meter.bulk_distance(int(n_cand.sum()), self.dim)
        self.iterations += process
        self.distance_computations += n_cand

        # ---- Stage 3: data-structure maintenance -------------------------
        meter.stage("maintain")
        popped_keys = np.where(pop_mask, window, PAD_KEY)
        topk_evicted = self.topk.merge(popped_keys)
        meter.topk_update(int(pop_mask.sum()))
        if config.visited_deletion:
            self._delete_evicted(topk_evicted)
        full, worst = self.topk.full_and_worst()
        accepted = valid
        if config.selected_insertion:
            # Skip candidates outside the top-K radius: not marked
            # visited, not enqueued (the computation-for-memory trade).
            accepted = valid & ((~full[:, None]) | (dists < worst[:, None]))
        n_accepted = accepted.sum(axis=1)
        lane_idx, slot_idx = np.nonzero(accepted)
        self.visited[lane_idx, cand[lane_idx, slot_idx]] = True
        meter.visited_insert(len(lane_idx))
        self.visited_len += n_accepted
        self.visited_inserts += n_accepted
        cand_keys = np.where(accepted, pack_keys(dists, cand_safe), PAD_KEY)
        frontier_evicted = self.frontier.merge(n_pop, cand_keys, n_accepted)
        meter.push_frontier(int(n_accepted.sum()))
        if config.visited_deletion and frontier_evicted.shape[1]:
            self._delete_evicted(frontier_evicted)
        np.maximum(self.visited_peak, self.visited_len, out=self.visited_peak)

        self.active = process & ~stop
        return self.active.any()

    def _delete_evicted(self, evicted_keys: np.ndarray) -> None:
        """Unmark evicted vertices (the visited-deletion optimization)."""
        real = evicted_keys != PAD_KEY
        if not real.any():
            return
        lane_idx, slot_idx = np.nonzero(real)
        ids = unpack_ids(evicted_keys[lane_idx, slot_idx])
        self.visited[lane_idx, ids] = False
        self.visited_len -= real.sum(axis=1)
        self.meter.visited_delete(len(lane_idx))

    # -- result extraction ----------------------------------------------------

    def results(self) -> List[List[Tuple[float, int]]]:  # lint: allow(hot-loop)
        """Per-lane top-``k`` lists, ascending, deduplicated by id.

        O(B·k) assembly of the Python return shape, not dataset-sized.
        """
        keys = self.topk.keys
        ids = unpack_ids(keys)
        dists = unpack_distances(keys)
        sizes = self.topk.sizes()
        out: List[List[Tuple[float, int]]] = []
        for b in range(self.b):
            lane: List[Tuple[float, int]] = []
            seen = set()
            for j in range(int(sizes[b])):
                vertex = int(ids[b, j])
                if vertex in seen:
                    continue
                seen.add(vertex)
                lane.append((float(dists[b, j]), vertex))
                if len(lane) == self.k:
                    break
            out.append(lane)
        return out

    def fill_stats(self, stats: Sequence[SearchStats]) -> None:  # lint: allow(hot-loop)
        """Accumulate per-lane counters into caller-provided stats (O(B))."""
        for b, entry in enumerate(stats):
            entry.iterations += int(self.iterations[b])
            entry.distance_computations += int(self.distance_computations[b])
            entry.visited_inserts += int(self.visited_inserts[b])
            entry.visited_peak = max(entry.visited_peak, int(self.visited_peak[b]))
