"""Online (incremental) index: insert points into a live SONG index.

The paper's pipeline is static — build offline, search on GPU.  Real
deployments also ingest new vectors.  :class:`OnlineSongIndex` keeps the
NSW insertion discipline (search the current graph for each new point's
neighbors, connect bidirectionally, prune by distance), maintains the
fixed-degree storage in place, and re-exposes the GPU batch search after
every insertion.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import SearchConfig
from repro.core.gpu_kernel import GpuSongIndex
from repro.distances import get_metric
from repro.graphs._search import greedy_search
from repro.graphs.storage import FixedDegreeGraph


class OnlineSongIndex:
    """A growable SONG index.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    m:
        Connections created per inserted point (NSW's ``m``).
    max_degree:
        Per-vertex degree bound (default ``2 * m``).
    ef_construction:
        Candidate-list width for insertion searches.
    capacity:
        Initial storage capacity; grows by doubling.
    metric:
        Distance measure name.
    device:
        Simulated device for searches.
    """

    def __init__(
        self,
        dim: int,
        m: int = 8,
        max_degree: Optional[int] = None,
        ef_construction: int = 48,
        capacity: int = 1024,
        metric: str = "l2",
        device: str = "v100",
    ) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        if m <= 0:
            raise ValueError("m must be positive")
        self.dim = dim
        self.m = m
        self.max_degree = max_degree or 2 * m
        self.ef_construction = max(ef_construction, m)
        self.metric = get_metric(metric)
        self.device = device
        self._data = np.zeros((max(capacity, 8), dim), dtype=np.float32)
        self._adjacency: List[List[int]] = []
        self._size = 0
        self._generation = 0
        self._snapshot: Optional[FixedDegreeGraph] = None
        self._snapshot_generation = -1

    def __len__(self) -> int:
        return self._size

    @property
    def generation(self) -> int:
        """Monotone write counter: bumps on every structural mutation.

        Snapshot caches key on this rather than on ``len`` or object
        identity — any insert (which may also rewire *existing* vertices
        through pruning) advances it.
        """
        return self._generation

    @property
    def data(self) -> np.ndarray:
        return self._data[: self._size]

    # -- ingestion ----------------------------------------------------------

    def add(self, vectors: np.ndarray) -> List[int]:
        """Insert one or more vectors; returns their assigned ids."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if vectors.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {vectors.shape[1]}")
        ids = []
        for vec in vectors:
            ids.append(self._insert(vec))
        return ids

    def _insert(self, vec: np.ndarray) -> int:
        if self._size >= len(self._data):
            grown = np.zeros((2 * len(self._data), self.dim), dtype=np.float32)
            grown[: self._size] = self._data[: self._size]
            self._data = grown
        v = self._size
        self._data[v] = vec
        self._adjacency.append([])
        self._size += 1
        self._generation += 1
        if v == 0:
            return v
        found = greedy_search(
            self._data[: self._size],
            lambda u: self._adjacency[u],
            vec,
            ef=self.ef_construction,
            entry_points=[0],
            metric=self.metric,
        )
        for _, u in found[: self.m]:
            self._adjacency[v].append(u)
            self._adjacency[u].append(v)
            self._prune(u)
        self._prune(v)
        return v

    def _prune(self, v: int) -> None:
        row = list(dict.fromkeys(self._adjacency[v]))
        if len(row) > self.max_degree:
            dists = self.metric.batch(self._data[v], self._data[row])
            keep = np.argsort(dists, kind="stable")[: self.max_degree]
            row = [row[i] for i in sorted(keep.tolist())]
        self._adjacency[v] = row

    # -- search -------------------------------------------------------------

    def snapshot_graph(self) -> FixedDegreeGraph:
        """Freeze the current adjacency into fixed-degree storage.

        The snapshot is cached and only rebuilt after inserts, so
        alternating search/search traffic (the serving layer's common
        case) pays the freeze cost once per write, not once per read.
        """
        if self._size == 0:
            raise RuntimeError("index is empty")
        if self._snapshot is not None and self._snapshot_generation == self._generation:
            return self._snapshot
        graph = FixedDegreeGraph(self._size, self.max_degree, entry_point=0)
        for v in range(self._size):
            graph.set_neighbors(v, self._adjacency[v])
        self._snapshot = graph
        self._snapshot_generation = self._generation
        return graph

    def search_batch(
        self, queries: np.ndarray, config: SearchConfig
    ) -> Tuple[list, object]:
        """GPU batch search over the current contents."""
        gpu = GpuSongIndex(
            self.snapshot_graph(), self._data[: self._size], device=self.device
        )
        return gpu.search_batch(queries, config)
