"""The meter interface between the search algorithm and a machine model.

The decoupled searcher (:mod:`repro.core.song`) is *functional*: it returns
real neighbors.  How long the search would take on some machine is decided
by a meter object observing the algorithm's primitive events.  Three meters
exist:

- :class:`NullMeter` — no accounting (pure algorithm).
- :class:`CountingMeter` — fills an :class:`~repro.distances.OpCounter`
  (used for CPU work-unit timing of HNSW-style searches).
- ``WarpMeter`` (in :mod:`repro.core.gpu_kernel`) — maps each event onto
  SIMT warp primitives, producing GPU cycle estimates.

Stage names follow the paper: ``locate`` (candidate locating), ``distance``
(bulk distance computation), ``maintain`` (data-structure maintenance).
"""

from __future__ import annotations

from repro.distances import OpCounter
from repro.simt.profiler import STAGE_DISTANCE, STAGE_LOCATE, STAGE_MAINTAIN

__all__ = [
    "NullMeter",
    "CountingMeter",
    "STAGE_LOCATE",
    "STAGE_DISTANCE",
    "STAGE_MAINTAIN",
]


class NullMeter:
    """A meter that ignores every event."""

    def stage(self, name: str) -> None:
        """Attribute subsequent events to stage ``name``."""

    def pop_frontier(self, n: int = 1) -> None:
        """``n`` pop-min operations on the frontier queue."""

    def push_frontier(self, n: int = 1) -> None:
        """``n`` bounded pushes into the frontier queue."""

    def read_graph_row(self, degree_slots: int) -> None:
        """Fetch one fixed-degree adjacency row (``degree_slots`` int32)."""

    def visited_test(self, n: int = 1) -> None:
        """``n`` membership probes of the visited set."""

    def visited_insert(self, n: int = 1) -> None:
        """``n`` insertions into the visited set."""

    def visited_delete(self, n: int = 1) -> None:
        """``n`` deletions from the visited set."""

    def bulk_distance(self, num_candidates: int, dim: int) -> None:
        """Distance of ``num_candidates`` vectors against the query."""

    def topk_update(self, n: int = 1) -> None:
        """``n`` bounded pushes into the result heap."""


class CountingMeter(NullMeter):
    """Fills an :class:`OpCounter`; used for CPU work-unit accounting."""

    def __init__(self, counter: OpCounter, dim: int, flops_per_distance: int):
        self.counter = counter
        self.dim = dim
        self.flops_per_distance = flops_per_distance

    def pop_frontier(self, n: int = 1) -> None:
        self.counter.queue_ops += n
        self.counter.hops += n

    def push_frontier(self, n: int = 1) -> None:
        self.counter.queue_ops += n

    def read_graph_row(self, degree_slots: int) -> None:
        self.counter.graph_reads += degree_slots

    def visited_test(self, n: int = 1) -> None:
        self.counter.hash_ops += n

    def visited_insert(self, n: int = 1) -> None:
        self.counter.hash_ops += n

    def visited_delete(self, n: int = 1) -> None:
        self.counter.hash_ops += n

    def bulk_distance(self, num_candidates: int, dim: int) -> None:
        self.counter.distance_calls += num_candidates
        self.counter.distance_flops += num_candidates * self.flops_per_distance
        self.counter.vector_reads += num_candidates

    def topk_update(self, n: int = 1) -> None:
        self.counter.queue_ops += n
