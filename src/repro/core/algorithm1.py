"""Algorithm 1 of the paper: the reference best-first graph search.

Implemented exactly as printed — unbounded min-heap frontier ``q``,
max-heap ``topk``, hash-set ``visited`` — so every optimized searcher can
be validated against it.  The one necessary reading of the pseudocode:
``topk`` receives only extracted vertices, and the loop stops when the
extracted vertex is worse than the current K-th best.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.distances import OpCounter, get_metric
from repro.graphs.storage import FixedDegreeGraph
from repro.structures.heap import MinHeap, TopKMaxHeap


def algorithm1_search(
    graph: FixedDegreeGraph,
    data: np.ndarray,
    query: np.ndarray,
    k: int,
    queue_size: Optional[int] = None,
    metric: str = "l2",
    counter: Optional[OpCounter] = None,
) -> List[Tuple[float, int]]:
    """Top-``k`` search on a proximity graph (paper Algorithm 1).

    Parameters
    ----------
    graph:
        Proximity graph over ``data``.
    data:
        ``(n, d)`` dataset.
    query:
        Query vector.
    k:
        Number of results.
    queue_size:
        Size of the result pool explored before stopping (``ef``); the
        literal Algorithm 1 uses ``k`` itself, which is the default.
    metric:
        Distance measure name.
    counter:
        Optional work meter.

    Returns
    -------
    ``(distance, vertex)`` pairs ascending by distance, at most ``k``.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    pool = max(queue_size or k, k)
    m = get_metric(metric)
    dim = data.shape[1]

    def charge_distance(n: int = 1) -> None:
        if counter is not None:
            counter.distance_calls += n
            counter.distance_flops += n * m.flops_per_distance(dim)
            counter.vector_reads += n

    start = graph.entry_point
    q = MinHeap()
    topk = TopKMaxHeap(pool)
    visited = {start}
    d0 = m.single(query, data[start])
    charge_distance()
    q.push(d0, start)
    if counter is not None:
        counter.queue_ops += 1
        counter.hash_ops += 1

    while q:
        now_dist, now_idx = q.pop()
        if counter is not None:
            counter.queue_ops += 1
            counter.hops += 1
        if topk.is_full() and topk.worst_distance() < now_dist:
            break
        topk.push_bounded(now_dist, now_idx)
        if counter is not None:
            counter.queue_ops += 1
        for v in graph.neighbors(now_idx):
            v = int(v)
            if counter is not None:
                counter.graph_reads += 1
                counter.hash_ops += 1
            if v in visited:
                continue
            d = m.single(query, data[v])
            charge_distance()
            visited.add(v)
            q.push(d, v)
            if counter is not None:
                counter.hash_ops += 1
                counter.queue_ops += 1

    return sorted(topk.to_sorted_list())[:k]
