"""Vector file formats used by the ANN benchmark corpora.

The datasets in the paper's Table I ship as TEXMEX ``.fvecs`` /
``.ivecs`` / ``.bvecs`` files (SIFT, GIST) or ann-benchmarks HDF5.  This
module reads and writes the TEXMEX family so the library can ingest the
real corpora when they are available; the synthetic analogues remain the
default for offline runs.

Format: each vector is stored as a little-endian int32 dimension header
followed by ``dim`` components (float32 / int32 / uint8).
"""

from __future__ import annotations

import os

import numpy as np

_COMPONENT = {
    ".fvecs": np.float32,
    ".ivecs": np.int32,
    ".bvecs": np.uint8,
}


def _dtype_for(path: str) -> np.dtype:
    ext = os.path.splitext(path)[1].lower()
    if ext not in _COMPONENT:
        raise ValueError(
            f"unsupported extension {ext!r}; expected one of {sorted(_COMPONENT)}"
        )
    return np.dtype(_COMPONENT[ext])


def read_vecs(path: str, count: int = None) -> np.ndarray:
    """Read a ``.fvecs`` / ``.ivecs`` / ``.bvecs`` file into ``(n, d)``.

    Parameters
    ----------
    path:
        Input file; the extension selects the component type.
    count:
        Optional cap on the number of vectors read.
    """
    dtype = _dtype_for(path)
    raw = np.fromfile(path, dtype=np.uint8)
    if raw.size == 0:
        return np.empty((0, 0), dtype=dtype)
    dim = int(np.frombuffer(raw[:4].tobytes(), dtype="<i4")[0])
    if dim <= 0:
        raise ValueError(f"{path}: corrupt header (dim={dim})")
    record = 4 + dim * dtype.itemsize
    if raw.size % record != 0:
        raise ValueError(
            f"{path}: size {raw.size} is not a multiple of the record size "
            f"{record} (dim={dim})"
        )
    n = raw.size // record
    if count is not None:
        n = min(n, count)
    records = raw[: n * record].reshape(n, record)
    headers = records[:, :4].copy().view("<i4").ravel()
    if not (headers == dim).all():
        raise ValueError(f"{path}: inconsistent per-record dimensions")
    return records[:, 4:].copy().view(dtype).reshape(n, dim)


def write_vecs(path: str, data: np.ndarray) -> None:
    """Write ``(n, d)`` vectors in the TEXMEX format for ``path``'s extension."""
    dtype = _dtype_for(path)
    data = np.asarray(data)
    if data.ndim != 2:
        raise ValueError("data must be 2-d")
    n, dim = data.shape
    headers = np.full((n, 1), dim, dtype="<i4")
    body = np.ascontiguousarray(data.astype(dtype))
    with open(path, "wb") as f:
        for i in range(n):
            f.write(headers[i].tobytes())
            f.write(body[i].tobytes())


def read_ground_truth_ivecs(path: str) -> np.ndarray:
    """Ground-truth files are ``.ivecs`` of neighbor ids per query."""
    return read_vecs(path).astype(np.int64)
