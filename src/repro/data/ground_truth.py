"""Exact nearest-neighbor ground truth."""

from __future__ import annotations

import numpy as np

from repro.distances import get_metric


def ground_truth(
    data: np.ndarray,
    queries: np.ndarray,
    k: int,
    metric: str = "l2",
    block: int = 256,
) -> np.ndarray:
    """Exact top-``k`` ids for each query, as an ``(q, k)`` int array.

    Computed in query blocks so the distance matrix stays small.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if k > len(data):
        raise ValueError("k exceeds the dataset size")
    m = get_metric(metric)
    q = len(queries)
    out = np.empty((q, k), dtype=np.int64)
    for start in range(0, q, block):
        stop = min(start + block, q)
        d = m.pairwise(queries[start:stop], data)
        idx = np.argpartition(d, k - 1, axis=1)[:, :k]
        part = np.take_along_axis(d, idx, axis=1)
        order = np.argsort(part, axis=1, kind="stable")
        out[start:stop] = np.take_along_axis(idx, order, axis=1)
    return out
