"""Synthetic analogues of the paper's six benchmark datasets.

Two base generators cover the spectrum the paper's analysis depends on:

- :func:`clustered_dataset` — heavy cluster skew (Zipf-distributed cluster
  sizes, tight clusters).  ANN search is *hard*: greedy graph walks must
  cross cluster boundaries and IVFPQ's coarse quantizer saturates.  This
  is the NYTimes / GloVe regime.
- :func:`diffuse_dataset` — many weak, overlapping clusters.  ANN search
  is *easy* (SIFT / UQ_V regime).

``DATASET_SPECS`` instantiates six named datasets with dimensionality
ratios matching Table I (scaled to laptop size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.data.datasets import Dataset


def _zipf_sizes(n: int, num_clusters: int, exponent: float, rng) -> np.ndarray:
    """Cluster sizes following a Zipf law, summing to ``n``."""
    ranks = np.arange(1, num_clusters + 1, dtype=np.float64)
    weights = ranks**-exponent
    weights /= weights.sum()
    sizes = np.floor(weights * n).astype(int)
    sizes[: n - sizes.sum()] += 1
    return sizes


def clustered_dataset(
    n: int,
    dim: int,
    num_queries: int,
    num_clusters: int = 30,
    skew: float = 1.2,
    spread: float = 0.18,
    seed: int = 0,
    name: str = "clustered",
    metric: str = "l2",
) -> Dataset:
    """Heavily skewed, tightly clustered data (NYTimes/GloVe regime).

    Cluster centers are drawn on the unit sphere; sizes follow a Zipf law
    with the given exponent; points are center + Gaussian noise re-normed,
    so the geometry resembles tf-idf / embedding clouds.
    """
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((num_clusters, dim))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    sizes = _zipf_sizes(n + num_queries, num_clusters, skew, rng)
    points = []
    for c, size in enumerate(sizes):
        local = centers[c] + spread * rng.standard_normal((size, dim))
        points.append(local)
    all_points = np.vstack(points).astype(np.float32)
    rng.shuffle(all_points)
    return Dataset(
        name=name,
        data=all_points[:n],
        queries=all_points[n : n + num_queries],
        metric=metric,
    )


def diffuse_dataset(
    n: int,
    dim: int,
    num_queries: int,
    num_clusters: int = 256,
    spread: float = 0.9,
    seed: int = 0,
    name: str = "diffuse",
    metric: str = "l2",
) -> Dataset:
    """Weakly clustered, near-uniform data (SIFT/UQ_V regime)."""
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((num_clusters, dim))
    assignments = rng.integers(num_clusters, size=n + num_queries)
    noise = spread * rng.standard_normal((n + num_queries, dim))
    all_points = (centers[assignments] + noise).astype(np.float32)
    return Dataset(
        name=name,
        data=all_points[:n],
        queries=all_points[n : n + num_queries],
        metric=metric,
    )


def lowrank_dataset(
    n: int,
    dim: int,
    num_queries: int,
    latent_dim: int = 8,
    num_clusters: int = 10,
    spread: float = 0.6,
    ambient_noise: float = 0.01,
    seed: int = 0,
    name: str = "lowrank",
    metric: str = "l2",
) -> Dataset:
    """Low-effective-rank, norm-normalized data (MNIST regime).

    Points live near a ``latent_dim``-dimensional subspace of the ambient
    space and are normalized to the unit sphere, so L2 ordering coincides
    with angular ordering — the property that makes 1-bit random
    projections (Section VII of the paper) effective, as they are on real
    image data.
    """
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((num_clusters, latent_dim))
    labels = rng.integers(num_clusters, size=n + num_queries)
    latent = centers[labels] + spread * rng.standard_normal(
        (n + num_queries, latent_dim)
    )
    embed = rng.standard_normal((latent_dim, dim)) / np.sqrt(latent_dim)
    points = latent @ embed + ambient_noise * rng.standard_normal(
        (n + num_queries, dim)
    )
    points /= np.linalg.norm(points, axis=1, keepdims=True)
    points = points.astype(np.float32)
    return Dataset(
        name=name,
        data=points[:n],
        queries=points[n : n + num_queries],
        metric=metric,
    )


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one named benchmark analogue."""

    name: str
    generator: Callable[..., Dataset]
    dim: int
    default_n: int
    default_queries: int
    kwargs: tuple = ()

    def make(self, n: int = None, num_queries: int = None, seed: int = 0) -> Dataset:
        return self.generator(
            n=n or self.default_n,
            dim=self.dim,
            num_queries=num_queries or self.default_queries,
            seed=seed,
            name=self.name,
            **dict(self.kwargs),
        )


#: Table I analogues.  Dimensions keep the paper's ordering
#: (SIFT 128 < GloVe 200 < NYTimes/UQ_V 256 < MNIST 784 < GIST 960,
#: the two largest scaled 2x down); sizes are laptop-scale.
DATASET_SPECS: Dict[str, DatasetSpec] = {
    "nytimes": DatasetSpec(
        name="nytimes",
        generator=clustered_dataset,
        dim=256,
        default_n=4000,
        default_queries=100,
        kwargs=(("num_clusters", 24), ("skew", 1.3), ("spread", 0.15)),
    ),
    "sift": DatasetSpec(
        name="sift",
        generator=diffuse_dataset,
        dim=128,
        default_n=8000,
        default_queries=100,
        kwargs=(("num_clusters", 512), ("spread", 1.0)),
    ),
    "glove200": DatasetSpec(
        name="glove200",
        generator=clustered_dataset,
        dim=200,
        default_n=8000,
        default_queries=100,
        kwargs=(("num_clusters", 40), ("skew", 1.1), ("spread", 0.22)),
    ),
    "uqv": DatasetSpec(
        name="uqv",
        generator=diffuse_dataset,
        dim=256,
        default_n=10000,
        default_queries=100,
        kwargs=(("num_clusters", 640), ("spread", 0.9)),
    ),
    "gist": DatasetSpec(
        name="gist",
        generator=diffuse_dataset,
        dim=480,
        default_n=6000,
        default_queries=100,
        kwargs=(("num_clusters", 256), ("spread", 0.8)),
    ),
    "mnist8m": DatasetSpec(
        name="mnist8m",
        generator=lowrank_dataset,
        dim=392,
        default_n=8000,
        default_queries=100,
        kwargs=(("num_clusters", 10), ("latent_dim", 8), ("spread", 0.6)),
    ),
}


def make_dataset(
    name: str, n: int = None, num_queries: int = None, seed: int = 0
) -> Dataset:
    """Instantiate a named benchmark analogue (see ``DATASET_SPECS``)."""
    key = name.lower()
    if key not in DATASET_SPECS:
        raise KeyError(f"unknown dataset {name!r}; options: {sorted(DATASET_SPECS)}")
    return DATASET_SPECS[key].make(n=n, num_queries=num_queries, seed=seed)
