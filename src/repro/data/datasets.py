"""Dataset container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class Dataset:
    """A base set, a query set, and cached ground truth.

    Attributes
    ----------
    name:
        Dataset identifier (e.g. ``"sift"``).
    data:
        ``(n, d)`` float32 base vectors.
    queries:
        ``(q, d)`` float32 query vectors.
    metric:
        The distance measure the benchmark uses.
    """

    name: str
    data: np.ndarray
    queries: np.ndarray
    metric: str = "l2"
    _gt_cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.data.ndim != 2 or self.queries.ndim != 2:
            raise ValueError("data and queries must be 2-d arrays")
        if self.data.shape[1] != self.queries.shape[1]:
            raise ValueError("data/queries dimensionality mismatch")

    @property
    def dim(self) -> int:
        return self.data.shape[1]

    @property
    def num_data(self) -> int:
        return len(self.data)

    @property
    def num_queries(self) -> int:
        return len(self.queries)

    def size_bytes(self) -> int:
        return int(self.data.nbytes)

    def ground_truth(self, k: int) -> np.ndarray:
        """Exact top-``k`` ids per query, cached per ``k``."""
        from repro.data.ground_truth import ground_truth

        if k not in self._gt_cache:
            self._gt_cache[k] = ground_truth(
                self.data, self.queries, k, metric=self.metric
            )
        return self._gt_cache[k]

    def subset(self, num_data: Optional[int] = None, num_queries: Optional[int] = None) -> "Dataset":
        """A smaller view (fresh ground-truth cache)."""
        return Dataset(
            name=self.name,
            data=self.data[: num_data or self.num_data],
            queries=self.queries[: num_queries or self.num_queries],
            metric=self.metric,
        )
