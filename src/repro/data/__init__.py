"""Dataset substrate: synthetic analogues of the paper's 6 benchmarks.

The originals (NYTimes, SIFT, GloVe200, UQ_V, GIST, MNIST8m) are
multi-GB downloads; this package generates laptop-scale synthetic stand-ins
that preserve the property the paper's analysis leans on — *distribution
shape*: NYTimes and GloVe200 are heavily skewed/clustered (hard for ANN,
IVFPQ hits a recall ceiling), SIFT and UQ_V are diffuse (easy), GIST is
the high-dimensional case, and MNIST is the out-of-memory hashing case.
"""

from repro.data.synthetic import (
    DATASET_SPECS,
    clustered_dataset,
    diffuse_dataset,
    lowrank_dataset,
    make_dataset,
)
from repro.data.datasets import Dataset
from repro.data.ground_truth import ground_truth

__all__ = [
    "Dataset",
    "DATASET_SPECS",
    "make_dataset",
    "clustered_dataset",
    "diffuse_dataset",
    "lowrank_dataset",
    "ground_truth",
]
