"""Kernel annotations for the array-program static verifier.

Vectorized host kernels opt into :mod:`repro.analysis.arrays` — the
shape/dtype/overflow abstract interpreter — by decorating a module-level
function with :func:`array_kernel` and declaring

* the symbolic **parameters** the kernel is proven over (``{"n": (1,
  2**31)}`` means *every* ``n`` in that range, not one concrete launch),
* per-argument **array specs** (:func:`arr`): symbolic dims, dtype, and
  elementwise value bounds as affine/polynomial expressions over the
  parameters (``hi="n-1"``),
* optional **return contracts** — trusted summaries used at call sites
  inside other verified kernels (see DESIGN.md Sec. 14 for the
  assume-guarantee caveat).

This module is deliberately dependency-free (no numpy, no repro
imports): hot modules like :mod:`repro.structures.soa` import the
decorator at module top, and routing it through
``repro.analysis.__init__`` would create an import cycle with
:mod:`repro.core`.  The decorator returns the function unchanged — the
annotation is metadata for the analyzer, with zero runtime cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "ArraySpec",
    "ScalarSpec",
    "OpaqueSpec",
    "KernelAnnotation",
    "arr",
    "scalar",
    "opaque",
    "array_kernel",
    "iter_array_annotations",
    "get_annotation",
]

#: A dimension or bound: an int literal or an expression string over the
#: declared parameters (``"n"``, ``"n-1"``, ``"32*w"``, ``"k0*k0-1"``).
Expr = Union[int, str]


@dataclass(frozen=True)
class ArraySpec:
    """Declared abstraction of one array argument.

    ``dims`` is the symbolic shape (``None`` = any shape; bounds then
    apply elementwise regardless of rank).  ``lo``/``hi`` bound every
    element (``None`` = unknown on that side).  ``unique`` asserts the
    flattened elements are pairwise distinct; ``sorted_`` that they are
    nondecreasing along the last axis.
    """

    dims: Optional[Tuple[Expr, ...]]
    dtype: str = "int64"
    lo: Optional[Expr] = None
    hi: Optional[Expr] = None
    unique: bool = False
    sorted_: bool = False


@dataclass(frozen=True)
class ScalarSpec:
    """A scalar argument: exact (``scalar("n")``) or ranged (``lo``/``hi``).

    ``expr`` pins the scalar to a parameter expression; when it is
    ``None`` the scalar is only known to lie in ``[lo, hi]``.
    """

    expr: Optional[Expr] = None
    dtype: str = "int64"
    lo: Optional[Expr] = None
    hi: Optional[Expr] = None


@dataclass(frozen=True)
class OpaqueSpec:
    """An argument the analyzer treats as unknown (RNG, recorders, ...)."""


ArgSpec = Union[ArraySpec, ScalarSpec, OpaqueSpec]


def arr(
    *dims: Expr,
    dtype: str = "int64",
    lo: Optional[Expr] = None,
    hi: Optional[Expr] = None,
    unique: bool = False,
    sorted_: bool = False,
) -> ArraySpec:
    """Declare an array argument; ``arr()`` with no dims = any shape."""
    return ArraySpec(
        dims=dims if dims else None,
        dtype=dtype,
        lo=lo,
        hi=hi,
        unique=unique,
        sorted_=sorted_,
    )


def scalar(
    expr: Optional[Expr] = None,
    dtype: str = "int64",
    lo: Optional[Expr] = None,
    hi: Optional[Expr] = None,
) -> ScalarSpec:
    """Declare a scalar argument: exact expression or ``[lo, hi]`` range."""
    return ScalarSpec(expr=expr, dtype=dtype, lo=lo, hi=hi)


def opaque() -> OpaqueSpec:
    """Declare an argument the analyzer must not rely on."""
    return OpaqueSpec()


@dataclass(frozen=True)
class KernelAnnotation:
    """One registered array kernel: the function plus its declarations."""

    func: Callable
    name: str
    module: str
    params: Mapping[str, Tuple[int, int]]
    args: Mapping[str, ArgSpec]
    returns: Optional[Sequence[ArraySpec]] = None
    #: Rule names waived for this kernel (expected findings).
    waive: Tuple[str, ...] = ()
    #: Registry the kernel belongs to: "default" for production kernels,
    #: "known-bad" for the deliberately broken CI fixtures.
    registry: str = "default"


#: qualified name -> annotation, in registration (definition) order.
_REGISTRY: Dict[str, KernelAnnotation] = {}


def array_kernel(
    params: Optional[Mapping[str, Tuple[int, int]]] = None,
    args: Optional[Mapping[str, ArgSpec]] = None,
    returns: Optional[Sequence[ArraySpec]] = None,
    waive: Sequence[str] = (),
    registry: str = "default",
) -> Callable[[Callable], Callable]:
    """Register a vectorized host kernel for static verification.

    The decorated function is returned unchanged.  ``params`` maps each
    symbolic parameter to its closed ``(lo, hi)`` range; the verifier
    proves the kernel for every assignment in the box.  ``args`` maps
    argument names to :func:`arr`/:func:`scalar`/:func:`opaque` specs;
    unlisted arguments are opaque.  ``returns`` is a trusted contract
    (one :func:`arr` per returned value) other kernels may assume.
    """

    def decorate(func: Callable) -> Callable:
        qualname = f"{func.__module__}.{func.__qualname__}"
        _REGISTRY[qualname] = KernelAnnotation(
            func=func,
            name=func.__qualname__,
            module=func.__module__,
            params=dict(params or {}),
            args=dict(args or {}),
            returns=tuple(returns) if returns is not None else None,
            waive=tuple(waive),
            registry=registry,
        )
        return func

    return decorate


def iter_array_annotations(registry: str = "default") -> Iterator[KernelAnnotation]:
    """Registered kernels from one registry, in definition order."""
    for annotation in _REGISTRY.values():
        if annotation.registry == registry:
            yield annotation


def get_annotation(qualname: str) -> Optional[KernelAnnotation]:
    """Look up one annotation by ``module.qualname`` (None if absent)."""
    return _REGISTRY.get(qualname)
