"""Routing: replicas, stream-pool dispatch, and read/write discipline.

A :class:`Replica` wraps one serving engine with a device occupancy
model and in-flight accounting.  With ``streams=1`` (the default) the
device is an exclusive lock — one batch occupies the simulated GPU at a
time and is charged the serial HtoD + kernel + DtoH cost, bit-identical
to the pre-stream serving model.  With ``streams=N`` the replica holds a
pool of N CUDA-style streams backed by a
:class:`~repro.simt.streams.DeviceTimeline`: up to N batches are in
flight at once, each split into double-buffered chunks whose HtoD
overlaps the previous chunk's kernel, with concurrent kernels sharing SM
capacity and both PCIe directions modelled as single in-order copy
engines.  The :class:`Router` spreads batches across replicas:

- ``"least-loaded"`` (default) — join-the-shortest-queue on the pending
  batch count, ties broken by replica index (deterministic);
- ``"round-robin"`` — strict rotation.

Sharded indexes plug in transparently: a replica whose engine is a
:class:`~repro.serve.engine.ShardedServeEngine` fans each batch over its
shards internally and reports per-shard attribution, which the router
folds into its per-replica stats (slowest-shard counts, imbalance).

Mixed read/insert traffic against an
:class:`~repro.serve.engine.OnlineServeEngine` goes through a fair
:class:`AsyncRWLock`: searches share the lock (they read a frozen
snapshot), inserts take it exclusively, and FIFO fairness means a
waiting insert blocks later searches — so the insertion order equals
the submission order, which is what makes concurrent histories
reproducible against a serially built index.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import SearchConfig
from repro.serve.engine import BatchServiceResult, OnlineServeEngine
from repro.simt.streams import DeviceTimeline

__all__ = ["ROUTING_POLICIES", "AsyncRWLock", "Replica", "Router"]

#: Valid routing policies.
ROUTING_POLICIES = ("least-loaded", "round-robin")


class AsyncRWLock:
    """A fair readers-writer lock for asyncio.

    Readers share; writers are exclusive.  Arrivals are served FIFO: a
    writer waiting behind active readers blocks readers that arrive
    after it (no writer starvation), and queued waiters wake in order.
    """

    def __init__(self) -> None:
        self._readers = 0
        self._writer = False
        self._waiters: Deque[Tuple[str, asyncio.Future]] = deque()

    def _wake(self) -> None:
        while self._waiters:
            kind, fut = self._waiters[0]
            if fut.cancelled():
                self._waiters.popleft()
                continue
            if kind == "r" and not self._writer:
                self._waiters.popleft()
                self._readers += 1
                fut.set_result(None)
                continue  # adjacent readers enter together
            if kind == "w" and not self._writer and self._readers == 0:
                self._waiters.popleft()
                self._writer = True
                fut.set_result(None)
            break

    async def acquire_read(self) -> None:
        """Take the lock shared; waits behind any queued writer."""
        if not self._writer and not any(k == "w" for k, _ in self._waiters):
            self._readers += 1
            return
        fut = asyncio.get_running_loop().create_future()
        self._waiters.append(("r", fut))
        await fut

    def release_read(self) -> None:
        if self._readers <= 0:
            raise RuntimeError("release_read without acquire_read")
        self._readers -= 1
        if self._readers == 0:
            self._wake()

    async def acquire_write(self) -> None:
        """Take the lock exclusively; waits for readers to drain."""
        if not self._writer and self._readers == 0 and not self._waiters:
            self._writer = True
            return
        fut = asyncio.get_running_loop().create_future()
        self._waiters.append(("w", fut))
        await fut

    def release_write(self) -> None:
        if not self._writer:
            raise RuntimeError("release_write without acquire_write")
        self._writer = False
        self._wake()


class Replica:
    """One engine behind a stream pool, with in-flight accounting.

    Parameters
    ----------
    engine:
        The serving engine.
    name:
        Replica label (defaults to the engine's).
    streams:
        Device streams.  ``1`` keeps the legacy exclusive-lock serial
        path; ``N > 1`` admits up to N concurrent batches, scheduled on
        a :class:`~repro.simt.streams.DeviceTimeline` (requires an
        engine with ``chunked_batch`` — the sharded engine models its
        own fan-out and stays at one stream).
    """

    def __init__(
        self, engine, name: Optional[str] = None, streams: int = 1
    ) -> None:
        if streams < 1:
            raise ValueError("streams must be >= 1")
        self.engine = engine
        self.name = name or getattr(engine, "name", "replica")
        self.streams = int(streams)
        self._device_lock = asyncio.Lock()
        self._stream_slots: Optional[asyncio.Semaphore] = None
        self.timeline: Optional[DeviceTimeline] = None
        if self.streams > 1:
            if not hasattr(engine, "chunked_batch"):
                raise ValueError(
                    f"engine {self.name!r} does not support multi-stream "
                    "dispatch (needs chunked_batch)"
                )
            self.timeline = DeviceTimeline(engine.device, self.streams)
        self._rw = AsyncRWLock()
        self._submitted = 0
        self.pending_batches = 0
        self.batches_served = 0
        self.busy_seconds = 0.0
        self.slowest_shard_counts: Dict[int, int] = {}

    @property
    def supports_inserts(self) -> bool:
        return isinstance(self.engine, OnlineServeEngine)

    def _slots(self) -> asyncio.Semaphore:
        # Created lazily so the semaphore binds the loop it is used on.
        if self._stream_slots is None:
            self._stream_slots = asyncio.Semaphore(self.streams)
        return self._stream_slots

    def _run_streamed(self, queries: np.ndarray, config: SearchConfig):
        """Price one batch on the stream timeline (no awaits: the
        schedule commits atomically at submission)."""
        results, chunks, detail = self.engine.chunked_batch(
            queries, config, num_chunks=None, max_chunks=self.streams
        )
        extra_dtoh = 0.0
        consume = getattr(self.engine, "consume_snapshot_dtoh_seconds", None)
        if consume is not None:
            extra_dtoh = consume()
        now = asyncio.get_running_loop().time()
        sched = self.timeline.submit_batch(
            chunks, now, extra_dtoh_s=extra_dtoh, label=f"b{self._submitted}"
        )
        self._submitted += 1
        detail = dict(detail)
        detail["schedule"] = sched.to_dict()
        if extra_dtoh > 0.0:
            detail["snapshot_dtoh_seconds"] = extra_dtoh
        return BatchServiceResult(results, sched.finish_s - now, detail)

    async def run_batch(
        self, queries: np.ndarray, config: SearchConfig
    ) -> BatchServiceResult:
        """Run one search batch: compute, then occupy the device."""
        self.pending_batches += 1
        await self._rw.acquire_read()
        try:
            if self.streams <= 1:
                async with self._device_lock:
                    outcome = self.engine.run_batch(queries, config)
                    await asyncio.sleep(outcome.service_seconds)
            else:
                async with self._slots():
                    outcome = self._run_streamed(queries, config)
                    await asyncio.sleep(outcome.service_seconds)
        finally:
            self._rw.release_read()
            self.pending_batches -= 1
        self.batches_served += 1
        self.busy_seconds += outcome.service_seconds
        shard = outcome.detail.get("slowest_shard")
        if shard is not None:
            self.slowest_shard_counts[shard] = (
                self.slowest_shard_counts.get(shard, 0) + 1
            )
        return outcome

    async def run_inserts(self, vectors: np.ndarray) -> BatchServiceResult:
        """Run one insert batch under the exclusive write lock."""
        if not self.supports_inserts:
            raise RuntimeError(f"replica {self.name} does not accept inserts")
        self.pending_batches += 1
        await self._rw.acquire_write()
        try:
            outcome = self.engine.run_inserts(vectors)
            await asyncio.sleep(outcome.service_seconds)
        finally:
            self._rw.release_write()
            self.pending_batches -= 1
        self.batches_served += 1
        self.busy_seconds += outcome.service_seconds
        return outcome

    def stats(self) -> Dict[str, object]:
        """Per-replica serving stats for reports."""
        out: Dict[str, object] = {
            "name": self.name,
            "batches": self.batches_served,
            "busy_seconds": round(self.busy_seconds, 9),
            "streams": self.streams,
        }
        if self.timeline is not None:
            out["device_timeline"] = self.timeline.stats()
        if self.slowest_shard_counts:
            out["slowest_shard_counts"] = dict(
                sorted(self.slowest_shard_counts.items())
            )
        return out


class Router:
    """Spreads batches over replicas with a deterministic policy."""

    def __init__(self, replicas: Sequence[Replica], policy: str = "least-loaded"):
        if not replicas:
            raise ValueError("need at least one replica")
        if policy not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {policy!r}; "
                f"expected one of {ROUTING_POLICIES}"
            )
        self.replicas = list(replicas)
        self.policy = policy
        self._rr = 0

    def pick(self) -> Replica:
        """Choose the replica for the next batch."""
        if self.policy == "round-robin":
            replica = self.replicas[self._rr % len(self.replicas)]
            self._rr += 1
            return replica
        loads = [r.pending_batches for r in self.replicas]
        return self.replicas[loads.index(min(loads))]

    def pick_writable(self) -> Replica:
        """Choose a replica that accepts inserts (the online index)."""
        writable = [r for r in self.replicas if r.supports_inserts]
        if not writable:
            raise RuntimeError("no replica accepts inserts")
        loads = [r.pending_batches for r in writable]
        return writable[loads.index(min(loads))]

    def stats(self) -> List[Dict[str, object]]:
        """Per-replica stats, in replica order."""
        return [r.stats() for r in self.replicas]
