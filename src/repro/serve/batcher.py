"""Dynamic batching: deadline-or-size dispatch with SLO-adaptive sizing.

GPU throughput comes from batch parallelism — the simulated cost model,
like real hardware, makes a batch of 64 barely slower than a batch of 8
until the machine saturates — but batches only form if someone waits for
them.  :class:`DynamicBatcher` implements the standard dynamic-batching
contract: accumulate admitted requests and dispatch when either

- the batch reaches the current **target size**, or
- the oldest request has waited **max_wait** (so a lone query is never
  held hostage by an empty queue).

The target size is a control variable, not a constant.  After every
batch the :class:`BatchSizeController` observes the simulated-GPU
service time and the residual queue depth and adapts:

- **grow** (x2, up to ``max_batch``) while a backlog exists and one
  batch's service time still fits inside its share of the SLO — larger
  batches raise throughput, which is the only way to drain a queue;
- **shrink** (x0.75) when a single batch's service time alone eats the
  SLO budget — at that point batching hurts the tail instead of
  helping;
- **decay** slowly toward ``min_batch`` when the queue runs empty, so a
  lightly loaded server returns to latency-optimal small batches.

``mode="fixed"`` freezes the target at ``batch_size`` — the baseline
policy the serving benchmark compares against.
"""

from __future__ import annotations

# lint: hot-path

import asyncio
from collections import deque
from dataclasses import dataclass
from typing import Awaitable, Callable, Deque, Dict, List

from repro.serve.clock import gather_all
from repro.serve.request import ServeRequest

__all__ = ["BATCH_MODES", "BatchPolicy", "BatchSizeController", "DynamicBatcher"]

#: Valid batch-sizing modes.
BATCH_MODES = ("fixed", "adaptive")


@dataclass
class BatchPolicy:
    """Tunables of the dynamic batcher.

    Attributes
    ----------
    mode:
        ``"adaptive"`` lets the controller resize batches; ``"fixed"``
        always targets ``batch_size``.
    batch_size:
        Initial (and fixed-mode) target batch size.
    min_batch / max_batch:
        Adaptive target bounds.
    max_wait_s:
        Dispatch deadline for a partial batch, measured from the oldest
        pending request's arrival.
    service_slo_fraction:
        Share of the SLO one batch's service time may consume before the
        controller shrinks the target.
    """

    mode: str = "adaptive"
    batch_size: int = 8
    min_batch: int = 1
    max_batch: int = 256
    max_wait_s: float = 0.001
    service_slo_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.mode not in BATCH_MODES:
            raise ValueError(
                f"unknown batch mode {self.mode!r}; expected one of {BATCH_MODES}"
            )
        if not 1 <= self.min_batch <= self.batch_size <= self.max_batch:
            raise ValueError("need 1 <= min_batch <= batch_size <= max_batch")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be nonnegative")
        if not 0.0 < self.service_slo_fraction <= 1.0:
            raise ValueError("service_slo_fraction must be in (0, 1]")


class BatchSizeController:
    """Adapts the target batch size from observed batch service times."""

    def __init__(self, policy: BatchPolicy, slo_p99_s: float) -> None:
        self.policy = policy
        self.slo_p99_s = slo_p99_s
        self.target = policy.batch_size

    def observe(
        self, batch_size: int, service_seconds: float, queue_depth_after: int
    ) -> None:
        """Update the target after one dispatched batch."""
        if self.policy.mode == "fixed":
            return
        budget = self.policy.service_slo_fraction * self.slo_p99_s
        if service_seconds > budget and batch_size <= self.target:
            # One batch alone threatens the SLO: batching stopped paying.
            self.target = max(self.policy.min_batch, (3 * self.target) // 4)
        elif queue_depth_after > self.target:
            # Backlog: raise throughput with bigger batches while the
            # per-batch service time still fits the budget.
            if service_seconds <= budget:
                self.target = min(self.policy.max_batch, 2 * self.target)
        elif queue_depth_after == 0 and service_seconds < 0.5 * budget:
            # Idle and fast: drift back toward latency-optimal batches.
            self.target = max(self.policy.min_batch, self.target - 1)


class DynamicBatcher:
    """Accumulates admitted requests and dispatches size/deadline batches.

    The batcher owns the pending queue; a single ``run`` task forms
    batches and hands them to ``dispatch`` (a coroutine the server wires
    to the router).  Dispatch runs as its own task so several replicas
    can execute batches concurrently, but in-flight batches are capped
    at ``max_inflight`` — one per device *stream* (streams × replicas),
    so with multi-stream replicas the next batch is admitted and starts
    its HtoD while earlier batches still compute (pipelined dispatch).
    Without the cap the pending queue drains instantly into tasks
    blocked on busy devices, hiding the backlog from the batch-size
    controller, the degradation ladder and the bounded-queue shed — all
    of which key off ``queue_depth``.
    """

    def __init__(
        self,
        policy: BatchPolicy,
        slo_p99_s: float,
        dispatch: Callable[[List[ServeRequest]], Awaitable[None]],
        max_inflight: int = 1,
    ) -> None:
        if max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        self.policy = policy
        self.controller = BatchSizeController(policy, slo_p99_s)
        self._dispatch = dispatch
        self.max_inflight = max_inflight
        self.pending: Deque[ServeRequest] = deque()
        self._arrival = asyncio.Event()
        self._stopping = False
        # Insertion-ordered (dict, not set) so shutdown awaits in-flight
        # dispatch tasks in spawn order — deterministic on the virtual
        # clock, where set hash order would vary run to run.
        self._inflight: Dict[asyncio.Task, None] = {}
        self._slots: asyncio.Semaphore | None = None

    # -- producer side ---------------------------------------------------

    def enqueue(self, request: ServeRequest) -> None:
        """Add an admitted request to the pending queue."""
        self.pending.append(request)
        self._arrival.set()

    @property
    def queue_depth(self) -> int:
        return len(self.pending)

    @property
    def inflight(self) -> int:
        """Batches currently dispatched and not yet completed."""
        return len(self._inflight)

    def stop(self) -> None:
        """Ask the run loop to drain the queue and exit."""
        self._stopping = True
        self._arrival.set()

    # -- batch formation -------------------------------------------------

    def _slot_semaphore(self) -> asyncio.Semaphore:
        # Created lazily so the batcher binds to the running loop.
        if self._slots is None:
            self._slots = asyncio.Semaphore(self.max_inflight)
        return self._slots

    async def run(self) -> None:
        """Form batches until stopped and the queue is drained."""
        loop = asyncio.get_running_loop()
        while True:
            if not self.pending:
                if self._stopping:
                    break
                self._arrival.clear()
                await self._arrival.wait()
                continue
            target = self.controller.target
            if len(self.pending) < target and not self._stopping:
                oldest = self.pending[0]
                deadline = oldest.arrival_s + self.policy.max_wait_s
                timeout = deadline - loop.time()
                if timeout > 0:
                    # Wait for more arrivals, but never past the deadline.
                    self._arrival.clear()
                    try:
                        await asyncio.wait_for(self._arrival.wait(), timeout)
                    except asyncio.TimeoutError:
                        pass
                    continue
            # Block until a replica slot frees; arrivals keep queueing in
            # ``pending`` meanwhile, where the controllers can see them.
            await self._slot_semaphore().acquire()
            batch = [
                self.pending.popleft()
                for _ in range(min(target, len(self.pending)))
            ]
            task = asyncio.create_task(self._run_dispatch(batch))
            self._inflight[task] = None
            task.add_done_callback(lambda t: self._inflight.pop(t, None))
        if self._inflight:
            await gather_all(*tuple(self._inflight))

    async def _run_dispatch(self, batch: List[ServeRequest]) -> None:
        try:
            await self._dispatch(batch)
        finally:
            self._slot_semaphore().release()

    async def drain(self) -> None:
        """Wait for every in-flight dispatch task to finish."""
        while self._inflight:
            await gather_all(*tuple(self._inflight))
