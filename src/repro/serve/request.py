"""Request and response records flowing through the serving pipeline.

A :class:`ServeRequest` is one in-flight query (or vector insert): the
payload plus the timestamps every pipeline stage stamps onto it, and the
future its caller awaits.  A :class:`ServeResponse` is the terminal
record handed back — search results (or the assigned id for inserts),
the effective quality tier, and the per-stage latency breakdown the
metrics core aggregates.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "SEARCH",
    "INSERT",
    "ServeRequest",
    "ServeResponse",
]

#: Request kinds.
SEARCH = "search"
INSERT = "insert"


@dataclass
class ServeRequest:
    """One admitted unit of work travelling through the pipeline.

    Attributes
    ----------
    request_id:
        Monotone id assigned at submission.
    kind:
        ``"search"`` or ``"insert"``.
    payload:
        The query vector (search) or the vector to ingest (insert).
    arrival_s:
        Loop time at submission.
    ground_truth:
        Optional exact top-k ids for recall-under-load accounting.
    future:
        Resolved with the :class:`ServeResponse` when the request leaves
        the system (served or shed).
    dispatch_s:
        Loop time the batcher handed the request to an engine.
    """

    request_id: int
    kind: str
    payload: np.ndarray
    arrival_s: float
    future: asyncio.Future = field(repr=False)
    ground_truth: Optional[np.ndarray] = None
    dispatch_s: Optional[float] = None

    def resolve(self, response: "ServeResponse") -> None:
        """Complete the caller's future exactly once."""
        if not self.future.done():
            self.future.set_result(response)


@dataclass
class ServeResponse:
    """Terminal record of one request.

    ``status`` is ``"ok"`` for served requests, ``"shed"`` for load
    shedding (with a ``shed_reason`` and no results), or ``"error"``
    when the pipeline raised (with the exception text in ``error``).
    Latencies are in (simulated or wall) seconds.
    """

    request_id: int
    kind: str
    status: str
    results: List[Tuple[float, int]] = field(default_factory=list)
    inserted_id: Optional[int] = None
    tier: int = 0
    ef: int = 0
    queue_wait_s: float = 0.0
    service_s: float = 0.0
    latency_s: float = 0.0
    batch_size: int = 0
    replica: str = ""
    shed_reason: str = ""
    recall: Optional[float] = None
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"
